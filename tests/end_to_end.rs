//! Cross-crate integration: workload generation → auction → federated
//! training, plus the device-fleet and dropout paths.

use fl_procurement::auction::{run_auction, verify, AuctionConfig};
use fl_procurement::sim::{DataSkew, DatasetSpec, DropoutModel, Federation, FlJob};
use fl_procurement::workload::{CostModel, DeviceMix, WorkloadSpec};

fn small_spec() -> WorkloadSpec {
    WorkloadSpec::paper_default()
        .with_clients(150)
        .with_bids_per_client(4)
        .with_config(
            AuctionConfig::builder()
                .max_rounds(16)
                .clients_per_round(3)
                .round_time_limit(60.0)
                .build()
                .unwrap(),
        )
}

#[test]
fn paper_workload_to_verified_outcome() {
    for seed in [1, 2, 3] {
        let inst = small_spec().generate(seed).unwrap();
        let outcome = run_auction(&inst).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert!(verify::outcome_violations(&inst, &outcome).is_empty());
        assert!(verify::ir_violations(outcome.solution()).is_empty());
        assert!(verify::certificate_violations(outcome.solution()).is_empty());
        // Payments at least cover the social cost.
        assert!(outcome.solution().total_payment() >= outcome.social_cost() - 1e-9);
    }
}

#[test]
fn auction_schedule_drives_fedavg_to_convergence() {
    let inst = small_spec().generate(7).unwrap();
    let outcome = run_auction(&inst).unwrap();
    let federation = Federation::generate(
        &DatasetSpec {
            dim: 8,
            samples_per_client: 50,
            label_noise: 0.03,
            skew: DataSkew::Iid,
        },
        inst.num_clients(),
        11,
    );
    let report = FlJob::new(0.3).run(&inst, &outcome, &federation, 1);
    // Coverage: every round has at least K participants.
    for r in &report.rounds {
        assert!(
            r.participants.len() as u32 >= inst.config().clients_per_round(),
            "round {} understaffed",
            r.round
        );
        assert!(r.wall_clock <= inst.config().round_time_limit() + 1e-9);
    }
    // Learning actually happens.
    let first = report.rounds.first().unwrap().grad_norm;
    let last = report.rounds.last().unwrap().grad_norm;
    assert!(last < first, "no convergence progress: {first} → {last}");
    assert!(
        report.final_accuracy > 0.6,
        "accuracy {}",
        report.final_accuracy
    );
}

#[test]
fn device_fleet_instances_are_auctionable() {
    let spec = small_spec();
    let (inst, classes) = DeviceMix::smartphone_fleet().generate(&spec, 21).unwrap();
    assert_eq!(classes.len(), inst.num_clients());
    let outcome = run_auction(&inst).unwrap();
    assert!(verify::outcome_violations(&inst, &outcome).is_empty());
}

#[test]
fn time_proportional_costs_still_verify() {
    let spec = small_spec().with_cost_model(CostModel::TimeProportional { unit: (0.5, 2.5) });
    let inst = spec.generate(4).unwrap();
    let outcome = run_auction(&inst).unwrap();
    assert!(verify::outcome_violations(&inst, &outcome).is_empty());
}

#[test]
fn dropout_degrades_gracefully_and_deterministically() {
    let inst = small_spec().generate(9).unwrap();
    let outcome = run_auction(&inst).unwrap();
    let federation = Federation::generate(&DatasetSpec::default(), inst.num_clients(), 13);
    let no_drop = FlJob::new(0.3).run(&inst, &outcome, &federation, 2);
    let with_drop =
        FlJob::new(0.3)
            .with_dropout(DropoutModel::new(0.5))
            .run(&inst, &outcome, &federation, 2);
    let participants = |r: &fl_procurement::sim::TrainingReport| -> usize {
        r.rounds.iter().map(|x| x.participants.len()).sum()
    };
    assert!(participants(&with_drop) < participants(&no_drop));
    // Determinism under the same seed.
    let again =
        FlJob::new(0.3)
            .with_dropout(DropoutModel::new(0.5))
            .run(&inst, &outcome, &federation, 2);
    assert_eq!(with_drop, again);
}

#[test]
fn auction_cost_ordering_is_sane_across_algorithms() {
    use fl_procurement::auction::run_auction_with;
    use fl_procurement::baselines::{FcfsBaseline, GreedyBaseline, OnlineBaseline};
    let mut afl_wins_vs_fcfs = 0;
    let seeds = [1u64, 2, 3, 4, 5];
    for &seed in &seeds {
        let inst = small_spec().generate(seed).unwrap();
        let afl = run_auction(&inst).unwrap().social_cost();
        let greedy = run_auction_with(&inst, &GreedyBaseline::new()).map(|o| o.social_cost());
        let online = run_auction_with(&inst, &OnlineBaseline::new()).map(|o| o.social_cost());
        let fcfs = run_auction_with(&inst, &FcfsBaseline::new()).map(|o| o.social_cost());
        if let Ok(g) = greedy {
            assert!(afl <= g + 1e-9 || afl / g < 1.2, "A_FL {afl} ≫ Greedy {g}");
        }
        if let Ok(o) = online {
            assert!(afl <= o + 1e-6, "A_FL {afl} worse than A_online {o}");
        }
        if let Ok(f) = fcfs {
            if afl < f {
                afl_wins_vs_fcfs += 1;
            }
        }
    }
    assert!(
        afl_wins_vs_fcfs >= 4,
        "A_FL should beat FCFS almost always ({afl_wins_vs_fcfs}/{})",
        seeds.len()
    );
}

//! Every solver against every pathological instance.
//!
//! The stress constructors (`fl_workload::stress`) build the corners where
//! mechanisms misbehave — monopolists, price cliffs, clone armies, and
//! feasibility knife-edges. This suite runs the full solver zoo (`A_FL`,
//! the three baselines, branch-and-bound, refinement) over all of them and
//! checks the universal contracts: outputs verify against ILP (6), costs
//! order sanely (`OPT ≤ refined ≤ greedy`), and determinism holds.

use fl_procurement::auction::{qualify, run_auction_with, verify, AWinner, Instance, WdpSolver};
use fl_procurement::baselines::{FcfsBaseline, GreedyBaseline, OnlineBaseline};
use fl_procurement::exact::{ExactSolver, RefineSolver};
use fl_procurement::workload::stress;

fn corpus() -> Vec<(&'static str, Instance)> {
    vec![
        ("monopolist", stress::monopolist_round(6, 5).unwrap()),
        (
            "price_cliff",
            stress::price_cliff(5, 4, 3, 2.0, 200.0).unwrap(),
        ),
        ("clones", stress::clones(8, 3, 2).unwrap()),
        ("staircase", stress::staircase(5, 2).unwrap()),
    ]
}

#[test]
fn every_solver_is_feasible_on_every_stress_instance() {
    for (name, inst) in corpus() {
        let solvers: Vec<(&str, Box<dyn WdpSolver + Sync>)> = vec![
            ("A_winner", Box::new(AWinner::new())),
            ("Greedy", Box::new(GreedyBaseline::new())),
            ("A_online", Box::new(OnlineBaseline::new())),
            ("FCFS", Box::new(FcfsBaseline::new())),
            ("OPT", Box::new(ExactSolver::new())),
            ("refine", Box::new(RefineSolver::new())),
        ];
        for (solver_name, solver) in solvers {
            match run_auction_with(&inst, &solver.as_ref()) {
                Ok(outcome) => {
                    let bad = verify::outcome_violations(&inst, &outcome);
                    assert!(bad.is_empty(), "[{name}/{solver_name}] {bad:?}");
                }
                Err(e) => {
                    // If one solver finds the instance feasible, the exact
                    // solver must as well; spot-check that claim here.
                    if solver_name == "OPT" {
                        let greedy_ok = run_auction_with(&inst, &AWinner::new()).is_ok();
                        assert!(!greedy_ok, "[{name}] OPT failed ({e}) but greedy succeeded");
                    }
                }
            }
        }
    }
}

#[test]
fn cost_ordering_opt_refine_greedy_holds_on_stress_corners() {
    for (name, inst) in corpus() {
        let greedy = run_auction_with(&inst, &AWinner::new());
        let refined = run_auction_with(&inst, &RefineSolver::new());
        let opt = run_auction_with(&inst, &ExactSolver::new());
        if let (Ok(g), Ok(r), Ok(o)) = (greedy, refined, opt) {
            assert!(
                o.social_cost() <= r.social_cost() + 1e-9,
                "[{name}] OPT {} above refined {}",
                o.social_cost(),
                r.social_cost()
            );
            assert!(
                r.social_cost() <= g.social_cost() + 1e-9,
                "[{name}] refined {} above greedy {}",
                r.social_cost(),
                g.social_cost()
            );
        }
    }
}

#[test]
fn all_solvers_are_deterministic_on_clone_armies() {
    let inst = stress::clones(10, 4, 3).unwrap();
    let solvers: Vec<Box<dyn WdpSolver + Sync>> = vec![
        Box::new(AWinner::new()),
        Box::new(GreedyBaseline::new()),
        Box::new(OnlineBaseline::new()),
        Box::new(FcfsBaseline::new()),
        Box::new(ExactSolver::new()),
    ];
    for solver in solvers {
        let a = run_auction_with(&inst, &solver.as_ref());
        let b = run_auction_with(&inst, &solver.as_ref());
        match (a, b) {
            (Ok(x), Ok(y)) => assert_eq!(x, y, "{} tie-breaking is unstable", solver.name()),
            (Err(x), Err(y)) => assert_eq!(x, y),
            other => panic!("{}: nondeterministic feasibility {other:?}", solver.name()),
        }
    }
}

#[test]
fn monopolist_payments_across_rules() {
    use fl_procurement::auction::truthful::myerson_payment;
    use fl_procurement::exact::vcg;

    let inst = stress::monopolist_round(6, 5).unwrap();
    let wdp = qualify(&inst, 5);
    let sol = AWinner::new()
        .solve_wdp(&wdp)
        .expect("feasible at full horizon");
    let monopolist = sol
        .winners()
        .iter()
        .find(|w| w.schedule.iter().any(|t| t.0 == 5))
        .expect("someone must staff round 5");
    // Paper rule: no competitor in its iteration ⇒ paid its bid.
    assert_eq!(monopolist.payment, monopolist.price);
    // Myerson: threshold is unbounded ⇒ capped.
    let cap = 1_000.0;
    let threshold = myerson_payment(&wdp, monopolist.bid_ref, cap, 1e-6).unwrap();
    assert_eq!(threshold, cap);
    // VCG: removal is infeasible ⇒ capped externality.
    let out = vcg(&wdp, &ExactSolver::new(), cap).unwrap();
    let vcg_pay = out
        .solution
        .winners()
        .iter()
        .find(|w| w.bid_ref == monopolist.bid_ref)
        .unwrap()
        .payment;
    assert!(
        vcg_pay >= cap,
        "VCG must price the monopoly externality at the cap"
    );
}

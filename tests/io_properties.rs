//! Round-trip property tests for the instance text format, driven by the
//! actual workload generators.

use fl_procurement::auction::{io, AuctionConfig, ClientId, LocalIterationModel, QualifyMode};
use fl_procurement::workload::{CostModel, DeviceMix, WorkloadSpec};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generated_instances_round_trip(
        seed in 0u64..10_000,
        clients in 5usize..40,
        j in 1u32..4,
        timeprop in any::<bool>(),
        literal in any::<bool>(),
    ) {
        let cfg = AuctionConfig::builder()
            .max_rounds(12)
            .clients_per_round(2)
            .round_time_limit(60.0)
            .local_model(LocalIterationModel::Linear { scale: 10.0 })
            .qualify_mode(if literal { QualifyMode::Literal } else { QualifyMode::Intent })
            .build()
            .expect("valid config");
        let spec = WorkloadSpec::paper_default()
            .with_clients(clients)
            .with_bids_per_client(j)
            .with_config(cfg)
            .with_cost_model(if timeprop {
                CostModel::TimeProportional { unit: (0.5, 2.5) }
            } else {
                CostModel::UniformTotal
            });
        let inst = spec.generate(seed).expect("valid spec");
        let mut buf = Vec::new();
        io::write_instance(&inst, &mut buf).expect("in-memory write");
        let back = io::read_instance(buf.as_slice()).expect("own output parses");
        prop_assert_eq!(back.config(), inst.config());
        prop_assert_eq!(back.num_clients(), inst.num_clients());
        prop_assert_eq!(back.num_bids(), inst.num_bids());
        for ci in 0..inst.num_clients() {
            let id = ClientId(ci as u32);
            prop_assert_eq!(&back.clients()[ci], &inst.clients()[ci]);
            prop_assert_eq!(back.bids_of(id), inst.bids_of(id));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The reader must never panic on arbitrary input — only return errors.
    #[test]
    fn reader_is_panic_free_on_garbage(input in ".{0,400}") {
        let _ = io::read_instance(input.as_bytes());
    }

    /// Garbage prefixed with a valid config line must also be panic-free.
    #[test]
    fn reader_is_panic_free_on_corrupted_records(tail in ".{0,200}") {
        let text = format!("config 6 2 60 linear 10 intent\nclient 5 10\n{tail}");
        let _ = io::read_instance(text.as_bytes());
    }
}

#[test]
fn device_fleet_instances_round_trip_too() {
    let spec = WorkloadSpec::paper_default()
        .with_clients(30)
        .with_bids_per_client(2);
    let (inst, _) = DeviceMix::smartphone_fleet().generate(&spec, 4).unwrap();
    let mut buf = Vec::new();
    io::write_instance(&inst, &mut buf).unwrap();
    let back = io::read_instance(buf.as_slice()).unwrap();
    assert_eq!(back.num_bids(), inst.num_bids());
    // And the reloaded instance produces the identical auction result
    // (this tiny fleet happens to be infeasible at K = 20 — equally so on
    // both sides, which is exactly the point).
    let a = fl_procurement::auction::run_auction(&inst);
    let b = fl_procurement::auction::run_auction(&back);
    match (a, b) {
        (Ok(x), Ok(y)) => {
            assert_eq!(x.social_cost(), y.social_cost());
            assert_eq!(x.horizon(), y.horizon());
        }
        (Err(x), Err(y)) => assert_eq!(x, y),
        other => panic!("outcomes diverged after round trip: {other:?}"),
    }
}

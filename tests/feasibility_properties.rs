//! Property tests: every solver's outcome satisfies ILP (6) on random
//! instances, and `A_FL`'s payments are individually rational.

use fl_procurement::auction::{
    run_auction_with, verify, AWinner, AuctionConfig, AuctionError, Bid, ClientProfile, Instance,
    Round, Window,
};
use fl_procurement::baselines::{FcfsBaseline, GreedyBaseline, OnlineBaseline};
use proptest::prelude::*;

/// A compact description of one random client bid.
#[derive(Debug, Clone)]
struct RawBid {
    price: f64,
    theta_pct: u32, // θ = theta_pct / 100
    a: u32,
    span: u32,
    c_frac: u32,
}

fn raw_bid() -> impl Strategy<Value = RawBid> {
    (1u32..=50, 30u32..=80, 1u32..=8, 0u32..=7, 1u32..=100).prop_map(
        |(price, theta_pct, a, span, c_frac)| RawBid {
            price: f64::from(price),
            theta_pct,
            a,
            span,
            c_frac,
        },
    )
}

/// Builds an instance over horizon T = 8 with K = 2 from raw bids (one
/// bid per client keeps interpretation simple).
fn build_instance(raw: &[RawBid]) -> Result<Instance, AuctionError> {
    let cfg = AuctionConfig::builder()
        .max_rounds(8)
        .clients_per_round(2)
        .round_time_limit(1_000.0) // keep the time gate out of these tests
        .build()?;
    let mut inst = Instance::new(cfg);
    for r in raw {
        let client = inst.add_client(ClientProfile::new(2.0, 3.0)?);
        let a = r.a.min(8);
        let d = (a + r.span).min(8);
        let len = d - a + 1;
        let c = (r.c_frac * len).div_ceil(100).clamp(1, len);
        let bid = Bid::new(
            r.price,
            f64::from(r.theta_pct) / 100.0,
            Window::new(Round(a), Round(d)),
            c,
        )?;
        inst.add_bid(client, bid)?;
    }
    Ok(inst)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_solver_output_is_feasible(raw in prop::collection::vec(raw_bid(), 6..16)) {
        let inst = build_instance(&raw).expect("raw bids are valid");
        #[allow(clippy::type_complexity)]
        let solvers: [(&str, Box<dyn Fn() -> Result<_, _>>); 4] = [
            ("A_FL", Box::new(|| run_auction_with(&inst, &AWinner::new()))),
            ("Greedy", Box::new(|| run_auction_with(&inst, &GreedyBaseline::new()))),
            ("A_online", Box::new(|| run_auction_with(&inst, &OnlineBaseline::new()))),
            ("FCFS", Box::new(|| run_auction_with(&inst, &FcfsBaseline::new()))),
        ];
        for (name, run) in &solvers {
            if let Ok(outcome) = run() {
                let violations = verify::outcome_violations(&inst, &outcome);
                prop_assert!(violations.is_empty(), "{name}: {violations:?}");
            }
        }
    }

    #[test]
    fn afl_payments_are_individually_rational(raw in prop::collection::vec(raw_bid(), 6..16)) {
        let inst = build_instance(&raw).expect("raw bids are valid");
        if let Ok(outcome) = run_auction_with(&inst, &AWinner::new()) {
            let bad = verify::ir_violations(outcome.solution());
            prop_assert!(bad.is_empty(), "{bad:?}");
        }
    }

    #[test]
    fn afl_cost_is_the_minimum_over_its_own_horizon_sweep(
        raw in prop::collection::vec(raw_bid(), 6..14)
    ) {
        let inst = build_instance(&raw).expect("raw bids are valid");
        let solver = AWinner::new();
        if let Ok(outcome) = run_auction_with(&inst, &solver) {
            let sweep = fl_procurement::auction::sweep_horizons(&inst, &solver)
                .expect("instance has bids");
            for h in sweep {
                if let Ok(sol) = h.result {
                    prop_assert!(
                        outcome.social_cost() <= sol.cost() + 1e-9,
                        "A_FL cost {} beaten at T_g = {} with {}",
                        outcome.social_cost(),
                        h.horizon,
                        sol.cost()
                    );
                }
            }
        }
    }
}

//! Property tests for Lemma 5: the dual certificate produced by
//! `A_winner` satisfies `D ≤ OPT ≤ P ≤ H_{T̂_g}·ω·D` on random WDPs.

use fl_procurement::auction::{AWinner, QualifiedBid, Wdp, WdpSolver};
use fl_procurement::auction::{BidRef, ClientId, Round, Window};
use fl_procurement::exact::{colgen, BruteForceSolver, ExactSolver};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RawBid {
    price: u32,
    a: u32,
    span: u32,
    c_frac: u32,
}

fn raw_bid(horizon: u32) -> impl Strategy<Value = RawBid> {
    (1u32..=40, 1..=horizon, 0..horizon, 1u32..=100).prop_map(|(price, a, span, c_frac)| RawBid {
        price,
        a,
        span,
        c_frac,
    })
}

fn to_wdp(raw: &[RawBid], horizon: u32, k: u32) -> Wdp {
    let bids = raw
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let a = r.a.min(horizon);
            let d = (a + r.span).min(horizon);
            let len = d - a + 1;
            let c = (r.c_frac * len).div_ceil(100).clamp(1, len);
            QualifiedBid {
                bid_ref: BidRef::new(ClientId(i as u32), 0),
                price: f64::from(r.price),
                accuracy: 0.5,
                window: Window::new(Round(a), Round(d)),
                rounds: c,
                round_time: 1.0,
            }
        })
        .collect();
    Wdp::new(horizon, k, bids)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lemma5_chain_holds(raw in prop::collection::vec(raw_bid(5), 4..12)) {
        let wdp = to_wdp(&raw, 5, 2);
        if let Ok(sol) = AWinner::new().solve_wdp(&wdp) {
            let cert = sol.certificate().expect("certificate on by default");
            let p = sol.cost();
            let d = cert.dual_objective;
            // Weak duality of the constructed dual point.
            prop_assert!(d <= p + 1e-6, "D = {d} > P = {p}");
            // Lemma 5 upper bound (vacuous when ω = ∞).
            let bound = cert.ratio_bound() * d;
            if bound.is_finite() {
                prop_assert!(p <= bound + 1e-6, "P = {p} > H·ω·D = {bound}");
            }
            // Dual variables are sign-feasible.
            prop_assert!(cert.g.iter().all(|&g| g >= -1e-9 && !g.is_nan()));
            prop_assert!(cert.lambda.iter().all(|&l| l >= -1e-9));
        }
    }

    #[test]
    fn dual_lower_bounds_the_true_optimum(raw in prop::collection::vec(raw_bid(4), 4..9)) {
        let wdp = to_wdp(&raw, 4, 1);
        let greedy = AWinner::new().solve_wdp(&wdp);
        let opt = BruteForceSolver::new().solve_wdp(&wdp);
        if let (Ok(g), Ok(o)) = (greedy, opt) {
            let cert = g.certificate().unwrap();
            prop_assert!(
                cert.dual_objective <= o.cost() + 1e-6,
                "D = {} exceeds OPT = {}",
                cert.dual_objective,
                o.cost()
            );
            prop_assert!(g.cost() >= o.cost() - 1e-9, "greedy beat the optimum?!");
            if cert.ratio_bound().is_finite() {
                prop_assert!(
                    g.cost() <= cert.ratio_bound() * o.cost() + 1e-6,
                    "ratio {} exceeds certificate bound {}",
                    g.cost() / o.cost(),
                    cert.ratio_bound()
                );
            }
        }
    }

    /// The full duality sandwich across three independent computations:
    /// `D (greedy dual) ≤ LP(7) (column generation) ≤ OPT (brute force)
    /// ≤ P (greedy primal)`.
    #[test]
    fn dual_chain_through_the_exponential_lp(raw in prop::collection::vec(raw_bid(4), 4..9)) {
        let wdp = to_wdp(&raw, 4, 1);
        let greedy = AWinner::new().solve_wdp(&wdp);
        let lp = colgen::solve_lp7(&wdp);
        let opt = BruteForceSolver::new().solve_wdp(&wdp);
        if let (Ok(g), Ok(lp), Ok(o)) = (greedy, lp, opt) {
            let d = g.certificate().unwrap().dual_objective;
            prop_assert!(d <= lp.objective + 1e-6, "D = {d} > LP(7) = {}", lp.objective);
            prop_assert!(lp.objective <= o.cost() + 1e-6, "LP(7) = {} > OPT = {}", lp.objective, o.cost());
            prop_assert!(o.cost() <= g.cost() + 1e-9, "OPT above the greedy primal");
        }
    }

    #[test]
    fn branch_and_bound_matches_brute_force(raw in prop::collection::vec(raw_bid(4), 4..10)) {
        let wdp = to_wdp(&raw, 4, 1);
        let bnb = ExactSolver::new().solve_wdp(&wdp);
        let brute = BruteForceSolver::new().solve_wdp(&wdp);
        match (bnb, brute) {
            (Ok(a), Ok(b)) => prop_assert!(
                (a.cost() - b.cost()).abs() < 1e-9,
                "bnb {} vs brute {}",
                a.cost(),
                b.cost()
            ),
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "feasibility disagreement: {a:?} vs {b:?}"),
        }
    }
}

//! Incentive properties — what holds, what provably does not.
//!
//! The paper's Lemma 1 ("schedule-monotonic") is stated for a *fixed*
//! schedule `l` with unchanged marginal utility `R_il(S)`. The composed
//! greedy, however, re-derives representative schedules every iteration,
//! so lowering a bid's price can *shift its schedule*, perturb every later
//! iteration, and — in corner cases — even turn the WDP infeasible. A
//! pinned counterexample below documents this. Consequences:
//!
//! * allocation monotonicity holds in the vast majority of cases but not
//!   universally → tested *statistically* over a seeded corpus;
//! * underbidding (claiming less than the true cost) never raised utility
//!   anywhere in our corpora → tested as a property;
//! * exact Myerson threshold payments are misreport-proof wherever the
//!   allocation is monotone in the probed range → tested with an explicit
//!   monotonicity guard.
//!
//! Profitable *over*bidding under the paper's payment rule exists (~5% of
//! cases) and is quantified by the `ablation_payment` experiment.

use fl_procurement::auction::truthful::myerson_payment;
use fl_procurement::auction::{AWinner, BidRef, QualifiedBid, Wdp, WdpSolver};
use fl_procurement::auction::{ClientId, Round, Window};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn qb(client: u32, price: f64, a: u32, d: u32, c: u32) -> QualifiedBid {
    QualifiedBid {
        bid_ref: BidRef::new(ClientId(client), 0),
        price,
        accuracy: 0.5,
        window: Window::new(Round(a), Round(d)),
        rounds: c,
        round_time: 1.0,
    }
}

fn reprice(wdp: &Wdp, bid: BidRef, price: f64) -> Wdp {
    let mut bids = wdp.bids().to_vec();
    for b in bids.iter_mut() {
        if b.bid_ref == bid {
            b.price = price;
        }
    }
    Wdp::new(wdp.horizon(), wdp.demand_per_round(), bids)
}

fn winner_payment(wdp: &Wdp, bid: BidRef) -> Option<f64> {
    AWinner::new()
        .without_certificate()
        .solve_wdp(wdp)
        .ok()?
        .winners()
        .iter()
        .find(|w| w.bid_ref == bid)
        .map(|w| w.payment)
}

/// Pinned counterexample (found by property search): lowering winner
/// `client 2`'s price moves its representative schedule from rounds
/// `{2,3}` to `{1,2}`, after which the single-round clients cannot cover
/// round 5 — the allocation is NOT globally price-monotone, contradicting
/// a literal reading of Lemma 1 for the composed mechanism.
#[test]
fn allocation_monotonicity_counterexample_is_pinned() {
    let wdp = Wdp::new(
        5,
        1,
        vec![
            qb(0, 1.0, 1, 1, 1),
            qb(1, 1.0, 1, 1, 1),
            qb(2, 5.0, 1, 3, 2),
            qb(3, 5.0, 3, 5, 2),
            qb(4, 3.0, 1, 1, 1),
        ],
    );
    let b2 = BidRef::new(ClientId(2), 0);
    assert!(
        winner_payment(&wdp, b2).is_some(),
        "client 2 wins at its truthful price"
    );
    let cheaper = reprice(&wdp, b2, 0.5);
    assert!(
        winner_payment(&cheaper, b2).is_none(),
        "…but the cheaper claim derails the greedy (this pins the Lemma 1 caveat; \
         if this ever starts winning, the implementation changed behaviourally)"
    );
}

/// Statistical form of Lemma 1: across a seeded corpus, lowering a winning
/// price keeps it winning in ≥ 95% of (instance, winner, factor) cases.
#[test]
fn allocation_is_monotone_in_the_overwhelming_majority_of_cases() {
    let mut rng = StdRng::seed_from_u64(0xFEED);
    let mut kept = 0usize;
    let mut lost = 0usize;
    for _ in 0..150 {
        let h = rng.random_range(3..=6u32);
        let k = rng.random_range(1..=2u32);
        let n = rng.random_range(5..=9u32);
        let bids: Vec<QualifiedBid> = (0..n)
            .map(|i| {
                let a = rng.random_range(1..=h);
                let d = rng.random_range(a..=h);
                let c = rng.random_range(1..=(d - a + 1));
                qb(i, rng.random_range(1..=20u32) as f64, a, d, c)
            })
            .collect();
        let wdp = Wdp::new(h, k, bids);
        let Ok(sol) = AWinner::new().without_certificate().solve_wdp(&wdp) else {
            continue;
        };
        for w in sol.winners() {
            for factor in [0.3, 0.6, 0.9] {
                let cheaper = reprice(&wdp, w.bid_ref, w.price * factor);
                if winner_payment(&cheaper, w.bid_ref).is_some() {
                    kept += 1;
                } else {
                    lost += 1;
                }
            }
        }
    }
    let rate = kept as f64 / (kept + lost).max(1) as f64;
    assert!(
        rate >= 0.95,
        "monotonicity held in only {:.1}% of {} cases",
        100.0 * rate,
        kept + lost
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Claiming less than the true cost never raises utility under the
    /// paper's payment rule (no down-violations were ever observed).
    #[test]
    fn underbidding_never_raises_utility(
        seed in 0u64..10_000,
        factor in 0.2f64..1.0,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let h = rng.random_range(3..=5u32);
        let n = rng.random_range(5..=9u32);
        let bids: Vec<QualifiedBid> = (0..n)
            .map(|i| {
                let a = rng.random_range(1..=h);
                let d = rng.random_range(a..=h);
                let c = rng.random_range(1..=(d - a + 1));
                qb(i, rng.random_range(1..=20u32) as f64, a, d, c)
            })
            .collect();
        let wdp = Wdp::new(h, 1, bids);
        for bid in wdp.bids() {
            let truth = bid.price;
            let honest = winner_payment(&wdp, bid.bid_ref).map_or(0.0, |p| p - truth);
            let lied_wdp = reprice(&wdp, bid.bid_ref, truth * factor);
            let lied = winner_payment(&lied_wdp, bid.bid_ref).map_or(0.0, |p| p - truth);
            prop_assert!(
                lied <= honest + 1e-6,
                "{} profits {} → {} by underbidding to {}",
                bid.bid_ref,
                honest,
                lied,
                truth * factor
            );
        }
    }

    /// Where the allocation IS monotone across the probed price grid (the
    /// generic case), exact Myerson threshold payments are misreport-proof.
    #[test]
    fn myerson_thresholds_are_misreport_proof_on_monotone_instances(
        seed in 0u64..10_000,
        factor in 0.3f64..3.0,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let h = rng.random_range(3..=4u32);
        let n = rng.random_range(4..=7u32);
        let bids: Vec<QualifiedBid> = (0..n)
            .map(|i| {
                let a = rng.random_range(1..=h);
                let d = rng.random_range(a..=h);
                qb(i, rng.random_range(1..=20u32) as f64, a, d, (d - a + 1).min(2))
            })
            .collect();
        let wdp = Wdp::new(h, 1, bids);
        let cap = 1_000.0;
        for bid in wdp.bids() {
            let truth = bid.price;
            // Monotonicity guard: the win indicator over a coarse price grid
            // must be a prefix (win below, lose above).
            let grid = [0.25, 0.5, 1.0, 1.5, 2.5, 4.0, 8.0];
            let wins: Vec<bool> = grid
                .iter()
                .map(|g| winner_payment(&reprice(&wdp, bid.bid_ref, truth * g), bid.bid_ref).is_some())
                .collect();
            let monotone = wins.windows(2).all(|w| w[0] || !w[1]);
            if !monotone {
                continue;
            }
            let honest = match winner_payment(&wdp, bid.bid_ref) {
                Some(_) => myerson_payment(&wdp, bid.bid_ref, cap, 1e-7).unwrap() - truth,
                None => 0.0,
            };
            let lied_wdp = reprice(&wdp, bid.bid_ref, truth * factor);
            let lied = match winner_payment(&lied_wdp, bid.bid_ref) {
                Some(_) => myerson_payment(&lied_wdp, bid.bid_ref, cap, 1e-7).unwrap() - truth,
                None => 0.0,
            };
            prop_assert!(
                lied <= honest + 1e-4,
                "{}: threshold-paid utility rose {honest} → {lied} at factor {factor}",
                bid.bid_ref
            );
        }
    }
}

//! The `verify` module reports every violation batch to telemetry under a
//! `verify.*` counter before returning it. These tests pin that contract
//! from the outside: each counter fires (with the batch size) exactly when
//! a crafted violation is present, and a clean end-to-end run emits no
//! `verify.*` counter at all — so dashboards can alert on their mere
//! existence.

use std::sync::Arc;

use fl_auction::{
    run_auction, verify, AWinner, AuctionConfig, Bid, BidRef, ClientId, ClientProfile,
    DualCertificate, Instance, QualifiedBid, Round, Wdp, WdpSolution, WdpSolver, Window,
    WinnerEntry,
};
use fl_telemetry::{install_local, Recorder, Snapshot};

fn qb(client: u32, price: f64, a: u32, d: u32, c: u32) -> QualifiedBid {
    QualifiedBid {
        bid_ref: BidRef::new(ClientId(client), 0),
        price,
        accuracy: 0.5,
        window: Window::new(Round(a), Round(d)),
        rounds: c,
        round_time: 1.0,
    }
}

fn wdp() -> Wdp {
    Wdp::new(2, 1, vec![qb(0, 2.0, 1, 2, 1), qb(1, 3.0, 1, 2, 1)])
}

fn entry(client: u32, price: f64, payment: f64, rounds: &[u32]) -> WinnerEntry {
    WinnerEntry {
        bid_ref: BidRef::new(ClientId(client), 0),
        price,
        payment,
        schedule: rounds.iter().map(|&t| Round(t)).collect(),
    }
}

/// Runs `f` with a thread-local recorder installed and returns the
/// telemetry snapshot.
fn recorded(f: impl FnOnce()) -> Snapshot {
    let recorder = Arc::new(Recorder::default());
    let guard = install_local(recorder.clone());
    f();
    drop(guard);
    recorder.snapshot()
}

#[test]
fn wdp_counter_fires_per_violation_batch() {
    // Round 2 is uncovered AND the reported cost is wrong: one call, one
    // counter increment per violation in the batch.
    let sol = WdpSolution::new(2, vec![entry(0, 2.0, 2.0, &[1])], 2.0, None);
    let snap = recorded(|| {
        let bad = verify::wdp_violations(&wdp(), &sol);
        assert_eq!(bad.len(), 1, "{bad:?}");
    });
    assert_eq!(snap.counters["verify.wdp_violations"], 1);
}

#[test]
fn ir_counter_fires_when_a_winner_is_underpaid() {
    let sol = WdpSolution::new(2, vec![entry(0, 2.0, 1.5, &[1])], 2.0, None);
    let snap = recorded(|| {
        assert_eq!(verify::ir_violations(&sol).len(), 1);
    });
    assert_eq!(snap.counters["verify.ir_violations"], 1);
}

#[test]
fn certificate_counter_fires_on_broken_weak_duality() {
    // D = 100 > P = 2 and a negative λ: two violations in one batch.
    let cert = DualCertificate {
        harmonic: 1.0,
        omega: 1.0,
        g: vec![50.0, 50.0],
        lambda: vec![-1.0],
        dual_objective: 100.0,
    };
    let sol = WdpSolution::new(2, vec![entry(0, 2.0, 2.0, &[1])], 2.0, Some(cert));
    let snap = recorded(|| {
        assert_eq!(verify::certificate_violations(&sol).len(), 2);
    });
    assert_eq!(snap.counters["verify.certificate_violations"], 2);
}

#[test]
fn dual_feasibility_counter_fires_on_oversized_g() {
    // g(t) = 50 per round dwarfs every price, so constraint (8a) breaks
    // for every sampled schedule of both bids.
    let cert = DualCertificate {
        harmonic: 1.5,
        omega: 1.5,
        g: vec![50.0, 50.0],
        lambda: vec![0.0],
        dual_objective: 100.0,
    };
    let sol = WdpSolution::new(2, vec![entry(0, 2.0, 2.0, &[1])], 2.0, Some(cert));
    let snap = recorded(|| {
        let bad = verify::dual_feasibility_violations(&wdp(), &sol);
        assert!(!bad.is_empty());
    });
    assert!(snap.counters["verify.dual_feasibility_violations"] >= 2);
}

#[test]
fn outcome_counter_fires_when_the_horizon_escapes_the_range() {
    // Run the auction under T = 4, then verify the outcome against an
    // otherwise-identical instance announcing T = 1: the chosen horizon
    // now escapes [1, T] and the early-return branch must still report.
    let build = |max_rounds: u32| {
        let cfg = AuctionConfig::builder()
            .max_rounds(max_rounds)
            .clients_per_round(1)
            .round_time_limit(100.0)
            .build()
            .unwrap();
        let mut inst = Instance::new(cfg);
        for price in [3.0, 5.0] {
            let c = inst.add_client(ClientProfile::new(2.0, 5.0).unwrap());
            inst.add_bid(
                c,
                Bid::new(price, 0.5, Window::new(Round(1), Round(4)), 2).unwrap(),
            )
            .unwrap();
        }
        inst
    };
    let outcome = run_auction(&build(4)).unwrap();
    assert!(outcome.horizon() >= 2, "θ = 0.5 forces T_g ≥ 2");
    let strict = build(1);
    let snap = recorded(|| {
        let bad = verify::outcome_violations(&strict, &outcome);
        assert!(bad.iter().any(|m| m.contains("escapes")), "{bad:?}");
    });
    assert_eq!(snap.counters["verify.outcome_violations"], 1);
}

#[test]
fn clean_run_emits_no_verify_counters() {
    let w = wdp();
    let sol = AWinner::new().solve_wdp(&w).unwrap();
    let snap = recorded(|| {
        assert!(verify::wdp_violations(&w, &sol).is_empty());
        assert!(verify::ir_violations(&sol).is_empty());
        assert!(verify::certificate_violations(&sol).is_empty());
        assert!(verify::dual_feasibility_violations(&w, &sol).is_empty());
    });
    assert!(
        !snap.counters.keys().any(|k| k.starts_with("verify.")),
        "clean run leaked verify counters: {:?}",
        snap.counters
    );
    assert!(
        snap.messages.is_empty(),
        "clean run warned: {:?}",
        snap.messages
    );
}

//! Crate-level property tests for `fl-auction`: qualification is exactly
//! the published predicate, `A_winner` outputs are always feasible, and
//! payments always cover prices.

use fl_auction::{
    qualify, AWinner, AuctionConfig, Bid, ClientProfile, Instance, QualifyMode, Round, WdpSolver,
    Window,
};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RawBid {
    price: u32,
    theta_pct: u32,
    a: u32,
    span: u32,
    c_frac: u32,
    cmp_t: u32,
    com_t: u32,
}

fn raw_bid() -> impl Strategy<Value = RawBid> {
    (
        1u32..60,
        20u32..90,
        1u32..10,
        0u32..9,
        1u32..=100,
        1u32..10,
        1u32..15,
    )
        .prop_map(|(price, theta_pct, a, span, c_frac, cmp_t, com_t)| RawBid {
            price,
            theta_pct,
            a,
            span,
            c_frac,
            cmp_t,
            com_t,
        })
}

fn build(raw: &[RawBid], t_max_time: f64, mode: QualifyMode) -> Instance {
    let cfg = AuctionConfig::builder()
        .max_rounds(10)
        .clients_per_round(2)
        .round_time_limit(t_max_time)
        .qualify_mode(mode)
        .build()
        .expect("valid config");
    let mut inst = Instance::new(cfg);
    for r in raw {
        let client = inst.add_client(
            ClientProfile::new(f64::from(r.cmp_t), f64::from(r.com_t)).expect("valid profile"),
        );
        let a = r.a.min(10);
        let d = (a + r.span).min(10);
        let len = d - a + 1;
        let c = (r.c_frac * len).div_ceil(100).clamp(1, len);
        inst.add_bid(
            client,
            Bid::new(
                f64::from(r.price),
                f64::from(r.theta_pct) / 100.0,
                Window::new(Round(a), Round(d)),
                c,
            )
            .expect("valid bid"),
        )
        .expect("known client");
    }
    inst
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The qualified set is *exactly* the bids passing the published
    /// predicate — nothing extra, nothing missing.
    #[test]
    fn qualification_matches_the_predicate(
        raw in prop::collection::vec(raw_bid(), 4..14),
        horizon in 2u32..10,
    ) {
        let inst = build(&raw, 60.0, QualifyMode::Intent);
        let wdp = qualify(&inst, horizon);
        let theta_max = 1.0 - 1.0 / f64::from(horizon);
        let mut expected = 0usize;
        for (bid_ref, bid) in inst.iter_bids() {
            let t_ij = inst.round_time(bid_ref);
            let window_ok = bid
                .window()
                .truncate(Round(horizon))
                .is_some_and(|w| w.len() >= bid.rounds());
            let qualified = bid.accuracy() <= theta_max + 1e-9
                && t_ij <= 60.0 + 1e-9
                && window_ok;
            if qualified {
                expected += 1;
                prop_assert!(
                    wdp.bids().iter().any(|qb| qb.bid_ref == bid_ref),
                    "{bid_ref} passes the predicate but was excluded"
                );
            } else {
                prop_assert!(
                    wdp.bids().iter().all(|qb| qb.bid_ref != bid_ref),
                    "{bid_ref} fails the predicate but was included"
                );
            }
        }
        prop_assert_eq!(wdp.bids().len(), expected);
    }

    /// Whatever the instance, a successful `A_winner` run is feasible,
    /// individually rational, and internally consistent.
    #[test]
    fn winner_outputs_always_verify(
        raw in prop::collection::vec(raw_bid(), 6..16),
        horizon in 2u32..10,
    ) {
        let inst = build(&raw, 1_000.0, QualifyMode::Intent);
        let wdp = qualify(&inst, horizon);
        if let Ok(sol) = AWinner::new().solve_wdp(&wdp) {
            let bad = fl_auction::verify::wdp_violations(&wdp, &sol);
            prop_assert!(bad.is_empty(), "{bad:?}");
            let ir = fl_auction::verify::ir_violations(&sol);
            prop_assert!(ir.is_empty(), "{ir:?}");
            let cert = fl_auction::verify::certificate_violations(&sol);
            prop_assert!(cert.is_empty(), "{cert:?}");
            let dual = fl_auction::verify::dual_feasibility_violations(&wdp, &sol);
            prop_assert!(dual.is_empty(), "{dual:?}");
        }
    }

    /// Literal-mode qualification is a subset of intent-mode.
    #[test]
    fn literal_subset_of_intent(
        raw in prop::collection::vec(raw_bid(), 4..12),
        horizon in 2u32..10,
    ) {
        let intent = build(&raw, 60.0, QualifyMode::Intent);
        let literal = build(&raw, 60.0, QualifyMode::Literal);
        let qi = qualify(&intent, horizon);
        let ql = qualify(&literal, horizon);
        for qb in ql.bids() {
            prop_assert!(
                qi.bids().iter().any(|b| b.bid_ref == qb.bid_ref),
                "{} admitted by literal but not intent",
                qb.bid_ref
            );
        }
    }
}

//! Integration tests for the `fl-telemetry` instrumentation of `A_FL`:
//! a full auction run must emit the documented phase-span tree
//! (`afl_run` > `sweep_precompute` + `tg_candidate` > qualify / wdp_greedy
//! / payment / dual_certificate) with deterministic counters under a fixed
//! instance, for both the sequential and the parallel sweep.

use std::sync::Arc;

use fl_auction::{
    run_auction, AuctionConfig, Bid, ClientProfile, Instance, Round, SweepStrategy, Window,
};
use fl_telemetry::{install_local, Recorder, Snapshot};

/// K = 1, T = 4, three full-window clients with θ = 0.5 (T_0 = 2), so the
/// sweep visits horizons 2, 3 and 4 and every horizon is feasible. The
/// strategy is pinned explicitly because the pinned trees below depend on
/// the wave structure, not on the machine's core count.
fn instance(strategy: SweepStrategy) -> Instance {
    let cfg = AuctionConfig::builder()
        .max_rounds(4)
        .clients_per_round(1)
        .round_time_limit(100.0)
        .sweep_strategy(strategy)
        .build()
        .unwrap();
    let mut inst = Instance::new(cfg);
    for price in [3.0, 5.0, 8.0] {
        let c = inst.add_client(ClientProfile::new(2.0, 5.0).unwrap());
        inst.add_bid(
            c,
            Bid::new(price, 0.5, Window::new(Round(1), Round(4)), 2).unwrap(),
        )
        .unwrap();
    }
    inst
}

fn recorded_run(inst: &Instance) -> Snapshot {
    let recorder = Arc::new(Recorder::default());
    let guard = install_local(recorder.clone());
    let outcome = run_auction(inst).unwrap();
    assert_eq!(outcome.social_cost(), 3.0, "the $3 client covers T_g = 2");
    drop(guard);
    recorder.snapshot()
}

/// The fully-evaluated candidate subtree (qualify + solve + pay + certify).
fn solved_candidate(tg: u32) -> String {
    format!(
        "  tg_candidate tg={tg}\n    qualify tg={tg}\n    wdp_greedy bids=3\n    \
         payment\n    dual_certificate\n"
    )
}

#[test]
fn afl_run_emits_the_documented_phase_span_tree() {
    // Sequential waves have size 1, so horizon 2's cost ($3) is already
    // the incumbent when horizons 3 and 4 are considered; their slot
    // lower bounds ($5.5 and $8) prune them to bare candidate spans.
    let snap = recorded_run(&instance(SweepStrategy::Sequential));
    let expected = format!(
        "afl_run solver=A_winner bids=3\n  sweep_precompute bids=3\n{}  \
         tg_candidate tg=3\n  tg_candidate tg=4\n",
        solved_candidate(2)
    );
    assert_eq!(snap.tree_string(), expected);
}

#[test]
fn parallel_sweep_replays_the_sequential_trace_shape() {
    // One wave of 3 workers: no incumbent exists when the wave starts, so
    // nothing is pruned and every candidate is fully evaluated. Captured
    // worker telemetry must replay in horizon order under `afl_run`.
    let snap = recorded_run(&instance(SweepStrategy::Parallel { threads: 3 }));
    let expected = format!(
        "afl_run solver=A_winner bids=3\n  sweep_precompute bids=3\n{}{}{}",
        solved_candidate(2),
        solved_candidate(3),
        solved_candidate(4)
    );
    assert_eq!(snap.tree_string(), expected);
    assert_eq!(snap.counters["qualify.examined"], 9);
    assert_eq!(snap.counters["afl.horizons_feasible"], 3);
    assert!(!snap.counters.contains_key("afl.horizons_pruned"));
}

#[test]
fn phase_counts_match_the_horizon_sweep() {
    let snap = recorded_run(&instance(SweepStrategy::Sequential));
    assert_eq!(snap.span_count("afl_run"), 1);
    assert_eq!(snap.span_count("sweep_precompute"), 1);
    assert_eq!(snap.span_count("tg_candidate"), 3, "horizons 2, 3, 4");
    // Only the un-pruned horizon 2 qualifies and solves.
    assert_eq!(snap.span_count("qualify"), 1);
    assert_eq!(snap.span_count("wdp_greedy"), 1);
    assert_eq!(snap.span_count("payment"), 1);
    assert_eq!(snap.span_count("dual_certificate"), 1);
    assert_eq!(snap.counters["qualify.examined"], 3);
    assert_eq!(snap.counters["qualify.accepted"], 3);
    assert_eq!(snap.counters["afl.horizons_swept"], 3);
    assert_eq!(snap.counters["afl.horizons_feasible"], 1);
    assert_eq!(snap.counters["afl.horizons_pruned"], 2);
    // One winner at T̂_g = 2 (the only solved horizon).
    assert_eq!(snap.counters["winner.greedy_iterations"], 1);
    assert_eq!(snap.gauges["afl.social_cost"], 3.0);
    assert_eq!(snap.gauges["afl.horizon"], 2.0);
}

#[test]
fn recorder_output_is_deterministic_across_identical_runs() {
    for strategy in [
        SweepStrategy::Sequential,
        SweepStrategy::Parallel { threads: 2 },
        SweepStrategy::Parallel { threads: 3 },
    ] {
        let inst = instance(strategy);
        let a = recorded_run(&inst);
        let b = recorded_run(&inst);
        // Everything except wall-clock timing must reproduce exactly.
        assert_eq!(a.tree_string(), b.tree_string(), "{strategy:?}");
        assert_eq!(a.counters, b.counters, "{strategy:?}");
        assert_eq!(a.gauges, b.gauges, "{strategy:?}");
        assert_eq!(a.histograms, b.histograms, "{strategy:?}");
        assert_eq!(a.messages, b.messages, "{strategy:?}");
    }
}

#[test]
fn span_timing_is_monotone_down_the_tree() {
    // Pinned sequential: replayed parallel spans keep their workers' own
    // wall-clock durations, which legitimately overlap across siblings.
    let snap = recorded_run(&instance(SweepStrategy::Sequential));
    fn check(node: &fl_telemetry::SpanNode) {
        let child_sum: std::time::Duration = node.children.iter().map(|c| c.elapsed).sum();
        assert!(
            node.elapsed >= child_sum,
            "span {} ({:?}) shorter than its children ({child_sum:?})",
            node.name,
            node.elapsed
        );
        for c in &node.children {
            check(c);
        }
    }
    for root in &snap.roots {
        check(root);
    }
}

#[test]
fn standby_pool_construction_traces_its_own_phase() {
    let inst = instance(SweepStrategy::Sequential);
    let recorder = Arc::new(Recorder::default());
    let guard = install_local(recorder.clone());
    let outcome = run_auction(&inst).unwrap();
    let pool = outcome.standby_pool(&inst);
    drop(guard);
    assert!(!pool.is_empty());
    let snap = recorder.snapshot();
    let standby = snap.find("standby_pool").expect("standby_pool span");
    assert_eq!(standby.fields, vec![("tg".into(), "2".into())]);
    assert_eq!(standby.children[0].name, "qualify");
    // Two losing clients back each of the 2 rounds of the chosen horizon.
    assert_eq!(snap.counters["standby.entries"], 4);
    assert_eq!(snap.histograms["standby.round_depth"].max, 2.0);
}

#[test]
fn instrumentation_is_inert_without_a_sink() {
    // No sink installed: the run must behave identically and telemetry
    // must stay disabled throughout — including inside parallel workers.
    assert!(!fl_telemetry::enabled());
    let outcome = run_auction(&instance(SweepStrategy::Parallel { threads: 3 })).unwrap();
    assert_eq!(outcome.social_cost(), 3.0);
    assert!(!fl_telemetry::enabled());
}

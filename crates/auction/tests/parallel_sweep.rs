//! Determinism contract of the parallel horizon sweep: for any instance,
//! every [`SweepStrategy`] must produce bit-identical results — same
//! per-horizon records from `sweep_horizons`, same `AuctionOutcome`
//! (horizon, winners, payments, schedules, cost bits) from `run_auction` —
//! and the pruned `run_auction` must equal the documented fold over the
//! unpruned sweep (smallest `T̂_g` wins cost ties, exact comparison).
//!
//! CI runs this suite under `--release` as well, where worker scheduling
//! is fastest and most adversarial.

use fl_auction::{
    run_auction, sweep_horizons, AWinner, AuctionConfig, AuctionError, Bid, ClientProfile,
    Instance, QualifyMode, Round, SweepStrategy, WdpSolution, Window,
};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RawBid {
    price: u32,
    theta_pct: u32,
    a: u32,
    span: u32,
    c_frac: u32,
    cmp_t: u32,
    com_t: u32,
}

fn raw_bid() -> impl Strategy<Value = RawBid> {
    (
        1u32..60,
        20u32..90,
        1u32..10,
        0u32..9,
        1u32..=100,
        1u32..10,
        1u32..15,
    )
        .prop_map(|(price, theta_pct, a, span, c_frac, cmp_t, com_t)| RawBid {
            price,
            theta_pct,
            a,
            span,
            c_frac,
            cmp_t,
            com_t,
        })
}

/// Builds the same logical instance under a chosen execution strategy (the
/// strategy is an execution knob: it must never change any result).
fn build(raw: &[RawBid], k: u32, strategy: SweepStrategy) -> Instance {
    let cfg = AuctionConfig::builder()
        .max_rounds(10)
        .clients_per_round(k)
        .round_time_limit(60.0)
        .qualify_mode(QualifyMode::Intent)
        .sweep_strategy(strategy)
        .build()
        .expect("valid config");
    let mut inst = Instance::new(cfg);
    for r in raw {
        let client = inst.add_client(
            ClientProfile::new(f64::from(r.cmp_t), f64::from(r.com_t)).expect("valid profile"),
        );
        let a = r.a.min(10);
        let d = (a + r.span).min(10);
        let len = d - a + 1;
        let c = (r.c_frac * len).div_ceil(100).clamp(1, len);
        inst.add_bid(
            client,
            Bid::new(
                f64::from(r.price),
                f64::from(r.theta_pct) / 100.0,
                Window::new(Round(a), Round(d)),
                c,
            )
            .expect("valid bid"),
        )
        .expect("known client");
    }
    inst
}

fn assert_solutions_identical(a: &WdpSolution, b: &WdpSolution, ctx: &str) {
    assert_eq!(
        a.cost().to_bits(),
        b.cost().to_bits(),
        "{ctx}: costs differ in bits"
    );
    assert_eq!(a.horizon(), b.horizon(), "{ctx}: horizons differ");
    assert_eq!(a.winners(), b.winners(), "{ctx}: winner sets differ");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `sweep_horizons` returns the same per-horizon records under every
    /// strategy: same order, same qualified counts, same solutions to the
    /// bit, same errors.
    #[test]
    fn sweep_is_bit_identical_across_strategies(
        raw in prop::collection::vec(raw_bid(), 4..14),
        k in 1u32..3,
    ) {
        let sequential = build(&raw, k, SweepStrategy::Sequential);
        let reference = sweep_horizons(&sequential, &AWinner::new()).unwrap();
        for threads in [2usize, 4] {
            let parallel = build(&raw, k, SweepStrategy::Parallel { threads });
            let candidate = sweep_horizons(&parallel, &AWinner::new()).unwrap();
            prop_assert_eq!(reference.len(), candidate.len());
            for (r, c) in reference.iter().zip(&candidate) {
                prop_assert_eq!(r.horizon, c.horizon);
                prop_assert_eq!(r.qualified, c.qualified);
                match (&r.result, &c.result) {
                    (Ok(a), Ok(b)) => assert_solutions_identical(
                        a, b, &format!("T̂_g = {} × {threads} threads", r.horizon),
                    ),
                    (Err(a), Err(b)) => prop_assert_eq!(a, b),
                    (a, b) => prop_assert!(
                        false,
                        "feasibility diverges at T̂_g = {}: {a:?} vs {b:?}",
                        r.horizon
                    ),
                }
            }
        }
    }

    /// The full auction — including lower-bound pruning — announces the
    /// same outcome under every strategy.
    #[test]
    fn auction_outcome_is_bit_identical_across_strategies(
        raw in prop::collection::vec(raw_bid(), 4..14),
        k in 1u32..3,
    ) {
        let reference = run_auction(&build(&raw, k, SweepStrategy::Sequential));
        for threads in [2usize, 4] {
            let candidate = run_auction(&build(&raw, k, SweepStrategy::Parallel { threads }));
            match (&reference, &candidate) {
                (Ok(a), Ok(b)) => {
                    prop_assert_eq!(a.horizon(), b.horizon());
                    prop_assert_eq!(
                        a.social_cost().to_bits(),
                        b.social_cost().to_bits()
                    );
                    assert_solutions_identical(
                        a.solution(), b.solution(), &format!("{threads} threads"),
                    );
                }
                (Err(a), Err(b)) => prop_assert_eq!(a, b),
                (a, b) => prop_assert!(false, "feasibility diverges: {a:?} vs {b:?}"),
            }
        }
    }

    /// Pruning is invisible: `run_auction` equals the documented fold over
    /// the unpruned sweep — cheapest horizon, smallest `T̂_g` on exact cost
    /// ties.
    #[test]
    fn pruned_auction_equals_the_unpruned_fold(
        raw in prop::collection::vec(raw_bid(), 4..14),
        k in 1u32..3,
        threads in 1usize..5,
    ) {
        let inst = build(&raw, k, SweepStrategy::with_threads(threads));
        let mut fold: Option<(u32, WdpSolution)> = None;
        for h in sweep_horizons(&inst, &AWinner::new()).unwrap() {
            if let Ok(sol) = h.result {
                if fold.as_ref().is_none_or(|(_, best)| sol.cost() < best.cost()) {
                    fold = Some((h.horizon, sol));
                }
            }
        }
        match (run_auction(&inst), fold) {
            (Ok(outcome), Some((horizon, sol))) => {
                prop_assert_eq!(outcome.horizon(), horizon);
                assert_solutions_identical(outcome.solution(), &sol, "fold");
            }
            (Err(AuctionError::Infeasible), None) => {}
            (outcome, fold) => prop_assert!(
                false,
                "auction and fold disagree: {outcome:?} vs {fold:?}"
            ),
        }
    }
}

/// An exact cross-horizon cost tie: horizon 2 (bids X+nothing) and horizon
/// 4 (bid W) both cost $4.00, and W's slot lower bound equals — not
/// exceeds — the incumbent, so horizon 4 is *solved*, ties with the
/// incumbent, and loses to the smaller horizon. This pins the documented
/// tie-break and the strictness of the prune comparison at once.
#[test]
fn exact_cost_ties_pick_the_smallest_horizon_under_every_strategy() {
    for strategy in [
        SweepStrategy::Sequential,
        SweepStrategy::Parallel { threads: 2 },
        SweepStrategy::Parallel { threads: 4 },
    ] {
        let cfg = AuctionConfig::builder()
            .max_rounds(4)
            .clients_per_round(1)
            .round_time_limit(100.0)
            .sweep_strategy(strategy)
            .build()
            .unwrap();
        let mut inst = Instance::new(cfg);
        let x = inst.add_client(ClientProfile::new(1.0, 1.0).unwrap());
        let y = inst.add_client(ClientProfile::new(1.0, 1.0).unwrap());
        let w = inst.add_client(ClientProfile::new(1.0, 1.0).unwrap());
        // X alone covers horizon 2 for $4.
        inst.add_bid(
            x,
            Bid::new(4.0, 0.5, Window::new(Round(1), Round(2)), 2).unwrap(),
        )
        .unwrap();
        // Y only helps at horizon 4 (window [3,4]).
        inst.add_bid(
            y,
            Bid::new(4.0, 0.5, Window::new(Round(3), Round(4)), 2).unwrap(),
        )
        .unwrap();
        // W alone covers horizon 4 for $4 — an exact tie with horizon 2.
        inst.add_bid(
            w,
            Bid::new(4.0, 0.5, Window::new(Round(1), Round(4)), 4).unwrap(),
        )
        .unwrap();
        let sweep = sweep_horizons(&inst, &AWinner::new()).unwrap();
        let costs: Vec<Option<f64>> = sweep
            .iter()
            .map(|h| h.result.as_ref().ok().map(WdpSolution::cost))
            .collect();
        assert_eq!(costs, vec![Some(4.0), None, Some(4.0)], "{strategy:?}");
        let outcome = run_auction(&inst).unwrap();
        assert_eq!(outcome.horizon(), 2, "{strategy:?}: tie must pick T̂_g = 2");
        assert_eq!(outcome.social_cost(), 4.0, "{strategy:?}");
    }
}

/// `FL_THREADS` parsing is covered by unit tests; here we pin that the
/// builder normalises degenerate parallel strategies to sequential.
#[test]
fn builder_normalises_single_threaded_parallel_to_sequential() {
    let cfg = AuctionConfig::builder()
        .max_rounds(4)
        .clients_per_round(1)
        .sweep_strategy(SweepStrategy::Parallel { threads: 1 })
        .build()
        .unwrap();
    assert_eq!(cfg.sweep_strategy(), SweepStrategy::Sequential);
}

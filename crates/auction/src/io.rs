//! Plain-text instance serialisation.
//!
//! Auction instances can be saved and reloaded for sharing, archiving, or
//! driving the `flp` CLI without re-generating workloads. The format is a
//! deliberately boring line protocol (one record per line, `#` comments,
//! whitespace-separated fields) so it diffs well and needs no external
//! dependency:
//!
//! ```text
//! # fl-procurement instance v1
//! config <T> <K> <t_max> <model:linear|log> <model_param> <qualify:intent|literal>
//! client <t_cmp> <t_com>
//! bid <client_index> <price> <theta> <a> <d> <c>
//! ```
//!
//! Clients are implicitly numbered in file order; bids may appear in any
//! order after their client.

use std::io::{BufRead, Write};

use crate::bid::{Bid, ClientProfile, Instance};
use crate::config::{AuctionConfig, LocalIterationModel, QualifyMode};
use crate::error::AuctionError;
use crate::types::{ClientId, Round, Window};

/// Errors from reading an instance file.
#[derive(Debug)]
#[non_exhaustive]
pub enum ReadError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line failed to parse; carries the 1-based line number and reason.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        why: String,
    },
    /// The parsed data violates instance invariants.
    Invalid(AuctionError),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "i/o error reading instance: {e}"),
            ReadError::Parse { line, why } => write!(f, "parse error at line {line}: {why}"),
            ReadError::Invalid(e) => write!(f, "invalid instance data: {e}"),
        }
    }
}

impl std::error::Error for ReadError {}

impl From<std::io::Error> for ReadError {
    fn from(e: std::io::Error) -> Self {
        ReadError::Io(e)
    }
}

impl From<AuctionError> for ReadError {
    fn from(e: AuctionError) -> Self {
        ReadError::Invalid(e)
    }
}

/// Writes `instance` in the v1 text format.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_instance(instance: &Instance, mut w: impl Write) -> std::io::Result<()> {
    writeln!(w, "# fl-procurement instance v1")?;
    let cfg = instance.config();
    let (model_kind, model_param) = match cfg.local_model() {
        LocalIterationModel::Linear { scale } => ("linear", scale),
        LocalIterationModel::LogInverse { eta } => ("log", eta),
    };
    let qualify = match cfg.qualify_mode() {
        QualifyMode::Intent => "intent",
        QualifyMode::Literal => "literal",
    };
    writeln!(
        w,
        "config {} {} {} {model_kind} {model_param} {qualify}",
        cfg.max_rounds(),
        cfg.clients_per_round(),
        cfg.round_time_limit(),
    )?;
    for (ci, p) in instance.clients().iter().enumerate() {
        writeln!(w, "client {} {}", p.compute_time(), p.comm_time())?;
        for bid in instance.bids_of(ClientId(ci as u32)) {
            writeln!(
                w,
                "bid {ci} {} {} {} {} {}",
                bid.price(),
                bid.accuracy(),
                bid.window().start().0,
                bid.window().end().0,
                bid.rounds(),
            )?;
        }
    }
    Ok(())
}

/// Reads an instance in the v1 text format.
///
/// # Errors
///
/// [`ReadError::Parse`] on malformed lines, [`ReadError::Invalid`] when
/// records violate instance invariants, [`ReadError::Io`] on I/O failure.
pub fn read_instance(r: impl BufRead) -> Result<Instance, ReadError> {
    let mut instance: Option<Instance> = None;
    for (idx, line) in r.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split_whitespace();
        let record = fields.next().expect("non-empty line has a first token");
        let parse_err = |why: &str| ReadError::Parse {
            line: line_no,
            why: why.to_string(),
        };
        match record {
            "config" => {
                if instance.is_some() {
                    return Err(parse_err("duplicate config line"));
                }
                let vals: Vec<&str> = fields.collect();
                let [t, k, t_max, kind, param, qualify] = vals.as_slice() else {
                    return Err(parse_err("config needs 6 fields"));
                };
                let model = match *kind {
                    "linear" => LocalIterationModel::Linear {
                        scale: param.parse().map_err(|_| parse_err("bad model param"))?,
                    },
                    "log" => LocalIterationModel::LogInverse {
                        eta: param.parse().map_err(|_| parse_err("bad model param"))?,
                    },
                    _ => return Err(parse_err("model kind must be linear|log")),
                };
                let qualify = match *qualify {
                    "intent" => QualifyMode::Intent,
                    "literal" => QualifyMode::Literal,
                    _ => return Err(parse_err("qualify mode must be intent|literal")),
                };
                let cfg = AuctionConfig::builder()
                    .max_rounds(t.parse().map_err(|_| parse_err("bad T"))?)
                    .clients_per_round(k.parse().map_err(|_| parse_err("bad K"))?)
                    .round_time_limit(t_max.parse().map_err(|_| parse_err("bad t_max"))?)
                    .local_model(model)
                    .qualify_mode(qualify)
                    .build()?;
                instance = Some(Instance::new(cfg));
            }
            "client" => {
                let inst = instance
                    .as_mut()
                    .ok_or_else(|| parse_err("client before config"))?;
                let vals: Vec<&str> = fields.collect();
                let [cmp, com] = vals.as_slice() else {
                    return Err(parse_err("client needs 2 fields"));
                };
                inst.add_client(ClientProfile::new(
                    cmp.parse().map_err(|_| parse_err("bad t_cmp"))?,
                    com.parse().map_err(|_| parse_err("bad t_com"))?,
                )?);
            }
            "bid" => {
                let inst = instance
                    .as_mut()
                    .ok_or_else(|| parse_err("bid before config"))?;
                let vals: Vec<&str> = fields.collect();
                let [client, price, theta, a, d, c] = vals.as_slice() else {
                    return Err(parse_err("bid needs 6 fields"));
                };
                let client: u32 = client.parse().map_err(|_| parse_err("bad client index"))?;
                let a: u32 = a.parse().map_err(|_| parse_err("bad window start"))?;
                let d: u32 = d.parse().map_err(|_| parse_err("bad window end"))?;
                if a == 0 || d < a {
                    return Err(parse_err("window must satisfy 1 ≤ a ≤ d"));
                }
                let bid = Bid::new(
                    price.parse().map_err(|_| parse_err("bad price"))?,
                    theta.parse().map_err(|_| parse_err("bad accuracy"))?,
                    Window::new(Round(a), Round(d)),
                    c.parse().map_err(|_| parse_err("bad round count"))?,
                )?;
                inst.add_bid(ClientId(client), bid)?;
            }
            other => {
                return Err(parse_err(&format!("unknown record '{other}'")));
            }
        }
    }
    instance.ok_or(ReadError::Parse {
        line: 0,
        why: "file contains no config line".into(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Instance {
        let cfg = AuctionConfig::builder()
            .max_rounds(12)
            .clients_per_round(3)
            .round_time_limit(55.5)
            .local_model(LocalIterationModel::LogInverse { eta: 2.5 })
            .qualify_mode(QualifyMode::Literal)
            .build()
            .unwrap();
        let mut inst = Instance::new(cfg);
        let a = inst.add_client(ClientProfile::new(5.25, 10.5).unwrap());
        let b = inst.add_client(ClientProfile::new(7.0, 12.0).unwrap());
        inst.add_bid(
            a,
            Bid::new(10.5, 0.5, Window::new(Round(1), Round(6)), 4).unwrap(),
        )
        .unwrap();
        inst.add_bid(
            a,
            Bid::new(8.0, 0.75, Window::new(Round(7), Round(12)), 3).unwrap(),
        )
        .unwrap();
        inst.add_bid(
            b,
            Bid::new(22.125, 0.4, Window::new(Round(2), Round(9)), 8).unwrap(),
        )
        .unwrap();
        inst
    }

    #[test]
    fn round_trip_preserves_everything() {
        let inst = sample();
        let mut buf = Vec::new();
        write_instance(&inst, &mut buf).unwrap();
        let back = read_instance(buf.as_slice()).unwrap();
        assert_eq!(back.config(), inst.config());
        assert_eq!(back.num_clients(), inst.num_clients());
        assert_eq!(back.num_bids(), inst.num_bids());
        for ci in 0..inst.num_clients() {
            let id = ClientId(ci as u32);
            assert_eq!(back.clients()[ci], inst.clients()[ci]);
            assert_eq!(back.bids_of(id), inst.bids_of(id));
        }
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "# header\n\nconfig 4 1 60 linear 10 intent\n# a client\nclient 5 10\nbid 0 3 0.5 1 4 2\n";
        let inst = read_instance(text.as_bytes()).unwrap();
        assert_eq!(inst.num_clients(), 1);
        assert_eq!(inst.num_bids(), 1);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let text = "config 4 1 60 linear 10 intent\nclient nonsense 10\n";
        match read_instance(text.as_bytes()) {
            Err(ReadError::Parse { line, why }) => {
                assert_eq!(line, 2);
                assert!(why.contains("t_cmp"), "{why}");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn records_before_config_are_rejected() {
        let text = "client 5 10\n";
        assert!(matches!(
            read_instance(text.as_bytes()),
            Err(ReadError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn invalid_bid_data_is_rejected_via_invariants() {
        // θ = 1.5 violates Bid::new's contract.
        let text = "config 4 1 60 linear 10 intent\nclient 5 10\nbid 0 3 1.5 1 4 2\n";
        assert!(matches!(
            read_instance(text.as_bytes()),
            Err(ReadError::Invalid(_))
        ));
    }

    #[test]
    fn unknown_records_are_rejected() {
        let text = "config 4 1 60 linear 10 intent\nfrobnicate 1 2 3\n";
        match read_instance(text.as_bytes()) {
            Err(ReadError::Parse { why, .. }) => assert!(why.contains("frobnicate")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn empty_file_is_rejected() {
        assert!(matches!(
            read_instance("".as_bytes()),
            Err(ReadError::Parse { line: 0, .. })
        ));
    }

    #[test]
    fn auction_on_reloaded_instance_matches() {
        let inst = sample();
        let mut buf = Vec::new();
        write_instance(&inst, &mut buf).unwrap();
        let back = read_instance(buf.as_slice()).unwrap();
        let a = crate::auction::run_auction(&inst);
        let b = crate::auction::run_auction(&back);
        match (a, b) {
            (Ok(x), Ok(y)) => {
                assert_eq!(x.horizon(), y.horizon());
                assert_eq!(x.social_cost(), y.social_cost());
            }
            (Err(x), Err(y)) => assert_eq!(x, y),
            other => panic!("outcomes diverged: {other:?}"),
        }
    }
}

//! Qualified-bid construction (Alg. 1 lines 4–6).
//!
//! For each candidate horizon `T̂_g`, a bid enters the winner-determination
//! problem only if it can actually serve under that horizon: its local
//! accuracy keeps the global-iteration bound satisfied, its per-round time
//! fits the round budget, and its availability window (clipped to the
//! horizon) still has room for all of its participation rounds.

use crate::bid::Instance;
use crate::config::QualifyMode;
use crate::types::{BidRef, Round, Window};
use crate::wdp::Wdp;
use fl_telemetry::{counter, span};

/// Numerical slack for the `θ ≤ θ_max` and `t_ij ≤ t_max` comparisons, so
/// that boundary bids generated from exact arithmetic are not rejected by
/// floating-point jitter. Shared with the incremental qualifier
/// ([`crate::preprocess::SweepPrecomp`]), which must reproduce these
/// comparisons bit-for-bit.
pub(crate) const QUALIFY_EPS: f64 = 1e-9;

/// One bid together with the per-horizon data the solvers need.
///
/// This is a passive record; fields are public on purpose.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualifiedBid {
    /// Which submitted bid this is.
    pub bid_ref: BidRef,
    /// Claimed cost `b_ij`.
    pub price: f64,
    /// Local accuracy `θ_ij`.
    pub accuracy: f64,
    /// Availability window clipped to the WDP horizon.
    pub window: Window,
    /// Participation rounds `c_ij`.
    pub rounds: u32,
    /// Per-round wall clock `t_ij` under the instance's local model.
    pub round_time: f64,
}

/// Builds the qualified bid set `J_{T̂_g}` for a fixed horizon and wraps it
/// in a [`Wdp`].
///
/// The maximum admissible local accuracy is `θ_max = 1 − 1/T̂_g` (from
/// `T_g ≥ 1/(1−θ)`), the per-round time limit is the configured `t_max`,
/// and window admission follows the instance's [`QualifyMode`].
///
/// # Example
///
/// ```
/// use fl_auction::{qualify, AuctionConfig, Bid, ClientProfile, Instance, Round, Window};
///
/// # fn main() -> Result<(), fl_auction::AuctionError> {
/// let cfg = AuctionConfig::builder().max_rounds(8).clients_per_round(1).build()?;
/// let mut inst = Instance::new(cfg);
/// let c = inst.add_client(ClientProfile::new(2.0, 5.0)?);
/// // θ = 0.75 requires T̂_g ≥ 4 to satisfy θ ≤ 1 − 1/T̂_g.
/// inst.add_bid(c, Bid::new(9.0, 0.75, Window::new(Round(1), Round(8)), 3)?)?;
/// assert_eq!(qualify(&inst, 3).bids().len(), 0);
/// assert_eq!(qualify(&inst, 4).bids().len(), 1);
/// # Ok(())
/// # }
/// ```
///
/// # Panics
///
/// Panics if `horizon` is zero (horizons are counted from 1).
pub fn qualify(instance: &Instance, horizon: u32) -> Wdp {
    assert!(horizon >= 1, "horizon must be at least 1");
    let _span = span!("qualify", tg = horizon);
    let theta_max = 1.0 - 1.0 / f64::from(horizon);
    let t_max = instance.config().round_time_limit();
    let mode = instance.config().qualify_mode();
    let last = Round(horizon);

    let (mut examined, mut by_accuracy, mut by_time, mut by_window) = (0u64, 0u64, 0u64, 0u64);
    let mut bids = Vec::new();
    for (bid_ref, bid) in instance.iter_bids() {
        examined += 1;
        if bid.accuracy() > theta_max + QUALIFY_EPS {
            by_accuracy += 1;
            continue;
        }
        let round_time = instance.round_time(bid_ref);
        if round_time > t_max + QUALIFY_EPS {
            by_time += 1;
            continue;
        }
        let Some(window) = bid.window().truncate(last) else {
            by_window += 1;
            continue;
        };
        let admissible = match mode {
            QualifyMode::Intent => window.len() >= bid.rounds(),
            // Literal Alg. 1 line 6: `a_ij + c_ij ≤ T̂_g`. Bid validation
            // already guarantees `c ≤ d − a + 1`, so the truncated window
            // can hold the schedule whenever the literal test passes.
            QualifyMode::Literal => bid.window().start().0 + bid.rounds() <= horizon,
        };
        if !admissible {
            by_window += 1;
            continue;
        }
        bids.push(QualifiedBid {
            bid_ref,
            price: bid.price(),
            accuracy: bid.accuracy(),
            window,
            rounds: bid.rounds(),
            round_time,
        });
    }
    counter!("qualify.examined", examined);
    counter!("qualify.rejected_accuracy", by_accuracy);
    counter!("qualify.rejected_time", by_time);
    counter!("qualify.rejected_window", by_window);
    counter!("qualify.accepted", bids.len());
    Wdp::new(horizon, instance.config().clients_per_round(), bids)
}

/// The smallest horizon worth trying, `T_0 = ⌈1/(1−θ_min)⌉` (Alg. 1
/// line 3), clamped to at least 1. Returns `None` when no bids exist.
pub fn min_horizon(instance: &Instance) -> Option<u32> {
    let theta_min = instance.min_accuracy()?;
    let raw = 1.0 / (1.0 - theta_min);
    // Guard against fp jitter pushing an exact integer up a notch.
    Some(((raw - 1e-9).ceil().max(1.0)) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bid::{Bid, ClientProfile};
    use crate::config::AuctionConfig;

    fn instance(mode: QualifyMode) -> Instance {
        let cfg = AuctionConfig::builder()
            .max_rounds(10)
            .clients_per_round(1)
            .round_time_limit(40.0)
            .qualify_mode(mode)
            .build()
            .unwrap();
        let mut inst = Instance::new(cfg);
        let c = inst.add_client(ClientProfile::new(5.0, 10.0).unwrap());
        // θ = 0.5 → T_l = 5 → t = 35 ≤ 40. Window [1,4], c = 3.
        inst.add_bid(
            c,
            Bid::new(10.0, 0.5, Window::new(Round(1), Round(4)), 3).unwrap(),
        )
        .unwrap();
        // θ = 0.3 → T_l = 7 → t = 45 > 40: time-disqualified everywhere.
        inst.add_bid(
            c,
            Bid::new(10.0, 0.3, Window::new(Round(1), Round(4)), 2).unwrap(),
        )
        .unwrap();
        // θ = 0.8 → T_l = 2 → t = 20; needs T̂_g ≥ 5 for θ ≤ 1 − 1/T̂_g.
        inst.add_bid(
            c,
            Bid::new(10.0, 0.8, Window::new(Round(2), Round(9)), 4).unwrap(),
        )
        .unwrap();
        inst
    }

    #[test]
    fn accuracy_gate_scales_with_horizon() {
        let inst = instance(QualifyMode::Intent);
        // T̂_g = 2 → θ_max = 0.5: only the θ = 0.5 bid qualifies... but its
        // truncated window [1,2] holds only 2 < 3 rounds → none qualify.
        assert_eq!(qualify(&inst, 2).bids().len(), 0);
        // T̂_g = 4 → θ_max = 0.75: θ = 0.5 bid qualifies with full window.
        let w4 = qualify(&inst, 4);
        assert_eq!(w4.bids().len(), 1);
        assert_eq!(w4.bids()[0].accuracy, 0.5);
        // T̂_g = 5 → θ_max = 0.8: θ = 0.8 bid joins.
        assert_eq!(qualify(&inst, 5).bids().len(), 2);
    }

    #[test]
    fn time_gate_rejects_slow_bids() {
        let inst = instance(QualifyMode::Intent);
        for t_g in 2..=10 {
            assert!(
                qualify(&inst, t_g).bids().iter().all(|b| b.accuracy != 0.3),
                "the 45-time-unit bid must never qualify"
            );
        }
    }

    #[test]
    fn windows_are_truncated_to_horizon() {
        let inst = instance(QualifyMode::Intent);
        let w5 = qualify(&inst, 5);
        let slow = w5.bids().iter().find(|b| b.accuracy == 0.8).unwrap();
        assert_eq!(slow.window, Window::new(Round(2), Round(5)));
    }

    #[test]
    fn literal_mode_is_stricter_than_intent() {
        let intent = instance(QualifyMode::Intent);
        let literal = instance(QualifyMode::Literal);
        for t_g in 2..=10 {
            let qi = qualify(&intent, t_g);
            let ql = qualify(&literal, t_g);
            let intent_refs: Vec<_> = qi.bids().iter().map(|b| b.bid_ref).collect();
            for b in ql.bids() {
                assert!(
                    intent_refs.contains(&b.bid_ref),
                    "literal ⊆ intent at T̂_g={t_g}"
                );
            }
        }
        // θ = 0.5 bid: window starts at 1, c = 3 → literal needs T̂_g ≥ 4,
        // intent needs T̂_g ≥ 3 (but accuracy forces ≥ 2; window forces ≥ 3).
        assert_eq!(qualify(&intent, 3).bids().len(), 1);
        assert_eq!(qualify(&literal, 3).bids().len(), 0);
    }

    #[test]
    fn min_horizon_rounds_up() {
        let inst = instance(QualifyMode::Intent);
        // θ_min = 0.3 → 1/0.7 ≈ 1.43 → T_0 = 2.
        assert_eq!(min_horizon(&inst), Some(2));
        let empty = Instance::new(AuctionConfig::paper_default());
        assert_eq!(min_horizon(&empty), None);
    }

    #[test]
    fn min_horizon_exact_integer_boundary() {
        let cfg = AuctionConfig::builder()
            .max_rounds(10)
            .clients_per_round(1)
            .build()
            .unwrap();
        let mut inst = Instance::new(cfg);
        let c = inst.add_client(ClientProfile::new(1.0, 1.0).unwrap());
        // θ = 0.5 → 1/(1−θ) = 2 exactly.
        inst.add_bid(
            c,
            Bid::new(1.0, 0.5, Window::new(Round(1), Round(2)), 1).unwrap(),
        )
        .unwrap();
        assert_eq!(min_horizon(&inst), Some(2));
    }

    #[test]
    fn qualified_bid_carries_round_time() {
        let inst = instance(QualifyMode::Intent);
        let w4 = qualify(&inst, 4);
        assert!((w4.bids()[0].round_time - 35.0).abs() < 1e-12);
    }
}

//! `A_winner` — the greedy winner-determination algorithm (Alg. 2).
//!
//! Starting from an empty winner set, each iteration computes every
//! unselected bid's *representative schedule* (its `c_ij` least-loaded
//! rounds), prices it by average cost `ρ / R_il(S)` — price per newly
//! covered round — and selects the cheapest. The selected client's
//! remaining bids leave the candidate set; the loop ends when every round
//! has `K` participants. Payments follow the critical-value rule, and the
//! run is replayed into the dual of the relaxed compact-exponential ILP to
//! produce an instance-specific approximation certificate (Lemma 5).
//!
//! The default execution path runs over the columnar bid store of
//! [`crate::columnar`]: a struct-of-arrays view of the qualified bids, a
//! per-thread scratch arena reused across the horizon sweep, and a
//! bucketed coverage index that keeps lazy-queue entries valid until a
//! load inside their window actually changes. The row-form full scan
//! ([`AWinner::with_full_scan`]) is retained as the equivalence oracle;
//! both paths are bit-identical (tested here, in the certifier's
//! shape-family suite, and by the parallel-sweep determinism suite).

use crate::columnar::{with_scratch, ColumnarBids, HeapSlot};
use crate::coverage::Coverage;
use crate::error::WdpError;
use crate::payment::{payment, PaymentRule};
use crate::schedule::{gain_in_window, pick_schedule, pick_schedule_into, SchedulePolicy};
use crate::types::{BidRef, Round};
use crate::wdp::{DualCertificate, Wdp, WdpSolution, WdpSolver, WinnerEntry};
use fl_telemetry::{counter, span};

/// One `A_winner` iteration as seen by the payment rule: who was selected,
/// at what marginal gain and average cost, and which runner-up average set
/// the critical value. The trace lets external checkers (the `fl-certify`
/// property engine) verify the Alg. 3 payment identity
/// `payment = gain · critical_avg` (or `price` when no runner-up existed)
/// without re-deriving the greedy run.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionStep {
    /// The bid selected in this iteration.
    pub bid_ref: BidRef,
    /// Marginal utility `R_{i*l*}(S)` at selection.
    pub gain: u32,
    /// Average cost `ρ_{i*l*} / R_{i*l*}(S)` at selection.
    pub avg: f64,
    /// The runner-up's average cost at this step (Alg. 3's critical
    /// value), `None` when the candidate set held no other bid.
    pub critical_avg: Option<f64>,
}

/// The paper's greedy WDP solver.
///
/// The default configuration is exactly Alg. 2; the policy and payment
/// knobs exist for the ablation experiments.
///
/// # Example
///
/// The worked example of Sec. V-B2 (`T̂_g = 3`, `K = 1`, three single-bid
/// clients) selects `B_1` and `B_3` for a social cost of 7:
///
/// ```
/// use fl_auction::{AWinner, QualifiedBid, Wdp, WdpSolver};
/// use fl_auction::{BidRef, ClientId, Round, Window};
///
/// # fn main() -> Result<(), fl_auction::WdpError> {
/// let bid = |client, price, a, d, c| QualifiedBid {
///     bid_ref: BidRef::new(ClientId(client), 0),
///     price,
///     accuracy: 0.5,
///     window: Window::new(Round(a), Round(d)),
///     rounds: c,
///     round_time: 1.0,
/// };
/// let wdp = Wdp::new(3, 1, vec![
///     bid(1, 2.0, 1, 2, 1),
///     bid(2, 6.0, 2, 3, 2),
///     bid(3, 5.0, 1, 3, 2),
/// ]);
/// let sol = AWinner::new().solve_wdp(&wdp)?;
/// assert_eq!(sol.cost(), 7.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct AWinner {
    policy: SchedulePolicy,
    payment_rule: PaymentRule,
    with_certificate: bool,
    full_scan: bool,
}

impl AWinner {
    /// The paper's configuration: least-loaded representative schedules,
    /// critical-value payments, certificate enabled.
    pub fn new() -> Self {
        AWinner {
            policy: SchedulePolicy::LeastLoaded,
            payment_rule: PaymentRule::CriticalValue,
            with_certificate: true,
            full_scan: false,
        }
    }

    /// Overrides the scheduling policy (ablation A1).
    pub fn with_policy(mut self, policy: SchedulePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Overrides the payment rule (ablation A4).
    pub fn with_payment_rule(mut self, rule: PaymentRule) -> Self {
        self.payment_rule = rule;
        self
    }

    /// Disables the dual certificate (skips the `O(I·J·T̂_g)` post-pass;
    /// useful in tight benchmarking loops).
    pub fn without_certificate(mut self) -> Self {
        self.with_certificate = false;
        self
    }

    /// Forces the straightforward full-scan candidate selection instead of
    /// the default lazy priority queue. Both produce bit-identical
    /// results (tested); the full scan re-evaluates every bid each
    /// iteration and exists as the equivalence oracle and for debugging.
    pub fn with_full_scan(mut self) -> Self {
        self.full_scan = true;
        self
    }

    /// Like [`WdpSolver::solve_wdp`] but also returns the per-iteration
    /// selection trace, in selection order (one [`SelectionStep`] per
    /// winner).
    ///
    /// # Errors
    ///
    /// Same contract as [`WdpSolver::solve_wdp`].
    pub fn solve_traced(&self, wdp: &Wdp) -> Result<(WdpSolution, Vec<SelectionStep>), WdpError> {
        self.solve_inner(wdp)
    }
}

/// A candidate: an unselected bid with its representative schedule under
/// the current coverage.
struct Candidate {
    bid_idx: usize,
    schedule: Vec<Round>,
    gain: u32,
    avg: f64,
}

/// Per-winner data retained for the payment pass and the dual replay.
struct RawWinner {
    bid_idx: usize,
    schedule: Vec<Round>,
    /// `F_{i*l*}`: the rounds of the schedule still available at selection.
    available: Vec<Round>,
    avg: f64,
    /// Marginal utility `R_{i*l*}(S)` at selection.
    gain: u32,
    /// The runner-up's average cost at the selection step (Alg. 3's
    /// critical value), `None` when the candidate set held no other bid.
    critical_avg: Option<f64>,
}

impl WdpSolver for AWinner {
    fn name(&self) -> &str {
        "A_winner"
    }

    fn solve_wdp(&self, wdp: &Wdp) -> Result<WdpSolution, WdpError> {
        self.solve_inner(wdp).map(|(solution, _)| solution)
    }
}

impl AWinner {
    fn solve_inner(&self, wdp: &Wdp) -> Result<(WdpSolution, Vec<SelectionStep>), WdpError> {
        let horizon = wdp.horizon();
        let bids = wdp.bids();
        let (raw, phi) = {
            let _greedy = span!("wdp_greedy", bids = bids.len() as u64);
            if self.full_scan {
                full_scan_greedy(wdp, self.policy)?
            } else {
                columnar_greedy(wdp, self.policy)?
            }
        };

        let payments: Vec<f64> = {
            let _pay = span!("payment");
            raw.iter()
                .map(|w| {
                    if w.critical_avg.is_none() {
                        counter!("payment.no_runner_up");
                    }
                    payment(
                        self.payment_rule,
                        bids[w.bid_idx].price,
                        w.gain,
                        w.critical_avg,
                    )
                })
                .collect()
        };

        let certificate = if self.with_certificate {
            let _cert = span!("dual_certificate");
            Some(build_certificate(wdp, &raw, &phi))
        } else {
            None
        };

        let trace: Vec<SelectionStep> = raw
            .iter()
            .map(|w| SelectionStep {
                bid_ref: bids[w.bid_idx].bid_ref,
                gain: w.gain,
                avg: w.avg,
                critical_avg: w.critical_avg,
            })
            .collect();

        let mut cost = 0.0;
        let winners: Vec<WinnerEntry> = raw
            .into_iter()
            .zip(payments)
            .map(|(w, pay)| {
                let qb = &bids[w.bid_idx];
                cost += qb.price;
                WinnerEntry {
                    bid_ref: qb.bid_ref,
                    price: qb.price,
                    payment: pay,
                    schedule: w.schedule,
                }
            })
            .collect();
        Ok((WdpSolution::new(horizon, winners, cost, certificate), trace))
    }
}

/// One greedy iteration's selection: the cheapest candidate of the
/// candidate set `C` and the runner-up within `C` (for the critical
/// payment).
struct IterationPick {
    best_c: Option<Candidate>,
    second_c: Option<Candidate>,
}

/// The row-form greedy loop over [`Coverage`] and [`full_scan_pick`] — the
/// equivalence oracle for the columnar path ([`columnar_greedy`]). Returns
/// the selected winners and the per-round `φ(t, l)` averages for the dual
/// replay.
fn full_scan_greedy(
    wdp: &Wdp,
    policy: SchedulePolicy,
) -> Result<(Vec<RawWinner>, Vec<Vec<f64>>), WdpError> {
    let horizon = wdp.horizon();
    let k = wdp.demand_per_round();
    let bids = wdp.bids();
    let mut cov = Coverage::new(horizon, k);
    let mut pair_selected = vec![false; bids.len()];
    let mut client_selected: std::collections::HashSet<u32> = std::collections::HashSet::new();
    let mut raw: Vec<RawWinner> = Vec::new();
    // φ(t, l) of selected schedules, per round (for η_φ).
    let mut phi: Vec<Vec<f64>> = vec![Vec::new(); horizon as usize];
    while !cov.is_complete() {
        let pick = full_scan_pick(&cov, bids, &pair_selected, &client_selected, policy);
        let Some(winner) = pick.best_c else {
            counter!("winner.greedy_iterations", raw.len());
            return Err(WdpError::Infeasible);
        };
        let qb = &bids[winner.bid_idx];
        let critical_avg = pick.second_c.as_ref().map(|c| c.avg);
        let available = cov.available_subset(&winner.schedule);
        debug_assert_eq!(available.len() as u32, winner.gain);
        for &t in &available {
            phi[t.index()].push(winner.avg);
        }
        cov.add(&winner.schedule);
        pair_selected[winner.bid_idx] = true;
        client_selected.insert(qb.bid_ref.client.0);
        raw.push(RawWinner {
            bid_idx: winner.bid_idx,
            schedule: winner.schedule,
            available,
            avg: winner.avg,
            gain: winner.gain,
            critical_avg,
        });
    }
    counter!("winner.greedy_iterations", raw.len());
    Ok((raw, phi))
}

/// The columnar greedy loop — Alg. 2 over the struct-of-arrays store of
/// [`crate::columnar`], with the lazy candidate queue validated by the
/// bucketed coverage index instead of per-iteration staleness.
///
/// # Why this is bit-identical to [`full_scan_greedy`]
///
/// A candidate's average cost `ρ / R_il(S)` can only **grow** as coverage
/// accumulates (availability shrinks monotonically), so a cached heap key
/// is a lower bound on the entry's current value. When the popped minimum
/// is *current* — no round in its window saturated since its stamp
/// ([`crate::columnar::CoverageIndex::is_current`]) — its cached `avg` and
/// `gain` are exact (gain is `min(c, m)` with `m` the window's unsaturated
/// round count; see [`gain_in_window`]), and every other entry's true
/// value is at least its own cached key ≥ the popped key, so the pop is
/// the exact minimum under the full `(avg, price, bid_ref)` order. Stale
/// pops are re-evaluated with the sort-free [`gain_in_window`]; if the
/// recomputed gain matches the cached key the bucket hit was conservative
/// and the pop is *still* the exact minimum (same lower-bound argument),
/// so it is accepted in place — only a genuinely changed key is counted
/// by `winner.lazy_refreshes` and re-inserted. Because an entry stays
/// valid until a round in its window actually saturates — at most `T̂_g`
/// saturations exist per run — valid entries survive *across* iterations,
/// which collapses the refresh count relative to the old one-iteration
/// freshness rule.
///
/// Schedules are never cached per entry: only the winner needs one, and it
/// is derived from the live loads at selection ([`pick_schedule_into`]) —
/// exactly the schedule the full scan would compute at that iteration.
/// Dropping the per-entry `Vec` keeps heap slots `Copy` and the seed pass
/// allocation-free.
fn columnar_greedy(
    wdp: &Wdp,
    policy: SchedulePolicy,
) -> Result<(Vec<RawWinner>, Vec<Vec<f64>>), WdpError> {
    let horizon = wdp.horizon();
    let k = wdp.demand_per_round();
    assert!(horizon >= 1, "horizon must be at least 1");
    assert!(k >= 1, "per-round demand must be at least 1");
    let cols = ColumnarBids::from(wdp.bids());
    let total = u64::from(k) * u64::from(horizon);
    let mut raw: Vec<RawWinner> = Vec::new();
    // φ(t, l) of selected schedules, per round (for η_φ).
    let mut phi: Vec<Vec<f64>> = vec![Vec::new(); horizon as usize];
    let mut refreshes = 0u64;
    let feasible = with_scratch(|s| {
        s.reset(horizon, cols.len(), cols.num_clients());
        // Seed: every bid evaluated under the empty coverage, stamp 0.
        for i in 0..cols.len() {
            let gain = gain_in_window(
                &s.loads,
                k,
                cols.start(i),
                cols.end(i),
                cols.rounds(i),
                policy,
            );
            if gain == 0 {
                continue; // gains never grow back
            }
            s.heap.push(HeapSlot {
                avg: cols.price(i) / f64::from(gain),
                price: cols.price(i),
                bid_ref: cols.bid_ref(i),
                idx: i as u32,
                gain,
                stamp: 0,
            });
        }
        let mut covered = 0u64;
        while covered < total {
            // Pop until we hold the exact minimum and runner-up.
            let mut best: Option<HeapSlot> = None;
            let mut second: Option<HeapSlot> = None;
            while second.is_none() {
                let Some(top) = s.heap.pop() else {
                    break;
                };
                let i = top.idx as usize;
                if s.pair_selected[i] {
                    continue; // selected pairs leave G permanently
                }
                if s.client_selected[cols.client_slot(i) as usize] {
                    continue; // the client already won another bid
                }
                if s.index.is_current(cols.start(i), cols.end(i), top.stamp) {
                    if best.is_none() {
                        best = Some(top);
                    } else {
                        second = Some(top);
                    }
                } else {
                    let gain = gain_in_window(
                        &s.loads,
                        k,
                        cols.start(i),
                        cols.end(i),
                        cols.rounds(i),
                        policy,
                    );
                    if gain == top.gain {
                        // The bucketed index was conservative: no round this
                        // bid counts on actually saturated, so the cached key
                        // is exact and this pop is still the true minimum of
                        // the candidate set (every other cached key is a
                        // lower bound that already sorts after it). Re-stamp
                        // and accept — no invalidation happened.
                        let fresh = HeapSlot {
                            stamp: s.index.clock(),
                            ..top
                        };
                        if best.is_none() {
                            best = Some(fresh);
                        } else {
                            second = Some(fresh);
                        }
                        continue;
                    }
                    refreshes += 1;
                    if gain == 0 {
                        continue; // monotone: will never help again
                    }
                    s.heap.push(HeapSlot {
                        avg: cols.price(i) / f64::from(gain),
                        stamp: s.index.clock(),
                        gain,
                        ..top
                    });
                }
            }
            let Some(win) = best else {
                return false; // candidate set exhausted: infeasible
            };
            if let Some(sec) = second {
                // Still current — back into the heap untouched.
                s.heap.push(sec);
            }
            let i = win.idx as usize;
            // A current entry re-derives to exactly its cached evaluation.
            let gain = pick_schedule_into(
                &s.loads,
                k,
                cols.start(i),
                cols.end(i),
                cols.rounds(i),
                policy,
                &mut s.order,
                &mut s.schedule,
            );
            debug_assert_eq!(
                gain, win.gain,
                "current winner entry must re-derive exactly"
            );
            let mut available = Vec::with_capacity(win.gain as usize);
            s.index.advance();
            for &t in &s.schedule {
                let load = &mut s.loads[(t - 1) as usize];
                if *load < k {
                    covered += 1;
                    available.push(Round(t));
                    phi[(t - 1) as usize].push(win.avg);
                    if *load + 1 == k {
                        // The round just saturated: cached gains whose
                        // windows contain it are stale from here on.
                        s.index.touch(t);
                    }
                }
                *load += 1;
            }
            s.pair_selected[i] = true;
            s.client_selected[cols.client_slot(i) as usize] = true;
            raw.push(RawWinner {
                bid_idx: i,
                schedule: s.schedule.iter().map(|&t| Round(t)).collect(),
                available,
                avg: win.avg,
                gain: win.gain,
                critical_avg: second.map(|c| c.avg),
            });
        }
        true
    });
    counter!("winner.greedy_iterations", raw.len());
    if !feasible {
        return Err(WdpError::Infeasible);
    }
    counter!("winner.lazy_refreshes", refreshes);
    Ok((raw, phi))
}

/// The straightforward O(bids) per-iteration scan (the equivalence oracle).
fn full_scan_pick(
    cov: &Coverage,
    bids: &[crate::QualifiedBid],
    pair_selected: &[bool],
    client_selected: &std::collections::HashSet<u32>,
    policy: SchedulePolicy,
) -> IterationPick {
    let mut best_c: Option<Candidate> = None;
    let mut second_c: Option<Candidate> = None;
    for (idx, qb) in bids.iter().enumerate() {
        if pair_selected[idx] {
            continue;
        }
        if client_selected.contains(&qb.bid_ref.client.0) {
            continue;
        }
        let schedule = pick_schedule(cov, qb.window, qb.rounds, policy);
        let gain = cov.gain(&schedule);
        if gain == 0 {
            continue;
        }
        let cand = Candidate {
            bid_idx: idx,
            schedule,
            gain,
            avg: qb.price / f64::from(gain),
        };
        if better(&cand, &best_c, bids) {
            second_c = best_c.take();
            best_c = Some(cand);
        } else if better(&cand, &second_c, bids) {
            second_c = Some(cand);
        }
    }
    IterationPick { best_c, second_c }
}

/// Deterministic "strictly better" comparison for candidates: smaller
/// average cost, then smaller price, then smaller bid reference.
fn better(cand: &Candidate, incumbent: &Option<Candidate>, bids: &[crate::QualifiedBid]) -> bool {
    let Some(inc) = incumbent else {
        return true;
    };
    let key = |c: &Candidate| {
        let qb = &bids[c.bid_idx];
        (c.avg, qb.price, qb.bid_ref)
    };
    let (a1, p1, r1) = key(cand);
    let (a2, p2, r2) = key(inc);
    a1.total_cmp(&a2)
        .then(p1.total_cmp(&p2))
        .then(r1.cmp(&r2))
        .is_lt()
}

/// Replays the run into the dual program (Alg. 2 lines 16–23).
fn build_certificate(wdp: &Wdp, raw: &[RawWinner], phi: &[Vec<f64>]) -> DualCertificate {
    let horizon = wdp.horizon();
    let harmonic: f64 = (1..=horizon).map(|t| 1.0 / f64::from(t)).sum();

    // ψ_max^t: the largest qualified bid price whose window covers t.
    // ψ_min^t: the smallest *possible* average cost at t — `ρ/c` over every
    // qualified bid whose window covers t. The domain must be all qualified
    // bids, not just the averages recorded during the run: a cheap bid
    // selected elsewhere (or never evaluated at t) still owns a dual
    // constraint `Σ_{t∈l} g(t) − λ ≤ ρ_il` for its schedules through t, and
    // `ρ/c` lower-bounds every realised average `ρ/R_il(S)` (R ≤ c), so
    // dividing η_φ by `H·ω` with this ω keeps constraint (8a) feasible for
    // every bid and schedule. (Differential fuzzing caught the narrower
    // recorded-averages domain producing infeasible duals with D > OPT;
    // see crates/certify/corpus/.)
    let mut omega: f64 = 0.0;
    for t in (1..=horizon).map(Round) {
        let mut psi_max: f64 = 0.0;
        let mut psi_min = f64::INFINITY;
        for b in wdp.bids().iter().filter(|b| b.window.contains(t)) {
            psi_max = psi_max.max(b.price);
            psi_min = psi_min.min(b.price / f64::from(b.rounds.max(1)));
        }
        let w_t = if psi_min > 0.0 && psi_min.is_finite() {
            psi_max / psi_min
        } else if psi_max == 0.0 {
            1.0
        } else {
            f64::INFINITY
        };
        omega = omega.max(w_t);
    }

    // η_φ(t) = max_l φ(t, l) over selected schedules; g(t) = η_φ/(H·ω).
    let scale = harmonic * omega;
    let eta: Vec<f64> = phi
        .iter()
        .map(|v| v.iter().copied().max_by(f64::total_cmp).unwrap_or(0.0))
        .collect();
    let g: Vec<f64> = eta.iter().map(|&e| e / scale).collect();

    // λ_il = Σ_{t∈F_il} (η_φ(t) − φ(t,l)) / (H·ω) per winner.
    let lambda: Vec<f64> = raw
        .iter()
        .map(|w| {
            w.available
                .iter()
                .map(|t| (eta[t.index()] - w.avg) / scale)
                .sum()
        })
        .collect();

    let k = f64::from(wdp.demand_per_round());
    let dual_objective = k * g.iter().sum::<f64>() - lambda.iter().sum::<f64>();
    DualCertificate {
        harmonic,
        omega,
        g,
        lambda,
        dual_objective,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qualify::QualifiedBid;
    use crate::types::{BidRef, ClientId, Window};

    fn qb(client: u32, bid: u32, price: f64, a: u32, d: u32, c: u32) -> QualifiedBid {
        QualifiedBid {
            bid_ref: BidRef::new(ClientId(client), bid),
            price,
            accuracy: 0.5,
            window: Window::new(Round(a), Round(d)),
            rounds: c,
            round_time: 1.0,
        }
    }

    /// The worked example of Sec. V-B2.
    fn paper_example() -> Wdp {
        Wdp::new(
            3,
            1,
            vec![
                qb(1, 0, 2.0, 1, 2, 1), // B_1($2, [1,2], 1)
                qb(2, 0, 6.0, 2, 3, 2), // B_2($6, [2,3], 2)
                qb(3, 0, 5.0, 1, 3, 2), // B_3($5, [1,3], 2)
            ],
        )
    }

    #[test]
    fn reproduces_the_papers_worked_example() {
        let sol = AWinner::new().solve_wdp(&paper_example()).unwrap();
        assert_eq!(sol.winners().len(), 2);
        let w1 = &sol.winners()[0];
        let w3 = &sol.winners()[1];
        assert_eq!(w1.bid_ref, BidRef::new(ClientId(1), 0));
        assert_eq!(w1.schedule, vec![Round(1)]);
        assert!((w1.payment - 2.5).abs() < 1e-12, "p_1 = 2.5 in the paper");
        assert_eq!(w3.bid_ref, BidRef::new(ClientId(3), 0));
        assert_eq!(w3.schedule, vec![Round(2), Round(3)]);
        assert!((w3.payment - 6.0).abs() < 1e-12, "p_3 = 6 in the paper");
        assert_eq!(sol.cost(), 7.0);
    }

    #[test]
    fn coverage_is_complete_in_every_round() {
        let sol = AWinner::new().solve_wdp(&paper_example()).unwrap();
        let mut cov = Coverage::new(3, 1);
        for w in sol.winners() {
            cov.add(&w.schedule);
        }
        assert!(cov.is_complete());
    }

    #[test]
    fn infeasible_wdp_is_reported() {
        // Only one client but K = 2.
        let wdp = Wdp::new(2, 2, vec![qb(0, 0, 1.0, 1, 2, 2)]);
        assert_eq!(
            AWinner::new().solve_wdp(&wdp).unwrap_err(),
            WdpError::Infeasible
        );
    }

    #[test]
    fn round_not_covered_by_any_window_is_infeasible() {
        let wdp = Wdp::new(3, 1, vec![qb(0, 0, 1.0, 1, 2, 2), qb(1, 0, 1.0, 1, 2, 2)]);
        assert_eq!(
            AWinner::new().solve_wdp(&wdp).unwrap_err(),
            WdpError::Infeasible
        );
    }

    #[test]
    fn at_most_one_bid_per_client_is_selected() {
        let wdp = Wdp::new(
            2,
            1,
            vec![
                qb(0, 0, 1.0, 1, 1, 1),
                qb(0, 1, 1.0, 2, 2, 1), // same client, cheap second bid
                qb(1, 0, 50.0, 2, 2, 1),
            ],
        );
        let sol = AWinner::new().solve_wdp(&wdp).unwrap();
        let clients: Vec<u32> = sol.winners().iter().map(|w| w.bid_ref.client.0).collect();
        let mut dedup = clients.clone();
        dedup.dedup();
        assert_eq!(clients.len(), dedup.len());
        // Client 0 wins one bid, client 1 must staff the other round.
        assert_eq!(sol.winners().len(), 2);
        assert!((sol.cost() - 51.0).abs() < 1e-12);
    }

    #[test]
    fn payments_are_individually_rational() {
        let sol = AWinner::new().solve_wdp(&paper_example()).unwrap();
        for w in sol.winners() {
            assert!(
                w.payment >= w.price - 1e-12,
                "winner {} paid {} below price {}",
                w.bid_ref,
                w.payment,
                w.price
            );
        }
    }

    #[test]
    fn schedules_stay_inside_windows() {
        let wdp = Wdp::new(
            4,
            2,
            vec![
                qb(0, 0, 3.0, 1, 4, 3),
                qb(1, 0, 4.0, 1, 2, 2),
                qb(2, 0, 5.0, 2, 4, 3),
                qb(3, 0, 2.0, 3, 4, 1),
                qb(4, 0, 6.0, 1, 4, 4),
                qb(5, 0, 3.5, 1, 3, 2),
            ],
        );
        let sol = AWinner::new().solve_wdp(&wdp).unwrap();
        for w in sol.winners() {
            let qb = wdp.bids().iter().find(|b| b.bid_ref == w.bid_ref).unwrap();
            assert_eq!(w.schedule.len() as u32, qb.rounds, "exactly c_ij rounds");
            assert!(
                w.schedule.windows(2).all(|p| p[0] < p[1]),
                "strictly increasing"
            );
            assert!(w.schedule.iter().all(|&t| qb.window.contains(t)));
        }
    }

    #[test]
    fn certificate_satisfies_weak_duality_bound() {
        let sol = AWinner::new().solve_wdp(&paper_example()).unwrap();
        let cert = sol.certificate().expect("certificate enabled by default");
        assert!(cert.dual_objective > 0.0);
        // Lemma 5: P ≤ H·ω·D.
        assert!(
            sol.cost() <= cert.ratio_bound() * cert.dual_objective + 1e-9,
            "P = {}, bound = {}",
            sol.cost(),
            cert.ratio_bound() * cert.dual_objective
        );
        assert_eq!(cert.lambda.len(), sol.winners().len());
        assert_eq!(cert.g.len(), 3);
        assert!(
            cert.lambda.iter().all(|&l| l >= -1e-12),
            "λ must be non-negative"
        );
        assert!(cert.g.iter().all(|&g| g >= 0.0));
    }

    #[test]
    fn certificate_stays_dual_feasible_with_unrecorded_cheap_bids() {
        // Fuzzer counterexample (crates/certify/corpus/, seed 870): the $1
        // bid covers both rounds but is selected for round 1 only, so its
        // average was never recorded at round 2. With ψ_min taken over
        // recorded averages, g(2) = 12/H exceeded the $1 bid's dual
        // constraint for schedule [2] and the dual objective exceeded the
        // optimum. ψ_min over every covering bid's ρ/c keeps the point
        // feasible.
        let wdp = Wdp::new(2, 1, vec![qb(0, 0, 12.0, 2, 2, 1), qb(1, 0, 1.0, 1, 2, 1)]);
        let sol = AWinner::new().solve_wdp(&wdp).unwrap();
        assert!(crate::verify::dual_feasibility_violations(&wdp, &sol).is_empty());
        let cert = sol.certificate().unwrap();
        // Both bids must win, so OPT = 13; weak duality: D ≤ OPT.
        assert_eq!(sol.cost(), 13.0);
        assert!(
            cert.dual_objective <= 13.0 + 1e-9,
            "D = {} exceeds OPT = 13",
            cert.dual_objective
        );
        assert!(sol.cost() <= cert.ratio_bound() * cert.dual_objective + 1e-9);
    }

    #[test]
    fn without_certificate_skips_the_dual_pass() {
        let sol = AWinner::new()
            .without_certificate()
            .solve_wdp(&paper_example())
            .unwrap();
        assert!(sol.certificate().is_none());
    }

    #[test]
    fn earliest_policy_changes_schedules_not_feasibility() {
        let wdp = Wdp::new(
            3,
            1,
            vec![
                qb(0, 0, 1.0, 1, 3, 1),
                qb(1, 0, 1.0, 1, 3, 1),
                qb(2, 0, 1.0, 1, 3, 1),
            ],
        );
        let sol = AWinner::new()
            .with_policy(SchedulePolicy::Earliest)
            .solve_wdp(&wdp);
        // Earliest policy keeps piling clients on round 1; gains drop to
        // zero for later bids only if rounds 2, 3 become uncoverable —
        // they do not here because each bid has the whole window... but the
        // earliest pick is always round 1, so after round 1 is full the
        // gain of the representative becomes 0 and the WDP stalls.
        // This documents why the paper's least-loaded choice matters.
        assert!(sol.is_err());
        let sol_ll = AWinner::new().solve_wdp(&wdp);
        assert!(sol_ll.is_ok());
    }

    #[test]
    fn pay_as_bid_rule_pays_exactly_the_price() {
        let sol = AWinner::new()
            .with_payment_rule(PaymentRule::PayAsBid)
            .solve_wdp(&paper_example())
            .unwrap();
        for w in sol.winners() {
            assert_eq!(w.payment, w.price);
        }
    }

    #[test]
    fn zero_price_bids_do_not_break_the_certificate() {
        let wdp = Wdp::new(2, 1, vec![qb(0, 0, 0.0, 1, 2, 2), qb(1, 0, 3.0, 1, 2, 2)]);
        let sol = AWinner::new().solve_wdp(&wdp).unwrap();
        assert_eq!(sol.cost(), 0.0);
        let cert = sol.certificate().unwrap();
        // ψ_min = 0 ⇒ ω = ∞; the bound degrades gracefully instead of
        // producing NaN.
        assert!(cert.omega.is_infinite() || cert.omega >= 1.0);
        assert!(!cert.dual_objective.is_nan());
    }

    #[test]
    fn lazy_and_full_scan_are_bit_identical() {
        let mut state = 0x1357_9bdfu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..60 {
            let h = 3 + (next() % 8) as u32;
            let k = 1 + (next() % 3) as u32;
            let n = 6 + (next() % 20) as usize;
            let bids: Vec<QualifiedBid> = (0..n)
                .map(|i| {
                    let a = 1 + (next() % u64::from(h)) as u32;
                    let d = a + (next() % u64::from(h - a + 1)) as u32;
                    let c = 1 + (next() % u64::from(d - a + 1)) as u32;
                    // Deliberately generate duplicate prices to stress
                    // tie-breaking.
                    qb(
                        (i / 2) as u32,
                        (i % 2) as u32,
                        (1 + next() % 12) as f64,
                        a,
                        d,
                        c,
                    )
                })
                .collect();
            let wdp = Wdp::new(h, k, bids);
            let lazy = AWinner::new().solve_wdp(&wdp);
            let full = AWinner::new().with_full_scan().solve_wdp(&wdp);
            match (lazy, full) {
                (Ok(a), Ok(b)) => assert_eq!(a, b, "trial {trial}: strategies diverged"),
                (Err(a), Err(b)) => assert_eq!(a, b),
                (a, b) => panic!("trial {trial}: feasibility diverged: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(AWinner::new().name(), "A_winner");
    }

    #[test]
    fn selection_trace_matches_winners_and_payment_identity() {
        let wdp = paper_example();
        let (sol, trace) = AWinner::new().solve_traced(&wdp).unwrap();
        assert_eq!(sol, AWinner::new().solve_wdp(&wdp).unwrap());
        assert_eq!(trace.len(), sol.winners().len());
        for (step, w) in trace.iter().zip(sol.winners()) {
            assert_eq!(step.bid_ref, w.bid_ref);
            let expected = match step.critical_avg {
                Some(avg) => f64::from(step.gain) * avg,
                None => w.price,
            };
            assert_eq!(
                w.payment, expected,
                "{}: payment must equal gain × critical_avg exactly",
                w.bid_ref
            );
            assert_eq!(step.avg, w.price / f64::from(step.gain));
        }
        // The worked example's first step has runner-up average 2.5.
        assert_eq!(trace[0].critical_avg, Some(2.5));
    }
}

//! Representative-schedule selection (Sec. V-B2).
//!
//! A bid `(i, j)` has up to `C(d−a, c)` feasible schedules, but the greedy
//! only ever needs the *representative* one: the `c_ij` rounds inside the
//! availability window with the smallest current load `γ_t` (ties broken by
//! the earlier round for determinism). That schedule maximises the marginal
//! utility `R_il(S)` among all feasible schedules of the bid.

use crate::coverage::Coverage;
use crate::types::{Round, Window};

/// Strategy for picking a bid's concrete schedule inside its window; the
/// paper's choice is [`SchedulePolicy::LeastLoaded`]. The alternative is
/// used by the scheduling ablation and by the FCFS baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulePolicy {
    /// Pick the `c` least-loaded rounds (the representative schedule).
    #[default]
    LeastLoaded,
    /// Pick the `c` earliest rounds of the window regardless of load.
    Earliest,
}

/// Computes a bid's schedule under `policy`: `c` distinct rounds of
/// `window`, sorted increasingly.
///
/// # Panics
///
/// Panics if the window holds fewer than `c` rounds or extends past the
/// coverage horizon (qualification is supposed to rule both out).
pub fn pick_schedule(cov: &Coverage, window: Window, c: u32, policy: SchedulePolicy) -> Vec<Round> {
    assert!(
        window.len() >= c,
        "window {window} cannot hold {c} rounds; qualification should have rejected this bid"
    );
    assert!(
        window.end().0 <= cov.horizon(),
        "window {window} extends past horizon {}",
        cov.horizon()
    );
    let mut rounds: Vec<Round> = window.rounds().collect();
    match policy {
        SchedulePolicy::LeastLoaded => {
            rounds.sort_by_key(|&t| (cov.load(t), t.0));
            rounds.truncate(c as usize);
            rounds.sort_by_key(|t| t.0);
        }
        SchedulePolicy::Earliest => rounds.truncate(c as usize),
    }
    rounds
}

/// The representative schedule (least-loaded policy), as used by `A_winner`.
pub fn representative_schedule(cov: &Coverage, window: Window, c: u32) -> Vec<Round> {
    pick_schedule(cov, window, c, SchedulePolicy::LeastLoaded)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(a: u32, d: u32) -> Window {
        Window::new(Round(a), Round(d))
    }

    #[test]
    fn picks_least_loaded_rounds() {
        let mut cov = Coverage::new(5, 2);
        cov.add(&[Round(1), Round(2)]);
        cov.add(&[Round(2)]);
        // Loads: [1, 2, 0, 0, 0]. Representative of window [1,5], c = 3:
        // rounds 3, 4, 5 (load 0) — sorted ascending.
        let s = representative_schedule(&cov, w(1, 5), 3);
        assert_eq!(s, vec![Round(3), Round(4), Round(5)]);
    }

    #[test]
    fn ties_break_toward_earlier_rounds() {
        let cov = Coverage::new(4, 1);
        let s = representative_schedule(&cov, w(1, 4), 2);
        assert_eq!(s, vec![Round(1), Round(2)]);
    }

    #[test]
    fn window_bounds_are_respected() {
        let mut cov = Coverage::new(6, 1);
        cov.add(&[Round(3)]);
        let s = representative_schedule(&cov, w(3, 5), 2);
        assert_eq!(
            s,
            vec![Round(4), Round(5)],
            "round 3 is loaded, 4 and 5 are not"
        );
        assert!(s.iter().all(|&t| w(3, 5).contains(t)));
    }

    #[test]
    fn representative_maximises_gain() {
        // Exhaustively compare against all C(window, c) schedules.
        let mut cov = Coverage::new(5, 2);
        cov.add(&[Round(1), Round(2), Round(3)]);
        cov.add(&[Round(2)]);
        let window = w(1, 5);
        let c = 2;
        let rep = representative_schedule(&cov, window, c);
        let rep_gain = cov.gain(&rep);
        let rounds: Vec<Round> = window.rounds().collect();
        for i in 0..rounds.len() {
            for j in (i + 1)..rounds.len() {
                let alt = [rounds[i], rounds[j]];
                assert!(
                    cov.gain(&alt) <= rep_gain,
                    "{alt:?} beats representative {rep:?}"
                );
            }
        }
    }

    #[test]
    fn earliest_policy_ignores_load() {
        let mut cov = Coverage::new(4, 1);
        cov.add(&[Round(1), Round(2)]);
        let s = pick_schedule(&cov, w(1, 4), 2, SchedulePolicy::Earliest);
        assert_eq!(s, vec![Round(1), Round(2)]);
    }

    #[test]
    fn full_window_schedule_is_identity() {
        let cov = Coverage::new(3, 1);
        let s = representative_schedule(&cov, w(1, 3), 3);
        assert_eq!(s, vec![Round(1), Round(2), Round(3)]);
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn oversized_demand_panics() {
        let cov = Coverage::new(3, 1);
        let _ = representative_schedule(&cov, w(1, 2), 3);
    }
}

//! Representative-schedule selection (Sec. V-B2).
//!
//! A bid `(i, j)` has up to `C(d−a, c)` feasible schedules, but the greedy
//! only ever needs the *representative* one: the `c_ij` rounds inside the
//! availability window with the smallest current load `γ_t` (ties broken by
//! the earlier round for determinism). That schedule maximises the marginal
//! utility `R_il(S)` among all feasible schedules of the bid.

use crate::coverage::Coverage;
use crate::types::{Round, Window};

/// Strategy for picking a bid's concrete schedule inside its window; the
/// paper's choice is [`SchedulePolicy::LeastLoaded`]. The alternative is
/// used by the scheduling ablation and by the FCFS baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulePolicy {
    /// Pick the `c` least-loaded rounds (the representative schedule).
    #[default]
    LeastLoaded,
    /// Pick the `c` earliest rounds of the window regardless of load.
    Earliest,
}

/// Computes a bid's schedule under `policy`: `c` distinct rounds of
/// `window`, sorted increasingly.
///
/// # Panics
///
/// Panics if the window holds fewer than `c` rounds or extends past the
/// coverage horizon (qualification is supposed to rule both out).
pub fn pick_schedule(cov: &Coverage, window: Window, c: u32, policy: SchedulePolicy) -> Vec<Round> {
    assert!(
        window.len() >= c,
        "window {window} cannot hold {c} rounds; qualification should have rejected this bid"
    );
    assert!(
        window.end().0 <= cov.horizon(),
        "window {window} extends past horizon {}",
        cov.horizon()
    );
    let mut rounds: Vec<Round> = window.rounds().collect();
    match policy {
        SchedulePolicy::LeastLoaded => {
            rounds.sort_by_key(|&t| (cov.load(t), t.0));
            rounds.truncate(c as usize);
            rounds.sort_by_key(|t| t.0);
        }
        SchedulePolicy::Earliest => rounds.truncate(c as usize),
    }
    rounds
}

/// The representative schedule (least-loaded policy), as used by `A_winner`.
pub fn representative_schedule(cov: &Coverage, window: Window, c: u32) -> Vec<Round> {
    pick_schedule(cov, window, c, SchedulePolicy::LeastLoaded)
}

/// The marginal utility `R_il(S)` of a bid's representative schedule,
/// computed **without deriving the schedule**: under
/// [`SchedulePolicy::LeastLoaded`] the `c` least-loaded rounds contain
/// every unsaturated round of the window up to `c` (an unsaturated round's
/// load `< k` is strictly below any saturated round's `≥ k`, so
/// unsaturated rounds always sort first), hence the gain is exactly
/// `min(c, m)` where `m` counts the window's rounds with `γ_t < k`. Under
/// [`SchedulePolicy::Earliest`] the schedule is the fixed first `c` rounds
/// of the window, so the gain counts the unsaturated ones among those.
///
/// Either way the result is bit-identical to
/// [`pick_schedule`] + [`Coverage::gain`] (asserted by tests), at the cost
/// of one branch-free pass over the window instead of a sort — this is
/// what the columnar lazy queue uses to refresh entries, reserving the
/// full schedule derivation for the one winner per iteration.
pub fn gain_in_window(
    loads: &[u32],
    k: u32,
    start: u32,
    end: u32,
    c: u32,
    policy: SchedulePolicy,
) -> u32 {
    debug_assert!(end as usize <= loads.len(), "window escapes the horizon");
    debug_assert!(end - start + 1 >= c, "window cannot hold c rounds");
    let window = &loads[(start - 1) as usize..end as usize];
    match policy {
        SchedulePolicy::LeastLoaded => {
            let m = window.iter().filter(|&&g| g < k).count() as u32;
            m.min(c)
        }
        SchedulePolicy::Earliest => window[..c as usize].iter().filter(|&&g| g < k).count() as u32,
    }
}

/// Allocation-free twin of [`pick_schedule`] for the columnar hot path
/// (see [`crate::columnar`]): computes the schedule of a bid with window
/// `[start, end]` (1-based, inclusive) and `c` participation rounds
/// straight from the raw per-round load array, writing the chosen rounds
/// (ascending) into `out` and returning the marginal utility `R_il(S)` —
/// the number of chosen rounds with `γ_t < k`. `order` is a caller-owned
/// scratch buffer reused across calls.
///
/// Bit-identical to [`pick_schedule`] + [`Coverage::gain`] by
/// construction: the sort key `(γ_t, t)` is unique per round, so even the
/// unstable sort is fully deterministic and selects the same
/// representative schedule (asserted by tests against the row-form path).
///
/// # Panics
///
/// Panics if the window holds fewer than `c` rounds or extends past
/// `loads.len()` rounds, mirroring [`pick_schedule`].
#[allow(clippy::too_many_arguments)]
pub fn pick_schedule_into(
    loads: &[u32],
    k: u32,
    start: u32,
    end: u32,
    c: u32,
    policy: SchedulePolicy,
    order: &mut Vec<u32>,
    out: &mut Vec<u32>,
) -> u32 {
    assert!(
        end - start + 1 >= c,
        "window [{start},{end}] cannot hold {c} rounds; qualification should have rejected this bid"
    );
    assert!(
        end as usize <= loads.len(),
        "window [{start},{end}] extends past horizon {}",
        loads.len()
    );
    order.clear();
    order.extend(start..=end);
    match policy {
        SchedulePolicy::LeastLoaded => {
            order.sort_unstable_by_key(|&t| (loads[(t - 1) as usize], t));
            order.truncate(c as usize);
            order.sort_unstable();
        }
        SchedulePolicy::Earliest => order.truncate(c as usize),
    }
    out.clear();
    out.extend_from_slice(order);
    out.iter().filter(|&&t| loads[(t - 1) as usize] < k).count() as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(a: u32, d: u32) -> Window {
        Window::new(Round(a), Round(d))
    }

    #[test]
    fn picks_least_loaded_rounds() {
        let mut cov = Coverage::new(5, 2);
        cov.add(&[Round(1), Round(2)]);
        cov.add(&[Round(2)]);
        // Loads: [1, 2, 0, 0, 0]. Representative of window [1,5], c = 3:
        // rounds 3, 4, 5 (load 0) — sorted ascending.
        let s = representative_schedule(&cov, w(1, 5), 3);
        assert_eq!(s, vec![Round(3), Round(4), Round(5)]);
    }

    #[test]
    fn ties_break_toward_earlier_rounds() {
        let cov = Coverage::new(4, 1);
        let s = representative_schedule(&cov, w(1, 4), 2);
        assert_eq!(s, vec![Round(1), Round(2)]);
    }

    #[test]
    fn window_bounds_are_respected() {
        let mut cov = Coverage::new(6, 1);
        cov.add(&[Round(3)]);
        let s = representative_schedule(&cov, w(3, 5), 2);
        assert_eq!(
            s,
            vec![Round(4), Round(5)],
            "round 3 is loaded, 4 and 5 are not"
        );
        assert!(s.iter().all(|&t| w(3, 5).contains(t)));
    }

    #[test]
    fn representative_maximises_gain() {
        // Exhaustively compare against all C(window, c) schedules.
        let mut cov = Coverage::new(5, 2);
        cov.add(&[Round(1), Round(2), Round(3)]);
        cov.add(&[Round(2)]);
        let window = w(1, 5);
        let c = 2;
        let rep = representative_schedule(&cov, window, c);
        let rep_gain = cov.gain(&rep);
        let rounds: Vec<Round> = window.rounds().collect();
        for i in 0..rounds.len() {
            for j in (i + 1)..rounds.len() {
                let alt = [rounds[i], rounds[j]];
                assert!(
                    cov.gain(&alt) <= rep_gain,
                    "{alt:?} beats representative {rep:?}"
                );
            }
        }
    }

    #[test]
    fn earliest_policy_ignores_load() {
        let mut cov = Coverage::new(4, 1);
        cov.add(&[Round(1), Round(2)]);
        let s = pick_schedule(&cov, w(1, 4), 2, SchedulePolicy::Earliest);
        assert_eq!(s, vec![Round(1), Round(2)]);
    }

    #[test]
    fn full_window_schedule_is_identity() {
        let cov = Coverage::new(3, 1);
        let s = representative_schedule(&cov, w(1, 3), 3);
        assert_eq!(s, vec![Round(1), Round(2), Round(3)]);
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn oversized_demand_panics() {
        let cov = Coverage::new(3, 1);
        let _ = representative_schedule(&cov, w(1, 2), 3);
    }

    #[test]
    fn pick_schedule_into_matches_pick_schedule_under_both_policies() {
        let mut cov = Coverage::new(9, 2);
        cov.add(&[Round(2), Round(3), Round(7)]);
        cov.add(&[Round(3)]);
        let loads: Vec<u32> = (1..=9).map(|t| cov.load(Round(t))).collect();
        let (mut order, mut out) = (Vec::new(), Vec::new());
        for policy in [SchedulePolicy::LeastLoaded, SchedulePolicy::Earliest] {
            for (a, d) in [(1u32, 9u32), (2, 5), (3, 3), (6, 9)] {
                for c in 1..=(d - a + 1) {
                    let reference = pick_schedule(&cov, w(a, d), c, policy);
                    let gain = pick_schedule_into(&loads, 2, a, d, c, policy, &mut order, &mut out);
                    let got: Vec<Round> = out.iter().map(|&t| Round(t)).collect();
                    assert_eq!(got, reference, "[{a},{d}] c={c} {policy:?}");
                    assert_eq!(gain, cov.gain(&reference), "[{a},{d}] c={c} {policy:?}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn pick_schedule_into_oversized_demand_panics() {
        let loads = [0u32; 3];
        let _ = pick_schedule_into(
            &loads,
            1,
            1,
            2,
            3,
            SchedulePolicy::LeastLoaded,
            &mut Vec::new(),
            &mut Vec::new(),
        );
    }
}

use std::error::Error;
use std::fmt;

/// Errors produced while building instances or running the auction.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AuctionError {
    /// The instance or configuration is malformed; the payload explains why.
    InvalidInstance(String),
    /// No value of `T̂_g ∈ [T_0, T]` admits a feasible winner set: the
    /// submitted bids cannot staff `K` clients in every round. ILP (6) is
    /// infeasible for this instance.
    Infeasible,
}

impl AuctionError {
    pub(crate) fn invalid(msg: impl Into<String>) -> Self {
        AuctionError::InvalidInstance(msg.into())
    }
}

impl fmt::Display for AuctionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuctionError::InvalidInstance(why) => write!(f, "invalid auction instance: {why}"),
            AuctionError::Infeasible => {
                write!(
                    f,
                    "no number of global iterations admits a feasible winner set"
                )
            }
        }
    }
}

impl Error for AuctionError {}

/// Errors from solving a single winner-determination problem (one fixed
/// `T̂_g`).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WdpError {
    /// The qualified bids cannot provide `K` clients in every round of this
    /// WDP's horizon.
    Infeasible,
    /// The solver hit an internal resource limit (only the exact solver's
    /// node budget triggers this in practice).
    ResourceLimit(String),
}

impl fmt::Display for WdpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WdpError::Infeasible => {
                write!(f, "qualified bids cannot staff every round of this horizon")
            }
            WdpError::ResourceLimit(what) => write!(f, "solver resource limit reached: {what}"),
        }
    }
}

impl Error for WdpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_meaningful() {
        assert!(AuctionError::invalid("k is zero")
            .to_string()
            .contains("k is zero"));
        assert!(AuctionError::Infeasible.to_string().contains("feasible"));
        assert!(WdpError::Infeasible.to_string().contains("staff"));
        assert!(WdpError::ResourceLimit("nodes".into())
            .to_string()
            .contains("nodes"));
    }

    #[test]
    fn errors_are_send_sync_static() {
        fn ok<T: Send + Sync + 'static>() {}
        ok::<AuctionError>();
        ok::<WdpError>();
    }
}

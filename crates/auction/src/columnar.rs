//! Columnar (struct-of-arrays) bid store, bucketed coverage index, and the
//! per-sweep scratch arena behind the `A_winner` hot path.
//!
//! # Why a columnar core
//!
//! The greedy winner determination (Alg. 2) is the dominant phase of every
//! profile in `BENCH_main.json`, and at the scale frontier the paper's
//! few-hundred-client setting grows to 10⁵–10⁶ bids per auction. At that
//! size the array-of-structs layout ([`QualifiedBid`] records scattered
//! through a `Vec`) wastes the memory bus: one candidate evaluation reads a
//! price, a window and a round count — 20 bytes — but drags a whole record
//! (plus padding) through the cache, and every evaluation allocates a fresh
//! schedule `Vec`. This module stores the same bids as parallel arrays and
//! gives the sweep a reusable scratch arena, so the hot loop touches only
//! the columns it needs and allocates nothing per horizon.
//!
//! # Field-by-field layout
//!
//! [`ColumnarBids`] holds one parallel array per bid attribute, all exactly
//! `len()` long, index `i` everywhere meaning "the `i`-th qualified bid in
//! instance order" (the same order as the source `&[QualifiedBid]` slice):
//!
//! ```text
//! index type  column          contents
//! ----------  --------------  ------------------------------------------
//! BidRef      refs[i]         the paper's pair (i, j) — the API identity
//! u32         client_slots[i] dense per-WDP client index (see below)
//! f64         prices[i]       claimed cost b_ij
//! f64         accuracies[i]   local accuracy θ_ij
//! u32         starts[i]       window start a_ij, 1-based round number
//! u32         ends[i]         window end d_ij, inclusive, 1-based
//! u32         rounds[i]       participation rounds c_ij
//! f64         round_times[i]  per-round wall clock t_ij
//! ```
//!
//! # Index types
//!
//! Three integer domains coexist and must never be mixed:
//!
//! * **bid index** `usize`/`u32` — position in the columns. Dense,
//!   `0..len()`.
//! * **round number** `u32` — 1-based global iteration, `1..=T̂_g`, the
//!   same numbering as [`Round`]. Array storage subtracts one
//!   (`loads[(t − 1) as usize]`), exactly like [`Round::index`].
//! * **client slot** `u32` — a dense renumbering of the (possibly sparse)
//!   [`ClientId`](crate::ClientId) space, assigned in first-appearance
//!   order during construction. `client_slots` lets the greedy keep its
//!   "at most one bid per client" bitmap in a flat `Vec<bool>` instead of
//!   a hash set, without assuming anything about raw client ids.
//!
//! # Safety and aliasing rules
//!
//! Everything here is safe Rust (`fl-auction` is `#![forbid(unsafe_code)]`);
//! the rules below are *borrow discipline*, enforced by the compiler:
//!
//! * [`ColumnarBids`] is immutable after construction — the greedy only
//!   ever reads it, so shared references may be held across the whole
//!   sweep.
//! * All mutable state of one greedy run lives in [`SweepScratch`], whose
//!   fields are disjoint buffers borrowed field-by-field (loads while
//!   sorting the order buffer, the heap while reading the selection
//!   bitmaps). No scratch buffer ever aliases a column.
//! * The arena is handed out per **thread** ([`with_scratch`] — a
//!   thread-local), matching the parallel sweep's execution model: each
//!   worker reuses its own arena across the horizons it steals, and two
//!   workers never share one. A re-entrant call (only possible if a solver
//!   recursively solves a WDP mid-solve) falls back to a fresh temporary
//!   arena instead of aborting on the `RefCell`.
//!
//! # The bucketed coverage index
//!
//! [`CoverageIndex`] is what lets the lazy queue skip re-evaluations. It
//! partitions rounds into buckets of [`ROUNDS_PER_BUCKET`] consecutive
//! rounds and keeps, per bucket, the logical time (`clock`) of the last
//! **saturation event** — a round's load `γ_t` reaching the per-round
//! demand `K` — in that bucket.
//!
//! Saturation is the right invalidation signal because of a small lemma:
//! under the least-loaded policy a candidate's gain is `min(c, m)`, where
//! `m` counts the window's rounds with `γ_t < K` (an unsaturated round
//! sorts strictly before any saturated one, so the `c` least-loaded rounds
//! absorb unsaturated rounds first; see
//! `schedule::gain_in_window`). The heap key
//! `(avg, price, bid_ref)` therefore depends on the loads *only through
//! `m`*, and `m` changes exactly when a round of the window saturates.
//! Loads creeping from 0 to `K − 1` reorder which rounds a schedule picks,
//! but never the candidate's average cost — and the winner's concrete
//! schedule is re-derived from the live loads at selection anyway.
//! Invariants:
//!
//! * `clock` is monotone; [`CoverageIndex::advance`] is called exactly once
//!   per greedy selection, *before* the selection's saturations are
//!   recorded.
//! * `versions[b]` only ever increases, and equals the clock of the last
//!   [`CoverageIndex::touch`] in bucket `b` (0 if never touched).
//! * [`CoverageIndex::is_current`]`(a, d, s)` ⇒ no round of `[a, d]`
//!   saturated after stamp `s` ⇒ the entry's cached `gain` and `avg` are
//!   bit-identical to a fresh evaluation — so *not* re-evaluating it is
//!   outcome-free.
//!
//! The old queue treated every entry as stale after one iteration, which
//! cost `winner.lazy_refreshes` ≈ 10× iterations on the Fig. 3 profile.
//! With the index, an entry is re-examined only when a saturation landed
//! in one of its buckets — at most `T̂_g` saturation events exist in a
//! whole run — and the queue counts (and re-inserts) it only if the
//! recomputed gain actually differs from the cached key; a conservative
//! bucket hit with an unchanged gain is accepted as the exact minimum on
//! the spot. `winner.lazy_refreshes` therefore measures the workload's
//! intrinsic invalidation pressure (≈ 5× iterations on Fig. 3, whose
//! narrow windows put `c` near the window width) instead of queue
//! staleness bookkeeping.

use std::cell::RefCell;

use crate::qualify::QualifiedBid;
use crate::types::{BidRef, Round, Window};

/// Rounds per [`CoverageIndex`] bucket (a power of two so the bucket of a
/// round is a shift). Eight spans a typical bid window in the paper's
/// workloads, so one candidate validity check reads one or two buckets;
/// saturation events are rare (at most one per round across a whole run),
/// so the coarser granularity costs almost no false invalidations.
pub const ROUNDS_PER_BUCKET: u32 = 8;
const BUCKET_SHIFT: u32 = ROUNDS_PER_BUCKET.trailing_zeros();

/// The qualified bids of one WDP as parallel columns (see the
/// [module docs](self) for the layout). Construct with
/// [`From<&[QualifiedBid]>`](#impl-From%3C%26%5BQualifiedBid%5D%3E-for-ColumnarBids);
/// immutable afterwards.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnarBids {
    refs: Vec<BidRef>,
    client_slots: Vec<u32>,
    num_clients: usize,
    prices: Vec<f64>,
    accuracies: Vec<f64>,
    starts: Vec<u32>,
    ends: Vec<u32>,
    rounds: Vec<u32>,
    round_times: Vec<f64>,
}

impl From<&[QualifiedBid]> for ColumnarBids {
    fn from(bids: &[QualifiedBid]) -> ColumnarBids {
        let n = bids.len();
        let mut cols = ColumnarBids {
            refs: Vec::with_capacity(n),
            client_slots: Vec::with_capacity(n),
            num_clients: 0,
            prices: Vec::with_capacity(n),
            accuracies: Vec::with_capacity(n),
            starts: Vec::with_capacity(n),
            ends: Vec::with_capacity(n),
            rounds: Vec::with_capacity(n),
            round_times: Vec::with_capacity(n),
        };
        // Dense client slots in first-appearance order: deterministic, and
        // independent of how sparse the raw ClientId space is.
        let mut slot_of = std::collections::HashMap::new();
        for b in bids {
            let next = slot_of.len() as u32;
            let slot = *slot_of.entry(b.bid_ref.client.0).or_insert(next);
            cols.refs.push(b.bid_ref);
            cols.client_slots.push(slot);
            cols.prices.push(b.price);
            cols.accuracies.push(b.accuracy);
            cols.starts.push(b.window.start().0);
            cols.ends.push(b.window.end().0);
            cols.rounds.push(b.rounds);
            cols.round_times.push(b.round_time);
        }
        cols.num_clients = slot_of.len();
        cols
    }
}

impl ColumnarBids {
    /// Number of bids (every column has exactly this length).
    pub fn len(&self) -> usize {
        self.refs.len()
    }

    /// Whether the store holds no bids.
    pub fn is_empty(&self) -> bool {
        self.refs.is_empty()
    }

    /// Number of distinct clients across the bids.
    pub fn num_clients(&self) -> usize {
        self.num_clients
    }

    /// The bid reference `(i, j)` of bid `i`.
    pub fn bid_ref(&self, i: usize) -> BidRef {
        self.refs[i]
    }

    /// The dense client slot of bid `i` (in `0..num_clients()`).
    pub fn client_slot(&self, i: usize) -> u32 {
        self.client_slots[i]
    }

    /// The claimed cost `b_ij` of bid `i`.
    pub fn price(&self, i: usize) -> f64 {
        self.prices[i]
    }

    /// The window start `a_ij` of bid `i` (1-based round number).
    pub fn start(&self, i: usize) -> u32 {
        self.starts[i]
    }

    /// The inclusive window end `d_ij` of bid `i` (1-based round number).
    pub fn end(&self, i: usize) -> u32 {
        self.ends[i]
    }

    /// The participation rounds `c_ij` of bid `i`.
    pub fn rounds(&self, i: usize) -> u32 {
        self.rounds[i]
    }

    /// Reassembles bid `i` as the row-form [`QualifiedBid`] — the exact
    /// record the store was built from (round-trip identity is
    /// property-tested).
    pub fn get(&self, i: usize) -> QualifiedBid {
        QualifiedBid {
            bid_ref: self.refs[i],
            price: self.prices[i],
            accuracy: self.accuracies[i],
            window: Window::new(Round(self.starts[i]), Round(self.ends[i])),
            rounds: self.rounds[i],
            round_time: self.round_times[i],
        }
    }

    /// Reassembles the full row-form bid slice (the inverse of
    /// [`From<&[QualifiedBid]>`](#impl-From%3C%26%5BQualifiedBid%5D%3E-for-ColumnarBids)).
    pub fn to_bids(&self) -> Vec<QualifiedBid> {
        (0..self.len()).map(|i| self.get(i)).collect()
    }
}

/// Bucketed per-round change tracker for lazy-queue validity (see the
/// [module docs](self) for the invariants).
#[derive(Debug, Clone, Default)]
pub struct CoverageIndex {
    versions: Vec<u64>,
    clock: u64,
}

impl CoverageIndex {
    /// Resets the index for a horizon of `horizon` rounds: all buckets at
    /// version 0, clock 0. Bucket storage is reused across calls.
    pub fn reset(&mut self, horizon: u32) {
        let buckets = horizon.div_ceil(ROUNDS_PER_BUCKET) as usize;
        self.versions.clear();
        self.versions.resize(buckets, 0);
        self.clock = 0;
    }

    /// The current logical time. Entries computed now carry this stamp.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Starts a new modification epoch (called once per greedy selection,
    /// before the selection's saturation events are recorded).
    pub fn advance(&mut self) {
        self.clock += 1;
    }

    /// Records a saturation event in round `t` (1-based): the round's load
    /// just reached the per-round demand `K`.
    pub fn touch(&mut self, t: u32) {
        self.versions[((t - 1) >> BUCKET_SHIFT) as usize] = self.clock;
    }

    /// Whether an entry stamped at `stamp` whose window is `[start, end]`
    /// (1-based, inclusive) still has exact `gain`/`avg`: no bucket
    /// overlapping the window recorded a saturation after `stamp`.
    pub fn is_current(&self, start: u32, end: u32, stamp: u64) -> bool {
        let lo = ((start - 1) >> BUCKET_SHIFT) as usize;
        let hi = ((end - 1) >> BUCKET_SHIFT) as usize;
        self.versions[lo..=hi].iter().all(|&v| v <= stamp)
    }
}

/// One lazy-queue entry: a candidate bid with its cached evaluation.
///
/// `avg`/`gain` are exact as of logical time `stamp`; by the lazy-greedy
/// monotonicity argument the cached `avg` is a lower bound on the current
/// one whenever the entry is stale. The schedule is deliberately **not**
/// cached — re-deriving it for the one winner per iteration is cheaper
/// than carrying a `Vec` per entry through a million-slot heap.
#[derive(Debug, Clone, Copy)]
pub struct HeapSlot {
    /// Cached average cost `ρ / R_il(S)` at `stamp`.
    pub avg: f64,
    /// The bid's price (first tie-break key).
    pub price: f64,
    /// The bid's reference (final, total tie-break key).
    pub bid_ref: BidRef,
    /// Bid index into the columns.
    pub idx: u32,
    /// Cached marginal utility `R_il(S)` at `stamp`.
    pub gain: u32,
    /// [`CoverageIndex::clock`] value the entry was computed at.
    pub stamp: u64,
}

impl HeapSlot {
    /// Strict "sorts earlier" comparison on `(avg, price, bid_ref)` — the
    /// same deterministic total order as the full scan's `better`.
    fn sorts_before(&self, other: &HeapSlot) -> bool {
        self.avg
            .total_cmp(&other.avg)
            .then(self.price.total_cmp(&other.price))
            .then(self.bid_ref.cmp(&other.bid_ref))
            .is_lt()
    }
}

/// A grow-only binary **min**-heap over [`HeapSlot`]s, ordered by
/// `(avg, price, bid_ref)`, with storage that survives
/// [`LazyHeap::clear`] so one allocation serves a whole sweep.
#[derive(Debug, Clone, Default)]
pub struct LazyHeap {
    slots: Vec<HeapSlot>,
}

impl LazyHeap {
    /// Empties the heap, keeping its capacity.
    pub fn clear(&mut self) {
        self.slots.clear();
    }

    /// Number of entries currently queued.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the heap holds no entries.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Reserves room for `n` entries up front (the seed pass knows the bid
    /// count).
    pub fn reserve(&mut self, n: usize) {
        self.slots.reserve(n.saturating_sub(self.slots.capacity()));
    }

    /// Inserts an entry.
    pub fn push(&mut self, slot: HeapSlot) {
        self.slots.push(slot);
        self.sift_up(self.slots.len() - 1);
    }

    /// Removes and returns the minimum entry.
    pub fn pop(&mut self) -> Option<HeapSlot> {
        if self.slots.is_empty() {
            return None;
        }
        let last = self.slots.len() - 1;
        self.slots.swap(0, last);
        let top = self.slots.pop();
        if !self.slots.is_empty() {
            self.sift_down(0);
        }
        top
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.slots[i].sorts_before(&self.slots[parent]) {
                self.slots.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.slots.len();
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut min = i;
            if l < n && self.slots[l].sorts_before(&self.slots[min]) {
                min = l;
            }
            if r < n && self.slots[r].sorts_before(&self.slots[min]) {
                min = r;
            }
            if min == i {
                break;
            }
            self.slots.swap(i, min);
            i = min;
        }
    }
}

/// The per-thread scratch arena of one greedy run: every mutable buffer the
/// columnar hot loop needs, reused across horizons so the sweep allocates
/// nothing per `T̂_g` (see the [module docs](self) for the aliasing rules).
#[derive(Debug, Clone, Default)]
pub struct SweepScratch {
    /// Per-round load `γ_t` (index 0 ↔ round 1), `horizon` entries.
    pub loads: Vec<u32>,
    /// Round-permutation buffer for representative-schedule selection.
    pub order: Vec<u32>,
    /// The last computed schedule (1-based round numbers, ascending).
    pub schedule: Vec<u32>,
    /// Per-bid "this pair is already selected" bitmap.
    pub pair_selected: Vec<bool>,
    /// Per-client-slot "this client already won a bid" bitmap.
    pub client_selected: Vec<bool>,
    /// The bucketed invalidation index.
    pub index: CoverageIndex,
    /// The lazy candidate queue.
    pub heap: LazyHeap,
}

impl SweepScratch {
    /// Re-initialises every buffer for a fresh greedy run over `bids` bids
    /// from `clients` distinct clients at `horizon` rounds, reusing all
    /// existing capacity.
    pub fn reset(&mut self, horizon: u32, bids: usize, clients: usize) {
        self.loads.clear();
        self.loads.resize(horizon as usize, 0);
        self.order.clear();
        self.schedule.clear();
        self.pair_selected.clear();
        self.pair_selected.resize(bids, false);
        self.client_selected.clear();
        self.client_selected.resize(clients, false);
        self.index.reset(horizon);
        self.heap.clear();
        self.heap.reserve(bids);
    }
}

thread_local! {
    static SCRATCH: RefCell<SweepScratch> = RefCell::new(SweepScratch::default());
}

/// Runs `f` with this thread's scratch arena. Re-entrant calls (a solver
/// recursively solving a WDP) get a fresh temporary arena instead of a
/// `RefCell` panic; the outer arena is untouched.
pub fn with_scratch<R>(f: impl FnOnce(&mut SweepScratch) -> R) -> R {
    SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => f(&mut scratch),
        Err(_) => f(&mut SweepScratch::default()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{ClientId, Round, Window};

    fn qb(client: u32, bid: u32, price: f64, a: u32, d: u32, c: u32) -> QualifiedBid {
        QualifiedBid {
            bid_ref: BidRef::new(ClientId(client), bid),
            price,
            accuracy: 0.5,
            window: Window::new(Round(a), Round(d)),
            rounds: c,
            round_time: 1.0,
        }
    }

    #[test]
    fn columnar_round_trips_row_form_bids() {
        let bids = vec![
            qb(3, 0, 2.5, 1, 4, 2),
            qb(0, 1, 7.0, 2, 2, 1),
            qb(3, 1, 0.0, 3, 6, 4),
        ];
        let cols = ColumnarBids::from(bids.as_slice());
        assert_eq!(cols.len(), 3);
        assert!(!cols.is_empty());
        assert_eq!(cols.to_bids(), bids);
        for (i, b) in bids.iter().enumerate() {
            assert_eq!(&cols.get(i), b);
            assert_eq!(cols.bid_ref(i), b.bid_ref);
            assert_eq!(cols.price(i), b.price);
            assert_eq!(cols.start(i), b.window.start().0);
            assert_eq!(cols.end(i), b.window.end().0);
            assert_eq!(cols.rounds(i), b.rounds);
        }
    }

    #[test]
    fn client_slots_are_dense_and_first_appearance_ordered() {
        // Sparse, shuffled client ids → dense slots 0, 1, 0, 2.
        let bids = vec![
            qb(900, 0, 1.0, 1, 2, 1),
            qb(7, 0, 1.0, 1, 2, 1),
            qb(900, 1, 1.0, 1, 2, 1),
            qb(0, 0, 1.0, 1, 2, 1),
        ];
        let cols = ColumnarBids::from(bids.as_slice());
        assert_eq!(cols.num_clients(), 3);
        let slots: Vec<u32> = (0..cols.len()).map(|i| cols.client_slot(i)).collect();
        assert_eq!(slots, vec![0, 1, 0, 2]);
    }

    #[test]
    fn empty_store_is_empty() {
        let cols = ColumnarBids::from([].as_slice());
        assert!(cols.is_empty());
        assert_eq!(cols.num_clients(), 0);
        assert!(cols.to_bids().is_empty());
    }

    #[test]
    fn coverage_index_tracks_window_invalidation() {
        let mut idx = CoverageIndex::default();
        idx.reset(20);
        let stamp = idx.clock();
        assert!(idx.is_current(1, 20, stamp), "nothing touched yet");
        idx.advance();
        idx.touch(9); // bucket 1 (rounds 9..=16)
        assert!(!idx.is_current(1, 20, stamp), "full window sees bucket 1");
        assert!(!idx.is_current(9, 12, stamp));
        assert!(
            idx.is_current(1, 8, stamp),
            "bucket 0 untouched — rounds 1..=8 still exact"
        );
        assert!(idx.is_current(17, 20, stamp), "bucket 2 untouched");
        // Entries computed at the new clock are current again.
        let fresh = idx.clock();
        assert!(idx.is_current(9, 12, fresh));
    }

    #[test]
    fn coverage_index_reset_reuses_storage() {
        let mut idx = CoverageIndex::default();
        idx.reset(64);
        idx.advance();
        idx.touch(1);
        idx.reset(8);
        assert_eq!(idx.clock(), 0);
        assert!(idx.is_current(1, 8, 0), "reset clears versions");
    }

    #[test]
    fn lazy_heap_pops_in_total_order() {
        let slot = |avg: f64, price: f64, client: u32| HeapSlot {
            avg,
            price,
            bid_ref: BidRef::new(ClientId(client), 0),
            idx: client,
            gain: 1,
            stamp: 0,
        };
        let mut heap = LazyHeap::default();
        // avg ties broken by price, then bid_ref.
        for s in [
            slot(2.0, 5.0, 1),
            slot(1.0, 9.0, 2),
            slot(1.0, 3.0, 4),
            slot(1.0, 3.0, 3),
        ] {
            heap.push(s);
        }
        assert_eq!(heap.len(), 4);
        let order: Vec<u32> = std::iter::from_fn(|| heap.pop()).map(|s| s.idx).collect();
        assert_eq!(order, vec![3, 4, 2, 1]);
        assert!(heap.is_empty());
        assert!(heap.pop().is_none());
    }

    #[test]
    fn scratch_reset_clears_state_and_reuses_capacity() {
        with_scratch(|s| {
            s.reset(10, 5, 3);
            s.loads[4] = 7;
            s.pair_selected[2] = true;
            s.client_selected[1] = true;
            s.index.advance();
            s.index.touch(5);
            s.heap.push(HeapSlot {
                avg: 1.0,
                price: 1.0,
                bid_ref: BidRef::new(ClientId(0), 0),
                idx: 0,
                gain: 1,
                stamp: 0,
            });
            let cap = s.loads.capacity();
            s.reset(6, 4, 2);
            assert!(s.loads.iter().all(|&l| l == 0));
            assert_eq!(s.loads.len(), 6);
            assert!(s.loads.capacity() >= cap.min(6), "capacity reused");
            assert!(!s.pair_selected.iter().any(|&b| b));
            assert!(!s.client_selected.iter().any(|&b| b));
            assert_eq!(s.index.clock(), 0);
            assert!(s.heap.is_empty());
        });
    }

    #[test]
    fn with_scratch_survives_reentrancy() {
        with_scratch(|outer| {
            outer.reset(4, 1, 1);
            outer.loads[0] = 42;
            with_scratch(|inner| {
                inner.reset(4, 1, 1);
                assert_eq!(inner.loads[0], 0, "inner call gets a fresh arena");
            });
            assert_eq!(outer.loads[0], 42, "outer arena untouched");
        });
    }
}

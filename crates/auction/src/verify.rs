//! Independent validation of auction outcomes.
//!
//! Re-checks every constraint of ILP (6) against the *original* instance —
//! not against any solver's internal state — so tests and experiments can
//! assert feasibility of any [`WdpSolver`](crate::WdpSolver)'s output,
//! including the baselines and the exact solver.

use std::collections::HashSet;

use crate::auction::AuctionOutcome;
use crate::bid::Instance;
use crate::wdp::{Wdp, WdpSolution};
use fl_telemetry::{counter, span, warn};

/// Reports `bad` to telemetry under `what` and passes it through.
fn report(what: &'static str, bad: Vec<String>) -> Vec<String> {
    if !bad.is_empty() {
        counter!(what, bad.len());
        warn!("{what}: {} violation(s), first: {}", bad.len(), bad[0]);
    }
    bad
}

/// All constraint violations of `solution` with respect to `wdp`; an empty
/// vector means the solution is feasible for ILP (7).
pub fn wdp_violations(wdp: &Wdp, solution: &WdpSolution) -> Vec<String> {
    let mut bad = Vec::new();
    if solution.horizon() != wdp.horizon() {
        bad.push(format!(
            "solution horizon {} differs from WDP horizon {}",
            solution.horizon(),
            wdp.horizon()
        ));
    }
    let mut load = vec![0u32; wdp.horizon() as usize];
    let mut clients = HashSet::new();
    let mut cost = 0.0;
    for w in solution.winners() {
        let Some(qb) = wdp.bids().iter().find(|b| b.bid_ref == w.bid_ref) else {
            bad.push(format!("{} is not a qualified bid of this WDP", w.bid_ref));
            continue;
        };
        if !clients.insert(w.bid_ref.client) {
            bad.push(format!("{} wins more than one bid", w.bid_ref.client));
        }
        if (w.price - qb.price).abs() > 1e-9 {
            bad.push(format!(
                "{} price {} disagrees with the submitted price {}",
                w.bid_ref, w.price, qb.price
            ));
        }
        if w.schedule.len() as u32 != qb.rounds {
            bad.push(format!(
                "{} schedules {} rounds instead of c = {}",
                w.bid_ref,
                w.schedule.len(),
                qb.rounds
            ));
        }
        if !w.schedule.windows(2).all(|p| p[0] < p[1]) {
            bad.push(format!("{} schedule is not strictly increasing", w.bid_ref));
        }
        for &t in &w.schedule {
            if !qb.window.contains(t) {
                bad.push(format!(
                    "{} schedules {t} outside window {}",
                    w.bid_ref, qb.window
                ));
            } else {
                load[t.index()] += 1;
            }
        }
        cost += qb.price;
    }
    for (i, &l) in load.iter().enumerate() {
        if l < wdp.demand_per_round() {
            bad.push(format!(
                "round t={} has {l} participants, needs {}",
                i + 1,
                wdp.demand_per_round()
            ));
        }
    }
    if (cost - solution.cost()).abs() > 1e-6 * (1.0 + cost.abs()) {
        bad.push(format!(
            "reported cost {} differs from winner price total {cost}",
            solution.cost()
        ));
    }
    report("verify.wdp_violations", bad)
}

/// All violations of ILP (6) by a full auction outcome, including the
/// horizon-coupling constraints the WDP itself does not see.
pub fn outcome_violations(instance: &Instance, outcome: &AuctionOutcome) -> Vec<String> {
    let horizon = outcome.horizon();
    let _span = span!("verify_outcome", tg = horizon);
    let mut bad = Vec::new();
    if horizon == 0 || horizon > instance.config().max_rounds() {
        bad.push(format!(
            "T_g = {horizon} escapes the announced range [1, {}]",
            instance.config().max_rounds()
        ));
        return report("verify.outcome_violations", bad);
    }
    // Feasibility with respect to the qualified WDP at the chosen horizon.
    let wdp = crate::qualify::qualify(instance, horizon);
    bad.extend(wdp_violations(&wdp, outcome.solution()));
    // Constraint (6b): every winner's accuracy respects T_g ≥ 1/(1−θ).
    let theta_max = 1.0 - 1.0 / f64::from(horizon);
    for w in outcome.solution().winners() {
        let bid = instance.bid(w.bid_ref);
        if bid.accuracy() > theta_max + 1e-9 {
            bad.push(format!(
                "{} has θ = {} > θ_max = {theta_max} at T_g = {horizon}",
                w.bid_ref,
                bid.accuracy()
            ));
        }
        // Constraint (6d): per-round wall clock within t_max.
        let t = instance.round_time(w.bid_ref);
        if t > instance.config().round_time_limit() + 1e-9 {
            bad.push(format!(
                "{} needs {t} time units per round, over the limit {}",
                w.bid_ref,
                instance.config().round_time_limit()
            ));
        }
    }
    report("verify.outcome_violations", bad)
}

/// Individual-rationality violations: winners paid strictly less than
/// their claimed cost. Empty for any critical-value run (Theorem 2).
pub fn ir_violations(solution: &WdpSolution) -> Vec<String> {
    let bad = solution
        .winners()
        .iter()
        .filter(|w| w.payment < w.price - 1e-9)
        .map(|w| {
            format!(
                "{} paid {} below its claimed cost {}",
                w.bid_ref, w.payment, w.price
            )
        })
        .collect();
    report("verify.ir_violations", bad)
}

/// Verifies the paper's Lemma 5 inequality chain `D ≤ P ≤ H·ω·D` for a
/// solution carrying a certificate. Returns violations (empty when the
/// certificate is consistent or absent). An infinite `ω` trivially
/// satisfies the upper bound.
pub fn certificate_violations(solution: &WdpSolution) -> Vec<String> {
    let Some(cert) = solution.certificate() else {
        return Vec::new();
    };
    let mut bad = Vec::new();
    let p = solution.cost();
    let d = cert.dual_objective;
    if d > p + 1e-6 * (1.0 + p.abs()) {
        bad.push(format!("weak duality violated: D = {d} exceeds P = {p}"));
    }
    let bound = cert.ratio_bound() * d;
    if bound.is_finite() && p > bound + 1e-6 * (1.0 + bound.abs()) {
        bad.push(format!("Lemma 5 violated: P = {p} exceeds H·ω·D = {bound}"));
    }
    if cert.lambda.iter().any(|&l| l < -1e-9) {
        bad.push("negative λ dual variable".into());
    }
    if cert.g.iter().any(|&g| g < -1e-9 || g.is_nan()) {
        bad.push("invalid g(t) dual variable".into());
    }
    report("verify.certificate_violations", bad)
}

/// Checks dual feasibility (constraint (8a)) of a certificate against a
/// *sample* of schedules: for every qualified bid, its windows' contiguous
/// `c`-round schedules and its least/most-loaded variants. Constraint (8a)
/// requires `Σ_{t∈l} g(t) − λ_il − q_i ≤ ρ_il` for **every** feasible
/// schedule `l` (exponentially many); spot-checking the extremal ones
/// catches construction bugs without exponential work. For unselected
/// bids `λ = q = 0`; for selected ones the winner's `λ` applies.
///
/// Returns violation descriptions (empty when the sampled constraints
/// hold or no certificate is attached).
pub fn dual_feasibility_violations(wdp: &Wdp, solution: &WdpSolution) -> Vec<String> {
    let Some(cert) = solution.certificate() else {
        return Vec::new();
    };
    if !cert.omega.is_finite() {
        return Vec::new(); // bounds are vacuous at ω = ∞
    }
    let mut bad = Vec::new();
    let lambda_of = |bid: crate::types::BidRef| -> f64 {
        solution
            .winners()
            .iter()
            .position(|w| w.bid_ref == bid)
            .map_or(0.0, |i| cert.lambda[i])
    };
    for qb in wdp.bids() {
        let c = qb.rounds as usize;
        let rounds: Vec<_> = qb.window.rounds().collect();
        // Sample schedules: every contiguous c-window plus the winner's
        // actual schedule when applicable.
        let mut samples: Vec<Vec<crate::types::Round>> =
            rounds.windows(c).map(|w| w.to_vec()).collect();
        if let Some(w) = solution.winners().iter().find(|w| w.bid_ref == qb.bid_ref) {
            samples.push(w.schedule.clone());
        }
        let lambda = lambda_of(qb.bid_ref);
        for l in samples {
            let g_sum: f64 = l.iter().map(|t| cert.g[t.index()]).sum();
            let lhs = g_sum - lambda;
            if lhs > qb.price + 1e-6 * (1.0 + qb.price.abs()) {
                bad.push(format!(
                    "dual constraint (8a) violated for {} on schedule {l:?}: {lhs} > ρ = {}",
                    qb.bid_ref, qb.price
                ));
            }
        }
    }
    report("verify.dual_feasibility_violations", bad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bid::{Bid, ClientProfile};
    use crate::config::AuctionConfig;
    use crate::types::{BidRef, ClientId, Round, Window};
    use crate::wdp::WinnerEntry;
    use crate::winner::AWinner;
    use crate::{run_auction, QualifiedBid, WdpSolver};

    fn wdp() -> Wdp {
        let qb = |client: u32, price: f64, a: u32, d: u32, c: u32| QualifiedBid {
            bid_ref: BidRef::new(ClientId(client), 0),
            price,
            accuracy: 0.5,
            window: Window::new(Round(a), Round(d)),
            rounds: c,
            round_time: 1.0,
        };
        Wdp::new(
            3,
            1,
            vec![
                qb(1, 2.0, 1, 2, 1),
                qb(2, 6.0, 2, 3, 2),
                qb(3, 5.0, 1, 3, 2),
            ],
        )
    }

    #[test]
    fn a_winner_output_is_clean() {
        let sol = AWinner::new().solve_wdp(&wdp()).unwrap();
        assert!(wdp_violations(&wdp(), &sol).is_empty());
        assert!(ir_violations(&sol).is_empty());
        assert!(certificate_violations(&sol).is_empty());
        assert!(dual_feasibility_violations(&wdp(), &sol).is_empty());
    }

    #[test]
    fn dual_feasibility_holds_on_random_wdps() {
        let mut state = 0xabcdef12345u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut checked = 0;
        for _ in 0..40 {
            let h = 3 + (next() % 4) as u32;
            let k = 1 + (next() % 2) as u32;
            let n = 5 + (next() % 6) as usize;
            let bids: Vec<QualifiedBid> = (0..n)
                .map(|i| {
                    let a = 1 + (next() % u64::from(h)) as u32;
                    let d = a + (next() % u64::from(h - a + 1)) as u32;
                    let c = 1 + (next() % u64::from(d - a + 1)) as u32;
                    QualifiedBid {
                        bid_ref: BidRef::new(ClientId(i as u32), 0),
                        price: 1.0 + (next() % 30) as f64,
                        accuracy: 0.5,
                        window: Window::new(Round(a), Round(d)),
                        rounds: c,
                        round_time: 1.0,
                    }
                })
                .collect();
            let w = Wdp::new(h, k, bids);
            if let Ok(sol) = AWinner::new().solve_wdp(&w) {
                let bad = dual_feasibility_violations(&w, &sol);
                assert!(bad.is_empty(), "{bad:?}");
                checked += 1;
            }
        }
        assert!(checked > 10, "too few feasible random WDPs ({checked})");
    }

    #[test]
    fn detects_undercoverage() {
        let winners = vec![WinnerEntry {
            bid_ref: BidRef::new(ClientId(1), 0),
            price: 2.0,
            payment: 2.0,
            schedule: vec![Round(1)],
        }];
        let sol = WdpSolution::new(3, winners, 2.0, None);
        let bad = wdp_violations(&wdp(), &sol);
        assert!(bad.iter().any(|m| m.contains("participants")), "{bad:?}");
    }

    #[test]
    fn detects_out_of_window_schedule() {
        let winners = vec![
            WinnerEntry {
                bid_ref: BidRef::new(ClientId(1), 0),
                price: 2.0,
                payment: 2.0,
                schedule: vec![Round(3)], // window is [1,2]
            },
            WinnerEntry {
                bid_ref: BidRef::new(ClientId(3), 0),
                price: 5.0,
                payment: 5.0,
                schedule: vec![Round(1), Round(2)],
            },
        ];
        let sol = WdpSolution::new(3, winners, 7.0, None);
        let bad = wdp_violations(&wdp(), &sol);
        assert!(bad.iter().any(|m| m.contains("outside window")), "{bad:?}");
    }

    #[test]
    fn detects_duplicate_client() {
        let qb = |bid: u32, a: u32| QualifiedBid {
            bid_ref: BidRef::new(ClientId(1), bid),
            price: 1.0,
            accuracy: 0.5,
            window: Window::new(Round(a), Round(a)),
            rounds: 1,
            round_time: 1.0,
        };
        let w = Wdp::new(2, 1, vec![qb(0, 1), qb(1, 2)]);
        let winners = vec![
            WinnerEntry {
                bid_ref: BidRef::new(ClientId(1), 0),
                price: 1.0,
                payment: 1.0,
                schedule: vec![Round(1)],
            },
            WinnerEntry {
                bid_ref: BidRef::new(ClientId(1), 1),
                price: 1.0,
                payment: 1.0,
                schedule: vec![Round(2)],
            },
        ];
        let sol = WdpSolution::new(2, winners, 2.0, None);
        let bad = wdp_violations(&w, &sol);
        assert!(
            bad.iter().any(|m| m.contains("more than one bid")),
            "{bad:?}"
        );
    }

    #[test]
    fn detects_ir_violation() {
        let winners = vec![WinnerEntry {
            bid_ref: BidRef::new(ClientId(1), 0),
            price: 2.0,
            payment: 1.0,
            schedule: vec![Round(1)],
        }];
        let sol = WdpSolution::new(1, winners, 2.0, None);
        assert_eq!(ir_violations(&sol).len(), 1);
    }

    #[test]
    fn full_outcome_round_trip_is_clean() {
        let cfg = AuctionConfig::builder()
            .max_rounds(5)
            .clients_per_round(2)
            .round_time_limit(100.0)
            .build()
            .unwrap();
        let mut inst = Instance::new(cfg);
        for (price, theta) in [(4.0, 0.5), (6.0, 0.6), (3.0, 0.7), (9.0, 0.5), (5.0, 0.55)] {
            let c = inst.add_client(ClientProfile::new(2.0, 3.0).unwrap());
            inst.add_bid(
                c,
                Bid::new(price, theta, Window::new(Round(1), Round(5)), 5).unwrap(),
            )
            .unwrap();
        }
        let outcome = run_auction(&inst).unwrap();
        assert!(outcome_violations(&inst, &outcome).is_empty());
    }
}

//! The parallel execution substrate of the horizon sweep: a zero-dependency
//! scoped worker pool plus the [`SweepStrategy`] knob that selects it.
//!
//! `A_FL`'s outer loop solves one independent WDP per candidate horizon
//! `T̂_g ∈ [T_0, T]` — the dominant `O(I·T²(log T + I·J))` term of the
//! paper — so the sweep is embarrassingly parallel. The pool is built on
//! [`std::thread::scope`] with a shared atomic cursor (chunked round-robin
//! with dynamic stealing of the next index), so it needs no external crates
//! and no `unsafe`.
//!
//! **Determinism.** Parallel execution must be observationally identical to
//! sequential execution:
//!
//! * results are collected per index and merged in input order, so callers
//!   see the same `Vec` regardless of scheduling;
//! * telemetry emitted by workers is [captured](fl_telemetry::capture) and
//!   [replayed](fl_telemetry::replay) on the calling thread in input order,
//!   so span trees, counters and messages reproduce the sequential trace
//!   exactly (span wall-clock durations are the workers' own).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// How [`sweep_horizons`](crate::sweep_horizons) and
/// [`run_auction_with`](crate::run_auction_with) schedule the per-horizon
/// WDPs.
///
/// The default ([`SweepStrategy::default`]) honours the `FL_THREADS`
/// environment variable and otherwise uses the machine's available
/// parallelism. Results are **bit-identical** across strategies: the merge
/// is always performed in ascending horizon order with the documented
/// smallest-`T̂_g` tie-break, and worker telemetry is replayed in horizon
/// order.
///
/// ```
/// use fl_auction::SweepStrategy;
///
/// assert_eq!(SweepStrategy::with_threads(1), SweepStrategy::Sequential);
/// assert_eq!(
///     SweepStrategy::with_threads(4),
///     SweepStrategy::Parallel { threads: 4 }
/// );
/// // Explicitly sequential, e.g. for pinned-trace tests:
/// let cfg = fl_auction::AuctionConfig::builder()
///     .sweep_strategy(SweepStrategy::Sequential)
///     .build()?;
/// assert_eq!(cfg.sweep_strategy().threads(), 1);
/// # Ok::<(), fl_auction::AuctionError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepStrategy {
    /// Solve horizons one at a time on the calling thread (the seed
    /// behaviour; no worker threads, no telemetry capture).
    Sequential,
    /// Fan horizons out over `threads ≥ 2` scoped workers.
    Parallel {
        /// Number of worker threads (the calling thread only coordinates).
        threads: usize,
    },
}

impl SweepStrategy {
    /// Normalising constructor: `0` and `1` mean [`SweepStrategy::Sequential`],
    /// anything larger means [`SweepStrategy::Parallel`] with that many
    /// threads.
    pub fn with_threads(threads: usize) -> SweepStrategy {
        if threads <= 1 {
            SweepStrategy::Sequential
        } else {
            SweepStrategy::Parallel { threads }
        }
    }

    /// The machine default: [`std::thread::available_parallelism`] workers
    /// (sequential on single-core machines or when the count is unknown).
    pub fn auto() -> SweepStrategy {
        let threads = thread::available_parallelism().map_or(1, |n| n.get());
        SweepStrategy::with_threads(threads)
    }

    /// Reads the `FL_THREADS` environment variable: `1` forces
    /// [`SweepStrategy::Sequential`], `n ≥ 2` forces that worker count, and
    /// unset/empty/invalid values fall back to [`SweepStrategy::auto`].
    pub fn from_env() -> SweepStrategy {
        SweepStrategy::parse(std::env::var("FL_THREADS").ok().as_deref())
    }

    /// Parses an `FL_THREADS`-style value ([`SweepStrategy::from_env`]
    /// without touching the environment, so it is unit-testable).
    pub fn parse(raw: Option<&str>) -> SweepStrategy {
        match raw.map(str::trim) {
            Some(s) if !s.is_empty() => match s.parse::<usize>() {
                Ok(n) => SweepStrategy::with_threads(n),
                Err(_) => SweepStrategy::auto(),
            },
            _ => SweepStrategy::auto(),
        }
    }

    /// The worker count this strategy runs with (1 for sequential).
    pub fn threads(self) -> usize {
        match self {
            SweepStrategy::Sequential => 1,
            SweepStrategy::Parallel { threads } => threads,
        }
    }
}

impl Default for SweepStrategy {
    /// Equivalent to [`SweepStrategy::from_env`].
    fn default() -> SweepStrategy {
        SweepStrategy::from_env()
    }
}

/// Maps `f` over `items` on up to `threads` scoped workers and returns the
/// results in input order.
///
/// With one (effective) worker this runs inline on the calling thread —
/// byte-for-byte the sequential code path. Otherwise workers pull the next
/// unclaimed index from a shared atomic cursor (dynamic load balancing),
/// wrap each call in [`fl_telemetry::capture`] when telemetry is enabled,
/// and the calling thread replays every buffer in input order after the
/// scope joins. A panicking worker propagates its payload to the caller.
pub(crate) fn ordered_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Copy + Sync,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = threads.min(items.len());
    if threads <= 1 {
        return items.iter().map(|&item| f(item)).collect();
    }
    let telemetry = fl_telemetry::enabled();
    let cursor = AtomicUsize::new(0);
    let worker_outputs: Vec<Vec<(usize, R, Vec<fl_telemetry::CapturedEvent>)>> =
        thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    s.spawn(|| {
                        let mut out = Vec::new();
                        loop {
                            let index = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(&item) = items.get(index) else {
                                break;
                            };
                            if telemetry {
                                let (result, events) = fl_telemetry::capture(|| f(item));
                                out.push((index, result, events));
                            } else {
                                out.push((index, f(item), Vec::new()));
                            }
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(out) => out,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });
    let mut slots: Vec<Option<(R, Vec<fl_telemetry::CapturedEvent>)>> =
        (0..items.len()).map(|_| None).collect();
    for (index, result, events) in worker_outputs.into_iter().flatten() {
        slots[index] = Some((result, events));
    }
    slots
        .into_iter()
        .map(|slot| {
            let (result, events) = slot.expect("every index is claimed exactly once");
            fl_telemetry::replay(&events);
            result
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_normalises_degenerate_thread_counts() {
        assert_eq!(SweepStrategy::with_threads(0), SweepStrategy::Sequential);
        assert_eq!(SweepStrategy::with_threads(1), SweepStrategy::Sequential);
        assert_eq!(
            SweepStrategy::with_threads(8),
            SweepStrategy::Parallel { threads: 8 }
        );
        assert_eq!(SweepStrategy::Sequential.threads(), 1);
        assert_eq!(SweepStrategy::Parallel { threads: 3 }.threads(), 3);
    }

    #[test]
    fn parse_covers_the_fl_threads_contract() {
        assert_eq!(SweepStrategy::parse(Some("1")), SweepStrategy::Sequential);
        assert_eq!(
            SweepStrategy::parse(Some(" 6 ")),
            SweepStrategy::Parallel { threads: 6 }
        );
        // Unset, empty and invalid all fall back to auto.
        let auto = SweepStrategy::auto();
        assert_eq!(SweepStrategy::parse(None), auto);
        assert_eq!(SweepStrategy::parse(Some("")), auto);
        assert_eq!(SweepStrategy::parse(Some("lots")), auto);
        assert_eq!(SweepStrategy::parse(Some("-2")), auto);
    }

    #[test]
    fn ordered_map_preserves_input_order() {
        let items: Vec<u32> = (0..67).collect();
        let sequential = ordered_map(&items, 1, |x| x * x);
        let parallel = ordered_map(&items, 4, |x| x * x);
        assert_eq!(sequential, parallel);
        assert_eq!(parallel[13], 169);
        assert!(ordered_map(&Vec::<u32>::new(), 4, |x| x).is_empty());
    }

    #[test]
    fn ordered_map_uses_at_most_items_len_workers() {
        // 2 items on 8 requested threads must not spawn 8 workers; just
        // check the results are right (the clamp is internal).
        assert_eq!(ordered_map(&[10u32, 20], 8, |x| x + 1), vec![11, 21]);
    }

    #[test]
    fn ordered_map_propagates_worker_panics() {
        let result = std::panic::catch_unwind(|| {
            ordered_map(&[0u32, 1, 2, 3], 2, |x| {
                assert!(x != 2, "boom");
                x
            })
        });
        assert!(result.is_err());
    }
}

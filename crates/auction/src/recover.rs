//! Standby procurement — fault-tolerant extension of `A_FL`.
//!
//! The paper's mechanism buys exactly `K` clients per round; a single
//! dropout leaves a round under-covered. This module procures a ranked
//! **standby pool** from the bids that qualified at the chosen horizon but
//! lost: for every round `t ≤ T_g*`, the losing clients whose windows
//! contain `t` are ranked by per-round average cost `ρ_ij / c_ij`, and each
//! rank is priced with the same critical-value idea as `A_payment` — a
//! standby at rank `r` is paid, per activation, the *next* rank's per-round
//! average cost (its own when it is the last rank).
//!
//! The rule keeps the mechanism's incentive properties on the standby side:
//! the per-round ranking is monotone in the claimed per-round cost (bidding
//! lower never worsens a rank), and the payment is the threshold value at
//! which the rank would be lost — so truthful reporting stays dominant and
//! every activation pays at least the standby's claimed per-round cost
//! (individual rationality, [`StandbyEntry::is_individually_rational`]).
//!
//! The pool is a *pricing commitment*, not an allocation: activations (and
//! therefore actual spend) happen at runtime, when the training loop in
//! `fl-sim` detects a coverage gap and substitutes standbys in rank order,
//! debiting each standby's battery budget `c_ij`.

use crate::auction::AuctionOutcome;
use crate::bid::Instance;
use crate::qualify::qualify;
use crate::types::{BidRef, Round};
use fl_telemetry::{counter, sample, span};

/// One ranked standby candidate for a specific round.
#[derive(Debug, Clone, PartialEq)]
pub struct StandbyEntry {
    /// Which losing bid backs this standby slot.
    pub bid_ref: BidRef,
    /// Claimed per-round cost `ρ_ij / c_ij` — the ranking key.
    pub price_per_round: f64,
    /// Critical-value remuneration per activation: the next rank's
    /// per-round cost, or this entry's own when no rank follows.
    pub payment_per_round: f64,
    /// Local accuracy `θ_ij` of the backing bid.
    pub accuracy: f64,
    /// Per-round wall clock `t_ij` of the backing bid.
    pub round_time: f64,
    /// Battery budget: at most `c_ij` activations across all rounds.
    pub budget: u32,
}

impl StandbyEntry {
    /// Whether the committed activation payment covers the claimed cost.
    pub fn is_individually_rational(&self) -> bool {
        self.payment_per_round >= self.price_per_round - 1e-12
    }
}

/// Per-round ranked standby lists for one solved auction.
///
/// Index `t.index()` holds round `t`'s candidates, cheapest per-round cost
/// first. The same client may appear in many rounds (with its cheapest
/// qualified bid per round) but activations share one battery budget.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StandbyPool {
    horizon: u32,
    rounds: Vec<Vec<StandbyEntry>>,
}

impl StandbyPool {
    /// The horizon `T_g*` the pool was built for.
    pub fn horizon(&self) -> u32 {
        self.horizon
    }

    /// The ranked standbys available in round `t` (empty when `t` exceeds
    /// the horizon).
    pub fn for_round(&self, t: Round) -> &[StandbyEntry] {
        self.rounds.get(t.index()).map_or(&[], Vec::as_slice)
    }

    /// How many standbys back round `t`.
    pub fn depth(&self, t: Round) -> usize {
        self.for_round(t).len()
    }

    /// The weakest per-round backing across the horizon — the number of
    /// simultaneous dropouts every round can absorb.
    pub fn min_depth(&self) -> usize {
        self.rounds.iter().map(Vec::len).min().unwrap_or(0)
    }

    /// Whether no round has any standby at all.
    pub fn is_empty(&self) -> bool {
        self.rounds.iter().all(Vec::is_empty)
    }

    /// Iterates `(round, ranked standbys)` pairs across the horizon.
    pub fn iter(&self) -> impl Iterator<Item = (Round, &[StandbyEntry])> {
        self.rounds
            .iter()
            .enumerate()
            .map(|(i, v)| (Round(i as u32 + 1), v.as_slice()))
    }
}

/// Builds the standby pool for a solved auction.
///
/// Re-qualifies the instance at the outcome's horizon, drops every bid of a
/// winning client, keeps each losing client's cheapest-per-round bid per
/// round, ranks the rest and prices ranks with the critical-value rule.
///
/// # Example
///
/// ```
/// use fl_auction::{
///     run_auction, standby_pool, AuctionConfig, Bid, ClientProfile, Instance, Round, Window,
/// };
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cfg = AuctionConfig::builder().max_rounds(4).clients_per_round(1).build()?;
/// let mut inst = Instance::new(cfg);
/// for price in [3.0, 5.0, 8.0] {
///     let c = inst.add_client(ClientProfile::new(2.0, 5.0)?);
///     inst.add_bid(c, Bid::new(price, 0.6, Window::new(Round(1), Round(4)), 4)?)?;
/// }
/// let outcome = run_auction(&inst)?;
/// let pool = standby_pool(&inst, &outcome);
/// // The $3 client wins; the $5 and $8 clients back every round.
/// assert_eq!(pool.depth(Round(1)), 2);
/// // Rank 0 is paid rank 1's per-round cost: 8/4 = 2 per activation.
/// let first = &pool.for_round(Round(1))[0];
/// assert_eq!(first.payment_per_round, 2.0);
/// assert!(first.is_individually_rational());
/// # Ok(())
/// # }
/// ```
pub fn standby_pool(instance: &Instance, outcome: &AuctionOutcome) -> StandbyPool {
    let horizon = outcome.horizon();
    let _span = span!("standby_pool", tg = horizon);
    let wdp = qualify(instance, horizon);
    let winning_clients: std::collections::HashSet<u32> = outcome
        .solution()
        .winners()
        .iter()
        .map(|w| w.bid_ref.client.0)
        .collect();

    let mut rounds: Vec<Vec<StandbyEntry>> = vec![Vec::new(); horizon as usize];
    for (t_idx, ranked) in rounds.iter_mut().enumerate() {
        let t = Round(t_idx as u32 + 1);
        // Cheapest qualified bid per losing client whose window holds t.
        let mut best: std::collections::HashMap<u32, StandbyEntry> =
            std::collections::HashMap::new();
        for qb in wdp.bids() {
            if winning_clients.contains(&qb.bid_ref.client.0) || !qb.window.contains(t) {
                continue;
            }
            let entry = StandbyEntry {
                bid_ref: qb.bid_ref,
                price_per_round: qb.price / f64::from(qb.rounds),
                payment_per_round: 0.0, // priced after ranking
                accuracy: qb.accuracy,
                round_time: qb.round_time,
                budget: qb.rounds,
            };
            match best.entry(qb.bid_ref.client.0) {
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(entry);
                }
                std::collections::hash_map::Entry::Occupied(mut o) => {
                    if rank_cmp(&entry, o.get()) == std::cmp::Ordering::Less {
                        o.insert(entry);
                    }
                }
            }
        }
        let mut list: Vec<StandbyEntry> = best.into_values().collect();
        list.sort_by(rank_cmp);
        // Critical value: rank r is paid rank r+1's per-round cost; the
        // last rank has no successor and is paid its own claim (IR with
        // equality, mirroring `A_payment`'s missing-runner-up case).
        for r in 0..list.len() {
            list[r].payment_per_round = match list.get(r + 1) {
                Some(next) => next.price_per_round,
                None => list[r].price_per_round,
            };
        }
        counter!("standby.entries", list.len());
        sample!("standby.round_depth", list.len());
        *ranked = list;
    }
    StandbyPool { horizon, rounds }
}

/// Deterministic total ranking: per-round cost, then absolute price, then
/// bid reference — the same tie-breaking idiom as `A_winner`.
fn rank_cmp(a: &StandbyEntry, b: &StandbyEntry) -> std::cmp::Ordering {
    let abs = |e: &StandbyEntry| e.price_per_round * f64::from(e.budget);
    a.price_per_round
        .total_cmp(&b.price_per_round)
        .then(abs(a).total_cmp(&abs(b)))
        .then(a.bid_ref.cmp(&b.bid_ref))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auction::run_auction;
    use crate::bid::{Bid, ClientProfile};
    use crate::config::AuctionConfig;
    use crate::types::{ClientId, Window};

    /// K = 1, T = 4; five clients with full windows and distinct prices.
    fn instance() -> Instance {
        let cfg = AuctionConfig::builder()
            .max_rounds(4)
            .clients_per_round(1)
            .round_time_limit(100.0)
            .build()
            .unwrap();
        let mut inst = Instance::new(cfg);
        for price in [3.0, 5.0, 8.0, 13.0, 21.0] {
            let c = inst.add_client(ClientProfile::new(2.0, 5.0).unwrap());
            inst.add_bid(
                c,
                Bid::new(price, 0.6, Window::new(Round(1), Round(4)), 4).unwrap(),
            )
            .unwrap();
        }
        inst
    }

    #[test]
    fn pool_excludes_every_winning_client() {
        let inst = instance();
        let outcome = run_auction(&inst).unwrap();
        let pool = standby_pool(&inst, &outcome);
        let winners: Vec<u32> = outcome
            .solution()
            .winners()
            .iter()
            .map(|w| w.bid_ref.client.0)
            .collect();
        for (_, entries) in pool.iter() {
            for e in entries {
                assert!(!winners.contains(&e.bid_ref.client.0));
            }
        }
    }

    #[test]
    fn ranking_is_ascending_and_payments_are_critical_values() {
        let inst = instance();
        let outcome = run_auction(&inst).unwrap();
        let pool = standby_pool(&inst, &outcome);
        for (t, entries) in pool.iter() {
            assert_eq!(entries.len(), 4, "4 losers back round {t:?}");
            for pair in entries.windows(2) {
                assert!(pair[0].price_per_round <= pair[1].price_per_round);
                // Rank r's payment is rank r+1's claim.
                assert_eq!(pair[0].payment_per_round, pair[1].price_per_round);
            }
            let last = entries.last().unwrap();
            assert_eq!(last.payment_per_round, last.price_per_round);
        }
    }

    #[test]
    fn every_entry_is_individually_rational() {
        let inst = instance();
        let outcome = run_auction(&inst).unwrap();
        let pool = standby_pool(&inst, &outcome);
        for (_, entries) in pool.iter() {
            for e in entries {
                assert!(e.is_individually_rational());
            }
        }
    }

    #[test]
    fn windows_gate_round_membership() {
        let cfg = AuctionConfig::builder()
            .max_rounds(4)
            .clients_per_round(1)
            .build()
            .unwrap();
        let mut inst = Instance::new(cfg);
        let winner = inst.add_client(ClientProfile::new(1.0, 1.0).unwrap());
        inst.add_bid(
            winner,
            Bid::new(1.0, 0.5, Window::new(Round(1), Round(4)), 4).unwrap(),
        )
        .unwrap();
        // A loser available only in rounds 2–3.
        let part_time = inst.add_client(ClientProfile::new(1.0, 1.0).unwrap());
        inst.add_bid(
            part_time,
            Bid::new(4.0, 0.5, Window::new(Round(2), Round(3)), 2).unwrap(),
        )
        .unwrap();
        let outcome = run_auction(&inst).unwrap();
        let pool = standby_pool(&inst, &outcome);
        assert_eq!(pool.depth(Round(1)), 0);
        assert_eq!(pool.depth(Round(2)), 1);
        assert_eq!(pool.depth(Round(3)), 1);
        assert_eq!(pool.depth(Round(4)), 0);
        assert_eq!(pool.min_depth(), 0);
        assert!(!pool.is_empty());
        let e = &pool.for_round(Round(2))[0];
        assert_eq!(e.bid_ref.client, part_time);
        assert_eq!(e.price_per_round, 2.0);
        assert_eq!(e.budget, 2);
    }

    #[test]
    fn one_entry_per_client_even_with_multiple_bids() {
        let cfg = AuctionConfig::builder()
            .max_rounds(3)
            .clients_per_round(1)
            .build()
            .unwrap();
        let mut inst = Instance::new(cfg);
        let winner = inst.add_client(ClientProfile::new(1.0, 1.0).unwrap());
        inst.add_bid(
            winner,
            Bid::new(1.0, 0.5, Window::new(Round(1), Round(3)), 3).unwrap(),
        )
        .unwrap();
        let multi = inst.add_client(ClientProfile::new(1.0, 1.0).unwrap());
        // Two qualified bids: per-round costs 9/3 = 3 and 4/2 = 2.
        inst.add_bid(
            multi,
            Bid::new(9.0, 0.5, Window::new(Round(1), Round(3)), 3).unwrap(),
        )
        .unwrap();
        inst.add_bid(
            multi,
            Bid::new(4.0, 0.5, Window::new(Round(1), Round(3)), 2).unwrap(),
        )
        .unwrap();
        let outcome = run_auction(&inst).unwrap();
        let pool = standby_pool(&inst, &outcome);
        for t in 1..=3 {
            let entries = pool.for_round(Round(t));
            assert_eq!(entries.len(), 1, "one entry per client in round {t}");
            assert_eq!(
                entries[0].price_per_round, 2.0,
                "cheapest per-round bid wins"
            );
        }
    }

    #[test]
    fn pool_is_deterministic() {
        let inst = instance();
        let outcome = run_auction(&inst).unwrap();
        assert_eq!(standby_pool(&inst, &outcome), standby_pool(&inst, &outcome));
    }

    #[test]
    fn sole_loser_is_paid_its_own_claim() {
        let cfg = AuctionConfig::builder()
            .max_rounds(2)
            .clients_per_round(1)
            .build()
            .unwrap();
        let mut inst = Instance::new(cfg);
        for price in [2.0, 6.0] {
            let c = inst.add_client(ClientProfile::new(1.0, 1.0).unwrap());
            inst.add_bid(
                c,
                Bid::new(price, 0.5, Window::new(Round(1), Round(2)), 2).unwrap(),
            )
            .unwrap();
        }
        let outcome = run_auction(&inst).unwrap();
        let pool = standby_pool(&inst, &outcome);
        let e = &pool.for_round(Round(1))[0];
        assert_eq!(e.bid_ref.client, ClientId(1));
        assert_eq!(e.payment_per_round, e.price_per_round);
        assert!(e.is_individually_rational());
    }

    #[test]
    fn out_of_horizon_round_has_no_standbys() {
        let inst = instance();
        let outcome = run_auction(&inst).unwrap();
        let pool = standby_pool(&inst, &outcome);
        assert!(pool.for_round(Round(pool.horizon() + 1)).is_empty());
    }
}

//! `fl-auction` — a faithful implementation of the **truthful procurement
//! auction for federated learning** from Zhou et al., *"A Truthful
//! Procurement Auction for Incentivizing Heterogeneous Clients in Federated
//! Learning"* (ICDCS 2021).
//!
//! A cloud server needs `K` clients in every global iteration of a
//! federated-learning job; heterogeneous mobile clients each submit up to
//! `J` sealed bids — price, local accuracy, availability window and a
//! battery-limited round count. The mechanism, `A_FL`, must decide how many
//! global iterations to run (`T_g`, coupled to the winners' accuracies),
//! which bids to accept, when to schedule each winner, and what to pay —
//! minimising social cost while staying truthful and individually rational.
//!
//! # Architecture
//!
//! * [`Instance`] holds the configuration ([`AuctionConfig`]), client
//!   profiles and bids.
//! * [`run_auction`] executes Alg. 1: it enumerates the admissible horizons
//!   `T̂_g ∈ [T_0, T]`, builds a qualified bid set per horizon
//!   ([`qualify()`]), solves each winner-determination problem with
//!   [`AWinner`] (Alg. 2, greedy over representative schedules) and the
//!   critical-value payment rule (Alg. 3), and returns the cheapest
//!   feasible [`AuctionOutcome`].
//! * Every `A_winner` run carries a [`DualCertificate`]: the dual variables
//!   of the relaxed compact-exponential ILP, giving the per-instance
//!   approximation bound `H_{T̂_g}·ω` of Lemma 5.
//! * Alternative WDP algorithms (the paper's benchmarks, the exact
//!   branch-and-bound in `fl-exact`) plug into the same outer loop through
//!   the [`WdpSolver`] trait; [`verify`] re-checks any solver's output
//!   against ILP (6) independently.
//! * The horizon enumeration itself runs on a zero-dependency scoped
//!   worker pool selected by [`SweepStrategy`] (default: `FL_THREADS` or
//!   the machine's available parallelism), with per-horizon qualification
//!   served incrementally from [`SweepPrecomp`]. Outcomes are
//!   bit-identical across strategies; see `ARCHITECTURE.md`.
//!
//! # Quickstart
//!
//! ```
//! use fl_auction::{
//!     run_auction, AuctionConfig, Bid, ClientProfile, Instance, Round, Window,
//! };
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = AuctionConfig::builder()
//!     .max_rounds(10)       // T: at most 10 global iterations
//!     .clients_per_round(2) // K: 2 clients must train in every iteration
//!     .round_time_limit(60.0)
//!     .build()?;
//! let mut instance = Instance::new(cfg);
//! for i in 0..5 {
//!     let client = instance.add_client(ClientProfile::new(5.0, 10.0)?);
//!     let bid = Bid::new(
//!         10.0 + i as f64,                    // claimed cost b_ij
//!         0.5,                                // local accuracy θ_ij
//!         Window::new(Round(1), Round(10)),   // availability [a_ij, d_ij]
//!         10,                                 // participation rounds c_ij
//!     )?;
//!     instance.add_bid(client, bid)?;
//! }
//! let outcome = run_auction(&instance)?;
//! println!(
//!     "T_g = {}, social cost = {}",
//!     outcome.horizon(),
//!     outcome.social_cost()
//! );
//! for w in outcome.solution().winners() {
//!     println!("{} serves {:?} for payment {}", w.bid_ref, w.schedule, w.payment);
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
// Library code reports through `fl-telemetry` events, never raw stdio.
#![warn(clippy::print_stdout)]
#![warn(clippy::print_stderr)]

pub mod analysis;
mod auction;
mod bid;
pub mod columnar;
mod config;
pub mod coverage;
mod error;
pub mod io;
pub mod online;
mod parallel;
mod payment;
pub mod preprocess;
mod qualify;
pub mod recover;
mod schedule;
pub mod serial;
pub mod stats;
pub mod truthful;
mod types;
pub mod verify;
mod wdp;
mod winner;

pub use auction::{run_auction, run_auction_with, sweep_horizons, AuctionOutcome, HorizonOutcome};
pub use bid::{Bid, ClientProfile, Instance};
pub use columnar::{ColumnarBids, CoverageIndex};
pub use config::{AuctionConfig, AuctionConfigBuilder, LocalIterationModel, QualifyMode};
pub use coverage::Coverage;
pub use error::{AuctionError, WdpError};
pub use online::{DecisionReason, OnlineAuction, OnlineCounters, OnlineDecision, OnlineOutcome};
pub use parallel::SweepStrategy;
pub use payment::{payment, PaymentRule};
pub use preprocess::SweepPrecomp;
pub use qualify::{min_horizon, qualify, QualifiedBid};
pub use recover::{standby_pool, StandbyEntry, StandbyPool};
pub use schedule::{pick_schedule, pick_schedule_into, representative_schedule, SchedulePolicy};
pub use stats::{EconomicHealth, MechanismStats};
pub use types::{BidRef, ClientId, Round, Window};
pub use wdp::{DualCertificate, Wdp, WdpSolution, WdpSolver, WinnerEntry};
pub use winner::{AWinner, SelectionStep};

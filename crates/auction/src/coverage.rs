//! Round-coverage bookkeeping for greedy winner determination.
//!
//! Tracks `γ_t` — how many selected clients are scheduled in each global
//! iteration — and the set-cover utility `R(S) = Σ_t min(γ_t, K)` from
//! Sec. V-B of the paper.

use crate::types::Round;

/// Mutable coverage state over a fixed horizon.
///
/// # Example
///
/// ```
/// use fl_auction::{Coverage, Round};
///
/// let mut cov = Coverage::new(3, 2); // 3 rounds, K = 2
/// assert_eq!(cov.total_demand(), 6);
/// cov.add(&[Round(1), Round(2)]);
/// cov.add(&[Round(1), Round(3)]);
/// assert_eq!(cov.covered(), 4);
/// assert!(!cov.is_available(Round(1)), "round 1 already has K clients");
/// assert!(!cov.is_complete());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coverage {
    k: u32,
    gamma: Vec<u32>,
    covered: u64,
}

impl Coverage {
    /// Empty coverage for rounds `1..=horizon` with per-round demand `k`.
    ///
    /// # Panics
    ///
    /// Panics if `horizon` or `k` is zero.
    pub fn new(horizon: u32, k: u32) -> Self {
        assert!(horizon >= 1, "horizon must be at least 1");
        assert!(k >= 1, "per-round demand must be at least 1");
        Coverage {
            k,
            gamma: vec![0; horizon as usize],
            covered: 0,
        }
    }

    /// The per-round demand `K`.
    pub fn demand_per_round(&self) -> u32 {
        self.k
    }

    /// The horizon `T̂_g`.
    pub fn horizon(&self) -> u32 {
        self.gamma.len() as u32
    }

    /// Total demand `K·T̂_g` — the value `R(S)` must reach.
    pub fn total_demand(&self) -> u64 {
        u64::from(self.k) * self.gamma.len() as u64
    }

    /// Current utility `R(S) = Σ_t min(γ_t, K)`.
    pub fn covered(&self) -> u64 {
        self.covered
    }

    /// Whether every round already has `K` scheduled clients.
    pub fn is_complete(&self) -> bool {
        self.covered == self.total_demand()
    }

    /// Current load `γ_t` of a round.
    ///
    /// # Panics
    ///
    /// Panics if the round lies outside the horizon.
    pub fn load(&self, t: Round) -> u32 {
        self.gamma[t.index()]
    }

    /// Whether round `t` still needs clients (`γ_t < K`).
    ///
    /// # Panics
    ///
    /// Panics if the round lies outside the horizon.
    pub fn is_available(&self, t: Round) -> bool {
        self.gamma[t.index()] < self.k
    }

    /// Marginal utility `R_il(S)` of scheduling one client in each round of
    /// `rounds`: the number of those rounds that are still available.
    ///
    /// # Panics
    ///
    /// Panics if any round lies outside the horizon.
    pub fn gain(&self, rounds: &[Round]) -> u32 {
        rounds.iter().filter(|&&t| self.is_available(t)).count() as u32
    }

    /// The still-available subset of `rounds` — the paper's `F_il` at the
    /// moment of selection.
    pub fn available_subset(&self, rounds: &[Round]) -> Vec<Round> {
        rounds
            .iter()
            .copied()
            .filter(|&t| self.is_available(t))
            .collect()
    }

    /// Schedules one client in each round of `rounds`, updating `γ` and
    /// `R(S)`.
    ///
    /// # Panics
    ///
    /// Panics if any round lies outside the horizon or appears twice in
    /// `rounds` *and* that double-counting is detectable (`rounds` must be
    /// distinct by contract; duplicates inflate `γ` for the same client).
    pub fn add(&mut self, rounds: &[Round]) {
        debug_assert!(
            {
                let mut seen = vec![false; self.gamma.len()];
                rounds
                    .iter()
                    .all(|t| !std::mem::replace(&mut seen[t.index()], true))
            },
            "a schedule must not contain duplicate rounds"
        );
        for &t in rounds {
            let g = &mut self.gamma[t.index()];
            if *g < self.k {
                self.covered += 1;
            }
            *g += 1;
        }
    }

    /// Rounds sorted by `(γ_t, t)` — the non-decreasing-load order of
    /// Alg. 2 line 3 with a deterministic tie-break.
    pub fn rounds_by_load(&self) -> Vec<Round> {
        let mut order: Vec<Round> = (1..=self.horizon()).map(Round).collect();
        order.sort_by_key(|t| (self.gamma[t.index()], t.0));
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_coverage_is_empty() {
        let c = Coverage::new(4, 2);
        assert_eq!(c.total_demand(), 8);
        assert_eq!(c.covered(), 0);
        assert!(!c.is_complete());
        assert!(c.is_available(Round(1)));
        assert_eq!(c.load(Round(3)), 0);
    }

    #[test]
    fn gain_saturates_at_k() {
        let mut c = Coverage::new(3, 1);
        assert_eq!(c.gain(&[Round(1), Round(2)]), 2);
        c.add(&[Round(1), Round(2)]);
        // Round 1 and 2 are full (K = 1); only round 3 contributes.
        assert_eq!(c.gain(&[Round(1), Round(3)]), 1);
        assert_eq!(c.covered(), 2);
        c.add(&[Round(1), Round(3)]);
        assert_eq!(c.covered(), 3);
        assert!(c.is_complete());
        assert_eq!(c.load(Round(1)), 2, "overflow participation is recorded");
    }

    #[test]
    fn available_subset_matches_gain() {
        let mut c = Coverage::new(3, 1);
        c.add(&[Round(2)]);
        let sched = [Round(1), Round(2), Round(3)];
        assert_eq!(c.available_subset(&sched), vec![Round(1), Round(3)]);
        assert_eq!(c.gain(&sched) as usize, c.available_subset(&sched).len());
    }

    #[test]
    fn rounds_by_load_orders_by_gamma_then_index() {
        let mut c = Coverage::new(4, 3);
        c.add(&[Round(2), Round(3)]);
        c.add(&[Round(3)]);
        assert_eq!(
            c.rounds_by_load(),
            vec![Round(1), Round(4), Round(2), Round(3)]
        );
    }

    #[test]
    #[should_panic]
    fn out_of_horizon_round_panics() {
        let c = Coverage::new(2, 1);
        let _ = c.load(Round(3));
    }

    #[test]
    fn completion_requires_every_round() {
        let mut c = Coverage::new(2, 2);
        c.add(&[Round(1)]);
        c.add(&[Round(1)]);
        assert!(!c.is_complete(), "round 2 is still empty");
        c.add(&[Round(2)]);
        c.add(&[Round(2)]);
        assert!(c.is_complete());
    }
}

//! Server-side auction parameters and the local-iteration model.

use crate::error::AuctionError;
use crate::parallel::SweepStrategy;

/// How the number of local iterations `T_l(θ)` needed to reach local
/// accuracy `θ` is computed.
///
/// The paper's theory (Eq. 2) uses `T_l(θ) = η·log(1/θ)`; its simulations
/// (§VII-A) use the simplified `T_l(θ) = ⌊10·(1−θ)⌋`. Both are provided so
/// that analytic experiments and paper-faithful reproductions can pick the
/// matching model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LocalIterationModel {
    /// `T_l(θ) = η·log(1/θ)` (natural logarithm), Eq. (2).
    LogInverse {
        /// The positive constant `η`.
        eta: f64,
    },
    /// `T_l(θ) = ⌊scale·(1−θ)⌋`, the paper's simulation shortcut with
    /// `scale = 10`.
    Linear {
        /// The multiplier applied to `1−θ` before flooring.
        scale: f64,
    },
}

impl LocalIterationModel {
    /// The paper's simulation model, `T_l(θ) = ⌊10(1−θ)⌋`.
    pub fn paper() -> Self {
        LocalIterationModel::Linear { scale: 10.0 }
    }

    /// Number of local iterations required for local accuracy `theta`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `theta` is outside `(0, 1]`.
    pub fn local_iterations(self, theta: f64) -> f64 {
        debug_assert!(
            theta > 0.0 && theta <= 1.0,
            "θ must lie in (0, 1], got {theta}"
        );
        match self {
            LocalIterationModel::LogInverse { eta } => eta * (1.0 / theta).ln(),
            LocalIterationModel::Linear { scale } => (scale * (1.0 - theta)).floor(),
        }
    }
}

impl Default for LocalIterationModel {
    fn default() -> Self {
        LocalIterationModel::paper()
    }
}

/// Which reading of Alg. 1 line 6 is used to qualify bids for a fixed
/// `T̂_g`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QualifyMode {
    /// The evident intent: the truncated window `[a, min(d, T̂_g)]` must
    /// contain at least `c` rounds. This is the default.
    #[default]
    Intent,
    /// The literal condition printed in the paper, `a + c ≤ T̂_g`, kept for
    /// the qualification ablation. It both off-by-ones the window and
    /// ignores `d_ij`, so it can admit bids whose own window is too short —
    /// those are additionally rejected to keep schedules well-defined.
    Literal,
}

/// Immutable parameters the cloud server announces before collecting bids.
///
/// Build one with [`AuctionConfig::builder`]:
///
/// ```
/// use fl_auction::AuctionConfig;
///
/// # fn main() -> Result<(), fl_auction::AuctionError> {
/// let cfg = AuctionConfig::builder()
///     .max_rounds(50)      // T
///     .clients_per_round(20) // K
///     .round_time_limit(60.0) // t_max
///     .build()?;
/// assert_eq!(cfg.max_rounds(), 50);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct AuctionConfig {
    max_rounds: u32,
    clients_per_round: u32,
    round_time_limit: f64,
    local_model: LocalIterationModel,
    qualify_mode: QualifyMode,
    sweep_strategy: SweepStrategy,
}

/// Equality compares the **announced** auction parameters only. The
/// execution-side [`SweepStrategy`] is deliberately excluded: it cannot
/// change any outcome (sweeps are bit-identical across strategies), it is
/// not part of the paper's mechanism, and it is not serialised by
/// [`crate::io`] — so a config round-tripped through the text format
/// compares equal to the original.
impl PartialEq for AuctionConfig {
    fn eq(&self, other: &Self) -> bool {
        self.max_rounds == other.max_rounds
            && self.clients_per_round == other.clients_per_round
            && self.round_time_limit == other.round_time_limit
            && self.local_model == other.local_model
            && self.qualify_mode == other.qualify_mode
    }
}

impl AuctionConfig {
    /// Starts building a configuration. Defaults mirror the paper's
    /// simulation setup: `T = 50`, `K = 20`, `t_max = 60`, the linear
    /// local-iteration model, and intent-mode qualification.
    pub fn builder() -> AuctionConfigBuilder {
        AuctionConfigBuilder::default()
    }

    /// The paper's default evaluation configuration.
    pub fn paper_default() -> Self {
        AuctionConfig {
            max_rounds: 50,
            clients_per_round: 20,
            round_time_limit: 60.0,
            local_model: LocalIterationModel::paper(),
            qualify_mode: QualifyMode::Intent,
            sweep_strategy: SweepStrategy::from_env(),
        }
    }

    /// Maximum number of global iterations `T` the server will run.
    pub fn max_rounds(&self) -> u32 {
        self.max_rounds
    }

    /// Number of clients `K` required in every global iteration.
    pub fn clients_per_round(&self) -> u32 {
        self.clients_per_round
    }

    /// Wall-clock budget `t_max` for one global iteration.
    pub fn round_time_limit(&self) -> f64 {
        self.round_time_limit
    }

    /// The local-iteration model `T_l(·)`.
    pub fn local_model(&self) -> LocalIterationModel {
        self.local_model
    }

    /// The qualification reading in force.
    pub fn qualify_mode(&self) -> QualifyMode {
        self.qualify_mode
    }

    /// How the horizon sweep is scheduled (default: `FL_THREADS` or the
    /// machine's available parallelism — see [`SweepStrategy::from_env`]).
    pub fn sweep_strategy(&self) -> SweepStrategy {
        self.sweep_strategy
    }
}

impl Default for AuctionConfig {
    fn default() -> Self {
        AuctionConfig::paper_default()
    }
}

/// Builder for [`AuctionConfig`]; see the type-level example.
#[derive(Debug, Clone)]
pub struct AuctionConfigBuilder {
    max_rounds: u32,
    clients_per_round: u32,
    round_time_limit: f64,
    local_model: LocalIterationModel,
    qualify_mode: QualifyMode,
    sweep_strategy: SweepStrategy,
}

impl Default for AuctionConfigBuilder {
    fn default() -> Self {
        let d = AuctionConfig::paper_default();
        AuctionConfigBuilder {
            max_rounds: d.max_rounds,
            clients_per_round: d.clients_per_round,
            round_time_limit: d.round_time_limit,
            local_model: d.local_model,
            qualify_mode: d.qualify_mode,
            sweep_strategy: d.sweep_strategy,
        }
    }
}

impl AuctionConfigBuilder {
    /// Sets `T`, the maximum number of global iterations.
    pub fn max_rounds(mut self, t: u32) -> Self {
        self.max_rounds = t;
        self
    }

    /// Sets `K`, the clients required per global iteration.
    pub fn clients_per_round(mut self, k: u32) -> Self {
        self.clients_per_round = k;
        self
    }

    /// Sets `t_max`, the per-round wall-clock limit.
    pub fn round_time_limit(mut self, t_max: f64) -> Self {
        self.round_time_limit = t_max;
        self
    }

    /// Sets the local-iteration model.
    pub fn local_model(mut self, model: LocalIterationModel) -> Self {
        self.local_model = model;
        self
    }

    /// Sets the qualification reading (default: [`QualifyMode::Intent`]).
    pub fn qualify_mode(mut self, mode: QualifyMode) -> Self {
        self.qualify_mode = mode;
        self
    }

    /// Sets the horizon-sweep scheduling strategy (default:
    /// [`SweepStrategy::from_env`]). Purely an execution knob — outcomes
    /// and sweep results are bit-identical across strategies.
    pub fn sweep_strategy(mut self, strategy: SweepStrategy) -> Self {
        self.sweep_strategy = strategy;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`AuctionError::InvalidInstance`] if `T = 0`, `K = 0`, the
    /// time limit is not positive and finite, or the local model's constant
    /// is not positive.
    pub fn build(self) -> Result<AuctionConfig, AuctionError> {
        if self.max_rounds == 0 {
            return Err(AuctionError::invalid("max_rounds (T) must be at least 1"));
        }
        if self.clients_per_round == 0 {
            return Err(AuctionError::invalid(
                "clients_per_round (K) must be at least 1",
            ));
        }
        if !(self.round_time_limit.is_finite() && self.round_time_limit > 0.0) {
            return Err(AuctionError::invalid(
                "round_time_limit (t_max) must be positive and finite",
            ));
        }
        let model_ok = match self.local_model {
            LocalIterationModel::LogInverse { eta } => eta.is_finite() && eta > 0.0,
            LocalIterationModel::Linear { scale } => scale.is_finite() && scale > 0.0,
        };
        if !model_ok {
            return Err(AuctionError::invalid(
                "local iteration model constant must be positive and finite",
            ));
        }
        Ok(AuctionConfig {
            max_rounds: self.max_rounds,
            clients_per_round: self.clients_per_round,
            round_time_limit: self.round_time_limit,
            local_model: self.local_model,
            qualify_mode: self.qualify_mode,
            // Normalise hand-built degenerate strategies (0/1 threads).
            sweep_strategy: SweepStrategy::with_threads(self.sweep_strategy.threads()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_section_vii() {
        let cfg = AuctionConfig::paper_default();
        assert_eq!(cfg.max_rounds(), 50);
        assert_eq!(cfg.clients_per_round(), 20);
        assert_eq!(cfg.round_time_limit(), 60.0);
        assert_eq!(
            cfg.local_model(),
            LocalIterationModel::Linear { scale: 10.0 }
        );
        assert_eq!(cfg.qualify_mode(), QualifyMode::Intent);
        assert_eq!(AuctionConfig::default(), cfg);
    }

    #[test]
    fn linear_model_matches_paper_examples() {
        let m = LocalIterationModel::paper();
        // θ = 0.3 → ⌊10·0.7⌋ = 7; θ = 0.8 → ⌊10·0.2⌋ = 2 — computed along
        // the model's own fp path (1 − θ), which differs from literal 0.7.
        assert_eq!(m.local_iterations(0.3), (10.0 * (1.0 - 0.3f64)).floor());
        assert_eq!(m.local_iterations(0.8), (10.0 * (1.0 - 0.8f64)).floor());
        assert_eq!(m.local_iterations(1.0), 0.0);
    }

    #[test]
    fn log_model_is_decreasing_in_theta() {
        let m = LocalIterationModel::LogInverse { eta: 3.0 };
        assert!(m.local_iterations(0.2) > m.local_iterations(0.5));
        assert!(m.local_iterations(0.5) > m.local_iterations(0.9));
        assert!((m.local_iterations(1.0)).abs() < 1e-12);
    }

    #[test]
    fn builder_rejects_bad_parameters() {
        assert!(AuctionConfig::builder().max_rounds(0).build().is_err());
        assert!(AuctionConfig::builder()
            .clients_per_round(0)
            .build()
            .is_err());
        assert!(AuctionConfig::builder()
            .round_time_limit(0.0)
            .build()
            .is_err());
        assert!(AuctionConfig::builder()
            .round_time_limit(f64::NAN)
            .build()
            .is_err());
        assert!(AuctionConfig::builder()
            .local_model(LocalIterationModel::LogInverse { eta: -1.0 })
            .build()
            .is_err());
    }

    #[test]
    fn sweep_strategy_is_configurable_and_excluded_from_equality() {
        let seq = AuctionConfig::builder()
            .sweep_strategy(SweepStrategy::Sequential)
            .build()
            .unwrap();
        assert_eq!(seq.sweep_strategy(), SweepStrategy::Sequential);
        let par = AuctionConfig::builder()
            .sweep_strategy(SweepStrategy::Parallel { threads: 4 })
            .build()
            .unwrap();
        assert_eq!(par.sweep_strategy(), SweepStrategy::Parallel { threads: 4 });
        // Degenerate hand-built strategies normalise to sequential.
        let one = AuctionConfig::builder()
            .sweep_strategy(SweepStrategy::Parallel { threads: 1 })
            .build()
            .unwrap();
        assert_eq!(one.sweep_strategy(), SweepStrategy::Sequential);
        // An execution knob, not an announced auction parameter.
        assert_eq!(seq, par);
    }

    #[test]
    fn builder_sets_every_field() {
        let cfg = AuctionConfig::builder()
            .max_rounds(10)
            .clients_per_round(2)
            .round_time_limit(30.0)
            .local_model(LocalIterationModel::LogInverse { eta: 2.0 })
            .qualify_mode(QualifyMode::Literal)
            .build()
            .unwrap();
        assert_eq!(cfg.max_rounds(), 10);
        assert_eq!(cfg.clients_per_round(), 2);
        assert_eq!(cfg.round_time_limit(), 30.0);
        assert_eq!(
            cfg.local_model(),
            LocalIterationModel::LogInverse { eta: 2.0 }
        );
        assert_eq!(cfg.qualify_mode(), QualifyMode::Literal);
    }
}

//! Stable, named views of the mechanism's deterministic health metrics.
//!
//! The telemetry [`Snapshot`] exposes counters as string keys
//! (`"winner.greedy_iterations"`, …), which is fine for traces but brittle
//! for consumers that persist records across PRs — a renamed key would
//! silently read as zero. This module is the single point of truth tying
//! those keys to typed fields: [`MechanismStats::from_snapshot`] lives next
//! to the code that emits the counters, and [`EconomicHealth`] derives the
//! auction's economic invariants (payment overhead, dual-certificate
//! approximation ratios) from the outcome types directly. The bench suite
//! embeds both in every `BENCH_history.jsonl` record, where they double as
//! a cross-platform correctness oracle: for a fixed seed and fixed code
//! every field must reproduce bit-for-bit.

use crate::auction::AuctionOutcome;
use crate::bid::Instance;
use crate::wdp::WdpSolution;
use fl_telemetry::Snapshot;

/// Deterministic mechanism counters, extracted from a recorder
/// [`Snapshot`] of one instrumented run.
///
/// Every field is reproducible for a fixed seed and fixed code; none is
/// wall-clock dependent. Missing counters (phases that never ran) read as
/// zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MechanismStats {
    /// Bids examined by qualification across all horizons.
    pub qualify_examined: u64,
    /// Bids rejected by the accuracy gate (constraint (6b)).
    pub qualify_rejected_accuracy: u64,
    /// Bids rejected by the round-time gate (constraint (6d)).
    pub qualify_rejected_time: u64,
    /// Bids rejected because their window cannot host `c_ij` rounds.
    pub qualify_rejected_window: u64,
    /// Bids admitted into some horizon's WDP.
    pub qualify_accepted: u64,
    /// Greedy set-cover iterations across all `A_winner` solves.
    pub greedy_iterations: u64,
    /// Lazy-queue refreshes inside `A_winner`'s candidate selection.
    pub lazy_refreshes: u64,
    /// Winners paid their own bid for lack of a runner-up candidate.
    pub payment_no_runner_up: u64,
    /// `A_winner` re-solves probed by the Myerson payment bisection.
    pub bisection_probes: u64,
    /// Horizons enumerated by the `A_FL` outer loop.
    pub horizons_swept: u64,
    /// Horizons skipped by the cost-lower-bound prune.
    pub horizons_pruned: u64,
    /// Horizons whose WDP solved feasibly.
    pub horizons_feasible: u64,
    /// Horizons rejected by the obvious-infeasibility pre-check.
    pub horizons_obviously_infeasible: u64,
    /// Entries placed into the standby pool across all rounds.
    pub standby_entries: u64,
}

impl MechanismStats {
    /// Reads the mechanism counters out of a snapshot.
    ///
    /// This is the only place the counter key strings are interpreted;
    /// downstream consumers (the bench suite's schema, dashboards) use the
    /// named fields.
    pub fn from_snapshot(snapshot: &Snapshot) -> MechanismStats {
        let c = |key: &str| snapshot.counters.get(key).copied().unwrap_or(0);
        MechanismStats {
            qualify_examined: c("qualify.examined"),
            qualify_rejected_accuracy: c("qualify.rejected_accuracy"),
            qualify_rejected_time: c("qualify.rejected_time"),
            qualify_rejected_window: c("qualify.rejected_window"),
            qualify_accepted: c("qualify.accepted"),
            greedy_iterations: c("winner.greedy_iterations"),
            lazy_refreshes: c("winner.lazy_refreshes"),
            payment_no_runner_up: c("payment.no_runner_up"),
            bisection_probes: c("truthful.bisection_probes"),
            horizons_swept: c("afl.horizons_swept"),
            horizons_pruned: c("afl.horizons_pruned"),
            horizons_feasible: c("afl.horizons_feasible"),
            horizons_obviously_infeasible: c("afl.horizons_obviously_infeasible"),
            standby_entries: c("standby.entries"),
        }
    }

    /// Total qualification rejections across all three gates.
    pub fn qualification_rejections(&self) -> u64 {
        self.qualify_rejected_accuracy + self.qualify_rejected_time + self.qualify_rejected_window
    }
}

/// The economic invariants of one solved auction (or one fixed-horizon WDP
/// solution) — the quantities an auction service would monitor alongside
/// latency.
///
/// Everything here is deterministic for a fixed seed; the approximation
/// ratios are `NaN` (encoded as `null` in JSON) when the solver emitted no
/// dual certificate (baselines, the exact solver).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EconomicHealth {
    /// Social cost `Σ b_ij x_ij` of the chosen solution.
    pub social_cost: f64,
    /// Total remuneration `Σ p_i` paid to winners.
    pub total_payment: f64,
    /// Payment overhead `Σ p_i / Σ b_ij` — how much truthfulness costs on
    /// top of the social cost (≥ 1 under individual rationality).
    pub payment_overhead: f64,
    /// A-priori approximation guarantee `H_{T̂_g}·ω` from the dual
    /// certificate (Lemma 5).
    pub approx_ratio_bound: f64,
    /// Empirical bound `P / D` from weak duality (tighter; ≥ 1).
    pub approx_ratio_empirical: f64,
    /// Number of winning bids.
    pub winners: u64,
    /// The chosen horizon `T_g*` (or the WDP's fixed `T̂_g`).
    pub horizon: u64,
    /// Standby-pool entries backing the outcome (0 for a bare WDP
    /// solution, which has no instance to recruit standbys from).
    pub standby_pool: u64,
}

impl EconomicHealth {
    /// Health of a fixed-horizon WDP solution (no standby pool).
    pub fn of_solution(solution: &WdpSolution) -> EconomicHealth {
        let cost = solution.cost();
        let payment = solution.total_payment();
        let (bound, empirical) = match solution.certificate() {
            Some(cert) => (cert.ratio_bound(), cert.empirical_bound(cost)),
            None => (f64::NAN, f64::NAN),
        };
        EconomicHealth {
            social_cost: cost,
            total_payment: payment,
            payment_overhead: if cost > 0.0 { payment / cost } else { f64::NAN },
            approx_ratio_bound: bound,
            approx_ratio_empirical: empirical,
            winners: solution.winners().len() as u64,
            horizon: u64::from(solution.horizon()),
            standby_pool: 0,
        }
    }

    /// Health of a full auction outcome, including the standby pool the
    /// instance can recruit behind it.
    pub fn of_outcome(instance: &Instance, outcome: &AuctionOutcome) -> EconomicHealth {
        let pool = outcome.standby_pool(instance);
        let entries: usize = pool.iter().map(|(_, ranked)| ranked.len()).sum();
        EconomicHealth {
            standby_pool: entries as u64,
            ..EconomicHealth::of_solution(outcome.solution())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auction::run_auction;
    use crate::bid::{Bid, ClientProfile};
    use crate::config::AuctionConfig;
    use crate::types::{Round, Window};
    use fl_telemetry::{install_local, Recorder};
    use std::sync::Arc;

    fn small_instance() -> Instance {
        let cfg = AuctionConfig::builder()
            .max_rounds(4)
            .clients_per_round(1)
            .build()
            .unwrap();
        let mut inst = Instance::new(cfg);
        for price in [3.0, 5.0, 9.0] {
            let c = inst.add_client(ClientProfile::new(2.0, 5.0).unwrap());
            inst.add_bid(
                c,
                Bid::new(price, 0.6, Window::new(Round(1), Round(4)), 4).unwrap(),
            )
            .unwrap();
        }
        inst
    }

    #[test]
    fn stats_mirror_the_recorder_counters() {
        let rec = Arc::new(Recorder::default());
        let guard = install_local(rec.clone());
        let inst = small_instance();
        let outcome = run_auction(&inst).unwrap();
        let _pool = outcome.standby_pool(&inst);
        drop(guard);
        let snap = rec.snapshot();
        let stats = MechanismStats::from_snapshot(&snap);
        assert_eq!(stats.horizons_swept, snap.counters["afl.horizons_swept"]);
        assert!(stats.qualify_examined > 0);
        assert!(stats.greedy_iterations > 0);
        assert!(stats.standby_entries > 0);
        assert_eq!(
            stats.qualification_rejections(),
            stats.qualify_rejected_accuracy
                + stats.qualify_rejected_time
                + stats.qualify_rejected_window
        );
        // A counter that never fired reads as zero, not as a panic.
        assert_eq!(MechanismStats::default().bisection_probes, 0);
    }

    #[test]
    fn economic_health_of_outcome_adds_the_standby_pool() {
        let inst = small_instance();
        let outcome = run_auction(&inst).unwrap();
        let health = EconomicHealth::of_outcome(&inst, &outcome);
        assert_eq!(health.social_cost, outcome.social_cost());
        assert_eq!(health.total_payment, outcome.solution().total_payment());
        assert!(health.payment_overhead >= 1.0 - 1e-12);
        assert!(health.approx_ratio_bound >= health.approx_ratio_empirical - 1e-9);
        assert!(health.approx_ratio_empirical >= 1.0 - 1e-9);
        assert_eq!(health.winners, 1);
        // Two losing clients back every round of the chosen horizon.
        assert!(health.standby_pool > 0);
        let bare = EconomicHealth::of_solution(outcome.solution());
        assert_eq!(bare.standby_pool, 0);
        assert_eq!(bare.social_cost, health.social_cost);
    }
}

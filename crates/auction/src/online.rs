//! Online (streaming) auction mode under a budget constraint.
//!
//! The batch mechanism `A_FL` sees the complete bid set before deciding;
//! this module implements the other operating regime from the online
//! procurement literature (Zhang et al., arXiv:2201.09047): bids **arrive
//! and expire over time**, and the server must commit or reject each one
//! *on arrival, irrevocably*, while total remuneration stays within a
//! budget `B`.
//!
//! # Mechanism
//!
//! [`OnlineAuction`] fixes the horizon at the announced maximum `T̂ = T`
//! and posts a flat per-scheduled-round price
//!
//! ```text
//! π = B / (K · T̂)
//! ```
//!
//! On arrival a bid is screened by the *same* qualification gates as the
//! batch sweep — served incrementally from [`SweepPrecomp::insert`] /
//! [`SweepPrecomp::remove`], which the batch-equivalence oracle
//! ([`SweepPrecomp::rebatch`]) holds bit-identical to a fresh batch
//! qualification over the surviving bids. A qualified bid is scheduled
//! into the earliest still-uncovered rounds of its truncated window and
//! committed iff
//!
//! 1. at least one of its rounds is still uncovered (`gain ≥ 1`),
//! 2. its claimed cost does not exceed the posted offer `π · gain`, and
//! 3. the offer fits the remaining budget.
//!
//! The committed bid is paid the posted offer. Because the offer depends
//! only on the budget, the demand, and the bid's *non-price* fields, a
//! client cannot change its payment by misreporting its cost — a price
//! misreport can only flip the commit decision against the client's true
//! utility (posted-price truthfulness). The offer also covers the claimed
//! cost (online individual rationality) and the running total never
//! exceeds `B` (budget feasibility). The certifier checks all three on
//! replayed arrival prefixes.
//!
//! Decisions are irrevocable: expiry ([`OnlineAuction::expire`]) only
//! removes *uncommitted* bids from the qualified pool, and duplicate
//! submissions (client retries, duplicated frames) replay the original
//! decision instead of double-counting coverage — see
//! [`OnlineAuction::submit`].
//!
//! # Degenerate inputs
//!
//! `B = 0` posts a zero offer, so only zero-priced bids can commit; an
//! empty arrival prefix or a horizon where every bid has expired simply
//! yields an empty committed set. None of these panic.

use std::collections::HashMap;

use crate::bid::{Bid, ClientProfile, Instance};
use crate::config::AuctionConfig;
use crate::coverage::Coverage;
use crate::error::AuctionError;
use crate::preprocess::SweepPrecomp;
use crate::types::{BidRef, ClientId, Round};
use crate::wdp::{WdpSolution, WinnerEntry};
use fl_telemetry::counter;

/// Why a streamed bid was committed or turned away.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionReason {
    /// The bid was committed and scheduled.
    Committed,
    /// The bid fails the qualification gates at the fixed horizon `T̂`.
    Unqualified,
    /// Every round of the bid's truncated window is already covered.
    NoCapacity,
    /// The claimed cost exceeds the posted offer `π · gain`.
    PriceAboveOffer,
    /// The posted offer no longer fits the remaining budget.
    BudgetExhausted,
}

impl DecisionReason {
    /// Stable lowercase name (wire protocol, telemetry, logs).
    pub fn as_str(self) -> &'static str {
        match self {
            DecisionReason::Committed => "committed",
            DecisionReason::Unqualified => "unqualified",
            DecisionReason::NoCapacity => "no_capacity",
            DecisionReason::PriceAboveOffer => "price_above_offer",
            DecisionReason::BudgetExhausted => "budget_exhausted",
        }
    }

    /// Parses [`DecisionReason::as_str`] output.
    pub fn parse_str(s: &str) -> Option<DecisionReason> {
        Some(match s {
            "committed" => DecisionReason::Committed,
            "unqualified" => DecisionReason::Unqualified,
            "no_capacity" => DecisionReason::NoCapacity,
            "price_above_offer" => DecisionReason::PriceAboveOffer,
            "budget_exhausted" => DecisionReason::BudgetExhausted,
            _ => return None,
        })
    }
}

/// The irrevocable per-arrival verdict returned by
/// [`OnlineAuction::submit`].
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineDecision {
    /// The reference the bid was registered under.
    pub bid_ref: BidRef,
    /// Whether the bid was committed (`reason == Committed`).
    pub committed: bool,
    /// The posted offer paid on commit; `0.0` on rejection.
    pub payment: f64,
    /// The committed schedule (strictly increasing rounds); empty on
    /// rejection.
    pub schedule: Vec<Round>,
    /// The commit/reject reason.
    pub reason: DecisionReason,
    /// `true` when this submission duplicated an earlier identical bid
    /// and the original decision was replayed instead of re-applied.
    pub duplicate: bool,
}

/// Counters describing one online run (all monotone).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OnlineCounters {
    /// Distinct bids that arrived (duplicates excluded).
    pub arrived: u64,
    /// Duplicate submissions replayed idempotently.
    pub duplicates: u64,
    /// Bids committed.
    pub committed: u64,
    /// Rejections: failed qualification gates at `T̂`.
    pub rejected_unqualified: u64,
    /// Rejections: no uncovered round in the bid's window.
    pub rejected_no_capacity: u64,
    /// Rejections: claimed cost above the posted offer.
    pub rejected_price: u64,
    /// Rejections: offer exceeded the remaining budget.
    pub rejected_budget: u64,
    /// Uncommitted bids removed from the pool by expiry.
    pub expired: u64,
}

/// Final state of an online run: the committed set and its accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineOutcome {
    horizon: u32,
    budget: f64,
    winners: Vec<WinnerEntry>,
    covered: u64,
    total_demand: u64,
    counters: OnlineCounters,
}

impl OnlineOutcome {
    /// The fixed horizon `T̂` the run was committed against.
    pub fn horizon(&self) -> u32 {
        self.horizon
    }

    /// The budget `B` the run was opened with.
    pub fn budget(&self) -> f64 {
        self.budget
    }

    /// The committed bids in commit order.
    pub fn winners(&self) -> &[WinnerEntry] {
        &self.winners
    }

    /// Social cost of the committed set, `Σ b_ij`.
    pub fn social_cost(&self) -> f64 {
        self.winners.iter().map(|w| w.price).sum()
    }

    /// Total remuneration `Σ p_i` (never exceeds the budget).
    pub fn total_payment(&self) -> f64 {
        self.winners.iter().map(|w| w.payment).sum()
    }

    /// Coverage achieved, `R(S) = Σ_t min(γ_t, K)`.
    pub fn covered(&self) -> u64 {
        self.covered
    }

    /// The coverage target `K · T̂`.
    pub fn total_demand(&self) -> u64 {
        self.total_demand
    }

    /// Whether every round reached its demand `K`.
    pub fn coverage_complete(&self) -> bool {
        self.covered == self.total_demand
    }

    /// The run counters.
    pub fn counters(&self) -> OnlineCounters {
        self.counters
    }

    /// The committed set as a [`WdpSolution`] (no dual certificate), for
    /// feasibility re-checks and cost comparisons against batch solvers.
    pub fn solution(&self) -> WdpSolution {
        WdpSolution::new(self.horizon, self.winners.clone(), self.social_cost(), None)
    }

    /// Empirical competitive ratio against an offline cost on the same
    /// surviving bid set: `Some(online / offline)` only when this run
    /// achieved complete coverage (otherwise the costs are not
    /// comparable), `None` when coverage is incomplete or `offline_cost`
    /// is non-positive.
    pub fn competitive_ratio(&self, offline_cost: f64) -> Option<f64> {
        (self.coverage_complete() && offline_cost > 0.0).then(|| self.social_cost() / offline_cost)
    }
}

/// Fingerprint of a submission used for duplicate detection: every field
/// a client sends, with float payloads compared bit-for-bit.
type BidKey = (u32, u64, u64, u32, u32, u32);

fn bid_key(client: ClientId, bid: &Bid) -> BidKey {
    (
        client.0,
        bid.price().to_bits(),
        bid.accuracy().to_bits(),
        bid.window().start().0,
        bid.window().end().0,
        bid.rounds(),
    )
}

/// The streaming auction driver. See the [module docs](self) for the
/// mechanism.
///
/// # Example
///
/// ```
/// use fl_auction::{AuctionConfig, Bid, ClientProfile, OnlineAuction, Round, Window};
///
/// # fn main() -> Result<(), fl_auction::AuctionError> {
/// let cfg = AuctionConfig::builder()
///     .max_rounds(4)
///     .clients_per_round(1)
///     .round_time_limit(100.0)
///     .build()?;
/// let mut online = OnlineAuction::new(cfg, 40.0)?; // B = 40 → π = 10/round
/// let c = online.register_client(ClientProfile::new(1.0, 1.0)?);
/// let d = online.submit(c, Bid::new(25.0, 0.5, Window::new(Round(1), Round(4)), 4)?)?;
/// assert!(d.committed, "4 rounds at π = 10 post an offer of 40 ≥ 25");
/// let outcome = online.finish();
/// assert!(outcome.total_payment() <= outcome.budget());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct OnlineAuction {
    instance: Instance,
    precomp: SweepPrecomp,
    coverage: Coverage,
    winners: Vec<WinnerEntry>,
    committed_refs: Vec<BidRef>,
    seen: HashMap<BidKey, OnlineDecision>,
    budget: f64,
    spent: f64,
    price_per_round: f64,
    horizon: u32,
    counters: OnlineCounters,
}

impl OnlineAuction {
    /// Opens a streaming auction for `config` under budget `budget`.
    ///
    /// # Errors
    ///
    /// Returns [`AuctionError::InvalidInstance`] when `budget` is negative
    /// or NaN (`+∞` is allowed — it disables the budget and price gates,
    /// which the threshold-equivalence property tests rely on).
    pub fn new(config: AuctionConfig, budget: f64) -> Result<OnlineAuction, AuctionError> {
        if budget.is_nan() || budget < 0.0 {
            return Err(AuctionError::invalid(format!(
                "online budget must be non-negative, got {budget}"
            )));
        }
        let horizon = config.max_rounds();
        let k = config.clients_per_round();
        let price_per_round = budget / (f64::from(k) * f64::from(horizon));
        let precomp = SweepPrecomp::empty(&config);
        let coverage = Coverage::new(horizon, k);
        Ok(OnlineAuction {
            instance: Instance::new(config),
            precomp,
            coverage,
            winners: Vec::new(),
            committed_refs: Vec::new(),
            seen: HashMap::new(),
            budget,
            spent: 0.0,
            price_per_round,
            horizon,
            counters: OnlineCounters::default(),
        })
    }

    /// The fixed horizon `T̂` every decision commits against.
    pub fn horizon(&self) -> u32 {
        self.horizon
    }

    /// The posted per-scheduled-round price `π = B / (K · T̂)`.
    pub fn price_per_round(&self) -> f64 {
        self.price_per_round
    }

    /// Budget still uncommitted, `B − Σ p_i`.
    pub fn remaining_budget(&self) -> f64 {
        if self.budget.is_infinite() {
            f64::INFINITY
        } else {
            (self.budget - self.spent).max(0.0)
        }
    }

    /// The growing instance (every distinct arrival, committed or not) —
    /// the offline replay input for competitive-ratio measurement.
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// The incremental qualified-set precomp (live = arrived, unexpired).
    pub fn precomp(&self) -> &SweepPrecomp {
        &self.precomp
    }

    /// Run counters so far.
    pub fn counters(&self) -> OnlineCounters {
        self.counters
    }

    /// Registers a client profile (must happen before its bids arrive).
    pub fn register_client(&mut self, profile: ClientProfile) -> ClientId {
        self.instance.add_client(profile)
    }

    /// Processes one arriving bid and returns the irrevocable decision.
    ///
    /// A submission identical to an earlier one (same client and bid
    /// fields, floats compared bit-for-bit) is a *duplicate*: the original
    /// decision is returned with [`OnlineDecision::duplicate`] set, and
    /// neither the qualified pool nor coverage nor the budget moves —
    /// client retries and duplicated frames cannot double-count.
    ///
    /// # Errors
    ///
    /// Returns [`AuctionError::InvalidInstance`] when `client` is unknown.
    pub fn submit(&mut self, client: ClientId, bid: Bid) -> Result<OnlineDecision, AuctionError> {
        let key = bid_key(client, &bid);
        if let Some(original) = self.seen.get(&key) {
            self.counters.duplicates += 1;
            counter!("online.duplicates", 1);
            let mut replay = original.clone();
            replay.duplicate = true;
            return Ok(replay);
        }
        let bid_ref = self.instance.add_bid(client, bid)?;
        let round_time = self.instance.round_time(bid_ref);
        self.precomp.insert(bid_ref, &bid, round_time);
        self.counters.arrived += 1;
        counter!("online.arrived", 1);

        let decision = self.decide(bid_ref, &bid);
        if decision.committed {
            self.coverage.add(&decision.schedule);
            self.spent += decision.payment;
            self.winners.push(WinnerEntry {
                bid_ref,
                price: bid.price(),
                payment: decision.payment,
                schedule: decision.schedule.clone(),
            });
            self.committed_refs.push(bid_ref);
            self.counters.committed += 1;
            counter!("online.committed", 1);
        } else {
            counter!("online.rejected", 1);
        }
        self.seen.insert(key, decision.clone());
        Ok(decision)
    }

    /// The commit/reject rule (gate order is part of the journal
    /// contract: qualification → capacity → price → budget).
    fn decide(&mut self, bid_ref: BidRef, bid: &Bid) -> OnlineDecision {
        let reject = |counters: &mut OnlineCounters, reason: DecisionReason| {
            match reason {
                DecisionReason::Unqualified => counters.rejected_unqualified += 1,
                DecisionReason::NoCapacity => counters.rejected_no_capacity += 1,
                DecisionReason::PriceAboveOffer => counters.rejected_price += 1,
                DecisionReason::BudgetExhausted => counters.rejected_budget += 1,
                DecisionReason::Committed => unreachable!("reject never carries Committed"),
            }
            OnlineDecision {
                bid_ref,
                committed: false,
                payment: 0.0,
                schedule: Vec::new(),
                reason,
                duplicate: false,
            }
        };
        let qualified = self
            .precomp
            .admission_horizon(bid_ref)
            .is_some_and(|h| h <= self.horizon);
        if !qualified {
            return reject(&mut self.counters, DecisionReason::Unqualified);
        }
        let window = bid
            .window()
            .truncate(Round(self.horizon))
            .expect("a qualified window starts within the horizon");
        let schedule: Vec<Round> = window
            .rounds()
            .filter(|&t| self.coverage.is_available(t))
            .take(bid.rounds() as usize)
            .collect();
        if schedule.is_empty() {
            return reject(&mut self.counters, DecisionReason::NoCapacity);
        }
        let offer = self.price_per_round * schedule.len() as f64;
        if bid.price() > offer {
            return reject(&mut self.counters, DecisionReason::PriceAboveOffer);
        }
        if self.spent + offer > self.budget {
            return reject(&mut self.counters, DecisionReason::BudgetExhausted);
        }
        OnlineDecision {
            bid_ref,
            committed: true,
            payment: offer,
            schedule,
            reason: DecisionReason::Committed,
            duplicate: false,
        }
    }

    /// Expires an uncommitted bid: removes it from the qualified pool, as
    /// if it had never arrived. Returns `false` (and changes nothing) for
    /// committed bids — commitments are irrevocable — and for references
    /// that are not live (never arrived, or already expired).
    pub fn expire(&mut self, bid_ref: BidRef) -> bool {
        if self.committed_refs.contains(&bid_ref) {
            return false;
        }
        let removed = self.precomp.remove(bid_ref);
        if removed {
            self.counters.expired += 1;
            counter!("online.expired", 1);
        }
        removed
    }

    /// Closes the run and returns the committed set with its accounting.
    pub fn finish(self) -> OnlineOutcome {
        OnlineOutcome {
            horizon: self.horizon,
            budget: self.budget,
            winners: self.winners,
            covered: self.coverage.covered(),
            total_demand: self.coverage.total_demand(),
            counters: self.counters,
        }
    }

    /// A snapshot outcome without consuming the driver (used by the
    /// service layer, which keeps accepting arrivals until session close).
    pub fn outcome(&self) -> OnlineOutcome {
        OnlineOutcome {
            horizon: self.horizon,
            budget: self.budget,
            winners: self.winners.clone(),
            covered: self.coverage.covered(),
            total_demand: self.coverage.total_demand(),
            counters: self.counters,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Window;

    fn cfg(t: u32, k: u32) -> AuctionConfig {
        AuctionConfig::builder()
            .max_rounds(t)
            .clients_per_round(k)
            .round_time_limit(100.0)
            .build()
            .unwrap()
    }

    fn bid(price: f64, a: u32, d: u32, c: u32) -> Bid {
        Bid::new(price, 0.5, Window::new(Round(a), Round(d)), c).unwrap()
    }

    #[test]
    fn commits_under_budget_and_pays_the_posted_offer() {
        let mut online = OnlineAuction::new(cfg(4, 1), 40.0).unwrap();
        assert!((online.price_per_round() - 10.0).abs() < 1e-12);
        let c = online.register_client(ClientProfile::new(1.0, 1.0).unwrap());
        let d = online.submit(c, bid(25.0, 1, 4, 4)).unwrap();
        assert!(d.committed);
        assert!((d.payment - 40.0).abs() < 1e-12);
        assert_eq!(d.schedule.len(), 4);
        let out = online.finish();
        assert!(out.coverage_complete());
        assert!(out.total_payment() <= out.budget() + 1e-12);
        assert!((out.social_cost() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn price_above_offer_is_rejected_and_irrevocable() {
        let mut online = OnlineAuction::new(cfg(4, 1), 40.0).unwrap();
        let c = online.register_client(ClientProfile::new(1.0, 1.0).unwrap());
        // Only 2 rounds offered → offer 20 < 25.
        let d = online.submit(c, bid(25.0, 1, 2, 2)).unwrap();
        assert!(!d.committed);
        assert_eq!(d.reason, DecisionReason::PriceAboveOffer);
        assert_eq!(d.payment, 0.0);
        assert!(d.schedule.is_empty());
        assert_eq!(online.counters().rejected_price, 1);
    }

    #[test]
    fn zero_budget_commits_nothing_without_panicking() {
        let mut online = OnlineAuction::new(cfg(3, 2), 0.0).unwrap();
        let c = online.register_client(ClientProfile::new(1.0, 1.0).unwrap());
        for i in 0..4 {
            let d = online.submit(c, bid(1.0 + f64::from(i), 1, 3, 2)).unwrap();
            assert!(!d.committed);
        }
        let out = online.finish();
        assert!(out.winners().is_empty());
        assert_eq!(out.total_payment(), 0.0);
        assert!(!out.coverage_complete());
    }

    #[test]
    fn zero_priced_bid_commits_even_at_zero_budget() {
        let mut online = OnlineAuction::new(cfg(3, 1), 0.0).unwrap();
        let c = online.register_client(ClientProfile::new(1.0, 1.0).unwrap());
        let d = online.submit(c, bid(0.0, 1, 3, 3)).unwrap();
        assert!(d.committed, "a free bid fits a zero offer");
        assert_eq!(d.payment, 0.0);
    }

    #[test]
    fn empty_prefix_yields_an_empty_outcome() {
        let out = OnlineAuction::new(cfg(5, 2), 10.0).unwrap().finish();
        assert!(out.winners().is_empty());
        assert_eq!(out.social_cost(), 0.0);
        assert_eq!(out.covered(), 0);
        assert_eq!(out.total_demand(), 10);
        assert!(out.competitive_ratio(1.0).is_none());
    }

    #[test]
    fn duplicate_submission_replays_the_original_decision() {
        let mut online = OnlineAuction::new(cfg(4, 1), 40.0).unwrap();
        let c = online.register_client(ClientProfile::new(1.0, 1.0).unwrap());
        let first = online.submit(c, bid(25.0, 1, 4, 4)).unwrap();
        assert!(first.committed && !first.duplicate);
        let covered = online.coverage.covered();
        let spent = online.spent;
        let retry = online.submit(c, bid(25.0, 1, 4, 4)).unwrap();
        assert!(retry.duplicate);
        assert_eq!(retry.bid_ref, first.bid_ref);
        assert_eq!(retry.payment, first.payment);
        assert_eq!(retry.schedule, first.schedule);
        assert_eq!(online.coverage.covered(), covered, "no double coverage");
        assert_eq!(online.spent, spent, "no double spend");
        assert_eq!(online.counters().duplicates, 1);
        assert_eq!(online.counters().arrived, 1);
        assert_eq!(online.instance().num_bids(), 1, "no phantom bid row");
        // A *different* bid from the same client is not a duplicate.
        let other = online.submit(c, bid(24.0, 1, 4, 4)).unwrap();
        assert!(!other.duplicate);
    }

    #[test]
    fn expiry_removes_uncommitted_bids_but_never_commitments() {
        let mut online = OnlineAuction::new(cfg(4, 1), 40.0).unwrap();
        let c0 = online.register_client(ClientProfile::new(1.0, 1.0).unwrap());
        let c1 = online.register_client(ClientProfile::new(1.0, 1.0).unwrap());
        let won = online.submit(c0, bid(25.0, 1, 4, 4)).unwrap();
        let lost = online.submit(c1, bid(90.0, 1, 4, 4)).unwrap();
        assert!(won.committed && !lost.committed);
        assert!(!online.expire(won.bid_ref), "commitments are irrevocable");
        assert!(online.expire(lost.bid_ref));
        assert!(!online.expire(lost.bid_ref), "second expiry is a no-op");
        assert_eq!(online.counters().expired, 1);
        assert!(!online.precomp().contains(lost.bid_ref));
        let out = online.finish();
        assert_eq!(out.winners().len(), 1);
    }

    #[test]
    fn all_bids_expired_horizon_yields_empty_committed_set() {
        let mut online = OnlineAuction::new(cfg(4, 1), 1.0).unwrap();
        let c = online.register_client(ClientProfile::new(1.0, 1.0).unwrap());
        let mut refs = Vec::new();
        for i in 0..3 {
            // All priced far above the posted offer → all rejected.
            let d = online.submit(c, bid(50.0 + f64::from(i), 1, 4, 2)).unwrap();
            assert!(!d.committed);
            refs.push(d.bid_ref);
        }
        for r in refs {
            assert!(online.expire(r));
        }
        assert_eq!(online.precomp().live_bids(), 0);
        let out = online.finish();
        assert!(out.winners().is_empty());
        assert_eq!(out.counters().expired, 3);
    }

    #[test]
    fn budget_feasibility_and_ir_hold_on_a_mixed_stream() {
        let mut state = 0xab5u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..25 {
            let t = 3 + (next() % 5) as u32;
            let k = 1 + (next() % 3) as u32;
            let budget = (next() % 200) as f64;
            let mut online = OnlineAuction::new(cfg(t, k), budget).unwrap();
            let clients: Vec<ClientId> = (0..5)
                .map(|_| online.register_client(ClientProfile::new(1.0, 1.0).unwrap()))
                .collect();
            for _ in 0..12 {
                let c = clients[(next() % clients.len() as u64) as usize];
                let a = 1 + (next() % u64::from(t)) as u32;
                let d = a + (next() % u64::from(t - a + 1)) as u32;
                let rounds = 1 + (next() % u64::from(d - a + 1)) as u32;
                let price = (next() % 60) as f64;
                let dec = online.submit(c, bid(price, a, d, rounds)).unwrap();
                if dec.committed {
                    assert!(
                        dec.payment >= price,
                        "trial {trial}: IR violated ({} < {price})",
                        dec.payment
                    );
                }
            }
            let out = online.finish();
            assert!(
                out.total_payment() <= budget * (1.0 + 1e-12) + 1e-9,
                "trial {trial}: payments {} exceed budget {budget}",
                out.total_payment()
            );
            // The committed set is a genuine partial WDP solution.
            let sol = out.solution();
            assert_eq!(sol.winners().len(), out.winners().len());
        }
    }

    #[test]
    fn infinite_budget_commits_every_qualified_bid_with_capacity() {
        let mut online = OnlineAuction::new(cfg(3, 1), f64::INFINITY).unwrap();
        let c0 = online.register_client(ClientProfile::new(1.0, 1.0).unwrap());
        let c1 = online.register_client(ClientProfile::new(1.0, 1.0).unwrap());
        assert!(online.submit(c0, bid(1e9, 1, 3, 3)).unwrap().committed);
        // Coverage is saturated (K = 1): capacity rejects, not budget.
        let d = online.submit(c1, bid(1.0, 1, 3, 3)).unwrap();
        assert_eq!(d.reason, DecisionReason::NoCapacity);
        assert!(online.remaining_budget().is_infinite());
    }

    #[test]
    fn negative_or_nan_budget_is_rejected() {
        assert!(OnlineAuction::new(cfg(3, 1), -1.0).is_err());
        assert!(OnlineAuction::new(cfg(3, 1), f64::NAN).is_err());
    }

    #[test]
    fn unknown_client_is_an_error() {
        let mut online = OnlineAuction::new(cfg(3, 1), 5.0).unwrap();
        assert!(online.submit(ClientId(7), bid(1.0, 1, 3, 1)).is_err());
    }

    #[test]
    fn decision_reason_round_trips() {
        for r in [
            DecisionReason::Committed,
            DecisionReason::Unqualified,
            DecisionReason::NoCapacity,
            DecisionReason::PriceAboveOffer,
            DecisionReason::BudgetExhausted,
        ] {
            assert_eq!(DecisionReason::parse_str(r.as_str()), Some(r));
        }
        assert_eq!(DecisionReason::parse_str("nope"), None);
    }

    #[test]
    fn insert_only_stream_with_infinite_budget_matches_batch_prefixes() {
        // Satellite property at the driver level: streaming arrivals with
        // no expiries and B = ∞ keep the incremental precomp bit-identical
        // to a batch precomp over the instance at every prefix.
        let mut online = OnlineAuction::new(cfg(6, 2), f64::INFINITY).unwrap();
        let clients: Vec<ClientId> = (0..3)
            .map(|i| online.register_client(ClientProfile::new(1.0 + f64::from(i), 2.0).unwrap()))
            .collect();
        let arrivals = [
            (0, 5.0, 1, 6, 4),
            (1, 9.0, 2, 5, 2),
            (2, 3.5, 1, 3, 3),
            (0, 7.0, 4, 6, 1),
            (1, 2.0, 1, 6, 6),
        ];
        for (ci, price, a, d, c) in arrivals {
            online.submit(clients[ci], bid(price, a, d, c)).unwrap();
            let incremental = online.precomp();
            // The rebatch oracle rebuilds from the survivors in arrival
            // order: every observable must be bit-identical.
            let oracle = incremental.rebatch();
            for h in 1..=oracle.horizon_cap() {
                assert_eq!(
                    oracle.qualify_at(h).bids(),
                    incremental.qualify_at(h).bids(),
                    "prefix diverges from the oracle at T̂_g = {h}"
                );
                assert_eq!(
                    oracle.cost_lower_bound(h).to_bits(),
                    incremental.cost_lower_bound(h).to_bits()
                );
            }
            // A batch precomp over the grown instance iterates client-major
            // rather than arrival order, so compare the *per-bid*
            // thresholds, which are order-independent.
            let batch = SweepPrecomp::new(online.instance());
            for (bid_ref, _) in online.instance().iter_bids() {
                assert_eq!(
                    batch.admission_horizon(bid_ref),
                    incremental.admission_horizon(bid_ref),
                    "threshold diverges for {bid_ref}"
                );
            }
        }
    }
}

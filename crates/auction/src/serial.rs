//! JSON serialisation of auction outcomes and payments.
//!
//! The service layer (`fl-flpd`) must persist epoch decisions in its
//! write-ahead journal and announce them over the wire, and the certifier
//! replays recovered outcomes against fresh solves — all of which demands
//! a *lossless* encoding: payments must survive encode → decode
//! **bit-identically**, or the crash-recovery invariant ("a replayed
//! epoch equals the fault-free run") could not be checked with `==`.
//!
//! Floats therefore use Rust's shortest-round-trip formatting (exact by
//! construction) with non-finite values spelled as the strings `"inf"`,
//! `"-inf"`, `"nan"` — `ω` in a dual certificate is legitimately infinite
//! when a round's cheapest average cost is zero, and plain JSON `null`
//! would collapse `±inf`/NaN into one value.
//!
//! The format is versioned and flat:
//!
//! ```json
//! {"v":1,"horizon":4,"cost":12.5,
//!  "winners":[{"client":0,"bid":1,"price":3.5,"payment":4.25,"schedule":[1,2]}],
//!  "certificate":{"harmonic":2.08,"omega":3.0,"g":[…],"lambda":[…],"dual":8.1}}
//! ```

use fl_telemetry::json::{self, Json};

use crate::auction::AuctionOutcome;
use crate::types::{BidRef, ClientId, Round};
use crate::wdp::{DualCertificate, WdpSolution, WinnerEntry};

/// Version tag of the outcome encoding.
pub const FORMAT_VERSION: u64 = 1;

/// Encodes a float losslessly: shortest-round-trip for finite values,
/// `"inf"` / `"-inf"` / `"nan"` strings otherwise.
fn float(x: f64) -> String {
    if x.is_finite() {
        json::number(x)
    } else if x.is_nan() {
        json::string("nan")
    } else if x > 0.0 {
        json::string("inf")
    } else {
        json::string("-inf")
    }
}

/// Decodes a float written by [`float`].
fn read_float(v: &Json, what: &str) -> Result<f64, String> {
    match v {
        Json::Num(x) => Ok(*x),
        Json::Str(s) => match s.as_str() {
            "inf" => Ok(f64::INFINITY),
            "-inf" => Ok(f64::NEG_INFINITY),
            "nan" => Ok(f64::NAN),
            other => Err(format!("{what}: unknown float literal {other:?}")),
        },
        other => Err(format!("{what}: expected number, got {other:?}")),
    }
}

fn field<'a>(doc: &'a Json, key: &str) -> Result<&'a Json, String> {
    doc.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

fn read_u32(doc: &Json, key: &str) -> Result<u32, String> {
    let raw = field(doc, key)?
        .as_u64()
        .ok_or_else(|| format!("{key:?} not an unsigned integer"))?;
    u32::try_from(raw).map_err(|_| format!("{key:?} exceeds u32"))
}

fn floats_array(xs: &[f64]) -> String {
    json::array(&xs.iter().map(|&x| float(x)).collect::<Vec<_>>())
}

fn read_floats(doc: &Json, key: &str) -> Result<Vec<f64>, String> {
    field(doc, key)?
        .as_array()
        .ok_or_else(|| format!("{key:?} not an array"))?
        .iter()
        .map(|v| read_float(v, key))
        .collect()
}

fn winner_json(w: &WinnerEntry) -> String {
    json::object(&[
        ("client".into(), w.bid_ref.client.0.to_string()),
        ("bid".into(), w.bid_ref.bid.to_string()),
        ("price".into(), float(w.price)),
        ("payment".into(), float(w.payment)),
        (
            "schedule".into(),
            json::array(
                &w.schedule
                    .iter()
                    .map(|t| t.0.to_string())
                    .collect::<Vec<_>>(),
            ),
        ),
    ])
}

fn read_winner(v: &Json) -> Result<WinnerEntry, String> {
    let schedule = field(v, "schedule")?
        .as_array()
        .ok_or("\"schedule\" not an array")?
        .iter()
        .map(|t| {
            t.as_u64()
                .and_then(|t| u32::try_from(t).ok())
                .map(Round)
                .ok_or_else(|| "bad round in schedule".to_string())
        })
        .collect::<Result<Vec<Round>, String>>()?;
    Ok(WinnerEntry {
        bid_ref: BidRef::new(ClientId(read_u32(v, "client")?), read_u32(v, "bid")?),
        price: read_float(field(v, "price")?, "price")?,
        payment: read_float(field(v, "payment")?, "payment")?,
        schedule,
    })
}

fn certificate_json(c: &DualCertificate) -> String {
    json::object(&[
        ("harmonic".into(), float(c.harmonic)),
        ("omega".into(), float(c.omega)),
        ("g".into(), floats_array(&c.g)),
        ("lambda".into(), floats_array(&c.lambda)),
        ("dual".into(), float(c.dual_objective)),
    ])
}

fn read_certificate(v: &Json) -> Result<DualCertificate, String> {
    Ok(DualCertificate {
        harmonic: read_float(field(v, "harmonic")?, "harmonic")?,
        omega: read_float(field(v, "omega")?, "omega")?,
        g: read_floats(v, "g")?,
        lambda: read_floats(v, "lambda")?,
        dual_objective: read_float(field(v, "dual")?, "dual")?,
    })
}

/// Encodes a WDP solution as one line of JSON (no trailing newline).
pub fn solution_to_json(solution: &WdpSolution) -> String {
    let mut members = vec![
        ("v".into(), FORMAT_VERSION.to_string()),
        ("horizon".into(), solution.horizon().to_string()),
        ("cost".into(), float(solution.cost())),
        (
            "winners".into(),
            json::array(
                &solution
                    .winners()
                    .iter()
                    .map(winner_json)
                    .collect::<Vec<_>>(),
            ),
        ),
    ];
    if let Some(cert) = solution.certificate() {
        members.push(("certificate".into(), certificate_json(cert)));
    }
    json::object(&members)
}

/// Decodes a WDP solution from its JSON line.
///
/// # Errors
///
/// Describes the first malformed or missing field; rejects unknown format
/// versions.
pub fn solution_from_json(text: &str) -> Result<WdpSolution, String> {
    let doc = json::parse(text)?;
    solution_from_value(&doc)
}

/// Decodes a WDP solution from an already-parsed document (for callers
/// that find the outcome embedded inside a larger response or record).
///
/// # Errors
///
/// Same failure modes as [`solution_from_json`].
pub fn solution_from_value(doc: &Json) -> Result<WdpSolution, String> {
    let v = field(doc, "v")?.as_u64().ok_or("\"v\" not an integer")?;
    if v != FORMAT_VERSION {
        return Err(format!("unsupported outcome format version {v}"));
    }
    let horizon = read_u32(doc, "horizon")?;
    let cost = read_float(field(doc, "cost")?, "cost")?;
    let winners = field(doc, "winners")?
        .as_array()
        .ok_or("\"winners\" not an array")?
        .iter()
        .map(read_winner)
        .collect::<Result<Vec<_>, String>>()?;
    let certificate = match doc.get("certificate") {
        Some(c) => Some(read_certificate(c)?),
        None => None,
    };
    Ok(WdpSolution::new(horizon, winners, cost, certificate))
}

/// Encodes an announced auction outcome as one line of JSON.
pub fn outcome_to_json(outcome: &AuctionOutcome) -> String {
    // The outer horizon equals the solution's; the solution line is the
    // whole payload.
    solution_to_json(outcome.solution())
}

/// Decodes an auction outcome from its JSON line.
///
/// # Errors
///
/// Same failure modes as [`solution_from_json`].
pub fn outcome_from_json(text: &str) -> Result<AuctionOutcome, String> {
    let solution = solution_from_json(text)?;
    Ok(AuctionOutcome::from_parts(solution.horizon(), solution))
}

/// Decodes an auction outcome from an already-parsed document.
///
/// # Errors
///
/// Same failure modes as [`solution_from_json`].
pub fn outcome_from_value(doc: &Json) -> Result<AuctionOutcome, String> {
    let solution = solution_from_value(doc)?;
    Ok(AuctionOutcome::from_parts(solution.horizon(), solution))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bid::{Bid, ClientProfile, Instance};
    use crate::config::AuctionConfig;
    use crate::types::Window;

    fn outcome() -> AuctionOutcome {
        let cfg = AuctionConfig::builder()
            .max_rounds(6)
            .clients_per_round(2)
            .round_time_limit(60.0)
            .build()
            .unwrap();
        let mut inst = Instance::new(cfg);
        for i in 0..5u32 {
            let c = inst.add_client(ClientProfile::new(2.0, 5.0).unwrap());
            inst.add_bid(
                c,
                Bid::new(
                    3.0 + f64::from(i) * 1.37,
                    0.55,
                    Window::new(Round(1), Round(6)),
                    6,
                )
                .unwrap(),
            )
            .unwrap();
        }
        crate::auction::run_auction(&inst).unwrap()
    }

    #[test]
    fn outcome_round_trips_bit_identically() {
        let a = outcome();
        let line = outcome_to_json(&a);
        fl_telemetry::json::validate(&line).unwrap();
        let b = outcome_from_json(&line).unwrap();
        // PartialEq on the nested floats is exact — this is the journal
        // replay invariant's foundation.
        assert_eq!(a, b);
        // Encode → decode → encode is byte-stable.
        assert_eq!(outcome_to_json(&b), line);
    }

    #[test]
    fn payments_survive_exactly() {
        let a = outcome();
        let b = outcome_from_json(&outcome_to_json(&a)).unwrap();
        for (x, y) in a
            .solution()
            .winners()
            .iter()
            .zip(b.solution().winners().iter())
        {
            assert_eq!(x.payment.to_bits(), y.payment.to_bits());
            assert_eq!(x.price.to_bits(), y.price.to_bits());
            assert_eq!(x.schedule, y.schedule);
        }
    }

    #[test]
    fn non_finite_certificate_floats_round_trip() {
        let solution = WdpSolution::new(
            3,
            vec![WinnerEntry {
                bid_ref: BidRef::new(ClientId(0), 0),
                price: 2.5,
                payment: 2.5,
                schedule: vec![Round(1), Round(2), Round(3)],
            }],
            2.5,
            Some(DualCertificate {
                harmonic: 1.5,
                omega: f64::INFINITY,
                g: vec![0.5, f64::NEG_INFINITY, f64::NAN],
                lambda: vec![0.0],
                dual_objective: 1.25,
            }),
        );
        let line = solution_to_json(&solution);
        let back = solution_from_json(&line).unwrap();
        let cert = back.certificate().unwrap();
        assert!(cert.omega.is_infinite() && cert.omega > 0.0);
        assert!(cert.g[1].is_infinite() && cert.g[1] < 0.0);
        assert!(cert.g[2].is_nan());
        assert_eq!(solution_to_json(&back), line);
    }

    #[test]
    fn malformed_lines_are_rejected_with_reasons() {
        for (bad, needle) in [
            ("{}", "missing field"),
            (r#"{"v":9,"horizon":1,"cost":0,"winners":[]}"#, "version"),
            (
                r#"{"v":1,"horizon":1,"cost":0,"winners":[{"client":0}]}"#,
                "missing field",
            ),
            (r#"{"v":1,"horizon":-2,"cost":0,"winners":[]}"#, "unsigned"),
            ("@garbage", "unexpected byte"),
        ] {
            let err = solution_from_json(bad).unwrap_err();
            assert!(err.contains(needle), "{bad}: {err}");
        }
    }

    #[test]
    fn unknown_float_literal_is_rejected() {
        let err =
            solution_from_json(r#"{"v":1,"horizon":1,"cost":"huge","winners":[]}"#).unwrap_err();
        assert!(err.contains("unknown float literal"), "{err}");
    }
}

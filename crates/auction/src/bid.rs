//! Bids, client profiles, and the auction instance container.

use crate::config::AuctionConfig;
use crate::error::AuctionError;
use crate::types::{BidRef, ClientId, Window};

/// One sealed bid `B_ij = {b_ij, θ_ij, [a_ij, d_ij], c_ij}` (Eq. 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bid {
    price: f64,
    accuracy: f64,
    window: Window,
    rounds: u32,
}

impl Bid {
    /// Creates a bid.
    ///
    /// * `price` — the claimed cost `b_ij` for the whole participation.
    /// * `accuracy` — the local accuracy `θ_ij ∈ (0, 1)` the client commits
    ///   to per round (smaller is more accurate and more expensive to
    ///   compute).
    /// * `window` — the availability period `[a_ij, d_ij]`.
    /// * `rounds` — the number of global iterations `c_ij` the client can
    ///   participate in (battery-limited).
    ///
    /// # Errors
    ///
    /// Returns [`AuctionError::InvalidInstance`] if the price is negative or
    /// non-finite, the accuracy is outside `(0, 1)`, `rounds` is zero, or
    /// `rounds` exceeds the window length.
    pub fn new(
        price: f64,
        accuracy: f64,
        window: Window,
        rounds: u32,
    ) -> Result<Self, AuctionError> {
        if !(price.is_finite() && price >= 0.0) {
            return Err(AuctionError::invalid(format!(
                "bid price must be finite and non-negative, got {price}"
            )));
        }
        if !(accuracy > 0.0 && accuracy < 1.0) {
            return Err(AuctionError::invalid(format!(
                "local accuracy must lie strictly inside (0, 1), got {accuracy}"
            )));
        }
        if rounds == 0 {
            return Err(AuctionError::invalid("a bid must offer at least one round"));
        }
        if rounds > window.len() {
            return Err(AuctionError::invalid(format!(
                "bid offers {rounds} rounds but its window {window} only has {}",
                window.len()
            )));
        }
        Ok(Bid {
            price,
            accuracy,
            window,
            rounds,
        })
    }

    /// The claimed cost `b_ij`.
    pub fn price(&self) -> f64 {
        self.price
    }

    /// The local accuracy `θ_ij`.
    pub fn accuracy(&self) -> f64 {
        self.accuracy
    }

    /// The availability window `[a_ij, d_ij]`.
    pub fn window(&self) -> Window {
        self.window
    }

    /// The number of participation rounds `c_ij`.
    pub fn rounds(&self) -> u32 {
        self.rounds
    }

    /// A copy of this bid with a different claimed price (used by the
    /// truthfulness experiments to explore misreports).
    ///
    /// # Errors
    ///
    /// Same price validation as [`Bid::new`].
    pub fn with_price(&self, price: f64) -> Result<Bid, AuctionError> {
        Bid::new(price, self.accuracy, self.window, self.rounds)
    }
}

/// Static, server-known facts about a client: per-local-iteration compute
/// time `t_i^cmp` and per-round communication time `t_i^com` (§IV-C assumes
/// the platform learned these at registration).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClientProfile {
    compute_time: f64,
    comm_time: f64,
}

impl ClientProfile {
    /// Creates a profile.
    ///
    /// # Errors
    ///
    /// Returns [`AuctionError::InvalidInstance`] unless both times are
    /// finite and non-negative.
    pub fn new(compute_time: f64, comm_time: f64) -> Result<Self, AuctionError> {
        for (name, v) in [("compute_time", compute_time), ("comm_time", comm_time)] {
            if !(v.is_finite() && v >= 0.0) {
                return Err(AuctionError::invalid(format!(
                    "{name} must be finite and non-negative, got {v}"
                )));
            }
        }
        Ok(ClientProfile {
            compute_time,
            comm_time,
        })
    }

    /// Time `t_i^cmp` for one local iteration.
    pub fn compute_time(&self) -> f64 {
        self.compute_time
    }

    /// Time `t_i^com` to exchange one round's model update.
    pub fn comm_time(&self) -> f64 {
        self.comm_time
    }
}

/// A complete auction instance: configuration, client profiles and every
/// submitted bid.
///
/// # Example
///
/// ```
/// use fl_auction::{AuctionConfig, Bid, ClientProfile, Instance, Round, Window};
///
/// # fn main() -> Result<(), fl_auction::AuctionError> {
/// let cfg = AuctionConfig::builder()
///     .max_rounds(4)
///     .clients_per_round(1)
///     .build()?;
/// let mut instance = Instance::new(cfg);
/// let c = instance.add_client(ClientProfile::new(5.0, 10.0)?);
/// instance.add_bid(c, Bid::new(8.0, 0.5, Window::new(Round(1), Round(4)), 4)?)?;
/// assert_eq!(instance.num_bids(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Instance {
    config: AuctionConfig,
    clients: Vec<ClientProfile>,
    bids: Vec<Vec<Bid>>,
}

impl Instance {
    /// Creates an empty instance for the given configuration.
    pub fn new(config: AuctionConfig) -> Self {
        Instance {
            config,
            clients: Vec::new(),
            bids: Vec::new(),
        }
    }

    /// Registers a client and returns its id.
    pub fn add_client(&mut self, profile: ClientProfile) -> ClientId {
        let id = ClientId(self.clients.len() as u32);
        self.clients.push(profile);
        self.bids.push(Vec::new());
        id
    }

    /// Submits a bid on behalf of `client`.
    ///
    /// The bid's window may extend past `T`; rounds beyond the horizon are
    /// simply never scheduled (qualification truncates the window).
    ///
    /// # Errors
    ///
    /// Returns [`AuctionError::InvalidInstance`] if the client id is
    /// unknown.
    pub fn add_bid(&mut self, client: ClientId, bid: Bid) -> Result<BidRef, AuctionError> {
        let Some(list) = self.bids.get_mut(client.index()) else {
            return Err(AuctionError::invalid(format!("unknown {client}")));
        };
        let r = BidRef::new(client, list.len() as u32);
        list.push(bid);
        Ok(r)
    }

    /// The announced configuration.
    pub fn config(&self) -> &AuctionConfig {
        &self.config
    }

    /// All registered client profiles, indexed by [`ClientId`].
    pub fn clients(&self) -> &[ClientProfile] {
        &self.clients
    }

    /// Number of registered clients `I`.
    pub fn num_clients(&self) -> usize {
        self.clients.len()
    }

    /// Total number of submitted bids (`≤ I·J`).
    pub fn num_bids(&self) -> usize {
        self.bids.iter().map(Vec::len).sum()
    }

    /// The bids of one client, in submission order.
    ///
    /// # Panics
    ///
    /// Panics if the client id is out of range.
    pub fn bids_of(&self, client: ClientId) -> &[Bid] {
        &self.bids[client.index()]
    }

    /// Looks up a bid by reference.
    ///
    /// # Panics
    ///
    /// Panics if the reference does not address an existing bid.
    pub fn bid(&self, r: BidRef) -> &Bid {
        &self.bids[r.client.index()][r.bid as usize]
    }

    /// Iterates `(BidRef, &Bid)` over every submitted bid.
    pub fn iter_bids(&self) -> impl Iterator<Item = (BidRef, &Bid)> {
        self.bids.iter().enumerate().flat_map(|(ci, list)| {
            list.iter()
                .enumerate()
                .map(move |(bi, bid)| (BidRef::new(ClientId(ci as u32), bi as u32), bid))
        })
    }

    /// Per-round wall-clock `t_ij = T_l(θ_ij)·t_i^cmp + t_i^com` of a bid
    /// under this instance's local-iteration model.
    ///
    /// # Panics
    ///
    /// Panics if the reference does not address an existing bid.
    pub fn round_time(&self, r: BidRef) -> f64 {
        let bid = self.bid(r);
        let profile = &self.clients[r.client.index()];
        self.config.local_model().local_iterations(bid.accuracy()) * profile.compute_time()
            + profile.comm_time()
    }

    /// The smallest local accuracy among all bids (`θ_min`, Alg. 1 line 2),
    /// or `None` when no bids were submitted.
    pub fn min_accuracy(&self) -> Option<f64> {
        self.iter_bids()
            .map(|(_, b)| b.accuracy())
            .min_by(f64::total_cmp)
    }

    /// Replaces one bid's claimed price, leaving everything else untouched
    /// (used by truthfulness experiments).
    ///
    /// # Errors
    ///
    /// Returns [`AuctionError::InvalidInstance`] if the reference is stale
    /// or the new price is invalid.
    pub fn reprice_bid(&mut self, r: BidRef, price: f64) -> Result<(), AuctionError> {
        let bid = self
            .bids
            .get(r.client.index())
            .and_then(|l| l.get(r.bid as usize))
            .copied()
            .ok_or_else(|| AuctionError::invalid(format!("unknown {r}")))?;
        self.bids[r.client.index()][r.bid as usize] = bid.with_price(price)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Round;

    fn window(a: u32, d: u32) -> Window {
        Window::new(Round(a), Round(d))
    }

    #[test]
    fn bid_validation() {
        assert!(Bid::new(10.0, 0.5, window(1, 3), 2).is_ok());
        assert!(Bid::new(-1.0, 0.5, window(1, 3), 2).is_err());
        assert!(Bid::new(f64::NAN, 0.5, window(1, 3), 2).is_err());
        assert!(Bid::new(10.0, 0.0, window(1, 3), 2).is_err());
        assert!(Bid::new(10.0, 1.0, window(1, 3), 2).is_err());
        assert!(Bid::new(10.0, 0.5, window(1, 3), 0).is_err());
        assert!(
            Bid::new(10.0, 0.5, window(1, 3), 4).is_err(),
            "c > window length"
        );
    }

    #[test]
    fn profile_validation() {
        assert!(ClientProfile::new(5.0, 10.0).is_ok());
        assert!(ClientProfile::new(-1.0, 10.0).is_err());
        assert!(ClientProfile::new(5.0, f64::INFINITY).is_err());
    }

    fn tiny_instance() -> Instance {
        let cfg = AuctionConfig::builder()
            .max_rounds(5)
            .clients_per_round(1)
            .build()
            .unwrap();
        let mut inst = Instance::new(cfg);
        let a = inst.add_client(ClientProfile::new(5.0, 10.0).unwrap());
        let b = inst.add_client(ClientProfile::new(8.0, 12.0).unwrap());
        inst.add_bid(a, Bid::new(10.0, 0.5, window(1, 3), 2).unwrap())
            .unwrap();
        inst.add_bid(a, Bid::new(4.0, 0.7, window(4, 5), 1).unwrap())
            .unwrap();
        inst.add_bid(b, Bid::new(6.0, 0.4, window(2, 5), 3).unwrap())
            .unwrap();
        inst
    }

    #[test]
    fn instance_accessors() {
        let inst = tiny_instance();
        assert_eq!(inst.num_clients(), 2);
        assert_eq!(inst.num_bids(), 3);
        assert_eq!(inst.bids_of(ClientId(0)).len(), 2);
        assert_eq!(inst.bids_of(ClientId(1)).len(), 1);
        let refs: Vec<BidRef> = inst.iter_bids().map(|(r, _)| r).collect();
        assert_eq!(
            refs,
            vec![
                BidRef::new(ClientId(0), 0),
                BidRef::new(ClientId(0), 1),
                BidRef::new(ClientId(1), 0)
            ]
        );
        assert_eq!(inst.min_accuracy(), Some(0.4));
    }

    #[test]
    fn round_time_uses_profile_and_model() {
        let inst = tiny_instance();
        // Client 0 bid 0: θ = 0.5 → T_l = ⌊5⌋ = 5; 5·5 + 10 = 35.
        let t = inst.round_time(BidRef::new(ClientId(0), 0));
        assert!((t - 35.0).abs() < 1e-12);
        // Client 1 bid 0: θ = 0.4 → T_l = 6 (⌊10·0.6⌋ = 5 due to fp? compute exactly).
        let expected = (10.0f64 * 0.6).floor() * 8.0 + 12.0;
        let t2 = inst.round_time(BidRef::new(ClientId(1), 0));
        assert!((t2 - expected).abs() < 1e-12);
    }

    #[test]
    fn add_bid_rejects_unknown_client() {
        let mut inst = tiny_instance();
        let bid = Bid::new(1.0, 0.5, window(1, 2), 1).unwrap();
        assert!(inst.add_bid(ClientId(99), bid).is_err());
    }

    #[test]
    fn reprice_preserves_other_fields() {
        let mut inst = tiny_instance();
        let r = BidRef::new(ClientId(0), 0);
        let before = *inst.bid(r);
        inst.reprice_bid(r, 99.0).unwrap();
        let after = *inst.bid(r);
        assert_eq!(after.price(), 99.0);
        assert_eq!(after.accuracy(), before.accuracy());
        assert_eq!(after.window(), before.window());
        assert_eq!(after.rounds(), before.rounds());
        assert!(inst.reprice_bid(BidRef::new(ClientId(0), 9), 1.0).is_err());
        assert!(inst.reprice_bid(r, -3.0).is_err());
    }

    #[test]
    fn min_accuracy_empty_instance() {
        let inst = Instance::new(AuctionConfig::paper_default());
        assert_eq!(inst.min_accuracy(), None);
    }
}

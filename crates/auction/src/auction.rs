//! `A_FL` — the top-level auction (Alg. 1).
//!
//! The social-cost minimisation ILP couples the horizon `T_g` to the
//! winners' accuracies, so `A_FL` enumerates every admissible horizon
//! `T̂_g ∈ [T_0, T]`, solves the winner-determination problem each induces,
//! and announces the cheapest feasible result. The WDP solver is pluggable
//! ([`WdpSolver`]) so the same outer loop drives the paper's `A_winner`,
//! the three baselines, and the exact optimum.

use crate::bid::Instance;
use crate::error::{AuctionError, WdpError};
use crate::qualify::{min_horizon, qualify};
use crate::wdp::{WdpSolution, WdpSolver};
use crate::winner::AWinner;
use fl_telemetry::{counter, debug, gauge, span};

/// The auction result the server announces (Alg. 1 lines 12–15).
#[derive(Debug, Clone, PartialEq)]
pub struct AuctionOutcome {
    horizon: u32,
    solution: WdpSolution,
}

impl AuctionOutcome {
    /// The chosen number of global iterations `T_g*`.
    pub fn horizon(&self) -> u32 {
        self.horizon
    }

    /// The winning solution: accepted bids, schedules and payments.
    pub fn solution(&self) -> &WdpSolution {
        &self.solution
    }

    /// The minimum social cost found.
    pub fn social_cost(&self) -> f64 {
        self.solution.cost()
    }

    /// The ranked standby pool backing this outcome — the fault-tolerance
    /// companion contract priced from the losing qualified bids (see
    /// [`crate::recover`]).
    pub fn standby_pool(&self, instance: &Instance) -> crate::recover::StandbyPool {
        crate::recover::standby_pool(instance, self)
    }
}

/// The per-horizon record produced by [`sweep_horizons`] (Fig. 7's x-axis).
#[derive(Debug, Clone)]
pub struct HorizonOutcome {
    /// The fixed `T̂_g` of this WDP.
    pub horizon: u32,
    /// How many bids qualified.
    pub qualified: usize,
    /// The WDP result at this horizon.
    pub result: Result<WdpSolution, WdpError>,
}

/// Runs the full paper mechanism: `A_FL` with `A_winner` inside.
///
/// # Errors
///
/// * [`AuctionError::InvalidInstance`] if no bids were submitted.
/// * [`AuctionError::Infeasible`] if no horizon admits a feasible winner
///   set.
///
/// # Example
///
/// ```
/// use fl_auction::{run_auction, AuctionConfig, Bid, ClientProfile, Instance, Round, Window};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cfg = AuctionConfig::builder().max_rounds(4).clients_per_round(1).build()?;
/// let mut inst = Instance::new(cfg);
/// for price in [3.0, 5.0] {
///     let c = inst.add_client(ClientProfile::new(2.0, 5.0)?);
///     inst.add_bid(c, Bid::new(price, 0.6, Window::new(Round(1), Round(4)), 4)?)?;
/// }
/// let outcome = run_auction(&inst)?;
/// assert_eq!(outcome.social_cost(), 3.0);
/// # Ok(())
/// # }
/// ```
pub fn run_auction(instance: &Instance) -> Result<AuctionOutcome, AuctionError> {
    run_auction_with(instance, &AWinner::new())
}

/// Runs `A_FL`'s outer enumeration around an arbitrary WDP solver.
///
/// # Errors
///
/// Same as [`run_auction`]. A [`WdpError::ResourceLimit`] at some horizon
/// skips that horizon rather than aborting the auction.
pub fn run_auction_with<S: WdpSolver>(
    instance: &Instance,
    solver: &S,
) -> Result<AuctionOutcome, AuctionError> {
    let _run = span!(
        "afl_run",
        solver = solver.name(),
        bids = instance.iter_bids().count() as u64
    );
    let mut best: Option<AuctionOutcome> = None;
    for h in sweep_horizons(instance, solver)? {
        if let Ok(sol) = h.result {
            let cheaper = best
                .as_ref()
                .is_none_or(|b| sol.cost() < b.social_cost() - 1e-12);
            if cheaper {
                best = Some(AuctionOutcome {
                    horizon: h.horizon,
                    solution: sol,
                });
            }
        }
    }
    if let Some(b) = &best {
        gauge!("afl.social_cost", b.social_cost());
        gauge!("afl.horizon", b.horizon());
        debug!(
            "A_FL chose T_g = {} at social cost {}",
            b.horizon(),
            b.social_cost()
        );
    }
    best.ok_or(AuctionError::Infeasible)
}

/// Solves the WDP at **every** admissible horizon and returns all results
/// (Fig. 7 plots these directly; `A_FL` takes their minimum).
///
/// # Errors
///
/// [`AuctionError::InvalidInstance`] if no bids were submitted (there is no
/// `θ_min` to derive `T_0` from).
pub fn sweep_horizons<S: WdpSolver>(
    instance: &Instance,
    solver: &S,
) -> Result<Vec<HorizonOutcome>, AuctionError> {
    let t0 =
        min_horizon(instance).ok_or_else(|| AuctionError::invalid("no bids were submitted"))?;
    let t_max = instance.config().max_rounds();
    let mut out = Vec::new();
    for horizon in t0..=t_max {
        let _candidate = span!("tg_candidate", tg = horizon);
        let wdp = qualify(instance, horizon);
        let qualified = wdp.bids().len();
        let result = if wdp.obviously_infeasible() {
            counter!("afl.horizons_obviously_infeasible");
            Err(WdpError::Infeasible)
        } else {
            solver.solve_wdp(&wdp)
        };
        if result.is_ok() {
            counter!("afl.horizons_feasible");
        }
        out.push(HorizonOutcome {
            horizon,
            qualified,
            result,
        });
    }
    counter!("afl.horizons_swept", out.len());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bid::{Bid, ClientProfile};
    use crate::config::AuctionConfig;
    use crate::types::{Round, Window};

    /// K = 1, T = 6; clients trade off accuracy (affects admissible
    /// horizons) against price.
    fn instance() -> Instance {
        let cfg = AuctionConfig::builder()
            .max_rounds(6)
            .clients_per_round(1)
            .round_time_limit(100.0)
            .build()
            .unwrap();
        let mut inst = Instance::new(cfg);
        let c1 = inst.add_client(ClientProfile::new(2.0, 5.0).unwrap());
        let c2 = inst.add_client(ClientProfile::new(2.0, 5.0).unwrap());
        let c3 = inst.add_client(ClientProfile::new(2.0, 5.0).unwrap());
        // Accurate but pricey, available everywhere.
        inst.add_bid(
            c1,
            Bid::new(30.0, 0.5, Window::new(Round(1), Round(6)), 6).unwrap(),
        )
        .unwrap();
        // Cheap, coarse accuracy (θ = 0.8 → needs T̂_g ≥ 5).
        inst.add_bid(
            c2,
            Bid::new(6.0, 0.8, Window::new(Round(1), Round(6)), 6).unwrap(),
        )
        .unwrap();
        // Mid client covering early rounds only.
        inst.add_bid(
            c3,
            Bid::new(8.0, 0.6, Window::new(Round(1), Round(3)), 3).unwrap(),
        )
        .unwrap();
        inst
    }

    #[test]
    fn picks_the_cheapest_feasible_horizon() {
        let outcome = run_auction(&instance()).unwrap();
        // At T̂_g ∈ [2,4] only the θ ≤ 0.75 bids qualify; covering all
        // rounds needs the $30 bid. At T̂_g ∈ [5,6] the $6 bid qualifies
        // and covers everything alone → cost 6.
        assert_eq!(outcome.social_cost(), 6.0);
        assert!(outcome.horizon() >= 5);
        assert_eq!(outcome.solution().winners().len(), 1);
    }

    #[test]
    fn sweep_reports_every_admissible_horizon() {
        let inst = instance();
        let sweep = sweep_horizons(&inst, &AWinner::new()).unwrap();
        // θ_min = 0.5 → T_0 = 2; horizons 2..=6.
        assert_eq!(sweep.len(), 5);
        assert_eq!(sweep[0].horizon, 2);
        assert_eq!(sweep.last().unwrap().horizon, 6);
        for h in &sweep {
            match &h.result {
                Ok(sol) => assert_eq!(sol.horizon(), h.horizon),
                Err(e) => assert_eq!(*e, WdpError::Infeasible),
            }
        }
    }

    #[test]
    fn empty_instance_is_invalid() {
        let inst = Instance::new(AuctionConfig::paper_default());
        assert!(matches!(
            run_auction(&inst),
            Err(AuctionError::InvalidInstance(_))
        ));
    }

    #[test]
    fn uncoverable_instance_is_infeasible() {
        let cfg = AuctionConfig::builder()
            .max_rounds(3)
            .clients_per_round(2)
            .build()
            .unwrap();
        let mut inst = Instance::new(cfg);
        let c = inst.add_client(ClientProfile::new(1.0, 1.0).unwrap());
        inst.add_bid(
            c,
            Bid::new(1.0, 0.5, Window::new(Round(1), Round(3)), 3).unwrap(),
        )
        .unwrap();
        assert_eq!(run_auction(&inst), Err(AuctionError::Infeasible));
    }

    #[test]
    fn outcome_exposes_solution() {
        let outcome = run_auction(&instance()).unwrap();
        assert_eq!(outcome.solution().cost(), outcome.social_cost());
        assert!(outcome.solution().certificate().is_some());
    }

    #[test]
    fn ties_prefer_the_earlier_horizon() {
        // One client whose bid qualifies from T̂_g = 2 onward with the same
        // cost at every horizon... cost ties keep the first (smallest T̂_g).
        let cfg = AuctionConfig::builder()
            .max_rounds(4)
            .clients_per_round(1)
            .build()
            .unwrap();
        let mut inst = Instance::new(cfg);
        let c = inst.add_client(ClientProfile::new(1.0, 1.0).unwrap());
        inst.add_bid(
            c,
            Bid::new(5.0, 0.5, Window::new(Round(1), Round(4)), 4).unwrap(),
        )
        .unwrap();
        // c_ij = 4 needs the full window: only T̂_g = 4 is feasible though.
        let outcome = run_auction(&inst).unwrap();
        assert_eq!(outcome.horizon(), 4);

        let mut inst2 = Instance::new(
            AuctionConfig::builder()
                .max_rounds(4)
                .clients_per_round(1)
                .build()
                .unwrap(),
        );
        let c2 = inst2.add_client(ClientProfile::new(1.0, 1.0).unwrap());
        inst2
            .add_bid(
                c2,
                Bid::new(5.0, 0.5, Window::new(Round(1), Round(4)), 2).unwrap(),
            )
            .unwrap();
        // c = 2: feasible at T̂_g = 2 (cost 5) and infeasible at 3, 4 only
        // if rounds cannot be covered — with c = 2 < T̂_g they cannot.
        let outcome2 = run_auction(&inst2).unwrap();
        assert_eq!(outcome2.horizon(), 2);
    }
}

//! `A_FL` — the top-level auction (Alg. 1).
//!
//! The social-cost minimisation ILP couples the horizon `T_g` to the
//! winners' accuracies, so `A_FL` enumerates every admissible horizon
//! `T̂_g ∈ [T_0, T]`, solves the winner-determination problem each induces,
//! and announces the cheapest feasible result. The WDP solver is pluggable
//! ([`WdpSolver`]) so the same outer loop drives the paper's `A_winner`,
//! the three baselines, and the exact optimum.
//!
//! # Execution model
//!
//! The per-horizon WDPs are independent, so the enumeration fans out over
//! a scoped worker pool according to the instance's
//! [`SweepStrategy`](crate::SweepStrategy) (default: `FL_THREADS` or the
//! machine's available parallelism). Per-horizon qualification uses the
//! thresholds precomputed once by
//! [`SweepPrecomp`](crate::preprocess::SweepPrecomp), and
//! [`run_auction_with`] additionally skips horizons whose
//! [cost lower bound](crate::preprocess::SweepPrecomp::cost_lower_bound)
//! proves they cannot beat the best outcome found so far. None of this is
//! observable in the results:
//!
//! * **Tie-break.** The winning horizon is the *smallest* `T̂_g` attaining
//!   the minimum social cost, under exact (`<`, no epsilon) comparison.
//! * **Determinism.** Results are merged in ascending horizon order on the
//!   calling thread, the shared best-cost cell pruning reads is only
//!   advanced between waves of `threads` horizons, and worker telemetry is
//!   captured and replayed in horizon order — so outcomes (and, for a
//!   fixed strategy, traces) are bit-identical run to run, and outcomes
//!   are bit-identical across strategies.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::bid::Instance;
use crate::error::{AuctionError, WdpError};
use crate::parallel::ordered_map;
use crate::preprocess::SweepPrecomp;
use crate::qualify::min_horizon;
use crate::wdp::{WdpSolution, WdpSolver};
use crate::winner::AWinner;
use fl_telemetry::{counter, debug, gauge, span};

/// The auction result the server announces (Alg. 1 lines 12–15).
#[derive(Debug, Clone, PartialEq)]
pub struct AuctionOutcome {
    horizon: u32,
    solution: WdpSolution,
}

impl AuctionOutcome {
    /// Reassembles an outcome from its parts — the inverse of
    /// `(horizon(), solution())`, used by [`crate::serial`] and the
    /// service layer's journal recovery to reconstruct announced outcomes
    /// bit-identically.
    pub fn from_parts(horizon: u32, solution: WdpSolution) -> AuctionOutcome {
        AuctionOutcome { horizon, solution }
    }

    /// The chosen number of global iterations `T_g*`.
    pub fn horizon(&self) -> u32 {
        self.horizon
    }

    /// The winning solution: accepted bids, schedules and payments.
    pub fn solution(&self) -> &WdpSolution {
        &self.solution
    }

    /// The minimum social cost found.
    pub fn social_cost(&self) -> f64 {
        self.solution.cost()
    }

    /// The ranked standby pool backing this outcome — the fault-tolerance
    /// companion contract priced from the losing qualified bids (see
    /// [`crate::recover`]).
    pub fn standby_pool(&self, instance: &Instance) -> crate::recover::StandbyPool {
        crate::recover::standby_pool(instance, self)
    }
}

/// The per-horizon record produced by [`sweep_horizons`] (Fig. 7's x-axis).
#[derive(Debug, Clone)]
pub struct HorizonOutcome {
    /// The fixed `T̂_g` of this WDP.
    pub horizon: u32,
    /// How many bids qualified.
    pub qualified: usize,
    /// The WDP result at this horizon.
    pub result: Result<WdpSolution, WdpError>,
}

/// Runs the full paper mechanism: `A_FL` with `A_winner` inside.
///
/// # Errors
///
/// * [`AuctionError::InvalidInstance`] if no bids were submitted.
/// * [`AuctionError::Infeasible`] if no horizon admits a feasible winner
///   set.
///
/// # Example
///
/// ```
/// use fl_auction::{run_auction, AuctionConfig, Bid, ClientProfile, Instance, Round, Window};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cfg = AuctionConfig::builder().max_rounds(4).clients_per_round(1).build()?;
/// let mut inst = Instance::new(cfg);
/// for price in [3.0, 5.0] {
///     let c = inst.add_client(ClientProfile::new(2.0, 5.0)?);
///     inst.add_bid(c, Bid::new(price, 0.6, Window::new(Round(1), Round(4)), 4)?)?;
/// }
/// let outcome = run_auction(&inst)?;
/// assert_eq!(outcome.social_cost(), 3.0);
/// # Ok(())
/// # }
/// ```
pub fn run_auction(instance: &Instance) -> Result<AuctionOutcome, AuctionError> {
    run_auction_with(instance, &AWinner::new())
}

/// Runs `A_FL`'s outer enumeration around an arbitrary WDP solver.
///
/// Horizons are processed in waves of `threads` (per the instance's
/// [`SweepStrategy`](crate::SweepStrategy)); a horizon whose
/// [cost lower bound](SweepPrecomp::cost_lower_bound) strictly exceeds the
/// best cost found in *earlier waves* is pruned without solving its WDP.
/// On cost ties the smallest `T̂_g` wins (exact comparison, no epsilon),
/// and because pruning requires a *strictly* larger lower bound, a pruned
/// horizon can never be the tie-break winner — the outcome is identical to
/// the unpruned sequential fold over [`sweep_horizons`].
///
/// # Errors
///
/// Same as [`run_auction`]. A [`WdpError::ResourceLimit`] at some horizon
/// skips that horizon rather than aborting the auction.
///
/// # Example
///
/// ```
/// use fl_auction::{
///     run_auction_with, AWinner, AuctionConfig, Bid, ClientProfile, Instance, Round,
///     SweepStrategy, Window,
/// };
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cfg = AuctionConfig::builder()
///     .max_rounds(4)
///     .clients_per_round(1)
///     .sweep_strategy(SweepStrategy::Parallel { threads: 2 })
///     .build()?;
/// let mut inst = Instance::new(cfg);
/// let c = inst.add_client(ClientProfile::new(2.0, 5.0)?);
/// inst.add_bid(c, Bid::new(3.0, 0.5, Window::new(Round(1), Round(4)), 2)?)?;
/// let outcome = run_auction_with(&inst, &AWinner::new())?;
/// // Identical to the sequential result: cheapest horizon, smallest on ties.
/// assert_eq!((outcome.horizon(), outcome.social_cost()), (2, 3.0));
/// # Ok(())
/// # }
/// ```
pub fn run_auction_with<S: WdpSolver + Sync>(
    instance: &Instance,
    solver: &S,
) -> Result<AuctionOutcome, AuctionError> {
    let _run = span!(
        "afl_run",
        solver = solver.name(),
        bids = instance.iter_bids().count() as u64
    );
    let (precomp, horizons) = prepare_sweep(instance)?;
    let threads = instance.config().sweep_strategy().threads().max(1);
    // Best social cost so far, shared with workers as raw f64 bits. It is
    // written only here on the calling thread, between waves, so every
    // worker in a wave reads the same bound and the set of pruned horizons
    // is deterministic for a fixed strategy.
    let best_cost = AtomicU64::new(f64::INFINITY.to_bits());
    let mut best: Option<AuctionOutcome> = None;
    for wave in horizons.chunks(threads) {
        let outcomes = ordered_map(wave, threads, |horizon| {
            let bound = f64::from_bits(best_cost.load(Ordering::Relaxed));
            // Strict `>`: a lower bound merely *equal* to the incumbent is
            // still solved, so the smallest-`T̂_g` tie-break never turns on
            // a pruned horizon and pruning stays outcome-preserving.
            if precomp.cost_lower_bound(horizon) > bound {
                let _candidate = span!("tg_candidate", tg = horizon);
                counter!("afl.horizons_pruned");
                debug!(
                    "T_g = {} pruned: lower bound exceeds incumbent {}",
                    horizon, bound
                );
                None
            } else {
                Some(evaluate_horizon(&precomp, solver, horizon))
            }
        });
        for h in outcomes.into_iter().flatten() {
            if let Ok(sol) = h.result {
                // Exact `<`: on a cost tie the incumbent (earlier, smaller
                // horizon) is kept.
                let cheaper = best.as_ref().is_none_or(|b| sol.cost() < b.social_cost());
                if cheaper {
                    best = Some(AuctionOutcome {
                        horizon: h.horizon,
                        solution: sol,
                    });
                }
            }
        }
        if let Some(b) = &best {
            best_cost.store(b.social_cost().to_bits(), Ordering::Relaxed);
        }
    }
    counter!("afl.horizons_swept", horizons.len());
    if let Some(b) = &best {
        gauge!("afl.social_cost", b.social_cost());
        gauge!("afl.horizon", b.horizon());
        debug!(
            "A_FL chose T_g = {} at social cost {}",
            b.horizon(),
            b.social_cost()
        );
    }
    best.ok_or(AuctionError::Infeasible)
}

/// Solves the WDP at **every** admissible horizon and returns all results
/// (Fig. 7 plots these directly; `A_FL` takes their minimum).
///
/// Unlike [`run_auction_with`] this never prunes — every horizon's record
/// is returned, in ascending order, regardless of the instance's
/// [`SweepStrategy`](crate::SweepStrategy) (which only changes how the
/// per-horizon WDPs are scheduled, never what they return).
///
/// # Errors
///
/// [`AuctionError::InvalidInstance`] if no bids were submitted (there is no
/// `θ_min` to derive `T_0` from).
///
/// # Example
///
/// ```
/// use fl_auction::{
///     sweep_horizons, AWinner, AuctionConfig, Bid, ClientProfile, Instance, Round, Window,
/// };
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cfg = AuctionConfig::builder().max_rounds(4).clients_per_round(1).build()?;
/// let mut inst = Instance::new(cfg);
/// let c = inst.add_client(ClientProfile::new(2.0, 5.0)?);
/// // θ = 0.5 admits every horizon from T_0 = 2 up to T = 4.
/// inst.add_bid(c, Bid::new(3.0, 0.5, Window::new(Round(1), Round(4)), 2)?)?;
/// let sweep = sweep_horizons(&inst, &AWinner::new())?;
/// let horizons: Vec<u32> = sweep.iter().map(|h| h.horizon).collect();
/// assert_eq!(horizons, vec![2, 3, 4]);
/// # Ok(())
/// # }
/// ```
pub fn sweep_horizons<S: WdpSolver + Sync>(
    instance: &Instance,
    solver: &S,
) -> Result<Vec<HorizonOutcome>, AuctionError> {
    let (precomp, horizons) = prepare_sweep(instance)?;
    let threads = instance.config().sweep_strategy().threads();
    let out = ordered_map(&horizons, threads, |horizon| {
        evaluate_horizon(&precomp, solver, horizon)
    });
    counter!("afl.horizons_swept", out.len());
    Ok(out)
}

/// Everything the sweeps share: the incremental qualifier plus the list of
/// admissible horizons `T_0 ..= T` in ascending order.
fn prepare_sweep(instance: &Instance) -> Result<(SweepPrecomp, Vec<u32>), AuctionError> {
    let t0 =
        min_horizon(instance).ok_or_else(|| AuctionError::invalid("no bids were submitted"))?;
    let horizons: Vec<u32> = (t0..=instance.config().max_rounds()).collect();
    Ok((SweepPrecomp::new(instance), horizons))
}

/// Qualifies and solves one candidate horizon (Alg. 1 lines 4–10).
fn evaluate_horizon<S: WdpSolver>(
    precomp: &SweepPrecomp,
    solver: &S,
    horizon: u32,
) -> HorizonOutcome {
    let _candidate = span!("tg_candidate", tg = horizon);
    let wdp = precomp.qualify_at(horizon);
    let qualified = wdp.bids().len();
    let result = if wdp.obviously_infeasible() {
        counter!("afl.horizons_obviously_infeasible");
        Err(WdpError::Infeasible)
    } else {
        solver.solve_wdp(&wdp)
    };
    if result.is_ok() {
        counter!("afl.horizons_feasible");
    }
    HorizonOutcome {
        horizon,
        qualified,
        result,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bid::{Bid, ClientProfile};
    use crate::config::AuctionConfig;
    use crate::types::{Round, Window};

    /// K = 1, T = 6; clients trade off accuracy (affects admissible
    /// horizons) against price.
    fn instance() -> Instance {
        let cfg = AuctionConfig::builder()
            .max_rounds(6)
            .clients_per_round(1)
            .round_time_limit(100.0)
            .build()
            .unwrap();
        let mut inst = Instance::new(cfg);
        let c1 = inst.add_client(ClientProfile::new(2.0, 5.0).unwrap());
        let c2 = inst.add_client(ClientProfile::new(2.0, 5.0).unwrap());
        let c3 = inst.add_client(ClientProfile::new(2.0, 5.0).unwrap());
        // Accurate but pricey, available everywhere.
        inst.add_bid(
            c1,
            Bid::new(30.0, 0.5, Window::new(Round(1), Round(6)), 6).unwrap(),
        )
        .unwrap();
        // Cheap, coarse accuracy (θ = 0.8 → needs T̂_g ≥ 5).
        inst.add_bid(
            c2,
            Bid::new(6.0, 0.8, Window::new(Round(1), Round(6)), 6).unwrap(),
        )
        .unwrap();
        // Mid client covering early rounds only.
        inst.add_bid(
            c3,
            Bid::new(8.0, 0.6, Window::new(Round(1), Round(3)), 3).unwrap(),
        )
        .unwrap();
        inst
    }

    #[test]
    fn picks_the_cheapest_feasible_horizon() {
        let outcome = run_auction(&instance()).unwrap();
        // At T̂_g ∈ [2,4] only the θ ≤ 0.75 bids qualify; covering all
        // rounds needs the $30 bid. At T̂_g ∈ [5,6] the $6 bid qualifies
        // and covers everything alone → cost 6.
        assert_eq!(outcome.social_cost(), 6.0);
        assert!(outcome.horizon() >= 5);
        assert_eq!(outcome.solution().winners().len(), 1);
    }

    #[test]
    fn sweep_reports_every_admissible_horizon() {
        let inst = instance();
        let sweep = sweep_horizons(&inst, &AWinner::new()).unwrap();
        // θ_min = 0.5 → T_0 = 2; horizons 2..=6.
        assert_eq!(sweep.len(), 5);
        assert_eq!(sweep[0].horizon, 2);
        assert_eq!(sweep.last().unwrap().horizon, 6);
        for h in &sweep {
            match &h.result {
                Ok(sol) => assert_eq!(sol.horizon(), h.horizon),
                Err(e) => assert_eq!(*e, WdpError::Infeasible),
            }
        }
    }

    #[test]
    fn empty_instance_is_invalid() {
        let inst = Instance::new(AuctionConfig::paper_default());
        assert!(matches!(
            run_auction(&inst),
            Err(AuctionError::InvalidInstance(_))
        ));
    }

    #[test]
    fn uncoverable_instance_is_infeasible() {
        let cfg = AuctionConfig::builder()
            .max_rounds(3)
            .clients_per_round(2)
            .build()
            .unwrap();
        let mut inst = Instance::new(cfg);
        let c = inst.add_client(ClientProfile::new(1.0, 1.0).unwrap());
        inst.add_bid(
            c,
            Bid::new(1.0, 0.5, Window::new(Round(1), Round(3)), 3).unwrap(),
        )
        .unwrap();
        assert_eq!(run_auction(&inst), Err(AuctionError::Infeasible));
    }

    #[test]
    fn outcome_exposes_solution() {
        let outcome = run_auction(&instance()).unwrap();
        assert_eq!(outcome.solution().cost(), outcome.social_cost());
        assert!(outcome.solution().certificate().is_some());
    }

    #[test]
    fn ties_prefer_the_earlier_horizon() {
        // One client whose bid qualifies from T̂_g = 2 onward with the same
        // cost at every horizon... cost ties keep the first (smallest T̂_g).
        let cfg = AuctionConfig::builder()
            .max_rounds(4)
            .clients_per_round(1)
            .build()
            .unwrap();
        let mut inst = Instance::new(cfg);
        let c = inst.add_client(ClientProfile::new(1.0, 1.0).unwrap());
        inst.add_bid(
            c,
            Bid::new(5.0, 0.5, Window::new(Round(1), Round(4)), 4).unwrap(),
        )
        .unwrap();
        // c_ij = 4 needs the full window: only T̂_g = 4 is feasible though.
        let outcome = run_auction(&inst).unwrap();
        assert_eq!(outcome.horizon(), 4);

        let mut inst2 = Instance::new(
            AuctionConfig::builder()
                .max_rounds(4)
                .clients_per_round(1)
                .build()
                .unwrap(),
        );
        let c2 = inst2.add_client(ClientProfile::new(1.0, 1.0).unwrap());
        inst2
            .add_bid(
                c2,
                Bid::new(5.0, 0.5, Window::new(Round(1), Round(4)), 2).unwrap(),
            )
            .unwrap();
        // c = 2: feasible at T̂_g = 2 (cost 5) and infeasible at 3, 4 only
        // if rounds cannot be covered — with c = 2 < T̂_g they cannot.
        let outcome2 = run_auction(&inst2).unwrap();
        assert_eq!(outcome2.horizon(), 2);
    }
}

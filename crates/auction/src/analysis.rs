//! Post-hoc analysis of auction outcomes: cost decomposition and summary
//! statistics.
//!
//! The paper's Fig. 7 narrative ("computation cost occupies a large
//! proportion of the total cost at the early stage … the communication
//! cost dominates" later) talks about the *composition* of the social
//! cost. [`CostBreakdown`] makes that measurable: each winner's claimed
//! cost is attributed to computation and communication in proportion to
//! its per-round time components `T_l(θ)·t^cmp` and `t^com`.

use crate::auction::AuctionOutcome;
use crate::bid::Instance;
use crate::coverage::Coverage;

/// Attribution of the social cost to computation vs communication.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostBreakdown {
    /// Cost share attributed to local computation.
    pub computation: f64,
    /// Cost share attributed to model-update communication.
    pub communication: f64,
}

impl CostBreakdown {
    /// Total attributed cost (equals the social cost up to rounding).
    pub fn total(&self) -> f64 {
        self.computation + self.communication
    }

    /// Fraction of the cost that is computation (`NaN`-free; 0 when the
    /// total is 0).
    pub fn computation_share(&self) -> f64 {
        let t = self.total();
        if t > 0.0 {
            self.computation / t
        } else {
            0.0
        }
    }
}

/// Splits the outcome's social cost into computation/communication shares
/// using each winner's time profile.
pub fn cost_breakdown(instance: &Instance, outcome: &AuctionOutcome) -> CostBreakdown {
    let mut out = CostBreakdown::default();
    for w in outcome.solution().winners() {
        let bid = instance.bid(w.bid_ref);
        let profile = &instance.clients()[w.bid_ref.client.index()];
        let compute = instance
            .config()
            .local_model()
            .local_iterations(bid.accuracy())
            * profile.compute_time();
        let comm = profile.comm_time();
        let total_time = compute + comm;
        if total_time > 0.0 {
            out.computation += w.price * compute / total_time;
            out.communication += w.price * comm / total_time;
        } else {
            // Degenerate zero-time profile: attribute everything to
            // communication (the round still has to be exchanged).
            out.communication += w.price;
        }
    }
    out
}

/// Aggregate statistics of one outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct OutcomeStats {
    /// Number of accepted bids.
    pub winners: usize,
    /// `Σ b_ij x_ij` — the social cost.
    pub social_cost: f64,
    /// `Σ p_i` — the server's total expenditure.
    pub total_payment: f64,
    /// `Σ p_i / Σ b_ij` — the price of truthfulness (≥ 1 under the
    /// critical-value rule).
    pub payment_overhead: f64,
    /// Mean scheduled rounds per winner.
    pub mean_rounds_per_winner: f64,
    /// Scheduled participations beyond `K` per round, summed — coverage
    /// the server paid for but does not need (constraint (6c) forces
    /// winners to serve all `c_ij` rounds).
    pub surplus_participations: u64,
}

/// Computes [`OutcomeStats`].
///
/// # Panics
///
/// Panics if the outcome's schedules reference rounds outside
/// `1..=outcome.horizon()` (a malformed outcome; run
/// [`verify`](crate::verify) first when in doubt).
pub fn outcome_stats(instance: &Instance, outcome: &AuctionOutcome) -> OutcomeStats {
    let winners = outcome.solution().winners();
    let k = instance.config().clients_per_round();
    let mut cov = Coverage::new(outcome.horizon(), k);
    let mut total_rounds = 0u64;
    for w in winners {
        cov.add(&w.schedule);
        total_rounds += w.schedule.len() as u64;
    }
    let surplus: u64 = (1..=outcome.horizon())
        .map(|t| u64::from(cov.load(crate::types::Round(t)).saturating_sub(k)))
        .sum();
    let social_cost = outcome.social_cost();
    let total_payment = outcome.solution().total_payment();
    OutcomeStats {
        winners: winners.len(),
        social_cost,
        total_payment,
        payment_overhead: if social_cost > 0.0 {
            total_payment / social_cost
        } else {
            1.0
        },
        mean_rounds_per_winner: if winners.is_empty() {
            0.0
        } else {
            total_rounds as f64 / winners.len() as f64
        },
        surplus_participations: surplus,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auction::run_auction;
    use crate::bid::{Bid, ClientProfile};
    use crate::config::AuctionConfig;
    use crate::types::{Round, Window};

    fn instance() -> Instance {
        let cfg = AuctionConfig::builder()
            .max_rounds(6)
            .clients_per_round(2)
            .round_time_limit(100.0)
            .build()
            .unwrap();
        let mut inst = Instance::new(cfg);
        for (price, theta) in [
            (10.0, 0.5),
            (14.0, 0.6),
            (8.0, 0.7),
            (20.0, 0.5),
            (12.0, 0.65),
        ] {
            let c = inst.add_client(ClientProfile::new(4.0, 6.0).unwrap());
            inst.add_bid(
                c,
                Bid::new(price, theta, Window::new(Round(1), Round(6)), 6).unwrap(),
            )
            .unwrap();
        }
        inst
    }

    #[test]
    fn breakdown_sums_to_social_cost() {
        let inst = instance();
        let outcome = run_auction(&inst).unwrap();
        let b = cost_breakdown(&inst, &outcome);
        assert!((b.total() - outcome.social_cost()).abs() < 1e-9);
        assert!(b.computation > 0.0 && b.communication > 0.0);
        assert!((0.0..=1.0).contains(&b.computation_share()));
    }

    #[test]
    fn more_accurate_winners_shift_cost_toward_computation() {
        // θ = 0.5 → T_l = 5 → compute 20 vs comm 6: computation-heavy.
        let inst = instance();
        let outcome = run_auction(&inst).unwrap();
        let b = cost_breakdown(&inst, &outcome);
        assert!(
            b.computation_share() > 0.5,
            "these profiles are compute-dominated, share = {}",
            b.computation_share()
        );
    }

    #[test]
    fn stats_are_consistent() {
        let inst = instance();
        let outcome = run_auction(&inst).unwrap();
        let s = outcome_stats(&inst, &outcome);
        assert_eq!(s.winners, outcome.solution().winners().len());
        assert!((s.social_cost - outcome.social_cost()).abs() < 1e-12);
        assert!(s.payment_overhead >= 1.0 - 1e-9, "IR forces overhead ≥ 1");
        assert!(s.mean_rounds_per_winner > 0.0);
        // All bids run 6 rounds with K = 2: every winner beyond 2 is
        // surplus in every round.
        let expected_surplus = (s.winners as u64 - 2) * 6;
        assert_eq!(s.surplus_participations, expected_surplus);
    }

    #[test]
    fn empty_breakdown_defaults() {
        let b = CostBreakdown::default();
        assert_eq!(b.total(), 0.0);
        assert_eq!(b.computation_share(), 0.0);
    }
}

//! The winner-determination problem (WDP) and its solution types.
//!
//! For a fixed horizon `T̂_g`, the WDP asks for a minimum-cost set of
//! qualified bids — at most one per client — together with per-bid schedules
//! such that every round `1..=T̂_g` has at least `K` scheduled clients
//! (ILP (7) in the paper, after the compact-exponential reformulation).

use crate::error::WdpError;
use crate::qualify::QualifiedBid;
use crate::types::{BidRef, Round};

/// One WDP instance: a horizon, the per-round demand, and the qualified
/// bids admitted for this horizon.
#[derive(Debug, Clone)]
pub struct Wdp {
    horizon: u32,
    k: u32,
    bids: Vec<QualifiedBid>,
}

impl Wdp {
    /// Wraps a qualified bid set.
    ///
    /// # Panics
    ///
    /// Panics if `horizon` or `k` is zero, or if any bid's window escapes
    /// the horizon (qualification is supposed to clip windows).
    pub fn new(horizon: u32, k: u32, bids: Vec<QualifiedBid>) -> Self {
        assert!(horizon >= 1, "horizon must be at least 1");
        assert!(k >= 1, "per-round demand must be at least 1");
        for b in &bids {
            assert!(
                b.window.end().0 <= horizon,
                "bid {} window {} escapes horizon {horizon}",
                b.bid_ref,
                b.window
            );
        }
        Wdp { horizon, k, bids }
    }

    /// The horizon `T̂_g`.
    pub fn horizon(&self) -> u32 {
        self.horizon
    }

    /// The per-round demand `K`.
    pub fn demand_per_round(&self) -> u32 {
        self.k
    }

    /// The qualified bids.
    pub fn bids(&self) -> &[QualifiedBid] {
        &self.bids
    }

    /// A quick necessary (not sufficient) feasibility check: every round
    /// must be inside at least `K` qualified windows of *distinct* clients.
    pub fn obviously_infeasible(&self) -> bool {
        let mut per_round: Vec<std::collections::HashSet<u32>> =
            vec![std::collections::HashSet::new(); self.horizon as usize];
        for b in &self.bids {
            for t in b.window.rounds() {
                per_round[t.index()].insert(b.bid_ref.client.0);
            }
        }
        per_round.iter().any(|s| (s.len() as u32) < self.k)
    }
}

/// One accepted bid in a WDP solution.
#[derive(Debug, Clone, PartialEq)]
pub struct WinnerEntry {
    /// Which bid won.
    pub bid_ref: BidRef,
    /// The winner's claimed cost `b_ij` (equals the true cost under
    /// truthful bidding).
    pub price: f64,
    /// The remuneration `p_i` awarded to the client. Critical-value for
    /// `A_winner`; pay-as-bid for baselines (their social-cost comparison
    /// does not involve payments).
    pub payment: f64,
    /// The `c_ij` scheduled rounds, strictly increasing.
    pub schedule: Vec<Round>,
}

impl WinnerEntry {
    /// The winner's utility under truthful bidding, `p_i − v_ij`.
    pub fn utility(&self) -> f64 {
        self.payment - self.price
    }
}

/// Dual-variable certificate emitted by `A_winner` (Alg. 2 lines 16–23).
///
/// Feeding the selected schedules' average costs into the dual of the
/// relaxed ILP (7) yields a feasible dual point whose objective `D`
/// satisfies `D ≤ OPT_LP ≤ OPT ≤ P ≤ H_{T̂_g}·ω·D` (Lemma 5), so
/// `ratio_bound()` is an *instance-specific* upper bound on how far the
/// greedy cost `P` is from optimal.
#[derive(Debug, Clone, PartialEq)]
pub struct DualCertificate {
    /// Harmonic number `H_{T̂_g} = Σ_{t≤T̂_g} 1/t`.
    pub harmonic: f64,
    /// `ω = max_t ψ_max^t / ψ_min^t` (Alg. 2 line 18), where `ψ_max^t` is
    /// the largest qualified price covering round `t` and `ψ_min^t` the
    /// smallest possible average cost `ρ/c` over **all** qualified bids
    /// covering `t` (not just averages realised during the run — the wider
    /// domain is what keeps the scaled dual point feasible for bids the
    /// greedy never evaluated at `t`).
    pub omega: f64,
    /// Dual variable `g(t)` per round (index 0 ↔ round 1).
    pub g: Vec<f64>,
    /// Dual variable `λ_il` per winner, parallel to the solution's winner
    /// list.
    pub lambda: Vec<f64>,
    /// Dual objective `D = K·Σ_t g(t) − Σ λ_il` (all `q_i = 0`).
    pub dual_objective: f64,
}

impl DualCertificate {
    /// The a-posteriori approximation guarantee `H_{T̂_g}·ω`.
    pub fn ratio_bound(&self) -> f64 {
        self.harmonic * self.omega
    }

    /// The tighter empirical bound `P / D` implied by weak duality (always
    /// `≤ ratio_bound()` when the certificate is valid).
    pub fn empirical_bound(&self, primal_cost: f64) -> f64 {
        if self.dual_objective <= 0.0 {
            f64::INFINITY
        } else {
            primal_cost / self.dual_objective
        }
    }
}

/// A feasible solution to one WDP.
#[derive(Debug, Clone, PartialEq)]
pub struct WdpSolution {
    horizon: u32,
    winners: Vec<WinnerEntry>,
    cost: f64,
    certificate: Option<DualCertificate>,
    /// How many winners an *online* solver admitted through an offline
    /// completion pass after its irrevocable arrival phase failed to fill
    /// the quota (`A_online`'s "panic exit"). `0` for every solver that
    /// honours its own decision model; a non-zero value flags the solution
    /// as degraded for ratio aggregation.
    backfilled: usize,
}

impl WdpSolution {
    /// Assembles a solution; `cost` must equal the sum of winner prices.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `cost` disagrees with the winners' total
    /// price by more than a relative epsilon.
    pub fn new(
        horizon: u32,
        winners: Vec<WinnerEntry>,
        cost: f64,
        certificate: Option<DualCertificate>,
    ) -> Self {
        debug_assert!(
            {
                let total: f64 = winners.iter().map(|w| w.price).sum();
                (total - cost).abs() <= 1e-6 * (1.0 + total.abs())
            },
            "cost must be the sum of winning prices"
        );
        WdpSolution {
            horizon,
            winners,
            cost,
            certificate,
            backfilled: 0,
        }
    }

    /// Marks `n` winners as admitted by an offline completion pass that
    /// broke the solver's online (irrevocable-decision) semantics. See
    /// [`WdpSolution::backfilled`].
    pub fn with_backfilled(mut self, n: usize) -> Self {
        self.backfilled = n;
        self
    }

    /// Number of winners admitted outside the solver's own decision model
    /// (0 unless an online solver fell back to an offline completion
    /// pass). Solutions with `backfilled() > 0` must be excluded from
    /// online-vs-offline ratio aggregates — the fallback quietly converts
    /// an online run into a partially offline one.
    pub fn backfilled(&self) -> usize {
        self.backfilled
    }

    /// Whether this solution violates its solver's stated decision model
    /// ([`backfilled`](WdpSolution::backfilled)` > 0`).
    pub fn is_degraded(&self) -> bool {
        self.backfilled > 0
    }

    /// The horizon this solution was computed for.
    pub fn horizon(&self) -> u32 {
        self.horizon
    }

    /// The accepted bids with their schedules and payments.
    pub fn winners(&self) -> &[WinnerEntry] {
        &self.winners
    }

    /// The social cost `Σ b_ij x_ij` of the solution.
    pub fn cost(&self) -> f64 {
        self.cost
    }

    /// Total remuneration paid out, `Σ p_i`.
    pub fn total_payment(&self) -> f64 {
        self.winners.iter().map(|w| w.payment).sum()
    }

    /// The dual certificate, when the solver produced one (`A_winner`
    /// does; baselines and the exact solver do not).
    pub fn certificate(&self) -> Option<&DualCertificate> {
        self.certificate.as_ref()
    }
}

/// A winner-determination algorithm: anything that can solve one WDP.
///
/// Implemented by `A_winner` (this crate), the three baselines
/// (`fl-baselines`), and the exact branch-and-bound (`fl-exact`), so the
/// outer `A_FL` enumeration can run any of them interchangeably.
pub trait WdpSolver {
    /// Short human-readable name used in experiment tables.
    fn name(&self) -> &str;

    /// Solves one WDP.
    ///
    /// # Errors
    ///
    /// [`WdpError::Infeasible`] when the qualified bids cannot staff every
    /// round; [`WdpError::ResourceLimit`] when an internal budget is hit.
    fn solve_wdp(&self, wdp: &Wdp) -> Result<WdpSolution, WdpError>;
}

impl<S: WdpSolver + ?Sized> WdpSolver for &S {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn solve_wdp(&self, wdp: &Wdp) -> Result<WdpSolution, WdpError> {
        (**self).solve_wdp(wdp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{ClientId, Window};

    fn qb(client: u32, bid: u32, price: f64, a: u32, d: u32, c: u32) -> QualifiedBid {
        QualifiedBid {
            bid_ref: BidRef::new(ClientId(client), bid),
            price,
            accuracy: 0.5,
            window: Window::new(Round(a), Round(d)),
            rounds: c,
            round_time: 10.0,
        }
    }

    #[test]
    fn wdp_accessors() {
        let w = Wdp::new(3, 1, vec![qb(0, 0, 2.0, 1, 2, 1)]);
        assert_eq!(w.horizon(), 3);
        assert_eq!(w.demand_per_round(), 1);
        assert_eq!(w.bids().len(), 1);
    }

    #[test]
    #[should_panic(expected = "escapes horizon")]
    fn window_escaping_horizon_panics() {
        let _ = Wdp::new(2, 1, vec![qb(0, 0, 2.0, 1, 3, 1)]);
    }

    #[test]
    fn obvious_infeasibility_detects_uncovered_round() {
        // Round 3 is covered by nobody.
        let w = Wdp::new(3, 1, vec![qb(0, 0, 2.0, 1, 2, 1), qb(1, 0, 2.0, 1, 2, 2)]);
        assert!(w.obviously_infeasible());
        // Distinct clients cover everything.
        let w2 = Wdp::new(2, 2, vec![qb(0, 0, 2.0, 1, 2, 1), qb(1, 0, 2.0, 1, 2, 2)]);
        assert!(!w2.obviously_infeasible());
        // Two bids of the SAME client do not count twice.
        let w3 = Wdp::new(2, 2, vec![qb(0, 0, 2.0, 1, 2, 1), qb(0, 1, 2.0, 1, 2, 2)]);
        assert!(w3.obviously_infeasible());
    }

    #[test]
    fn winner_entry_utility() {
        let w = WinnerEntry {
            bid_ref: BidRef::new(ClientId(0), 0),
            price: 4.0,
            payment: 6.5,
            schedule: vec![Round(1)],
        };
        assert!((w.utility() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn solution_aggregates() {
        let winners = vec![
            WinnerEntry {
                bid_ref: BidRef::new(ClientId(0), 0),
                price: 4.0,
                payment: 6.0,
                schedule: vec![Round(1)],
            },
            WinnerEntry {
                bid_ref: BidRef::new(ClientId(1), 0),
                price: 3.0,
                payment: 3.5,
                schedule: vec![Round(2)],
            },
        ];
        let sol = WdpSolution::new(2, winners, 7.0, None);
        assert_eq!(sol.cost(), 7.0);
        assert!((sol.total_payment() - 9.5).abs() < 1e-12);
        assert_eq!(sol.winners().len(), 2);
        assert!(sol.certificate().is_none());
        assert_eq!(sol.horizon(), 2);
    }

    #[test]
    fn certificate_bounds() {
        let cert = DualCertificate {
            harmonic: 1.5,
            omega: 2.0,
            g: vec![1.0, 1.0],
            lambda: vec![0.0],
            dual_objective: 4.0,
        };
        assert!((cert.ratio_bound() - 3.0).abs() < 1e-12);
        assert!((cert.empirical_bound(6.0) - 1.5).abs() < 1e-12);
        let degenerate = DualCertificate {
            dual_objective: 0.0,
            ..cert
        };
        assert!(degenerate.empirical_bound(6.0).is_infinite());
    }
}

//! Identifier and index newtypes shared across the auction crates.

use std::fmt;

/// Identifier of a client (a mobile device bidding into the auction).
///
/// Clients are numbered densely from zero in instance order; the id doubles
/// as the index into [`Instance::clients`](crate::Instance::clients).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClientId(pub u32);

impl ClientId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "client#{}", self.0)
    }
}

/// Reference to the `j`-th bid of a client (the paper's pair `(i, j)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BidRef {
    /// The bidding client `i`.
    pub client: ClientId,
    /// Zero-based index `j` into the client's bid list.
    pub bid: u32,
}

impl BidRef {
    /// Convenience constructor.
    pub fn new(client: ClientId, bid: u32) -> Self {
        BidRef { client, bid }
    }
}

impl fmt::Display for BidRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bid({}, {})", self.client.0, self.bid)
    }
}

/// A global iteration (communication round), numbered from **1** as in the
/// paper: the FL job runs rounds `1..=T_g`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Round(pub u32);

impl Round {
    /// First round of any job.
    pub const FIRST: Round = Round(1);

    /// Zero-based index for array storage (`round 1 → index 0`).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the round is 0 (rounds are 1-based).
    pub fn index(self) -> usize {
        debug_assert!(self.0 >= 1, "rounds are 1-based");
        (self.0 - 1) as usize
    }

    /// The round after this one.
    pub fn next(self) -> Round {
        Round(self.0 + 1)
    }
}

impl fmt::Display for Round {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", self.0)
    }
}

/// Inclusive availability window `[a_ij, d_ij]` of a bid, in global
/// iterations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Window {
    start: Round,
    end: Round,
}

impl Window {
    /// Creates the window `[start, end]`.
    ///
    /// # Panics
    ///
    /// Panics if `start` is round 0 or `end < start`.
    pub fn new(start: Round, end: Round) -> Self {
        assert!(start.0 >= 1, "windows start at round 1 or later");
        assert!(end >= start, "window end {end} precedes start {start}");
        Window { start, end }
    }

    /// First round of the window (`a_ij`).
    pub fn start(self) -> Round {
        self.start
    }

    /// Last round of the window (`d_ij`), inclusive.
    pub fn end(self) -> Round {
        self.end
    }

    /// Number of rounds in the window.
    pub fn len(self) -> u32 {
        self.end.0 - self.start.0 + 1
    }

    /// Whether the window is a single round.
    pub fn is_empty(self) -> bool {
        false // a constructed window always holds at least one round
    }

    /// Whether round `t` falls inside the window.
    pub fn contains(self, t: Round) -> bool {
        self.start <= t && t <= self.end
    }

    /// The window clipped to `[1, horizon]`, or `None` if it lies entirely
    /// beyond the horizon.
    pub fn truncate(self, horizon: Round) -> Option<Window> {
        if self.start > horizon {
            None
        } else {
            Some(Window {
                start: self.start,
                end: self.end.min(horizon),
            })
        }
    }

    /// Iterates the rounds of the window in increasing order.
    pub fn rounds(self) -> impl Iterator<Item = Round> {
        (self.start.0..=self.end.0).map(Round)
    }
}

impl fmt::Display for Window {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.start.0, self.end.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_index_is_zero_based() {
        assert_eq!(Round(1).index(), 0);
        assert_eq!(Round(7).index(), 6);
        assert_eq!(Round(3).next(), Round(4));
    }

    #[test]
    fn window_basics() {
        let w = Window::new(Round(2), Round(5));
        assert_eq!(w.len(), 4);
        assert!(w.contains(Round(2)));
        assert!(w.contains(Round(5)));
        assert!(!w.contains(Round(1)));
        assert!(!w.contains(Round(6)));
        assert_eq!(
            w.rounds().collect::<Vec<_>>(),
            vec![Round(2), Round(3), Round(4), Round(5)]
        );
    }

    #[test]
    fn window_truncation() {
        let w = Window::new(Round(2), Round(8));
        assert_eq!(w.truncate(Round(5)), Some(Window::new(Round(2), Round(5))));
        assert_eq!(w.truncate(Round(8)), Some(w));
        assert_eq!(w.truncate(Round(1)), None);
        let single = Window::new(Round(3), Round(3));
        assert_eq!(single.truncate(Round(3)), Some(single));
        assert_eq!(single.truncate(Round(2)), None);
    }

    #[test]
    #[should_panic(expected = "precedes start")]
    fn reversed_window_panics() {
        let _ = Window::new(Round(5), Round(2));
    }

    #[test]
    #[should_panic(expected = "start at round 1")]
    fn zero_start_window_panics() {
        let _ = Window::new(Round(0), Round(2));
    }

    #[test]
    fn display_formats() {
        assert_eq!(ClientId(3).to_string(), "client#3");
        assert_eq!(BidRef::new(ClientId(1), 2).to_string(), "bid(1, 2)");
        assert_eq!(Round(4).to_string(), "t=4");
        assert_eq!(Window::new(Round(1), Round(9)).to_string(), "[1, 9]");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(BidRef::new(ClientId(0), 0));
        s.insert(BidRef::new(ClientId(0), 1));
        s.insert(BidRef::new(ClientId(0), 0));
        assert_eq!(s.len(), 2);
        assert!(ClientId(1) < ClientId(2));
    }
}

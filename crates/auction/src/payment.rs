//! Payment rules for winner determination.
//!
//! The paper's `A_payment` (Alg. 3) awards each winner the *critical value*:
//! the highest price at which its schedule would still have been selected,
//! namely `R_{i*l*}(S) · ρ_{i'l'} / R_{i'l'}(S)` where `(i', l')` is the
//! candidate with the second-smallest average cost at the selection step.
//! Pay-as-bid is kept for the payment-rule ablation (it is cheaper for the
//! server but demonstrably not truthful).

/// Which remuneration rule the winner-determination greedy applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PaymentRule {
    /// Alg. 3: pay the winner's marginal utility times the runner-up's
    /// average cost. Truthful and individually rational (Theorems 1–2).
    #[default]
    CriticalValue,
    /// Pay exactly the claimed cost. Individually rational but manipulable;
    /// used only by the `ablation_payment` experiment and the baselines.
    PayAsBid,
}

/// Computes the payment for a freshly selected schedule.
///
/// * `price` — the winner's claimed cost `ρ_{i*l*}`.
/// * `gain` — the winner's marginal utility `R_{i*l*}(S)` at selection.
/// * `critical_avg` — the runner-up's average cost `ρ_{i'l'}/R_{i'l'}(S)`,
///   or `None` when the candidate set held no other schedule (the winner is
///   then paid its bid: with no competitor there is no critical threshold
///   below infinity that the mechanism can justify from bids alone, and
///   paying the bid preserves individual rationality).
pub fn payment(rule: PaymentRule, price: f64, gain: u32, critical_avg: Option<f64>) -> f64 {
    match rule {
        PaymentRule::PayAsBid => price,
        PaymentRule::CriticalValue => match critical_avg {
            Some(avg) => f64::from(gain) * avg,
            None => price,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn critical_value_pays_gain_times_runner_up_average() {
        // Paper's worked example, first iteration: winner B1 ($2, gain 1),
        // runner-up average 2.5 → p_1 = 2.5.
        let p = payment(PaymentRule::CriticalValue, 2.0, 1, Some(2.5));
        assert!((p - 2.5).abs() < 1e-12);
        // Second iteration: winner B3 ($5, gain 2), runner-up average 3 →
        // p_3 = 6.
        let p3 = payment(PaymentRule::CriticalValue, 5.0, 2, Some(3.0));
        assert!((p3 - 6.0).abs() < 1e-12);
    }

    #[test]
    fn critical_value_is_never_below_price_when_runner_up_is_worse() {
        // The runner-up has a (weakly) larger average cost by construction,
        // so payment ≥ gain · own-average = price.
        let price = 7.0;
        let gain = 3;
        let own_avg = price / f64::from(gain);
        for delta in [0.0, 0.1, 5.0] {
            let p = payment(
                PaymentRule::CriticalValue,
                price,
                gain,
                Some(own_avg + delta),
            );
            assert!(p >= price - 1e-12);
        }
    }

    #[test]
    fn missing_runner_up_pays_the_bid() {
        let p = payment(PaymentRule::CriticalValue, 4.0, 2, None);
        assert_eq!(p, 4.0);
    }

    #[test]
    fn pay_as_bid_ignores_competition() {
        assert_eq!(payment(PaymentRule::PayAsBid, 4.0, 2, Some(100.0)), 4.0);
    }
}

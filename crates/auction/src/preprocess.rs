//! Qualified-bid preprocessing: within-client dominated-bid elimination
//! and the per-sweep admissibility precomputation ([`SweepPrecomp`]).
//!
//! For one client, bid `B'` **dominates** bid `B` when it is no more
//! expensive (`p' ≤ p`), at least as available (`a' ≤ a`, `d' ≥ d`) and
//! offers at least as many rounds (`c' ≥ c`). Any feasible solution using
//! `B` stays feasible (at no higher cost) after swapping in `B'`: the
//! wider window contains every schedulable round of the narrower one and
//! the extra rounds only add coverage, which ILP (6) never penalises. So
//! removing dominated bids preserves the optimal social cost exactly —
//! property-tested against the brute-force solver.
//!
//! Scope note: [`remove_dominated`] is a *cost-side* tool (exact solving,
//! relaxations, what-if analyses). Running the payment rule on a pruned
//! bid set changes critical values, so the mechanism itself never prunes
//! **bids**. [`SweepPrecomp`] is different: it never drops a bid — it only
//! precomputes, per bid, the smallest horizon at which the unchanged
//! qualification rules of [`crate::qualify()`] admit it, so the sweep can
//! rebuild each horizon's exact qualified set by threshold comparison
//! instead of re-deriving every gate, and can lower-bound a horizon's cost
//! to skip horizons that provably cannot win (see
//! [`SweepPrecomp::cost_lower_bound`]).

use crate::bid::{Bid, Instance};
use crate::config::{AuctionConfig, QualifyMode};
use crate::qualify::{QualifiedBid, QUALIFY_EPS};
use crate::types::{BidRef, Round, Window};
use crate::wdp::Wdp;
use fl_telemetry::{counter, span};

/// Returns a WDP without within-client dominated bids, plus how many bids
/// were removed. Exact ties (identical price, window and rounds) keep the
/// earliest bid reference.
pub fn remove_dominated(wdp: &Wdp) -> (Wdp, usize) {
    let bids = wdp.bids();
    let mut keep = vec![true; bids.len()];
    // Pairwise scan (bid counts per client are tiny — J ≤ 10).
    for i in 0..bids.len() {
        for j in 0..bids.len() {
            if i == j || !keep[i] || !keep[j] {
                continue;
            }
            if bids[i].bid_ref.client != bids[j].bid_ref.client {
                continue;
            }
            if dominates(&bids[j], &bids[i]) && (!dominates(&bids[i], &bids[j]) || j < i) {
                keep[i] = false;
            }
        }
    }
    let kept: Vec<QualifiedBid> = bids
        .iter()
        .zip(&keep)
        .filter(|(_, &k)| k)
        .map(|(b, _)| *b)
        .collect();
    let removed = bids.len() - kept.len();
    (
        Wdp::new(wdp.horizon(), wdp.demand_per_round(), kept),
        removed,
    )
}

/// Whether `a` (weakly) dominates `b` for the same client.
fn dominates(a: &QualifiedBid, b: &QualifiedBid) -> bool {
    a.price <= b.price
        && a.window.start() <= b.window.start()
        && a.window.end() >= b.window.end()
        && a.rounds >= b.rounds
}

/// Sentinel threshold for "no horizon in the sweep admits this bid".
const NEVER: u32 = u32::MAX;

/// Per-bid admissibility data precomputed once per sweep, stored as
/// parallel columns (one entry per bid, instance order) in the same
/// struct-of-arrays style as [`crate::columnar`]: the per-horizon
/// qualification scan of [`SweepPrecomp::qualify_at`] reads only the
/// threshold columns until a bid is admitted, so rejected bids cost three
/// contiguous-array compares instead of dragging a full record through
/// the cache.
#[derive(Debug, Clone, Default)]
struct PrecompColumns {
    bid_refs: Vec<BidRef>,
    prices: Vec<f64>,
    accuracies: Vec<f64>,
    /// The bids' full (untruncated) windows.
    windows: Vec<Window>,
    rounds: Vec<u32>,
    round_times: Vec<f64>,
    /// Whether `t_ij ≤ t_max + ε` (horizon-independent).
    time_ok: Vec<bool>,
    /// Smallest horizon passing the accuracy gate `θ ≤ 1 − 1/T̂_g + ε`
    /// ([`NEVER`] if none within the sweep).
    h_accuracy: Vec<u32>,
    /// Smallest horizon passing the window gate under the instance's
    /// [`QualifyMode`].
    h_window: Vec<u32>,
    /// Smallest horizon at which the bid qualifies outright, or [`NEVER`].
    min_admissible: Vec<u32>,
    /// Average per-scheduled-round cost `b_ij / c_ij`.
    avg: Vec<f64>,
}

impl PrecompColumns {
    fn len(&self) -> usize {
        self.bid_refs.len()
    }
}

/// Incremental qualification for the `A_FL` horizon sweep.
///
/// Every gate in [`crate::qualify::qualify`] is monotone in the horizon:
/// the accuracy bound `θ_max = 1 − 1/T̂_g` relaxes as `T̂_g` grows, the
/// `t_max` check does not depend on `T̂_g` at all, and the truncated window
/// only gains rounds. A bid's qualification status therefore flips from
/// rejected to accepted at exactly one threshold horizon, which this type
/// computes once per bid (binary-searching the accuracy gate along the
/// *identical* floating-point comparison `qualify` uses). After that,
/// [`SweepPrecomp::qualify_at`] rebuilds any horizon's qualified set —
/// same bids, same order, same truncated windows, same telemetry counters
/// — by threshold comparison, in `O(bids)` with no float re-derivation.
///
/// The thresholds also yield [`SweepPrecomp::cost_lower_bound`], the
/// admissible-average-cost bound `A_FL` uses to skip horizons that provably
/// cannot beat an already-found outcome.
///
/// # Incremental maintenance
///
/// Beyond the batch constructor, the precomp supports streaming
/// maintenance for the online auction mode ([`crate::online`]):
/// [`insert`](SweepPrecomp::insert) appends one bid's threshold columns
/// (the exact computation the batch constructor runs per bid), and
/// [`remove`](SweepPrecomp::remove) tombstones a slot so every later
/// [`qualify_at`](SweepPrecomp::qualify_at) /
/// [`cost_lower_bound`](SweepPrecomp::cost_lower_bound) behaves as if the
/// bid had never arrived. The invariant, enforced by
/// [`rebatch`](SweepPrecomp::rebatch) (the batch-equivalence oracle) and
/// the property suite, is that after **any** insert/delete sequence the
/// precomp is observationally identical — bid sets, gate counters,
/// lower bounds — to a fresh batch precomp over the surviving bids in
/// arrival order.
#[derive(Debug, Clone)]
pub struct SweepPrecomp {
    k: u32,
    horizon_cap: u32,
    t_max: f64,
    mode: QualifyMode,
    cols: PrecompColumns,
    /// Parallel to `cols`: `false` marks tombstoned (removed) slots. Every
    /// scan skips dead slots, so observable behaviour matches a rebuild on
    /// the survivors.
    alive: Vec<bool>,
    live: usize,
    /// Indices of live admissible entries sorted by `(avg, slot)` — the
    /// order the batch stable sort produces — for the lower bound's
    /// cheapest-slot scan.
    by_avg: Vec<usize>,
}

impl SweepPrecomp {
    /// An empty precomp ready for streaming [`insert`](SweepPrecomp::insert)s
    /// under `config`'s gates (horizon cap `T`, `t_max`, qualify mode).
    pub fn empty(config: &AuctionConfig) -> SweepPrecomp {
        SweepPrecomp {
            k: config.clients_per_round(),
            horizon_cap: config.max_rounds(),
            t_max: config.round_time_limit(),
            mode: config.qualify_mode(),
            cols: PrecompColumns::default(),
            alive: Vec::new(),
            live: 0,
            by_avg: Vec::new(),
        }
    }

    /// Precomputes per-bid admissibility thresholds for sweeping
    /// `instance`'s horizons `1..=T`.
    pub fn new(instance: &Instance) -> SweepPrecomp {
        let _span = span!(
            "sweep_precompute",
            bids = instance.iter_bids().count() as u64
        );
        let mut precomp = Self::empty(instance.config());
        for (bid_ref, bid) in instance.iter_bids() {
            precomp.push_columns(bid_ref, bid, instance.round_time(bid_ref));
        }
        // Batch path: one stable sort instead of n sorted insertions.
        // Stable sort keys equal averages by slot order, so the result is
        // exactly the `(avg, slot)` order `insert` maintains incrementally.
        let mut by_avg: Vec<usize> = (0..precomp.cols.len())
            .filter(|&i| precomp.cols.min_admissible[i] != NEVER)
            .collect();
        by_avg.sort_by(|&i, &j| precomp.cols.avg[i].total_cmp(&precomp.cols.avg[j]));
        precomp.by_avg = by_avg;
        precomp
    }

    /// Appends one bid's threshold columns; identical per-bid computation
    /// to the batch constructor. Returns the new slot index.
    fn push_columns(&mut self, bid_ref: BidRef, bid: &Bid, round_time: f64) -> usize {
        let time_ok = round_time <= self.t_max + QUALIFY_EPS;
        let h_accuracy = accuracy_threshold(bid.accuracy(), self.horizon_cap);
        let a = u64::from(bid.window().start().0);
        let c = u64::from(bid.rounds());
        let h_window = match self.mode {
            // Truncated window `[a, min(d, T̂_g)]` holds `c` rounds
            // iff `T̂_g ≥ a + c − 1` (bids guarantee `c ≤ d − a + 1`).
            QualifyMode::Intent => clamp_u32(a + c - 1),
            // Literal Alg. 1 line 6: `a + c ≤ T̂_g`.
            QualifyMode::Literal => clamp_u32(a + c),
        };
        let min_admissible = if !time_ok || h_accuracy == NEVER {
            NEVER
        } else {
            h_accuracy.max(h_window)
        };
        let slot = self.cols.len();
        self.cols.bid_refs.push(bid_ref);
        self.cols.prices.push(bid.price());
        self.cols.accuracies.push(bid.accuracy());
        self.cols.windows.push(bid.window());
        self.cols.rounds.push(bid.rounds());
        self.cols.round_times.push(round_time);
        self.cols.time_ok.push(time_ok);
        self.cols.h_accuracy.push(h_accuracy);
        self.cols.h_window.push(h_window);
        self.cols.min_admissible.push(min_admissible);
        self.cols.avg.push(bid.price() / f64::from(bid.rounds()));
        self.alive.push(true);
        self.live += 1;
        slot
    }

    /// Streams one bid into the precomp: threshold columns plus a sorted
    /// insertion into the lower-bound scan order. After an insert-only
    /// sequence the precomp is bit-identical to
    /// [`SweepPrecomp::new`] over the same bids in the same order.
    ///
    /// `round_time` is the bid's per-round wall clock
    /// ([`Instance::round_time`]); it is passed in because a streaming
    /// caller owns the growing instance.
    ///
    /// # Panics
    ///
    /// Panics if `bid_ref` is already live — duplicate submissions must be
    /// deduplicated by the caller ([`crate::online::OnlineAuction`] keeps
    /// them idempotent).
    pub fn insert(&mut self, bid_ref: BidRef, bid: &Bid, round_time: f64) {
        assert!(
            !self.contains(bid_ref),
            "duplicate insert of live bid {bid_ref}"
        );
        let slot = self.push_columns(bid_ref, bid, round_time);
        if self.cols.min_admissible[slot] != NEVER {
            let avg = self.cols.avg[slot];
            let at = self
                .by_avg
                .partition_point(|&i| self.cols.avg[i].total_cmp(&avg).then(i.cmp(&slot)).is_lt());
            self.by_avg.insert(at, slot);
        }
    }

    /// Tombstones a live bid (expiry in the online mode): every later scan
    /// behaves as if the bid had never arrived. Returns `false` when no
    /// live slot holds `bid_ref` (already removed, or never inserted).
    pub fn remove(&mut self, bid_ref: BidRef) -> bool {
        let Some(slot) = self.live_slot(bid_ref) else {
            return false;
        };
        self.alive[slot] = false;
        self.live -= 1;
        if self.cols.min_admissible[slot] != NEVER {
            if let Ok(at) = self.by_avg.binary_search_by(|&i| {
                self.cols.avg[i]
                    .total_cmp(&self.cols.avg[slot])
                    .then(i.cmp(&slot))
            }) {
                self.by_avg.remove(at);
            }
        }
        true
    }

    /// Whether a live (inserted, not removed) slot holds `bid_ref`.
    pub fn contains(&self, bid_ref: BidRef) -> bool {
        self.live_slot(bid_ref).is_some()
    }

    /// Number of live bids.
    pub fn live_bids(&self) -> usize {
        self.live
    }

    fn live_slot(&self, bid_ref: BidRef) -> Option<usize> {
        (0..self.cols.len()).find(|&i| self.alive[i] && self.cols.bid_refs[i] == bid_ref)
    }

    /// The batch-equivalence oracle: a fresh precomp rebuilt from the
    /// surviving bids in arrival order, exactly as
    /// [`SweepPrecomp::new`] would build it had the removed bids never
    /// existed. The incremental precomp must agree with this rebuild on
    /// every observable — [`qualify_at`](SweepPrecomp::qualify_at) bid
    /// sets and counters, and
    /// [`cost_lower_bound`](SweepPrecomp::cost_lower_bound) — which the
    /// property suite and the certifier's online properties check.
    pub fn rebatch(&self) -> SweepPrecomp {
        let mut cols = PrecompColumns::default();
        for i in 0..self.cols.len() {
            if !self.alive[i] {
                continue;
            }
            cols.bid_refs.push(self.cols.bid_refs[i]);
            cols.prices.push(self.cols.prices[i]);
            cols.accuracies.push(self.cols.accuracies[i]);
            cols.windows.push(self.cols.windows[i]);
            cols.rounds.push(self.cols.rounds[i]);
            cols.round_times.push(self.cols.round_times[i]);
            cols.time_ok.push(self.cols.time_ok[i]);
            cols.h_accuracy.push(self.cols.h_accuracy[i]);
            cols.h_window.push(self.cols.h_window[i]);
            cols.min_admissible.push(self.cols.min_admissible[i]);
            cols.avg.push(self.cols.avg[i]);
        }
        let mut by_avg: Vec<usize> = (0..cols.len())
            .filter(|&i| cols.min_admissible[i] != NEVER)
            .collect();
        by_avg.sort_by(|&i, &j| cols.avg[i].total_cmp(&cols.avg[j]));
        let live = cols.len();
        SweepPrecomp {
            k: self.k,
            horizon_cap: self.horizon_cap,
            t_max: self.t_max,
            mode: self.mode,
            alive: vec![true; live],
            live,
            cols,
            by_avg,
        }
    }

    /// The largest horizon (`T`) the thresholds were computed for.
    pub fn horizon_cap(&self) -> u32 {
        self.horizon_cap
    }

    /// Builds the qualified bid set for `horizon` from the precomputed
    /// thresholds — bit-identical to
    /// [`qualify(instance, horizon)`](crate::qualify::qualify), including
    /// bid order, truncated windows, and the `qualify.*` telemetry
    /// counters' rejection-reason attribution.
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is zero or exceeds
    /// [`horizon_cap`](SweepPrecomp::horizon_cap).
    pub fn qualify_at(&self, horizon: u32) -> Wdp {
        assert!(horizon >= 1, "horizon must be at least 1");
        assert!(
            horizon <= self.horizon_cap,
            "horizon {horizon} exceeds the precomputed cap {}",
            self.horizon_cap
        );
        let _span = span!("qualify", tg = horizon);
        let last = Round(horizon);
        let (mut examined, mut by_accuracy, mut by_time, mut by_window) = (0u64, 0u64, 0u64, 0u64);
        let mut bids = Vec::new();
        for i in 0..self.cols.len() {
            if !self.alive[i] {
                continue;
            }
            examined += 1;
            // Same gate order as `qualify`, so rejection counters agree.
            // Only the three threshold columns are read until admission.
            if horizon < self.cols.h_accuracy[i] {
                by_accuracy += 1;
                continue;
            }
            if !self.cols.time_ok[i] {
                by_time += 1;
                continue;
            }
            if horizon < self.cols.h_window[i] {
                by_window += 1;
                continue;
            }
            let window = self.cols.windows[i]
                .truncate(last)
                .expect("h ≥ h_window implies h ≥ window start");
            bids.push(QualifiedBid {
                bid_ref: self.cols.bid_refs[i],
                price: self.cols.prices[i],
                accuracy: self.cols.accuracies[i],
                window,
                rounds: self.cols.rounds[i],
                round_time: self.cols.round_times[i],
            });
        }
        counter!("qualify.examined", examined);
        counter!("qualify.rejected_accuracy", by_accuracy);
        counter!("qualify.rejected_time", by_time);
        counter!("qualify.rejected_window", by_window);
        counter!("qualify.accepted", bids.len());
        Wdp::new(horizon, self.k, bids)
    }

    /// A cheap lower bound on the social cost of **any** feasible solution
    /// at `horizon`: the sum of the `K·T̂_g` cheapest admissible
    /// average-cost round slots.
    ///
    /// Every feasible solution schedules at least `K` distinct clients in
    /// each of the `T̂_g` rounds, so its winners contribute at least
    /// `K·T̂_g` scheduled rounds in total; charging each winner's rounds at
    /// its average per-round cost `b_ij/c_ij` and taking the cheapest
    /// `K·T̂_g` such slots can only undercount. Returns `f64::INFINITY`
    /// when the admissible bids cannot even fill the slots (the horizon is
    /// infeasible outright). The summation order is deterministic, so
    /// prune decisions based on this bound reproduce across runs.
    pub fn cost_lower_bound(&self, horizon: u32) -> f64 {
        let mut remaining = u64::from(self.k) * u64::from(horizon);
        let mut bound = 0.0;
        for &idx in &self.by_avg {
            if self.cols.min_admissible[idx] > horizon {
                continue;
            }
            let take = remaining.min(u64::from(self.cols.rounds[idx]));
            bound += self.cols.avg[idx] * take as f64;
            remaining -= take;
            if remaining == 0 {
                return bound;
            }
        }
        f64::INFINITY
    }

    /// The smallest horizon at which `bid_ref` qualifies, or `None` if no
    /// horizon in `1..=T` admits it (exposed for tests and analyses).
    pub fn admission_horizon(&self, bid_ref: BidRef) -> Option<u32> {
        self.live_slot(bid_ref).and_then(|i| {
            (self.cols.min_admissible[i] != NEVER).then_some(self.cols.min_admissible[i])
        })
    }
}

/// The smallest `h ∈ [1, cap]` with `θ ≤ (1 − 1/h) + ε`, or [`NEVER`].
///
/// Binary search over the **exact** comparison `qualify` evaluates per
/// horizon; `1 − 1/h` is monotone non-decreasing in `h` even in floating
/// point (division by a larger positive integer never rounds upward past
/// the previous quotient), so the predicate flips at most once.
fn accuracy_threshold(accuracy: f64, cap: u32) -> u32 {
    let admitted = |h: u32| accuracy <= (1.0 - 1.0 / f64::from(h)) + QUALIFY_EPS;
    if !admitted(cap) {
        return NEVER;
    }
    let (mut lo, mut hi) = (1u32, cap); // invariant: admitted(hi)
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if admitted(mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo
}

/// Saturating `u64 → u32` for window thresholds (a saturated threshold can
/// never be reached by a real horizon, which is the correct reading).
fn clamp_u32(x: u64) -> u32 {
    u32::try_from(x).unwrap_or(u32::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{BidRef, ClientId, Round, Window};
    use crate::wdp::WdpSolver;
    use crate::winner::AWinner;

    fn qb(client: u32, bid: u32, price: f64, a: u32, d: u32, c: u32) -> QualifiedBid {
        QualifiedBid {
            bid_ref: BidRef::new(ClientId(client), bid),
            price,
            accuracy: 0.5,
            window: Window::new(Round(a), Round(d)),
            rounds: c,
            round_time: 1.0,
        }
    }

    #[test]
    fn strictly_dominated_bid_is_removed() {
        // Bid 1 is pricier, narrower and offers fewer rounds than bid 0.
        let wdp = Wdp::new(
            5,
            1,
            vec![
                qb(0, 0, 3.0, 1, 5, 3),
                qb(0, 1, 7.0, 2, 4, 2),
                qb(1, 0, 4.0, 1, 5, 5),
            ],
        );
        let (pruned, removed) = remove_dominated(&wdp);
        assert_eq!(removed, 1);
        assert!(pruned
            .bids()
            .iter()
            .all(|b| b.bid_ref != BidRef::new(ClientId(0), 1)));
    }

    #[test]
    fn cross_client_bids_never_dominate() {
        let wdp = Wdp::new(5, 1, vec![qb(0, 0, 1.0, 1, 5, 5), qb(1, 0, 50.0, 2, 3, 1)]);
        let (pruned, removed) = remove_dominated(&wdp);
        assert_eq!(removed, 0);
        assert_eq!(pruned.bids().len(), 2);
    }

    #[test]
    fn exact_ties_keep_the_earliest_reference() {
        let wdp = Wdp::new(4, 1, vec![qb(0, 0, 2.0, 1, 4, 2), qb(0, 1, 2.0, 1, 4, 2)]);
        let (pruned, removed) = remove_dominated(&wdp);
        assert_eq!(removed, 1);
        assert_eq!(pruned.bids()[0].bid_ref, BidRef::new(ClientId(0), 0));
    }

    #[test]
    fn incomparable_bids_both_survive() {
        // Cheaper-but-narrow vs pricier-but-wide: neither dominates.
        let wdp = Wdp::new(6, 1, vec![qb(0, 0, 2.0, 2, 3, 1), qb(0, 1, 5.0, 1, 6, 4)]);
        let (_, removed) = remove_dominated(&wdp);
        assert_eq!(removed, 0);
    }

    #[test]
    fn greedy_cost_never_worsens_after_pruning() {
        let mut state = 0x0ddba11u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..40 {
            let h = 3 + (next() % 4) as u32;
            let n = 8 + (next() % 8) as usize;
            let bids: Vec<QualifiedBid> = (0..n)
                .map(|i| {
                    let a = 1 + (next() % u64::from(h)) as u32;
                    let d = a + (next() % u64::from(h - a + 1)) as u32;
                    let c = 1 + (next() % u64::from(d - a + 1)) as u32;
                    qb(
                        (i / 3) as u32,
                        (i % 3) as u32,
                        1.0 + (next() % 20) as f64,
                        a,
                        d,
                        c,
                    )
                })
                .collect();
            let wdp = Wdp::new(h, 1, bids);
            let (pruned, _) = remove_dominated(&wdp);
            let before = AWinner::new().without_certificate().solve_wdp(&wdp);
            let after = AWinner::new().without_certificate().solve_wdp(&pruned);
            match (before, after) {
                (Ok(b), Ok(a)) => assert!(
                    a.cost() <= b.cost() + 1e-9,
                    "trial {trial}: pruning worsened the greedy {} → {}",
                    b.cost(),
                    a.cost()
                ),
                (Err(_), Err(_)) => {}
                (Err(_), Ok(_)) => {} // pruning can only help the greedy
                (Ok(b), Err(e)) => {
                    panic!(
                        "trial {trial}: pruning broke feasibility ({}, {e})",
                        b.cost()
                    )
                }
            }
        }
    }

    // ---- SweepPrecomp: the incremental qualifier ------------------------

    use crate::bid::{Bid, ClientProfile};
    use crate::config::AuctionConfig;
    use crate::qualify::qualify;
    use fl_telemetry::{install_local, Recorder, Snapshot};
    use std::sync::Arc;

    /// The qualify-gate exercise instance (mirrors `qualify.rs`): one bid
    /// per gate — accepted, time-rejected, accuracy-rejected (until h = 5).
    fn gates_instance(mode: QualifyMode) -> Instance {
        let cfg = AuctionConfig::builder()
            .max_rounds(10)
            .clients_per_round(1)
            .round_time_limit(40.0)
            .qualify_mode(mode)
            .build()
            .unwrap();
        let mut inst = Instance::new(cfg);
        let c = inst.add_client(ClientProfile::new(5.0, 10.0).unwrap());
        inst.add_bid(
            c,
            Bid::new(10.0, 0.5, Window::new(Round(1), Round(4)), 3).unwrap(),
        )
        .unwrap();
        // θ = 0.3 → t = 45 > 40: time-disqualified at every horizon.
        inst.add_bid(
            c,
            Bid::new(10.0, 0.3, Window::new(Round(1), Round(4)), 2).unwrap(),
        )
        .unwrap();
        // θ = 0.8 needs T̂_g ≥ 5.
        inst.add_bid(
            c,
            Bid::new(10.0, 0.8, Window::new(Round(2), Round(9)), 4).unwrap(),
        )
        .unwrap();
        inst
    }

    fn counters_of(f: impl FnOnce()) -> Snapshot {
        let recorder = Arc::new(Recorder::default());
        let guard = install_local(recorder.clone());
        f();
        drop(guard);
        recorder.snapshot()
    }

    #[test]
    fn qualify_at_matches_qualify_at_every_horizon_and_mode() {
        for mode in [QualifyMode::Intent, QualifyMode::Literal] {
            let inst = gates_instance(mode);
            let precomp = SweepPrecomp::new(&inst);
            for h in 1..=inst.config().max_rounds() {
                let (reference, incremental) = (qualify(&inst, h), precomp.qualify_at(h));
                assert_eq!(
                    reference.bids(),
                    incremental.bids(),
                    "bid sets diverge at T̂_g = {h} ({mode:?})"
                );
                assert_eq!(reference.horizon(), incremental.horizon());
                assert_eq!(reference.demand_per_round(), incremental.demand_per_round());
                // Rejection-reason attribution must agree too.
                let a = counters_of(|| drop(qualify(&inst, h)));
                let b = counters_of(|| drop(precomp.qualify_at(h)));
                assert_eq!(a.counters, b.counters, "counters diverge at T̂_g = {h}");
            }
        }
    }

    #[test]
    fn empty_bid_set_yields_empty_horizons_and_infinite_bounds() {
        let inst = Instance::new(AuctionConfig::paper_default());
        let precomp = SweepPrecomp::new(&inst);
        for h in [1, 2, precomp.horizon_cap()] {
            assert!(precomp.qualify_at(h).bids().is_empty());
            assert_eq!(precomp.cost_lower_bound(h), f64::INFINITY);
        }
    }

    #[test]
    fn all_infeasible_horizon_is_empty_with_infinite_lower_bound() {
        let inst = gates_instance(QualifyMode::Intent);
        let precomp = SweepPrecomp::new(&inst);
        // At T̂_g = 1 nothing passes the accuracy gate (θ_max = 0).
        assert!(precomp.qualify_at(1).bids().is_empty());
        assert_eq!(precomp.cost_lower_bound(1), f64::INFINITY);
    }

    #[test]
    fn t0_equal_to_t_still_sweeps_the_single_horizon() {
        // θ = 0.8 → T_0 = 5 = T: the sweep degenerates to one horizon.
        let cfg = AuctionConfig::builder()
            .max_rounds(5)
            .clients_per_round(1)
            .round_time_limit(100.0)
            .build()
            .unwrap();
        let mut inst = Instance::new(cfg);
        let c = inst.add_client(ClientProfile::new(1.0, 1.0).unwrap());
        inst.add_bid(
            c,
            Bid::new(4.0, 0.8, Window::new(Round(1), Round(5)), 5).unwrap(),
        )
        .unwrap();
        assert_eq!(crate::qualify::min_horizon(&inst), Some(5));
        let precomp = SweepPrecomp::new(&inst);
        assert_eq!(precomp.horizon_cap(), 5);
        assert_eq!(precomp.qualify_at(4).bids().len(), 0);
        assert_eq!(precomp.qualify_at(5).bids().len(), 1);
        let bid_ref = BidRef::new(ClientId(0), 0);
        assert_eq!(precomp.admission_horizon(bid_ref), Some(5));
    }

    #[test]
    fn admission_horizon_is_the_first_qualifying_horizon() {
        let inst = gates_instance(QualifyMode::Intent);
        let precomp = SweepPrecomp::new(&inst);
        for (bid_ref, _) in inst.iter_bids() {
            let first = (1..=inst.config().max_rounds()).find(|&h| {
                qualify(&inst, h)
                    .bids()
                    .iter()
                    .any(|b| b.bid_ref == bid_ref)
            });
            assert_eq!(
                precomp.admission_horizon(bid_ref),
                first,
                "admission horizon diverges for {bid_ref}"
            );
        }
    }

    // ---- Incremental insert/delete vs the batch oracle ------------------

    /// Asserts two precomps are observationally identical at every horizon:
    /// same qualified bid sets, same gate counters, same lower-bound bits.
    fn assert_equivalent(a: &SweepPrecomp, b: &SweepPrecomp, what: &str) {
        assert_eq!(a.horizon_cap(), b.horizon_cap(), "{what}: horizon cap");
        assert_eq!(a.live_bids(), b.live_bids(), "{what}: live bids");
        for h in 1..=a.horizon_cap() {
            let (wa, wb) = (a.qualify_at(h), b.qualify_at(h));
            assert_eq!(wa.bids(), wb.bids(), "{what}: bid sets at T̂_g = {h}");
            let ca = counters_of(|| drop(a.qualify_at(h)));
            let cb = counters_of(|| drop(b.qualify_at(h)));
            assert_eq!(ca.counters, cb.counters, "{what}: counters at T̂_g = {h}");
            let (la, lb) = (a.cost_lower_bound(h), b.cost_lower_bound(h));
            assert_eq!(
                la.to_bits(),
                lb.to_bits(),
                "{what}: lower bound at T̂_g = {h} ({la} vs {lb})"
            );
        }
    }

    /// A richer mixed instance: several clients, several bids each, every
    /// gate exercised (time-rejected, late-accuracy, escaping windows).
    fn mixed_instance(mode: QualifyMode) -> Instance {
        let cfg = AuctionConfig::builder()
            .max_rounds(8)
            .clients_per_round(2)
            .round_time_limit(40.0)
            .qualify_mode(mode)
            .build()
            .unwrap();
        let mut inst = Instance::new(cfg);
        let mut state = 0x5eedu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..4 {
            let c = inst.add_client(ClientProfile::new(1.0 + (next() % 8) as f64, 10.0).unwrap());
            for _ in 0..3 {
                let a = 1 + (next() % 8) as u32;
                let d = a + (next() % (12 - u64::from(a))) as u32;
                let len = d - a + 1;
                let rounds = 1 + (next() % u64::from(len)) as u32;
                let theta = [0.3, 0.5, 0.8, 0.9][(next() % 4) as usize];
                let price = 1.0 + (next() % 40) as f64;
                inst.add_bid(
                    c,
                    Bid::new(price, theta, Window::new(Round(a), Round(d)), rounds).unwrap(),
                )
                .unwrap();
            }
        }
        inst
    }

    #[test]
    fn insert_only_streaming_matches_batch_at_every_prefix() {
        for mode in [QualifyMode::Intent, QualifyMode::Literal] {
            let inst = mixed_instance(mode);
            let all: Vec<(BidRef, Bid)> = inst.iter_bids().map(|(r, b)| (r, *b)).collect();
            let mut streaming = SweepPrecomp::empty(inst.config());
            for (n, (bid_ref, bid)) in all.iter().enumerate() {
                streaming.insert(*bid_ref, bid, inst.round_time(*bid_ref));
                // Batch reference over exactly the arrival prefix: a fresh
                // instance holding the first n+1 bids in arrival order.
                let mut prefix = Instance::new(inst.config().clone());
                for p in inst.clients() {
                    prefix.add_client(*p);
                }
                for (r, b) in &all[..=n] {
                    assert_eq!(prefix.add_bid(r.client, *b).unwrap(), *r);
                }
                assert_equivalent(
                    &streaming,
                    &SweepPrecomp::new(&prefix),
                    &format!("prefix {} ({mode:?})", n + 1),
                );
            }
        }
    }

    #[test]
    fn insert_delete_sequences_match_the_rebatch_oracle() {
        let inst = mixed_instance(QualifyMode::Intent);
        let all: Vec<(BidRef, Bid)> = inst.iter_bids().map(|(r, b)| (r, *b)).collect();
        let mut state = 0xfeedu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..20 {
            let mut precomp = SweepPrecomp::empty(inst.config());
            let mut pending: Vec<usize> = (0..all.len()).collect();
            let mut live: Vec<usize> = Vec::new();
            let mut step = 0;
            while !pending.is_empty() || !live.is_empty() {
                let do_insert = live.is_empty() || (!pending.is_empty() && next() % 3 != 0);
                if do_insert {
                    let i = pending.remove((next() % pending.len() as u64) as usize);
                    let (bid_ref, bid) = all[i];
                    precomp.insert(bid_ref, &bid, inst.round_time(bid_ref));
                    live.push(i);
                } else {
                    let i = live.remove((next() % live.len() as u64) as usize);
                    assert!(precomp.remove(all[i].0), "live bid must be removable");
                }
                assert_equivalent(
                    &precomp,
                    &precomp.rebatch(),
                    &format!("trial {trial} step {step}"),
                );
                step += 1;
            }
            assert_eq!(precomp.live_bids(), 0);
        }
    }

    #[test]
    fn removed_bid_behaves_as_if_it_never_arrived() {
        // Removing the *last* bid keeps every other BidRef stable, so the
        // incremental precomp can be compared against a true batch rebuild
        // on an instance where that bid was never submitted.
        let inst = mixed_instance(QualifyMode::Intent);
        let all: Vec<(BidRef, Bid)> = inst.iter_bids().map(|(r, b)| (r, *b)).collect();
        let (last_ref, _) = *all.last().unwrap();
        let mut without = Instance::new(inst.config().clone());
        for p in inst.clients() {
            without.add_client(*p);
        }
        for (r, b) in &all[..all.len() - 1] {
            without.add_bid(r.client, *b).unwrap();
        }
        let mut precomp = SweepPrecomp::new(&inst);
        assert!(precomp.contains(last_ref));
        assert!(precomp.remove(last_ref));
        assert!(!precomp.contains(last_ref));
        assert!(!precomp.remove(last_ref), "double remove reports absence");
        assert_eq!(precomp.admission_horizon(last_ref), None);
        assert_equivalent(&precomp, &SweepPrecomp::new(&without), "last-bid removal");
    }

    #[test]
    #[should_panic(expected = "duplicate insert")]
    fn duplicate_insert_of_a_live_bid_panics() {
        let inst = gates_instance(QualifyMode::Intent);
        let mut precomp = SweepPrecomp::new(&inst);
        let (bid_ref, bid) = inst.iter_bids().next().map(|(r, b)| (r, *b)).unwrap();
        precomp.insert(bid_ref, &bid, inst.round_time(bid_ref));
    }

    #[test]
    fn empty_streaming_precomp_is_empty_batch() {
        let cfg = AuctionConfig::paper_default();
        let streaming = SweepPrecomp::empty(&cfg);
        assert_eq!(streaming.live_bids(), 0);
        assert_equivalent(&streaming, &SweepPrecomp::new(&Instance::new(cfg)), "empty");
    }

    #[test]
    fn cost_lower_bound_never_exceeds_any_feasible_solution() {
        let inst = gates_instance(QualifyMode::Intent);
        let precomp = SweepPrecomp::new(&inst);
        let solver = AWinner::new().without_certificate();
        for h in 1..=inst.config().max_rounds() {
            let wdp = precomp.qualify_at(h);
            if let Ok(sol) = solver.solve_wdp(&wdp) {
                let lb = precomp.cost_lower_bound(h);
                assert!(
                    lb <= sol.cost() + 1e-12,
                    "T̂_g = {h}: lower bound {lb} exceeds greedy cost {}",
                    sol.cost()
                );
            }
        }
    }
}

//! Qualified-bid preprocessing: within-client dominated-bid elimination.
//!
//! For one client, bid `B'` **dominates** bid `B` when it is no more
//! expensive (`p' ≤ p`), at least as available (`a' ≤ a`, `d' ≥ d`) and
//! offers at least as many rounds (`c' ≥ c`). Any feasible solution using
//! `B` stays feasible (at no higher cost) after swapping in `B'`: the
//! wider window contains every schedulable round of the narrower one and
//! the extra rounds only add coverage, which ILP (6) never penalises. So
//! removing dominated bids preserves the optimal social cost exactly —
//! property-tested against the brute-force solver.
//!
//! Scope note: preprocessing is a *cost-side* tool (exact solving,
//! relaxations, what-if analyses). Running the payment rule on a pruned
//! bid set changes critical values, so the mechanism itself never prunes.

use crate::qualify::QualifiedBid;
use crate::wdp::Wdp;

/// Returns a WDP without within-client dominated bids, plus how many bids
/// were removed. Exact ties (identical price, window and rounds) keep the
/// earliest bid reference.
pub fn remove_dominated(wdp: &Wdp) -> (Wdp, usize) {
    let bids = wdp.bids();
    let mut keep = vec![true; bids.len()];
    // Pairwise scan (bid counts per client are tiny — J ≤ 10).
    for i in 0..bids.len() {
        for j in 0..bids.len() {
            if i == j || !keep[i] || !keep[j] {
                continue;
            }
            if bids[i].bid_ref.client != bids[j].bid_ref.client {
                continue;
            }
            if dominates(&bids[j], &bids[i]) && (!dominates(&bids[i], &bids[j]) || j < i) {
                keep[i] = false;
            }
        }
    }
    let kept: Vec<QualifiedBid> = bids
        .iter()
        .zip(&keep)
        .filter(|(_, &k)| k)
        .map(|(b, _)| *b)
        .collect();
    let removed = bids.len() - kept.len();
    (
        Wdp::new(wdp.horizon(), wdp.demand_per_round(), kept),
        removed,
    )
}

/// Whether `a` (weakly) dominates `b` for the same client.
fn dominates(a: &QualifiedBid, b: &QualifiedBid) -> bool {
    a.price <= b.price
        && a.window.start() <= b.window.start()
        && a.window.end() >= b.window.end()
        && a.rounds >= b.rounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{BidRef, ClientId, Round, Window};
    use crate::wdp::WdpSolver;
    use crate::winner::AWinner;

    fn qb(client: u32, bid: u32, price: f64, a: u32, d: u32, c: u32) -> QualifiedBid {
        QualifiedBid {
            bid_ref: BidRef::new(ClientId(client), bid),
            price,
            accuracy: 0.5,
            window: Window::new(Round(a), Round(d)),
            rounds: c,
            round_time: 1.0,
        }
    }

    #[test]
    fn strictly_dominated_bid_is_removed() {
        // Bid 1 is pricier, narrower and offers fewer rounds than bid 0.
        let wdp = Wdp::new(
            5,
            1,
            vec![
                qb(0, 0, 3.0, 1, 5, 3),
                qb(0, 1, 7.0, 2, 4, 2),
                qb(1, 0, 4.0, 1, 5, 5),
            ],
        );
        let (pruned, removed) = remove_dominated(&wdp);
        assert_eq!(removed, 1);
        assert!(pruned
            .bids()
            .iter()
            .all(|b| b.bid_ref != BidRef::new(ClientId(0), 1)));
    }

    #[test]
    fn cross_client_bids_never_dominate() {
        let wdp = Wdp::new(5, 1, vec![qb(0, 0, 1.0, 1, 5, 5), qb(1, 0, 50.0, 2, 3, 1)]);
        let (pruned, removed) = remove_dominated(&wdp);
        assert_eq!(removed, 0);
        assert_eq!(pruned.bids().len(), 2);
    }

    #[test]
    fn exact_ties_keep_the_earliest_reference() {
        let wdp = Wdp::new(4, 1, vec![qb(0, 0, 2.0, 1, 4, 2), qb(0, 1, 2.0, 1, 4, 2)]);
        let (pruned, removed) = remove_dominated(&wdp);
        assert_eq!(removed, 1);
        assert_eq!(pruned.bids()[0].bid_ref, BidRef::new(ClientId(0), 0));
    }

    #[test]
    fn incomparable_bids_both_survive() {
        // Cheaper-but-narrow vs pricier-but-wide: neither dominates.
        let wdp = Wdp::new(6, 1, vec![qb(0, 0, 2.0, 2, 3, 1), qb(0, 1, 5.0, 1, 6, 4)]);
        let (_, removed) = remove_dominated(&wdp);
        assert_eq!(removed, 0);
    }

    #[test]
    fn greedy_cost_never_worsens_after_pruning() {
        let mut state = 0x0ddba11u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..40 {
            let h = 3 + (next() % 4) as u32;
            let n = 8 + (next() % 8) as usize;
            let bids: Vec<QualifiedBid> = (0..n)
                .map(|i| {
                    let a = 1 + (next() % u64::from(h)) as u32;
                    let d = a + (next() % u64::from(h - a + 1)) as u32;
                    let c = 1 + (next() % u64::from(d - a + 1)) as u32;
                    qb(
                        (i / 3) as u32,
                        (i % 3) as u32,
                        1.0 + (next() % 20) as f64,
                        a,
                        d,
                        c,
                    )
                })
                .collect();
            let wdp = Wdp::new(h, 1, bids);
            let (pruned, _) = remove_dominated(&wdp);
            let before = AWinner::new().without_certificate().solve_wdp(&wdp);
            let after = AWinner::new().without_certificate().solve_wdp(&pruned);
            match (before, after) {
                (Ok(b), Ok(a)) => assert!(
                    a.cost() <= b.cost() + 1e-9,
                    "trial {trial}: pruning worsened the greedy {} → {}",
                    b.cost(),
                    a.cost()
                ),
                (Err(_), Err(_)) => {}
                (Err(_), Ok(_)) => {} // pruning can only help the greedy
                (Ok(b), Err(e)) => {
                    panic!(
                        "trial {trial}: pruning broke feasibility ({}, {e})",
                        b.cost()
                    )
                }
            }
        }
    }
}

//! Exact Myerson (threshold) payments, and misreport search utilities.
//!
//! # Why this module exists
//!
//! The paper pays each winner `R_{i*l*}(S)·ρ_{i'l'}/R_{i'l'}(S)` — the
//! runner-up's average cost *in the iteration where the winner was
//! selected* (Alg. 3), and Lemma 2 claims a bid priced above that payment
//! "will fail". Empirically that is not quite the whole story: a bid
//! priced above its iteration-`k` payment can simply be *selected in a
//! later iteration* (possibly at a higher payment), and a bid with no
//! competing candidate is paid its own price, which makes overstating it
//! profitable. Our reproduction measures a ~5% profitable-overbid rate
//! for the paper's rule on small winner-determination problems (see
//! `EXPERIMENTS.md`, ablation A4).
//!
//! Because the *allocation* is price-monotone (lowering a winning bid's
//! price keeps it winning — Lemma 1, which does hold), Myerson's lemma
//! prescribes the unique truthful payment: the **threshold price** above
//! which the bid stops winning. [`myerson_payment`] computes it by
//! bisection over re-runs of `A_winner`; [`myerson_payments`] prices a
//! whole solution. This is an extension beyond the paper: `O(log(1/ε))`
//! full WDP solves per winner, practical for analysis-scale instances.

use crate::types::BidRef;
use crate::wdp::{Wdp, WdpSolution, WdpSolver};
use crate::winner::AWinner;
use fl_telemetry::{counter, span};

/// What happened to `bid` when its price was unilaterally replaced.
///
/// The three-way split matters because `A_winner` is greedy: a deviation
/// can reorder the selection so that the *whole* greedy run stalls on an
/// instance that is still feasible — the same approximation gap that makes
/// greedy occasionally miss feasible winner sets. A stall is not the bid
/// "losing" in the Lemma 1 sense (no competing allocation was chosen), so
/// probes that reason about allocation monotonicity must treat it as its
/// own outcome rather than a loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviationOutcome {
    /// The bid is in the recomputed winner set.
    Wins,
    /// Greedy completed and selected a winner set without the bid.
    Loses,
    /// Greedy stalled: no complete winner set was produced at all.
    Stalls,
}

/// Recomputes the `A_winner` allocation with `bid`'s price replaced by
/// `price` (all other bids held fixed) and reports what happened to it.
///
/// This is the raw unilateral-deviation probe underlying the bisection.
/// Exposed so external checkers (the `fl-certify` truthfulness probes) can
/// test allocation monotonicity around a threshold directly — and tell a
/// genuine loss apart from a greedy stall.
pub fn deviation_outcome(wdp: &Wdp, bid: BidRef, price: f64) -> DeviationOutcome {
    counter!("truthful.bisection_probes");
    let mut bids = wdp.bids().to_vec();
    for b in bids.iter_mut() {
        if b.bid_ref == bid {
            b.price = price;
        }
    }
    let patched = Wdp::new(wdp.horizon(), wdp.demand_per_round(), bids);
    match AWinner::new().without_certificate().solve_wdp(&patched) {
        Ok(s) if s.winners().iter().any(|w| w.bid_ref == bid) => DeviationOutcome::Wins,
        Ok(_) => DeviationOutcome::Loses,
        Err(_) => DeviationOutcome::Stalls,
    }
}

/// Does `bid` win the WDP when its price is replaced by `price`?
///
/// Collapses [`deviation_outcome`] to a boolean (a stall counts as not
/// winning) — the reading the threshold bisection needs.
pub fn wins_at(wdp: &Wdp, bid: BidRef, price: f64) -> bool {
    deviation_outcome(wdp, bid, price) == DeviationOutcome::Wins
}

/// The exact threshold payment for `bid` under the `A_winner` allocation:
/// the largest price (up to `cap`) at which the bid still wins, located by
/// bisection to absolute tolerance `tol`.
///
/// Returns `None` if the bid does not win even at its current price.
/// Returns `Some(cap)` when the bid wins at every probed price — a
/// monopolist whose true threshold is unbounded; `cap` then acts as the
/// market's reserve price. The returned value never exceeds `cap`.
///
/// `tol == 0` is allowed and means "bisect to the floating-point limit":
/// the loop stops once the midpoint can no longer be distinguished from
/// an endpoint, i.e. `lo` and `hi` are adjacent representable doubles.
/// The result is then exact for the allocation rule — `wins_at(lo)` is
/// `true` and `wins_at(next_up(lo))` is `false`.
///
/// # Example
///
/// ```
/// use fl_auction::truthful::myerson_payment;
/// use fl_auction::{BidRef, ClientId, QualifiedBid, Round, Wdp, Window};
///
/// let bid = |client, price, a, d, c| QualifiedBid {
///     bid_ref: BidRef::new(ClientId(client), 0),
///     price,
///     accuracy: 0.5,
///     window: Window::new(Round(a), Round(d)),
///     rounds: c,
///     round_time: 1.0,
/// };
/// // Two clients for one 2-round job: the $3 bid wins and its threshold
/// // is the competitor's price.
/// let wdp = Wdp::new(2, 1, vec![bid(0, 3.0, 1, 2, 2), bid(1, 10.0, 1, 2, 2)]);
/// let p = myerson_payment(&wdp, BidRef::new(ClientId(0), 0), 100.0, 1e-7).unwrap();
/// assert!((p - 10.0).abs() < 1e-5);
/// ```
///
/// # Panics
///
/// Panics if `cap` is not positive/finite, or `tol` is negative or NaN.
pub fn myerson_payment(wdp: &Wdp, bid: BidRef, cap: f64, tol: f64) -> Option<f64> {
    assert!(
        cap.is_finite() && cap > 0.0,
        "cap must be positive and finite"
    );
    assert!(tol >= 0.0, "tolerance must be non-negative");
    let _span = span!("myerson_payment");
    let current = wdp.bids().iter().find(|b| b.bid_ref == bid)?.price;
    if !wins_at(wdp, bid, current) {
        return None;
    }
    if wins_at(wdp, bid, cap) {
        return Some(cap);
    }
    // Invariant: wins at `lo`, loses at `hi`. Terminates even at tol = 0:
    // once lo and hi are adjacent doubles the midpoint rounds onto an
    // endpoint and the interval cannot shrink further.
    let (mut lo, mut hi) = (current, cap);
    while hi - lo > tol {
        let mid = 0.5 * (lo + hi);
        if mid <= lo || mid >= hi {
            break;
        }
        if wins_at(wdp, bid, mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(lo.min(cap))
}

/// Re-prices every winner of `solution` with its exact threshold payment.
/// Returns `(bid_ref, paper_payment, myerson_payment)` triples.
pub fn myerson_payments(
    wdp: &Wdp,
    solution: &WdpSolution,
    cap: f64,
    tol: f64,
) -> Vec<(BidRef, f64, f64)> {
    solution
        .winners()
        .iter()
        .map(|w| {
            let exact = myerson_payment(wdp, w.bid_ref, cap, tol)
                .expect("a winner must win at its own price");
            (w.bid_ref, w.payment, exact)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qualify::QualifiedBid;
    use crate::types::{ClientId, Round, Window};

    fn qb(client: u32, price: f64, a: u32, d: u32, c: u32) -> QualifiedBid {
        QualifiedBid {
            bid_ref: BidRef::new(ClientId(client), 0),
            price,
            accuracy: 0.5,
            window: Window::new(Round(a), Round(d)),
            rounds: c,
            round_time: 1.0,
        }
    }

    fn paper_example() -> Wdp {
        Wdp::new(
            3,
            1,
            vec![
                qb(1, 2.0, 1, 2, 1),
                qb(2, 6.0, 2, 3, 2),
                qb(3, 5.0, 1, 3, 2),
            ],
        )
    }

    #[test]
    fn loser_has_no_threshold() {
        // B_2 loses the paper example.
        let wdp = paper_example();
        assert_eq!(
            myerson_payment(&wdp, BidRef::new(ClientId(2), 0), 100.0, 1e-6),
            None
        );
    }

    #[test]
    fn threshold_is_at_least_the_paper_payment_for_b3() {
        // B_3's paper payment is 6; it would still win at any price < its
        // true threshold, which bisection locates.
        let wdp = paper_example();
        let sol = AWinner::new().solve_wdp(&wdp).unwrap();
        for (bid_ref, paper, exact) in myerson_payments(&wdp, &sol, 100.0, 1e-7) {
            assert!(
                exact >= paper - 1e-6,
                "{bid_ref}: exact threshold {exact} below paper payment {paper}"
            );
        }
    }

    #[test]
    fn threshold_is_tight() {
        // Winning at threshold − tol, losing at threshold + tol.
        let wdp = paper_example();
        let b3 = BidRef::new(ClientId(3), 0);
        let p = myerson_payment(&wdp, b3, 100.0, 1e-9).unwrap();
        assert!(wins_at(&wdp, b3, p - 1e-6));
        assert!(!wins_at(&wdp, b3, p + 1e-6), "threshold {p} not tight");
    }

    #[test]
    fn monopolist_is_capped() {
        // One client, K = 1: it wins at any price.
        let wdp = Wdp::new(2, 1, vec![qb(0, 3.0, 1, 2, 2)]);
        let p = myerson_payment(&wdp, BidRef::new(ClientId(0), 0), 50.0, 1e-6).unwrap();
        assert_eq!(p, 50.0);
    }

    #[test]
    fn threshold_payment_is_individually_rational() {
        let wdp = Wdp::new(
            4,
            2,
            vec![
                qb(0, 3.0, 1, 4, 4),
                qb(1, 4.0, 1, 4, 3),
                qb(2, 5.0, 2, 4, 2),
                qb(3, 2.0, 1, 2, 2),
                qb(4, 6.0, 1, 4, 4),
                qb(5, 3.5, 1, 3, 2),
            ],
        );
        let sol = AWinner::new().solve_wdp(&wdp).unwrap();
        for (bid_ref, _, exact) in myerson_payments(&wdp, &sol, 200.0, 1e-6) {
            let price = wdp
                .bids()
                .iter()
                .find(|b| b.bid_ref == bid_ref)
                .unwrap()
                .price;
            assert!(
                exact >= price - 1e-6,
                "{bid_ref} paid {exact} below price {price}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "cap must be")]
    fn bad_cap_panics() {
        let wdp = paper_example();
        let _ = myerson_payment(&wdp, BidRef::new(ClientId(1), 0), f64::INFINITY, 1e-6);
    }

    #[test]
    #[should_panic(expected = "tolerance must be non-negative")]
    fn negative_tol_panics() {
        let wdp = paper_example();
        let _ = myerson_payment(&wdp, BidRef::new(ClientId(1), 0), 100.0, -1e-6);
    }

    #[test]
    fn zero_tolerance_bisects_to_the_floating_point_limit() {
        // tol = 0 must terminate (fixpoint break) and return the exact
        // allocation threshold: winning at lo, losing one ulp above.
        let wdp = paper_example();
        let b3 = BidRef::new(ClientId(3), 0);
        let p = myerson_payment(&wdp, b3, 100.0, 0.0).unwrap();
        assert!(wins_at(&wdp, b3, p));
        assert!(!wins_at(&wdp, b3, f64::from_bits(p.to_bits() + 1)));
    }

    #[test]
    fn payment_exactly_at_cap_is_the_cap() {
        // A monopolist probed with a cap equal to its own price: wins at
        // cap, so the reserve binds and the result is exactly cap — not
        // cap ± one bisection step.
        let wdp = Wdp::new(2, 1, vec![qb(0, 3.0, 1, 2, 2)]);
        let p = myerson_payment(&wdp, BidRef::new(ClientId(0), 0), 3.0, 0.0).unwrap();
        assert_eq!(p, 3.0);
    }

    #[test]
    fn result_never_exceeds_cap() {
        // Degenerate call: the current price already sits above the cap.
        // Monotonicity means the bid also wins at the cap, so the reserve
        // binds; the clamp guarantees the contract `result ≤ cap` even if
        // the win-at-cap short-circuit were to change.
        let wdp = Wdp::new(2, 1, vec![qb(0, 50.0, 1, 2, 2)]);
        let p = myerson_payment(&wdp, BidRef::new(ClientId(0), 0), 10.0, 0.0).unwrap();
        assert!(p <= 10.0, "payment {p} exceeds cap");
    }

    #[test]
    fn lowering_a_price_can_stall_greedy_not_lose_the_bid() {
        // Fuzzer counterexample (crates/certify/corpus/, seed 774): at
        // price 2 the bid of client 0 is selected last and lands on round
        // 4; at price 1 it is selected earlier, the least-loaded tie-break
        // parks it on round 3, and greedy stalls with round 4 uncovered.
        // The deviation probe must report that as a stall — greedy never
        // produced a competing allocation — not as the bid losing.
        let wdp = Wdp::new(
            4,
            2,
            vec![
                qb(0, 2.0, 3, 4, 1),
                qb(1, 1.0, 1, 4, 4),
                qb(2, 2.0, 2, 3, 2),
                qb(3, 1.0, 1, 1, 1),
            ],
        );
        let b0 = BidRef::new(ClientId(0), 0);
        assert_eq!(deviation_outcome(&wdp, b0, 2.0), DeviationOutcome::Wins);
        assert_eq!(deviation_outcome(&wdp, b0, 1.0), DeviationOutcome::Stalls);
        assert!(!wins_at(&wdp, b0, 1.0), "a stall is not a win");
        // A clean competitive loss still reads as Loses: B_2 of the paper
        // example is priced out, while the others cover every round.
        let paper = paper_example();
        assert_eq!(
            deviation_outcome(&paper, BidRef::new(ClientId(2), 0), 6.0),
            DeviationOutcome::Loses
        );
    }

    #[test]
    fn bid_equal_to_its_threshold_still_wins() {
        // The allocation treats the threshold itself as winning (ties
        // break towards the probed bid via total order on (avg, price,
        // bid_ref)), so bidding exactly the critical value is safe.
        let wdp = paper_example();
        let b3 = BidRef::new(ClientId(3), 0);
        let p = myerson_payment(&wdp, b3, 100.0, 0.0).unwrap();
        assert!(
            wins_at(&wdp, b3, p),
            "bid at its own threshold {p} must still win"
        );
    }
}

//! Exact Myerson (threshold) payments, and misreport search utilities.
//!
//! # Why this module exists
//!
//! The paper pays each winner `R_{i*l*}(S)·ρ_{i'l'}/R_{i'l'}(S)` — the
//! runner-up's average cost *in the iteration where the winner was
//! selected* (Alg. 3), and Lemma 2 claims a bid priced above that payment
//! "will fail". Empirically that is not quite the whole story: a bid
//! priced above its iteration-`k` payment can simply be *selected in a
//! later iteration* (possibly at a higher payment), and a bid with no
//! competing candidate is paid its own price, which makes overstating it
//! profitable. Our reproduction measures a ~5% profitable-overbid rate
//! for the paper's rule on small winner-determination problems (see
//! `EXPERIMENTS.md`, ablation A4).
//!
//! Because the *allocation* is price-monotone (lowering a winning bid's
//! price keeps it winning — Lemma 1, which does hold), Myerson's lemma
//! prescribes the unique truthful payment: the **threshold price** above
//! which the bid stops winning. [`myerson_payment`] computes it by
//! bisection over re-runs of `A_winner`; [`myerson_payments`] prices a
//! whole solution. This is an extension beyond the paper: `O(log(1/ε))`
//! full WDP solves per winner, practical for analysis-scale instances.

use crate::types::BidRef;
use crate::wdp::{Wdp, WdpSolution, WdpSolver};
use crate::winner::AWinner;
use fl_telemetry::{counter, span};

/// Does `bid` win the WDP when its price is replaced by `price`?
fn wins_at(wdp: &Wdp, bid: BidRef, price: f64) -> bool {
    counter!("truthful.bisection_probes");
    let mut bids = wdp.bids().to_vec();
    for b in bids.iter_mut() {
        if b.bid_ref == bid {
            b.price = price;
        }
    }
    let patched = Wdp::new(wdp.horizon(), wdp.demand_per_round(), bids);
    AWinner::new()
        .without_certificate()
        .solve_wdp(&patched)
        .map(|s| s.winners().iter().any(|w| w.bid_ref == bid))
        .unwrap_or(false)
}

/// The exact threshold payment for `bid` under the `A_winner` allocation:
/// the largest price (up to `cap`) at which the bid still wins, located by
/// bisection to absolute tolerance `tol`.
///
/// Returns `None` if the bid does not win even at its current price.
/// Returns `Some(cap)` when the bid wins at every probed price — a
/// monopolist whose true threshold is unbounded; `cap` then acts as the
/// market's reserve price.
///
/// # Example
///
/// ```
/// use fl_auction::truthful::myerson_payment;
/// use fl_auction::{BidRef, ClientId, QualifiedBid, Round, Wdp, Window};
///
/// let bid = |client, price, a, d, c| QualifiedBid {
///     bid_ref: BidRef::new(ClientId(client), 0),
///     price,
///     accuracy: 0.5,
///     window: Window::new(Round(a), Round(d)),
///     rounds: c,
///     round_time: 1.0,
/// };
/// // Two clients for one 2-round job: the $3 bid wins and its threshold
/// // is the competitor's price.
/// let wdp = Wdp::new(2, 1, vec![bid(0, 3.0, 1, 2, 2), bid(1, 10.0, 1, 2, 2)]);
/// let p = myerson_payment(&wdp, BidRef::new(ClientId(0), 0), 100.0, 1e-7).unwrap();
/// assert!((p - 10.0).abs() < 1e-5);
/// ```
///
/// # Panics
///
/// Panics if `cap` is not positive/finite or `tol` is not positive.
pub fn myerson_payment(wdp: &Wdp, bid: BidRef, cap: f64, tol: f64) -> Option<f64> {
    assert!(
        cap.is_finite() && cap > 0.0,
        "cap must be positive and finite"
    );
    assert!(tol > 0.0, "tolerance must be positive");
    let _span = span!("myerson_payment");
    let current = wdp.bids().iter().find(|b| b.bid_ref == bid)?.price;
    if !wins_at(wdp, bid, current) {
        return None;
    }
    if wins_at(wdp, bid, cap) {
        return Some(cap);
    }
    // Invariant: wins at `lo`, loses at `hi`.
    let (mut lo, mut hi) = (current, cap);
    while hi - lo > tol {
        let mid = 0.5 * (lo + hi);
        if wins_at(wdp, bid, mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(lo)
}

/// Re-prices every winner of `solution` with its exact threshold payment.
/// Returns `(bid_ref, paper_payment, myerson_payment)` triples.
pub fn myerson_payments(
    wdp: &Wdp,
    solution: &WdpSolution,
    cap: f64,
    tol: f64,
) -> Vec<(BidRef, f64, f64)> {
    solution
        .winners()
        .iter()
        .map(|w| {
            let exact = myerson_payment(wdp, w.bid_ref, cap, tol)
                .expect("a winner must win at its own price");
            (w.bid_ref, w.payment, exact)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qualify::QualifiedBid;
    use crate::types::{ClientId, Round, Window};

    fn qb(client: u32, price: f64, a: u32, d: u32, c: u32) -> QualifiedBid {
        QualifiedBid {
            bid_ref: BidRef::new(ClientId(client), 0),
            price,
            accuracy: 0.5,
            window: Window::new(Round(a), Round(d)),
            rounds: c,
            round_time: 1.0,
        }
    }

    fn paper_example() -> Wdp {
        Wdp::new(
            3,
            1,
            vec![
                qb(1, 2.0, 1, 2, 1),
                qb(2, 6.0, 2, 3, 2),
                qb(3, 5.0, 1, 3, 2),
            ],
        )
    }

    #[test]
    fn loser_has_no_threshold() {
        // B_2 loses the paper example.
        let wdp = paper_example();
        assert_eq!(
            myerson_payment(&wdp, BidRef::new(ClientId(2), 0), 100.0, 1e-6),
            None
        );
    }

    #[test]
    fn threshold_is_at_least_the_paper_payment_for_b3() {
        // B_3's paper payment is 6; it would still win at any price < its
        // true threshold, which bisection locates.
        let wdp = paper_example();
        let sol = AWinner::new().solve_wdp(&wdp).unwrap();
        for (bid_ref, paper, exact) in myerson_payments(&wdp, &sol, 100.0, 1e-7) {
            assert!(
                exact >= paper - 1e-6,
                "{bid_ref}: exact threshold {exact} below paper payment {paper}"
            );
        }
    }

    #[test]
    fn threshold_is_tight() {
        // Winning at threshold − tol, losing at threshold + tol.
        let wdp = paper_example();
        let b3 = BidRef::new(ClientId(3), 0);
        let p = myerson_payment(&wdp, b3, 100.0, 1e-9).unwrap();
        assert!(wins_at(&wdp, b3, p - 1e-6));
        assert!(!wins_at(&wdp, b3, p + 1e-6), "threshold {p} not tight");
    }

    #[test]
    fn monopolist_is_capped() {
        // One client, K = 1: it wins at any price.
        let wdp = Wdp::new(2, 1, vec![qb(0, 3.0, 1, 2, 2)]);
        let p = myerson_payment(&wdp, BidRef::new(ClientId(0), 0), 50.0, 1e-6).unwrap();
        assert_eq!(p, 50.0);
    }

    #[test]
    fn threshold_payment_is_individually_rational() {
        let wdp = Wdp::new(
            4,
            2,
            vec![
                qb(0, 3.0, 1, 4, 4),
                qb(1, 4.0, 1, 4, 3),
                qb(2, 5.0, 2, 4, 2),
                qb(3, 2.0, 1, 2, 2),
                qb(4, 6.0, 1, 4, 4),
                qb(5, 3.5, 1, 3, 2),
            ],
        );
        let sol = AWinner::new().solve_wdp(&wdp).unwrap();
        for (bid_ref, _, exact) in myerson_payments(&wdp, &sol, 200.0, 1e-6) {
            let price = wdp
                .bids()
                .iter()
                .find(|b| b.bid_ref == bid_ref)
                .unwrap()
                .price;
            assert!(
                exact >= price - 1e-6,
                "{bid_ref} paid {exact} below price {price}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "cap must be")]
    fn bad_cap_panics() {
        let wdp = paper_example();
        let _ = myerson_payment(&wdp, BidRef::new(ClientId(1), 0), f64::INFINITY, 1e-6);
    }
}

//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no network access, so the real `criterion`
//! cannot be fetched. This crate keeps `cargo bench` working by
//! implementing the subset of the API the workspace's benches use —
//! benchmark groups, `bench_function` / `bench_with_input`, `Bencher::iter`
//! and [`black_box`] — as a small wall-clock timing loop that prints
//! mean/min per benchmark. No statistics engine, no HTML reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The top-level harness handle passed to each benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        println!("\n== {name}");
        BenchmarkGroup {
            name,
            sample_size: 10,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id, 10, f);
        self
    }
}

/// A named benchmark id (`BenchmarkId::from_parameter(...)`).
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", function.into(), parameter))
    }

    /// An id carrying only the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

/// A group of benchmarks sharing a name prefix and a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_benchmark(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Benchmarks a closure with no extra input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().0);
        run_benchmark(&label, self.sample_size, f);
        self
    }

    /// Ends the group (prints nothing extra in the stand-in).
    pub fn finish(self) {}
}

/// Collects timing samples for one benchmark.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    budget: usize,
}

impl Bencher {
    /// Times `routine`, repeating it `sample` times.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // One warm-up, then the sampled runs.
        black_box(routine());
        for _ in 0..self.budget {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        samples: Vec::new(),
        budget: sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = b.samples.iter().min().copied().unwrap_or_default();
    println!(
        "{label:<48} mean {:>12?}  min {:>12?}  ({} samples)",
        mean,
        min,
        b.samples.len()
    );
}

/// Bundles benchmark functions into a runnable group, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_routine() {
        let mut c = Criterion::default();
        let mut calls = 0u32;
        c.bench_function("noop", |b| b.iter(|| calls += 1));
        // 1 warm-up + 10 samples.
        assert_eq!(calls, 11);
    }

    #[test]
    fn groups_respect_sample_size() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &x| {
            b.iter(|| calls += x)
        });
        group.finish();
        assert_eq!(calls, 4 * 7);
    }
}

//! The `Greedy` benchmark \[20\]: static average-cost ordering.
//!
//! Bids are ranked once by `b_ij / c_ij` — price per *offered* round — and
//! accepted in that order while they still add coverage. Unlike `A_winner`,
//! the ranking never adapts to the evolving coverage (a bid whose rounds
//! are mostly saturated keeps its original rank), which is exactly the
//! inefficiency the paper's Fig. 5–7 comparison exposes.

use fl_auction::{
    representative_schedule, Coverage, Wdp, WdpError, WdpSolution, WdpSolver, WinnerEntry,
};

/// Greedy static-ratio WDP solver (pay-as-bid).
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyBaseline;

impl GreedyBaseline {
    /// Creates the solver.
    pub fn new() -> Self {
        GreedyBaseline
    }
}

impl WdpSolver for GreedyBaseline {
    fn name(&self) -> &str {
        "Greedy"
    }

    fn solve_wdp(&self, wdp: &Wdp) -> Result<WdpSolution, WdpError> {
        let mut order: Vec<usize> = (0..wdp.bids().len()).collect();
        order.sort_by(|&a, &b| {
            let qa = &wdp.bids()[a];
            let qb = &wdp.bids()[b];
            let ra = qa.price / f64::from(qa.rounds);
            let rb = qb.price / f64::from(qb.rounds);
            ra.total_cmp(&rb)
                .then(qa.price.total_cmp(&qb.price))
                .then(qa.bid_ref.cmp(&qb.bid_ref))
        });

        let mut cov = Coverage::new(wdp.horizon(), wdp.demand_per_round());
        let mut chosen_clients = std::collections::HashSet::new();
        let mut winners = Vec::new();
        let mut cost = 0.0;
        for idx in order {
            if cov.is_complete() {
                break;
            }
            let qb = &wdp.bids()[idx];
            if chosen_clients.contains(&qb.bid_ref.client) {
                continue;
            }
            // Schedule on the least-loaded rounds so the bid's static rank
            // at least lands where it helps most; skip it if saturated.
            let schedule = representative_schedule(&cov, qb.window, qb.rounds);
            if cov.gain(&schedule) == 0 {
                continue;
            }
            cov.add(&schedule);
            chosen_clients.insert(qb.bid_ref.client);
            cost += qb.price;
            winners.push(WinnerEntry {
                bid_ref: qb.bid_ref,
                price: qb.price,
                payment: qb.price, // pay-as-bid: the benchmark has no truthful payment rule
                schedule,
            });
        }
        if !cov.is_complete() {
            return Err(WdpError::Infeasible);
        }
        Ok(WdpSolution::new(wdp.horizon(), winners, cost, None))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fl_auction::{BidRef, ClientId, QualifiedBid, Round, Window};

    fn qb(client: u32, bid: u32, price: f64, a: u32, d: u32, c: u32) -> QualifiedBid {
        QualifiedBid {
            bid_ref: BidRef::new(ClientId(client), bid),
            price,
            accuracy: 0.5,
            window: Window::new(Round(a), Round(d)),
            rounds: c,
            round_time: 1.0,
        }
    }

    #[test]
    fn prefers_lower_price_per_round() {
        // Client 0: $10 for 1 round (ratio 10); client 1: $12 for 3 rounds
        // (ratio 4). Greedy must take client 1 first.
        let wdp = Wdp::new(3, 1, vec![qb(0, 0, 10.0, 1, 3, 1), qb(1, 0, 12.0, 1, 3, 3)]);
        let sol = GreedyBaseline::new().solve_wdp(&wdp).unwrap();
        assert_eq!(sol.winners()[0].bid_ref.client, ClientId(1));
        assert_eq!(sol.cost(), 12.0);
        assert_eq!(sol.winners().len(), 1);
    }

    #[test]
    fn static_rank_can_overpay_versus_adaptive() {
        // A bid with a great static ratio whose rounds are already covered
        // wastes money only if accepted — Greedy skips zero-gain bids, but
        // it can still pick a globally poor combination:
        // B_a($3, [1,1], 1)  ratio 3
        // B_b($8, [1,2], 2)  ratio 4
        // B_c($5, [2,2], 1)  ratio 5
        // Greedy: takes B_a (round 1), then B_b — but B_b's representative
        // schedule must cover round 2, its gain is 1 → accepted, cost 11.
        // Optimal: B_a + B_c = 8.
        let wdp = Wdp::new(
            2,
            1,
            vec![
                qb(0, 0, 3.0, 1, 1, 1),
                qb(1, 0, 8.0, 1, 2, 2),
                qb(2, 0, 5.0, 2, 2, 1),
            ],
        );
        let sol = GreedyBaseline::new().solve_wdp(&wdp).unwrap();
        assert_eq!(sol.cost(), 11.0, "greedy's static rank overpays here");
    }

    #[test]
    fn one_bid_per_client() {
        let wdp = Wdp::new(
            2,
            1,
            vec![
                qb(0, 0, 1.0, 1, 1, 1),
                qb(0, 1, 1.0, 2, 2, 1),
                qb(1, 0, 10.0, 1, 2, 2),
            ],
        );
        let sol = GreedyBaseline::new().solve_wdp(&wdp).unwrap();
        let c0_wins = sol
            .winners()
            .iter()
            .filter(|w| w.bid_ref.client == ClientId(0))
            .count();
        assert_eq!(c0_wins, 1);
        assert!(fl_auction::verify::wdp_violations(&wdp, &sol).is_empty());
    }

    #[test]
    fn infeasible_reported() {
        let wdp = Wdp::new(2, 2, vec![qb(0, 0, 1.0, 1, 2, 2)]);
        assert_eq!(
            GreedyBaseline::new().solve_wdp(&wdp).unwrap_err(),
            WdpError::Infeasible
        );
    }

    #[test]
    fn output_is_feasible() {
        let wdp = Wdp::new(
            4,
            2,
            vec![
                qb(0, 0, 3.0, 1, 4, 4),
                qb(1, 0, 4.0, 1, 4, 3),
                qb(2, 0, 5.0, 2, 4, 2),
                qb(3, 0, 2.0, 1, 2, 2),
                qb(4, 0, 6.0, 1, 4, 4),
            ],
        );
        let sol = GreedyBaseline::new().solve_wdp(&wdp).unwrap();
        assert!(fl_auction::verify::wdp_violations(&wdp, &sol).is_empty());
    }
}

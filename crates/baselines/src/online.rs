//! The `A_online` benchmark, adapted from Zhou et al. \[17\] the way the
//! paper's evaluation describes it: *"A_online first calculates the unit
//! payment of each global iteration based on a payment function. Then it
//! selects the client with larger utility and schedules the client
//! according to the best schedule that maximizes its utility."*
//!
//! \[17\] is an **online** mechanism: clients arrive one by one and the
//! decision for each is immediate and irrevocable, driven by posted prices
//! rather than by cost comparisons across clients. Our adaptation to this
//! procurement setting keeps that character:
//!
//! * every round posts a unit payment that **decays exponentially with its
//!   load** — early capacity is bought at up to `U_max` (the largest
//!   qualified price) and the offer approaches `U_min` (the smallest price
//!   per offered round) as the round fills:
//!   `π_t(γ) = U_max·(U_min/U_max)^{γ/K}` for `γ < K`, else `0`;
//! * clients are processed in **arrival order**; each picks, among its own
//!   bids, the one whose utility-maximising schedule (highest-offer rounds
//!   in the window) earns the most, and is admitted iff that utility is
//!   non-negative — no comparison against other clients ever happens,
//!   which is exactly why it overpays relative to `A_FL`;
//! * if arrivals run out with rounds still understaffed, the server must
//!   still deliver the job: a cheapest-average-cost backfill (paid as bid)
//!   completes the quota. (An online platform would hit this as a "panic
//!   re-solicitation" phase; we fold it in so every mechanism answers the
//!   same feasibility question.)
//!
//! The backfill **breaks the online decision model**: it revisits bids
//! whose irrevocable answer was already "no". A solution that used it is
//! therefore flagged — [`WdpSolution::backfilled`] reports how many
//! winners the completion pass admitted, and the
//! `online_baseline.backfilled` telemetry counter tallies them — so that
//! online-vs-offline ratio aggregates can exclude degraded runs instead of
//! silently crediting `A_online` with offline repairs.

use fl_auction::{
    representative_schedule, Coverage, Round, Wdp, WdpError, WdpSolution, WdpSolver, WinnerEntry,
};

/// Online posted-price WDP solver.
#[derive(Debug, Clone, Copy, Default)]
pub struct OnlineBaseline;

impl OnlineBaseline {
    /// Creates the solver.
    pub fn new() -> Self {
        OnlineBaseline
    }
}

/// The exponential posted-payment function for one round.
///
/// `u_min`/`u_max` bound the per-round unit value of qualified bids; `gamma`
/// is the round's current load out of `k`. Saturated rounds pay nothing.
pub fn unit_payment(u_min: f64, u_max: f64, gamma: u32, k: u32) -> f64 {
    if gamma >= k {
        return 0.0;
    }
    if u_max <= 0.0 {
        return 0.0;
    }
    let ratio = (u_min / u_max).max(f64::MIN_POSITIVE);
    u_max * ratio.powf(f64::from(gamma) / f64::from(k))
}

impl WdpSolver for OnlineBaseline {
    fn name(&self) -> &str {
        "A_online"
    }

    fn solve_wdp(&self, wdp: &Wdp) -> Result<WdpSolution, WdpError> {
        let k = wdp.demand_per_round();
        let bids = wdp.bids();
        let u_max = bids
            .iter()
            .map(|b| b.price)
            .max_by(f64::total_cmp)
            .unwrap_or(0.0);
        let u_min = bids
            .iter()
            .map(|b| b.price / f64::from(b.rounds))
            .min_by(f64::total_cmp)
            .unwrap_or(0.0);

        let mut cov = Coverage::new(wdp.horizon(), k);
        let mut chosen_clients = std::collections::HashSet::new();
        let mut taken = vec![false; bids.len()];
        let mut winners = Vec::new();
        let mut cost = 0.0;

        // Phase 1: one pass over clients in arrival order. A client looks
        // at the current posted prices, picks its best own bid, and is
        // admitted on the spot iff it breaks even.
        let mut clients_in_arrival: Vec<u32> = bids.iter().map(|b| b.bid_ref.client.0).collect();
        clients_in_arrival.dedup();
        for client in clients_in_arrival {
            if cov.is_complete() {
                break;
            }
            if chosen_clients.contains(&client) {
                continue;
            }
            // The client's own best bid under today's prices.
            let mut best: Option<(usize, Vec<Round>, f64, f64)> = None;
            for (idx, qb) in bids.iter().enumerate() {
                if qb.bid_ref.client.0 != client || taken[idx] {
                    continue;
                }
                let (schedule, offer) = best_schedule_offer(&cov, qb, u_min, u_max, k);
                if cov.gain(&schedule) == 0 {
                    continue;
                }
                let utility = offer - qb.price;
                if best.as_ref().is_none_or(|(_, _, bu, _)| utility > *bu) {
                    best = Some((idx, schedule, utility, offer));
                }
            }
            let Some((idx, schedule, utility, offer)) = best else {
                continue;
            };
            if utility < 0.0 {
                continue; // the client walks away
            }
            let qb = &bids[idx];
            cov.add(&schedule);
            taken[idx] = true;
            chosen_clients.insert(client);
            cost += qb.price;
            winners.push(WinnerEntry {
                bid_ref: qb.bid_ref,
                price: qb.price,
                payment: offer,
                schedule,
            });
        }

        // Phase 2: quota backfill with the cheapest remaining average
        // cost. Lazy-greedy: average costs only grow as coverage fills, so
        // a stale heap entry is a lower bound and a fresh top is the exact
        // minimum (same argument as `A_winner`'s queue). Ties break toward
        // the smaller bid index, matching the plain scan. Every winner
        // admitted below is counted and flagged on the returned solution:
        // this pass is offline completion, not online decision-making.
        let phase1_winners = winners.len();
        let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(OrderedAvg, usize, u64)>> =
            std::collections::BinaryHeap::new();
        let mut stamp = 0u64;
        for (idx, qb) in bids.iter().enumerate() {
            if taken[idx] || chosen_clients.contains(&qb.bid_ref.client.0) {
                continue;
            }
            let schedule = representative_schedule(&cov, qb.window, qb.rounds);
            let gain = cov.gain(&schedule);
            if gain > 0 {
                heap.push(std::cmp::Reverse((
                    OrderedAvg(qb.price / f64::from(gain)),
                    idx,
                    stamp,
                )));
            }
        }
        while !cov.is_complete() {
            let winner = loop {
                let Some(std::cmp::Reverse((_, idx, entry_stamp))) = heap.pop() else {
                    return Err(WdpError::Infeasible);
                };
                if taken[idx] || chosen_clients.contains(&bids[idx].bid_ref.client.0) {
                    continue;
                }
                if entry_stamp == stamp {
                    break idx;
                }
                let qb = &bids[idx];
                let schedule = representative_schedule(&cov, qb.window, qb.rounds);
                let gain = cov.gain(&schedule);
                if gain > 0 {
                    heap.push(std::cmp::Reverse((
                        OrderedAvg(qb.price / f64::from(gain)),
                        idx,
                        stamp,
                    )));
                }
            };
            let qb = &bids[winner];
            let schedule = representative_schedule(&cov, qb.window, qb.rounds);
            cov.add(&schedule);
            taken[winner] = true;
            chosen_clients.insert(qb.bid_ref.client.0);
            cost += qb.price;
            winners.push(WinnerEntry {
                bid_ref: qb.bid_ref,
                price: qb.price,
                payment: qb.price,
                schedule,
            });
            stamp += 1;
        }
        let backfilled = winners.len() - phase1_winners;
        if backfilled > 0 {
            fl_telemetry::counter!("online_baseline.backfilled", backfilled as u64);
        }
        Ok(WdpSolution::new(wdp.horizon(), winners, cost, None).with_backfilled(backfilled))
    }
}

/// Total-ordered f64 key for the backfill heap (averages are never NaN:
/// prices are finite and gains ≥ 1).
#[derive(PartialEq)]
struct OrderedAvg(f64);

impl Eq for OrderedAvg {}
impl PartialOrd for OrderedAvg {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrderedAvg {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// The client-optimal schedule under posted prices: the `c` rounds of the
/// window with the highest current offers, plus the total offer.
fn best_schedule_offer(
    cov: &Coverage,
    qb: &fl_auction::QualifiedBid,
    u_min: f64,
    u_max: f64,
    k: u32,
) -> (Vec<Round>, f64) {
    let mut rounds: Vec<(f64, Round)> = qb
        .window
        .rounds()
        .map(|t| (unit_payment(u_min, u_max, cov.load(t), k), t))
        .collect();
    rounds.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1 .0.cmp(&b.1 .0)));
    rounds.truncate(qb.rounds as usize);
    let offer = rounds.iter().map(|(p, _)| *p).sum();
    let mut schedule: Vec<Round> = rounds.into_iter().map(|(_, t)| t).collect();
    schedule.sort_by_key(|t| t.0);
    (schedule, offer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fl_auction::{BidRef, ClientId, QualifiedBid, Window};

    fn qb(client: u32, price: f64, a: u32, d: u32, c: u32) -> QualifiedBid {
        QualifiedBid {
            bid_ref: BidRef::new(ClientId(client), 0),
            price,
            accuracy: 0.5,
            window: Window::new(Round(a), Round(d)),
            rounds: c,
            round_time: 1.0,
        }
    }

    #[test]
    fn unit_payment_decays_with_load() {
        let k = 4;
        let p0 = unit_payment(1.0, 16.0, 0, k);
        let p1 = unit_payment(1.0, 16.0, 1, k);
        let p3 = unit_payment(1.0, 16.0, 3, k);
        assert_eq!(p0, 16.0);
        assert!(p1 < p0 && p3 < p1);
        assert_eq!(
            unit_payment(1.0, 16.0, 4, k),
            0.0,
            "saturated rounds pay nothing"
        );
        // Exact decay: 16·(1/16)^(γ/4) = 16·2^(−γ).
        assert!((p1 - 8.0).abs() < 1e-9);
        assert!((p3 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn unit_payment_degenerate_bounds() {
        assert_eq!(unit_payment(0.0, 0.0, 0, 2), 0.0);
        assert!(unit_payment(0.0, 4.0, 1, 2) >= 0.0);
    }

    #[test]
    fn arrival_order_admits_the_early_expensive_client() {
        // Client 0 arrives first, breaks even at the opening offer and is
        // admitted although client 1 is far cheaper — the online regret
        // A_FL does not have.
        let wdp = Wdp::new(2, 1, vec![qb(0, 10.0, 1, 2, 2), qb(1, 2.0, 1, 2, 2)]);
        let sol = OnlineBaseline::new().solve_wdp(&wdp).unwrap();
        assert_eq!(sol.winners()[0].bid_ref.client, ClientId(0));
        assert_eq!(sol.cost(), 10.0);
    }

    #[test]
    fn clients_pick_their_own_best_bid() {
        // Client 0's second bid earns it more at the posted prices.
        let mut b0 = qb(0, 8.0, 1, 1, 1);
        b0.bid_ref = BidRef::new(ClientId(0), 0);
        let mut b1 = qb(0, 2.0, 1, 2, 2);
        b1.bid_ref = BidRef::new(ClientId(0), 1);
        let wdp = Wdp::new(2, 1, vec![b0, b1, qb(1, 5.0, 1, 2, 2)]);
        let sol = OnlineBaseline::new().solve_wdp(&wdp).unwrap();
        let w0 = sol
            .winners()
            .iter()
            .find(|w| w.bid_ref.client == ClientId(0))
            .unwrap();
        assert_eq!(w0.bid_ref.bid, 1, "the wider cheap bid has higher utility");
    }

    #[test]
    fn walkaways_are_backfilled() {
        // Only client: its price exceeds any offer once u_max is small...
        // construct: two clients, the second one's price far above u_max
        // cannot happen (u_max = max price), so force walk-away via
        // saturated offers: client 0 fills round 1; client 1's window is
        // only round 1 → offer 0 < price → walks; backfill must then fail
        // (no capacity) for round 2 → infeasible.
        let wdp = Wdp::new(2, 1, vec![qb(0, 1.0, 1, 1, 1), qb(1, 5.0, 1, 1, 1)]);
        assert_eq!(
            OnlineBaseline::new().solve_wdp(&wdp).unwrap_err(),
            WdpError::Infeasible
        );
    }

    #[test]
    fn forced_panic_exit_is_flagged_on_the_solution() {
        // Regression: the offline completion pass used to be silent. This
        // instance forces it deterministically. K = 2, one round; u_max =
        // 10, u_min = 1. Client 0 is admitted at the opening offer (10 ≥
        // 1) which drops round 1's posted price to 10·√(1/10) ≈ 3.16 <
        // 10, so client 1 walks away irrevocably — yet the quota still
        // needs a second client, and the backfill re-admits client 1,
        // paid as bid.
        let wdp = Wdp::new(2, 2, vec![qb(0, 1.0, 1, 2, 2), qb(1, 10.0, 1, 2, 2)]);
        let sol = OnlineBaseline::new().solve_wdp(&wdp).unwrap();
        assert_eq!(sol.winners().len(), 2);
        assert_eq!(sol.backfilled(), 1, "the completion pass must be flagged");
        assert!(sol.is_degraded());
        let repaired = sol
            .winners()
            .iter()
            .find(|w| w.bid_ref.client == ClientId(1))
            .unwrap();
        assert_eq!(
            repaired.payment, repaired.price,
            "backfill pays as bid, not the posted offer"
        );
        // A run that never needed the pass carries a clean solution.
        let clean = Wdp::new(2, 1, vec![qb(0, 1.0, 1, 2, 2)]);
        let sol = OnlineBaseline::new().solve_wdp(&clean).unwrap();
        assert_eq!(sol.backfilled(), 0);
        assert!(!sol.is_degraded());
    }

    #[test]
    fn infeasible_reported() {
        let wdp = Wdp::new(2, 2, vec![qb(0, 1.0, 1, 2, 2)]);
        assert_eq!(
            OnlineBaseline::new().solve_wdp(&wdp).unwrap_err(),
            WdpError::Infeasible
        );
    }

    #[test]
    fn output_is_feasible_on_mixed_instance() {
        let wdp = Wdp::new(
            4,
            2,
            vec![
                qb(0, 3.0, 1, 4, 4),
                qb(1, 4.0, 1, 4, 3),
                qb(2, 5.0, 2, 4, 2),
                qb(3, 2.0, 1, 2, 2),
                qb(4, 6.0, 1, 4, 4),
                qb(5, 9.0, 3, 4, 2),
            ],
        );
        let sol = OnlineBaseline::new().solve_wdp(&wdp).unwrap();
        assert!(fl_auction::verify::wdp_violations(&wdp, &sol).is_empty());
    }

    #[test]
    fn phase1_payments_cover_prices() {
        let wdp = Wdp::new(3, 1, vec![qb(0, 2.0, 1, 3, 3), qb(1, 50.0, 1, 3, 3)]);
        let sol = OnlineBaseline::new().solve_wdp(&wdp).unwrap();
        let w = &sol.winners()[0];
        assert!(w.payment >= w.price - 1e-9);
    }

    /// The lazy backfill must match a naive full-scan backfill exactly.
    #[test]
    fn lazy_backfill_matches_naive_reference() {
        // Reference: same algorithm with the backfill done by full scans.
        fn reference(wdp: &Wdp) -> Result<Vec<(u32, f64)>, WdpError> {
            let sol = OnlineBaseline::new().solve_wdp(wdp)?;
            // Recompute independently: replay phase 1 + naive phase 2.
            let k = wdp.demand_per_round();
            let bids = wdp.bids();
            let u_max = bids
                .iter()
                .map(|b| b.price)
                .max_by(f64::total_cmp)
                .unwrap_or(0.0);
            let u_min = bids
                .iter()
                .map(|b| b.price / f64::from(b.rounds))
                .min_by(f64::total_cmp)
                .unwrap_or(0.0);
            let mut cov = Coverage::new(wdp.horizon(), k);
            let mut chosen = std::collections::HashSet::new();
            let mut taken = vec![false; bids.len()];
            let mut picks = Vec::new();
            let mut clients: Vec<u32> = bids.iter().map(|b| b.bid_ref.client.0).collect();
            clients.dedup();
            for client in clients {
                if cov.is_complete() {
                    break;
                }
                if chosen.contains(&client) {
                    continue;
                }
                let mut best: Option<(usize, Vec<Round>, f64)> = None;
                for (idx, qb) in bids.iter().enumerate() {
                    if qb.bid_ref.client.0 != client || taken[idx] {
                        continue;
                    }
                    let (schedule, offer) = best_schedule_offer(&cov, qb, u_min, u_max, k);
                    if cov.gain(&schedule) == 0 {
                        continue;
                    }
                    let utility = offer - qb.price;
                    if best.as_ref().is_none_or(|(_, _, bu)| utility > *bu) {
                        best = Some((idx, schedule, utility));
                    }
                }
                if let Some((idx, schedule, utility)) = best {
                    if utility >= 0.0 {
                        cov.add(&schedule);
                        taken[idx] = true;
                        chosen.insert(client);
                        picks.push((bids[idx].bid_ref.client.0, bids[idx].price));
                    }
                }
            }
            while !cov.is_complete() {
                let mut best: Option<(usize, f64)> = None;
                for (idx, qb) in bids.iter().enumerate() {
                    if taken[idx] || chosen.contains(&qb.bid_ref.client.0) {
                        continue;
                    }
                    let schedule = representative_schedule(&cov, qb.window, qb.rounds);
                    let gain = cov.gain(&schedule);
                    if gain == 0 {
                        continue;
                    }
                    let avg = qb.price / f64::from(gain);
                    if best.is_none_or(|(_, b)| avg < b) {
                        best = Some((idx, avg));
                    }
                }
                let Some((idx, _)) = best else {
                    return Err(WdpError::Infeasible);
                };
                let qb = &bids[idx];
                let schedule = representative_schedule(&cov, qb.window, qb.rounds);
                cov.add(&schedule);
                taken[idx] = true;
                chosen.insert(qb.bid_ref.client.0);
                picks.push((qb.bid_ref.client.0, qb.price));
            }
            let got: Vec<(u32, f64)> = sol
                .winners()
                .iter()
                .map(|w| (w.bid_ref.client.0, w.price))
                .collect();
            assert_eq!(got, picks, "winner sequences diverged");
            Ok(picks)
        }

        let mut state = 0x0411e5u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut checked = 0;
        for _ in 0..25 {
            let h = 3 + (next() % 5) as u32;
            let kk = 1 + (next() % 2) as u32;
            let n = 8 + (next() % 10) as usize;
            let bids: Vec<QualifiedBid> = (0..n)
                .map(|i| {
                    let a = 1 + (next() % u64::from(h)) as u32;
                    let d = a + (next() % u64::from(h - a + 1)) as u32;
                    let c = 1 + (next() % u64::from(d - a + 1)) as u32;
                    let mut q = qb(i as u32, 1.0 + (next() % 30) as f64, a, d, c);
                    q.bid_ref = BidRef::new(ClientId((i / 2) as u32), (i % 2) as u32);
                    q
                })
                .collect();
            let wdp = Wdp::new(h, kk, bids);
            if reference(&wdp).is_ok() {
                checked += 1;
            }
        }
        assert!(checked > 5, "too few feasible cases ({checked})");
    }

    #[test]
    fn costs_at_least_afl_on_average() {
        // Statistical: over seeded random WDPs, the online mechanism's
        // cost is (weakly) above A_winner's.
        use fl_auction::AWinner;
        let mut state = 0x5a5a5a5au64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut online_total = 0.0;
        let mut afl_total = 0.0;
        let mut n = 0;
        for _ in 0..30 {
            let h = 4 + (next() % 4) as u32;
            let bids: Vec<QualifiedBid> = (0..12)
                .map(|i| {
                    let a = 1 + (next() % u64::from(h)) as u32;
                    let d = a + (next() % u64::from(h - a + 1)) as u32;
                    let c = 1 + (next() % u64::from(d - a + 1)) as u32;
                    qb(i, 1.0 + (next() % 40) as f64, a, d, c)
                })
                .collect();
            let wdp = Wdp::new(h, 2, bids);
            if let (Ok(o), Ok(a)) = (
                OnlineBaseline::new().solve_wdp(&wdp),
                AWinner::new().without_certificate().solve_wdp(&wdp),
            ) {
                online_total += o.cost();
                afl_total += a.cost();
                n += 1;
            }
        }
        assert!(n > 10, "need enough feasible samples");
        assert!(
            online_total >= afl_total,
            "online ({online_total}) should aggregate above A_winner ({afl_total})"
        );
    }
}

//! Benchmark mechanisms from the paper's evaluation (§VII-A).
//!
//! All three implement [`fl_auction::WdpSolver`], so they can be dropped
//! into the `A_FL` outer enumeration (`run_auction_with`) or evaluated at a
//! fixed horizon, exactly as Figs. 4–8 require:
//!
//! * [`FcfsBaseline`] — first-come-first-served by bid start time (paper's ref. \[21\]);
//! * [`GreedyBaseline`] — static `b_ij/c_ij` ranking (paper's ref. \[20\]);
//! * [`OnlineBaseline`] — posted-price online mechanism adapted from the paper's ref. \[17\].
//!
//! The baselines pay as bid (except `A_online`'s posted offers): the
//! paper compares them on **social cost**, not on payments, and none of
//! them has a truthful payment rule.
//!
//! # Example
//!
//! ```
//! use fl_auction::{run_auction_with, AuctionConfig, Bid, ClientProfile, Instance, Round, Window};
//! use fl_baselines::GreedyBaseline;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = AuctionConfig::builder().max_rounds(4).clients_per_round(1).build()?;
//! let mut inst = Instance::new(cfg);
//! for price in [3.0, 5.0] {
//!     let c = inst.add_client(ClientProfile::new(2.0, 5.0)?);
//!     inst.add_bid(c, Bid::new(price, 0.6, Window::new(Round(1), Round(4)), 4)?)?;
//! }
//! let outcome = run_auction_with(&inst, &GreedyBaseline::new())?;
//! assert_eq!(outcome.social_cost(), 3.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fcfs;
mod greedy;
mod online;

pub use fcfs::FcfsBaseline;
pub use greedy::GreedyBaseline;
pub use online::{unit_payment, OnlineBaseline};

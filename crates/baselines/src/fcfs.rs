//! The `FCFS` benchmark \[21\]: first-come, first-served.
//!
//! Bids are admitted in non-decreasing order of their start time `a_ij`,
//! oblivious to price — the natural "accept whoever shows up first" policy
//! of an un-incentivised platform, and the paper's worst performer. One
//! minimal usefulness filter is kept (a bid whose rounds are all saturated
//! is turned away): without it the platform enrolls each client at its
//! earliest-starting bid and routinely starves late rounds outright. Even
//! with the filter, FCFS schedules first-come (earliest rounds first) and
//! pays whatever the early arrivals ask.

use fl_auction::{Coverage, Round, Wdp, WdpError, WdpSolution, WdpSolver, WinnerEntry};

/// First-come-first-served WDP solver (pay-as-bid).
#[derive(Debug, Clone, Copy, Default)]
pub struct FcfsBaseline;

impl FcfsBaseline {
    /// Creates the solver.
    pub fn new() -> Self {
        FcfsBaseline
    }
}

impl WdpSolver for FcfsBaseline {
    fn name(&self) -> &str {
        "FCFS"
    }

    fn solve_wdp(&self, wdp: &Wdp) -> Result<WdpSolution, WdpError> {
        let mut order: Vec<usize> = (0..wdp.bids().len()).collect();
        order.sort_by(|&a, &b| {
            let qa = &wdp.bids()[a];
            let qb = &wdp.bids()[b];
            qa.window
                .start()
                .cmp(&qb.window.start())
                .then(qa.bid_ref.cmp(&qb.bid_ref))
        });

        let mut cov = Coverage::new(wdp.horizon(), wdp.demand_per_round());
        let mut chosen_clients = std::collections::HashSet::new();
        let mut winners = Vec::new();
        let mut cost = 0.0;
        for idx in order {
            if cov.is_complete() {
                break;
            }
            let qb = &wdp.bids()[idx];
            if chosen_clients.contains(&qb.bid_ref.client) {
                continue; // one accepted bid per client
            }
            // First-come scheduling: the earliest *available* rounds of the
            // window first, padded with the earliest saturated rounds when
            // fewer than c_ij are available (the bid still serves its full
            // c_ij rounds, constraint (6c)).
            let schedule = earliest_available(&cov, qb.window.rounds(), qb.rounds);
            if cov.gain(&schedule) == 0 {
                continue; // nothing useful left in this bid's window
            }
            chosen_clients.insert(qb.bid_ref.client);
            cov.add(&schedule);
            cost += qb.price;
            winners.push(WinnerEntry {
                bid_ref: qb.bid_ref,
                price: qb.price,
                payment: qb.price,
                schedule,
            });
        }
        if !cov.is_complete() {
            return Err(WdpError::Infeasible);
        }
        Ok(WdpSolution::new(wdp.horizon(), winners, cost, None))
    }
}

/// Picks `c` rounds: every available round first (in time order), then the
/// earliest saturated ones; the result is re-sorted by time.
fn earliest_available(cov: &Coverage, rounds: impl Iterator<Item = Round>, c: u32) -> Vec<Round> {
    let all: Vec<Round> = rounds.collect();
    let mut picked: Vec<Round> = all
        .iter()
        .copied()
        .filter(|&t| cov.is_available(t))
        .collect();
    picked.truncate(c as usize);
    if (picked.len() as u32) < c {
        for &t in &all {
            if !cov.is_available(t) && !picked.contains(&t) {
                picked.push(t);
                if picked.len() as u32 == c {
                    break;
                }
            }
        }
    }
    picked.sort_by_key(|t| t.0);
    picked
}

#[cfg(test)]
mod tests {
    use super::*;
    use fl_auction::{BidRef, ClientId, QualifiedBid, Window};

    fn qb(client: u32, price: f64, a: u32, d: u32, c: u32) -> QualifiedBid {
        QualifiedBid {
            bid_ref: BidRef::new(ClientId(client), 0),
            price,
            accuracy: 0.5,
            window: Window::new(Round(a), Round(d)),
            rounds: c,
            round_time: 1.0,
        }
    }

    #[test]
    fn admits_by_start_time_not_price() {
        // The early expensive bid wins over the late cheap one.
        let wdp = Wdp::new(2, 1, vec![qb(0, 100.0, 1, 2, 2), qb(1, 1.0, 2, 2, 1)]);
        let sol = FcfsBaseline::new().solve_wdp(&wdp).unwrap();
        assert_eq!(sol.winners()[0].bid_ref.client, ClientId(0));
        assert_eq!(sol.cost(), 100.0);
    }

    #[test]
    fn fills_rounds_in_time_order() {
        let wdp = Wdp::new(
            3,
            1,
            vec![
                qb(0, 1.0, 1, 3, 1),
                qb(1, 1.0, 1, 3, 1),
                qb(2, 1.0, 1, 3, 1),
            ],
        );
        let sol = FcfsBaseline::new().solve_wdp(&wdp).unwrap();
        // Each client grabs the earliest available round: 1, then 2, then 3.
        let scheduled: Vec<Round> = sol
            .winners()
            .iter()
            .flat_map(|w| w.schedule.clone())
            .collect();
        assert_eq!(scheduled, vec![Round(1), Round(2), Round(3)]);
    }

    #[test]
    fn pads_with_saturated_rounds_when_needed() {
        // K = 1. Client 0 takes rounds 1-2. Client 1 must serve c = 2 inside
        // [1, 3]; only round 3 is available, so it pads with round 1.
        let wdp = Wdp::new(3, 1, vec![qb(0, 1.0, 1, 2, 2), qb(1, 1.0, 1, 3, 2)]);
        let sol = FcfsBaseline::new().solve_wdp(&wdp).unwrap();
        let w1 = &sol.winners()[1];
        assert_eq!(w1.schedule.len(), 2);
        assert!(w1.schedule.contains(&Round(3)));
        assert!(fl_auction::verify::wdp_violations(&wdp, &sol).is_empty());
    }

    #[test]
    fn infeasible_when_rounds_uncoverable() {
        let wdp = Wdp::new(3, 1, vec![qb(0, 1.0, 1, 2, 1)]);
        assert_eq!(
            FcfsBaseline::new().solve_wdp(&wdp).unwrap_err(),
            WdpError::Infeasible
        );
    }

    #[test]
    fn skips_bids_with_fully_saturated_windows() {
        // Clients 0 and 1 both sit in round 1 (K = 1): client 1's window
        // holds nothing useful and is turned away; client 2 covers round 2.
        let wdp = Wdp::new(
            2,
            1,
            vec![
                qb(0, 1.0, 1, 1, 1),
                qb(1, 7.0, 1, 1, 1),
                qb(2, 1.0, 2, 2, 1),
            ],
        );
        let sol = FcfsBaseline::new().solve_wdp(&wdp).unwrap();
        assert_eq!(sol.winners().len(), 2);
        assert_eq!(sol.cost(), 2.0);
    }

    #[test]
    fn stops_enrolling_once_demand_is_met() {
        let wdp = Wdp::new(
            1,
            1,
            vec![
                qb(0, 1.0, 1, 1, 1),
                qb(1, 1.0, 1, 1, 1),
                qb(2, 1.0, 1, 1, 1),
            ],
        );
        let sol = FcfsBaseline::new().solve_wdp(&wdp).unwrap();
        assert_eq!(sol.winners().len(), 1, "coverage completed after the first");
    }
}

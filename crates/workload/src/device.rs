//! Heterogeneous device-population generator.
//!
//! The paper grounds its parameter ranges in measurements from \[4\], \[6\] but
//! draws them i.i.d. uniform. Real client fleets are *clustered*: flagship
//! phones compute fast and sit on Wi-Fi; budget phones are slow on both
//! axes; their asking prices correlate with their costs. This module
//! provides that richer population — the "closest synthetic equivalent" of
//! real-world device traces — while staying inside the paper's parameter
//! envelope, so the auction sees realistically correlated bids.

use fl_auction::{AuctionError, Bid, ClientProfile, Instance, Round, Window};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::paper::WorkloadSpec;
use crate::sample::{distinct_sorted, uniform};

/// A device class with its own parameter envelope.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceClass {
    /// Human-readable label (appears in experiment logs).
    pub name: &'static str,
    /// Population weight (relative; normalised over the mix).
    pub weight: f64,
    /// Compute-time range `t^cmp`.
    pub compute_time: (f64, f64),
    /// Communication-time range `t^com`.
    pub comm_time: (f64, f64),
    /// Local-accuracy range: capable devices afford smaller θ.
    pub accuracy: (f64, f64),
    /// Multiplier on the base price range — devices with higher real costs
    /// ask for more.
    pub price_factor: f64,
    /// Availability: expected fraction of the window a device can actually
    /// serve (battery-rich devices offer more rounds).
    pub stamina: f64,
}

/// A weighted mix of device classes.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceMix {
    classes: Vec<DeviceClass>,
}

impl DeviceMix {
    /// A three-tier smartphone fleet: flagship / mid-range / budget, with
    /// parameters spanning the same envelope as the paper's uniform draws.
    pub fn smartphone_fleet() -> Self {
        DeviceMix {
            classes: vec![
                DeviceClass {
                    name: "flagship",
                    weight: 0.2,
                    compute_time: (5.0, 6.5),
                    comm_time: (10.0, 11.5),
                    accuracy: (0.3, 0.5),
                    price_factor: 1.4,
                    stamina: 0.9,
                },
                DeviceClass {
                    name: "midrange",
                    weight: 0.5,
                    compute_time: (6.5, 8.5),
                    comm_time: (11.0, 13.5),
                    accuracy: (0.4, 0.7),
                    price_factor: 1.0,
                    stamina: 0.6,
                },
                DeviceClass {
                    name: "budget",
                    weight: 0.3,
                    compute_time: (8.5, 10.0),
                    comm_time: (13.0, 15.0),
                    accuracy: (0.6, 0.8),
                    price_factor: 0.7,
                    stamina: 0.4,
                },
            ],
        }
    }

    /// Builds a mix from explicit classes.
    ///
    /// # Errors
    ///
    /// Returns [`AuctionError::InvalidInstance`] if the mix is empty or any
    /// weight is non-positive.
    pub fn new(classes: Vec<DeviceClass>) -> Result<Self, AuctionError> {
        if classes.is_empty() {
            return Err(AuctionError::InvalidInstance(
                "device mix must not be empty".into(),
            ));
        }
        if classes
            .iter()
            .any(|c| c.weight.is_nan() || c.weight <= 0.0 || !c.weight.is_finite())
        {
            return Err(AuctionError::InvalidInstance(
                "device class weights must be positive and finite".into(),
            ));
        }
        Ok(DeviceMix { classes })
    }

    /// The classes in this mix.
    pub fn classes(&self) -> &[DeviceClass] {
        &self.classes
    }

    /// Generates an instance like [`WorkloadSpec::generate`], but with each
    /// client drawn from a device class instead of the global uniform
    /// ranges. Returns the instance and each client's class index.
    ///
    /// # Errors
    ///
    /// Same validity conditions as [`WorkloadSpec::generate`].
    pub fn generate(
        &self,
        spec: &WorkloadSpec,
        seed: u64,
    ) -> Result<(Instance, Vec<usize>), AuctionError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = spec.config.max_rounds();
        let j = spec.bids_per_client;
        if 2 * j > t {
            return Err(AuctionError::InvalidInstance(format!(
                "2J = {} window endpoints cannot be distinct within T = {t}",
                2 * j
            )));
        }
        let total_weight: f64 = self.classes.iter().map(|c| c.weight).sum();
        let mut instance = Instance::new(spec.config.clone());
        let mut assignment = Vec::with_capacity(spec.clients);
        for _ in 0..spec.clients {
            let class_idx = self.draw_class(&mut rng, total_weight);
            let class = &self.classes[class_idx];
            assignment.push(class_idx);
            let profile = ClientProfile::new(
                uniform(&mut rng, class.compute_time.0, class.compute_time.1),
                uniform(&mut rng, class.comm_time.0, class.comm_time.1),
            )?;
            let client = instance.add_client(profile);
            let marks = distinct_sorted(&mut rng, 2 * j as usize, t);
            for m in 0..j as usize {
                let a = marks[2 * m];
                let d = marks[2 * m + 1];
                let span = d - a; // paper: c ∈ [1, d − a]
                let expected = ((f64::from(span)) * class.stamina).round().max(1.0) as u32;
                let rounds = expected.min(span.max(1));
                let base_price = uniform(&mut rng, spec.price.0, spec.price.1);
                let bid = Bid::new(
                    base_price * class.price_factor,
                    uniform(&mut rng, class.accuracy.0, class.accuracy.1),
                    Window::new(Round(a), Round(d)),
                    rounds,
                )?;
                instance.add_bid(client, bid)?;
            }
        }
        Ok((instance, assignment))
    }

    fn draw_class(&self, rng: &mut StdRng, total_weight: f64) -> usize {
        let mut x = rng.random_range(0.0..total_weight);
        for (i, c) in self.classes.iter().enumerate() {
            if x < c.weight {
                return i;
            }
            x -= c.weight;
        }
        self.classes.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> WorkloadSpec {
        WorkloadSpec::paper_default()
            .with_clients(60)
            .with_bids_per_client(3)
    }

    #[test]
    fn fleet_generation_shape_and_determinism() {
        let mix = DeviceMix::smartphone_fleet();
        let (a, classes_a) = mix.generate(&spec(), 4).unwrap();
        let (b, classes_b) = mix.generate(&spec(), 4).unwrap();
        assert_eq!(a.num_clients(), 60);
        assert_eq!(a.num_bids(), 180);
        assert_eq!(classes_a, classes_b);
        assert_eq!(a.num_bids(), b.num_bids());
    }

    #[test]
    fn class_parameters_are_respected() {
        let mix = DeviceMix::smartphone_fleet();
        let (inst, classes) = mix.generate(&spec(), 5).unwrap();
        for (ci, &class_idx) in classes.iter().enumerate() {
            let class = &mix.classes()[class_idx];
            let p = &inst.clients()[ci];
            assert!(p.compute_time() >= class.compute_time.0 - 1e-9);
            assert!(p.compute_time() <= class.compute_time.1 + 1e-9);
            for b in inst.bids_of(fl_auction::ClientId(ci as u32)) {
                assert!(b.accuracy() >= class.accuracy.0 - 1e-9);
                assert!(b.accuracy() <= class.accuracy.1 + 1e-9);
            }
        }
    }

    #[test]
    fn all_classes_appear_in_a_large_population() {
        let mix = DeviceMix::smartphone_fleet();
        let (_, classes) = mix.generate(&spec().with_clients(500), 6).unwrap();
        for idx in 0..mix.classes().len() {
            assert!(classes.contains(&idx), "class {idx} never drawn");
        }
    }

    #[test]
    fn flagship_bids_cost_more_than_budget_on_average() {
        let mix = DeviceMix::smartphone_fleet();
        let (inst, classes) = mix.generate(&spec().with_clients(400), 7).unwrap();
        let avg = |target: usize| -> f64 {
            let mut sum = 0.0;
            let mut n = 0usize;
            for (ci, &cl) in classes.iter().enumerate() {
                if cl == target {
                    for b in inst.bids_of(fl_auction::ClientId(ci as u32)) {
                        sum += b.price();
                        n += 1;
                    }
                }
            }
            sum / n as f64
        };
        assert!(
            avg(0) > avg(2),
            "flagships must ask more than budget phones"
        );
    }

    #[test]
    fn empty_mix_is_rejected() {
        assert!(DeviceMix::new(vec![]).is_err());
        let mut bad = DeviceMix::smartphone_fleet().classes().to_vec();
        bad[0].weight = 0.0;
        assert!(DeviceMix::new(bad).is_err());
    }
}

//! Named pathological instances for stress-testing mechanisms.
//!
//! Random workloads rarely hit the corners where auction mechanisms
//! misbehave. These constructors build the corners on purpose; they are
//! used across the workspace's tests and are exported so downstream users
//! can regression-test their own solver implementations against them.

use fl_auction::{AuctionConfig, AuctionError, Bid, ClientProfile, Instance, Round, Window};

fn base_config(t: u32, k: u32) -> AuctionConfig {
    AuctionConfig::builder()
        .max_rounds(t)
        .clients_per_round(k)
        .round_time_limit(1_000.0)
        .build()
        .expect("static stress config is valid")
}

/// A monopolist round: `fringe` cheap clients cover rounds `1..T`, but
/// only one (expensive) client can serve round `T`. Exercises critical
/// payments with no competition and VCG's unbounded externality.
///
/// # Errors
///
/// Propagates construction errors (none for valid arguments).
pub fn monopolist_round(fringe: u32, t: u32) -> Result<Instance, AuctionError> {
    assert!(t >= 2, "needs at least two rounds");
    let mut inst = Instance::new(base_config(t, 1));
    for i in 0..fringe {
        let c = inst.add_client(ClientProfile::new(1.0, 1.0)?);
        inst.add_bid(
            c,
            Bid::new(
                1.0 + f64::from(i % 3),
                0.5,
                Window::new(Round(1), Round(t - 1)),
                t - 1,
            )?,
        )?;
    }
    let monopolist = inst.add_client(ClientProfile::new(1.0, 1.0)?);
    inst.add_bid(
        monopolist,
        Bid::new(50.0, 0.5, Window::new(Round(t), Round(t)), 1)?,
    )?;
    Ok(inst)
}

/// A price cliff: half the clients ask `lo`, the other half `hi ≫ lo`,
/// with identical windows. The mechanism should never touch the expensive
/// half while the cheap half suffices. Exercises tie-breaking and the
/// greedy's ordering.
///
/// # Errors
///
/// Propagates construction errors.
pub fn price_cliff(
    per_side: u32,
    t: u32,
    k: u32,
    lo: f64,
    hi: f64,
) -> Result<Instance, AuctionError> {
    let mut inst = Instance::new(base_config(t, k));
    for i in 0..2 * per_side {
        let price = if i < per_side { lo } else { hi };
        let c = inst.add_client(ClientProfile::new(1.0, 1.0)?);
        inst.add_bid(c, Bid::new(price, 0.5, Window::new(Round(1), Round(t)), t)?)?;
    }
    Ok(inst)
}

/// All bids identical (price, window, rounds, accuracy): any deterministic
/// mechanism must still produce a feasible, verifiable outcome, and its
/// tie-breaking must be stable. Exercises determinism.
///
/// # Errors
///
/// Propagates construction errors.
pub fn clones(n: u32, t: u32, k: u32) -> Result<Instance, AuctionError> {
    let mut inst = Instance::new(base_config(t, k));
    for _ in 0..n {
        let c = inst.add_client(ClientProfile::new(2.0, 3.0)?);
        inst.add_bid(c, Bid::new(10.0, 0.5, Window::new(Round(1), Round(t)), t)?)?;
    }
    Ok(inst)
}

/// A staircase of disjoint single-round windows: client `i` can only serve
/// round `i + 1`. Coverage requires accepting *everyone*; any skipped
/// client makes the job infeasible. Exercises feasibility-edge behaviour.
///
/// # Errors
///
/// Propagates construction errors.
pub fn staircase(t: u32, k: u32) -> Result<Instance, AuctionError> {
    let mut inst = Instance::new(base_config(t, k));
    for round in 1..=t {
        for dup in 0..k {
            let c = inst.add_client(ClientProfile::new(1.0, 1.0)?);
            inst.add_bid(
                c,
                Bid::new(
                    5.0 + f64::from(round + dup),
                    0.5,
                    Window::new(Round(round), Round(round)),
                    1,
                )?,
            )?;
        }
    }
    Ok(inst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fl_auction::{run_auction, verify, AuctionError, ClientId};

    #[test]
    fn monopolist_wins_when_its_round_is_demanded() {
        use fl_auction::{qualify, AWinner, WdpSolver};
        let inst = monopolist_round(6, 5).unwrap();
        // The full auction dodges the monopolist by shrinking the horizon…
        let outcome = run_auction(&inst).unwrap();
        assert!(verify::outcome_violations(&inst, &outcome).is_empty());
        assert!(
            outcome.horizon() < 5,
            "A_FL avoids the monopolist's round entirely"
        );
        // …but at the full horizon, round 5 forces it in, at whatever price.
        let wdp = qualify(&inst, 5);
        let sol = AWinner::new().solve_wdp(&wdp).unwrap();
        let monopolist = ClientId(6);
        let w = sol
            .winners()
            .iter()
            .find(|w| w.bid_ref.client == monopolist)
            .expect("round 5 is only coverable by the monopolist");
        assert_eq!(w.payment, w.price, "no competitor ⇒ pay-bid fallback");
    }

    #[test]
    fn price_cliff_never_buys_the_expensive_side() {
        let inst = price_cliff(5, 4, 3, 2.0, 200.0).unwrap();
        let outcome = run_auction(&inst).unwrap();
        assert!(verify::outcome_violations(&inst, &outcome).is_empty());
        for w in outcome.solution().winners() {
            assert!(w.price < 100.0, "bought from the expensive side: {w:?}");
        }
        assert_eq!(outcome.social_cost(), 6.0, "3 cheap clients × 2.0");
    }

    #[test]
    fn clones_are_handled_deterministically() {
        let inst = clones(8, 3, 2).unwrap();
        let a = run_auction(&inst).unwrap();
        let b = run_auction(&inst).unwrap();
        assert_eq!(a, b, "identical bids must tie-break identically");
        assert!(verify::outcome_violations(&inst, &a).is_empty());
        assert_eq!(a.solution().winners().len(), 2);
    }

    #[test]
    fn staircase_takes_everyone_it_needs() {
        let inst = staircase(5, 2).unwrap();
        let outcome = run_auction(&inst).unwrap();
        assert!(verify::outcome_violations(&inst, &outcome).is_empty());
        assert_eq!(
            outcome.horizon(),
            2,
            "A_FL shrinks the horizon to the cheapest feasible"
        );
        // At the chosen horizon every per-round specialist pair is needed.
        assert_eq!(outcome.solution().winners().len() as u32, 2 * 2);
    }

    #[test]
    fn staircase_is_tight_at_full_horizon() {
        // At fixed T̂_g = T, all K·T specialists win; removing any client
        // breaks coverage — exercised via the qualified WDP.
        use fl_auction::{qualify, AWinner, WdpSolver};
        let inst = staircase(4, 1).unwrap();
        let wdp = qualify(&inst, 4);
        let sol = AWinner::new().solve_wdp(&wdp).unwrap();
        assert_eq!(sol.winners().len(), 4);
    }

    #[test]
    fn degenerate_parameters_are_rejected_or_handled() {
        assert!(matches!(
            run_auction(&price_cliff(0, 3, 1, 1.0, 2.0).unwrap()),
            Err(AuctionError::InvalidInstance(_)) | Err(AuctionError::Infeasible)
        ));
    }
}

//! Small sampling helpers shared by the generators.

use rand::{Rng, RngExt};

/// Draws `n` *distinct* integers from `1..=max` and returns them sorted
/// ascending — the paper's recipe for availability windows ("select 2J
/// non-repeated random numbers within the range [1, T], and sort them").
///
/// Uses a partial Fisher–Yates shuffle, `O(max)` memory, exact uniformity
/// over subsets.
///
/// # Panics
///
/// Panics if `n > max` (not enough distinct values exist).
pub fn distinct_sorted(rng: &mut impl Rng, n: usize, max: u32) -> Vec<u32> {
    assert!(
        n as u32 <= max,
        "cannot draw {n} distinct values from 1..={max}"
    );
    let mut pool: Vec<u32> = (1..=max).collect();
    for i in 0..n {
        let j = rng.random_range(i..pool.len());
        pool.swap(i, j);
    }
    let mut out = pool[..n].to_vec();
    out.sort_unstable();
    out
}

/// Uniform `f64` in `[lo, hi]` (degenerate ranges return `lo`).
///
/// # Panics
///
/// Panics if `hi < lo` or either bound is not finite.
pub fn uniform(rng: &mut impl Rng, lo: f64, hi: f64) -> f64 {
    assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");
    assert!(hi >= lo, "empty range [{lo}, {hi}]");
    if hi == lo {
        lo
    } else {
        rng.random_range(lo..=hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn distinct_sorted_is_distinct_and_sorted() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let v = distinct_sorted(&mut rng, 10, 50);
            assert_eq!(v.len(), 10);
            assert!(v.windows(2).all(|w| w[0] < w[1]), "{v:?}");
            assert!(v.iter().all(|&x| (1..=50).contains(&x)));
        }
    }

    #[test]
    fn distinct_sorted_full_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let v = distinct_sorted(&mut rng, 5, 5);
        assert_eq!(v, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn oversampling_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = distinct_sorted(&mut rng, 6, 5);
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..100 {
            let x = uniform(&mut rng, 10.0, 50.0);
            assert!((10.0..=50.0).contains(&x));
        }
        assert_eq!(uniform(&mut rng, 4.0, 4.0), 4.0);
    }

    #[test]
    fn seeded_draws_are_reproducible() {
        let a: Vec<u32> = {
            let mut rng = StdRng::seed_from_u64(42);
            distinct_sorted(&mut rng, 8, 30)
        };
        let b: Vec<u32> = {
            let mut rng = StdRng::seed_from_u64(42);
            distinct_sorted(&mut rng, 8, 30)
        };
        assert_eq!(a, b);
    }
}

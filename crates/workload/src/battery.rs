//! Battery-grounded bid generation.
//!
//! §IV-B states that a bid's round count `c_ij` is "limited by its battery
//! level, and calculated based on `θ_ij`". The plain generator
//! ([`WorkloadSpec::generate`]) draws `c_ij` uniformly as §VII-A describes;
//! this generator derives it physically instead: each client gets a
//! battery, each bid's per-round energy follows from its accuracy and the
//! client's profile, and the bid offers exactly as many rounds as the
//! battery can fund (clipped to the window).

use fl_auction::{AuctionError, Bid, ClientProfile, Instance, Round, Window};
use fl_sim::{Battery, EnergyModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::paper::{CostModel, Range, WorkloadSpec};
use crate::sample::{distinct_sorted, uniform};

/// A workload whose participation budgets come from device batteries.
#[derive(Debug, Clone, PartialEq)]
pub struct BatteryWorkload {
    /// The base parameters (client count, windows, prices, accuracies).
    pub spec: WorkloadSpec,
    /// Time-to-energy conversion.
    pub energy: EnergyModel,
    /// Per-client battery capacity range.
    pub capacity: Range,
}

impl BatteryWorkload {
    /// Battery-grounded variant of the paper defaults: smartphone energy
    /// model and capacities that fund roughly 1–10 rounds.
    pub fn paper_default() -> Self {
        BatteryWorkload {
            spec: WorkloadSpec::paper_default(),
            energy: EnergyModel::smartphone(),
            capacity: (80.0, 600.0),
        }
    }

    /// Generates an instance; returns it together with each client's
    /// (full) battery so simulations can drain them.
    ///
    /// Bids whose battery cannot fund even one round, or whose funded
    /// rounds exceed nothing of the window, are not submitted; clients may
    /// therefore end up with fewer than `J` bids (or none).
    ///
    /// # Errors
    ///
    /// Same validity conditions as [`WorkloadSpec::generate`], plus a
    /// positive capacity range.
    pub fn generate(&self, seed: u64) -> Result<(Instance, Vec<Battery>), AuctionError> {
        self.spec.validate()?;
        if !(self.capacity.0.is_finite()
            && self.capacity.1.is_finite()
            && self.capacity.1 >= self.capacity.0
            && self.capacity.0 > 0.0)
        {
            return Err(AuctionError::InvalidInstance(format!(
                "battery capacity range [{}, {}] is not a positive interval",
                self.capacity.0, self.capacity.1
            )));
        }
        let spec = &self.spec;
        let mut rng = StdRng::seed_from_u64(seed);
        let t = spec.config.max_rounds();
        let j = spec.bids_per_client;
        let mut instance = Instance::new(spec.config.clone());
        let mut batteries = Vec::with_capacity(spec.clients);
        for _ in 0..spec.clients {
            let profile = ClientProfile::new(
                uniform(&mut rng, spec.compute_time.0, spec.compute_time.1),
                uniform(&mut rng, spec.comm_time.0, spec.comm_time.1),
            )?;
            let client = instance.add_client(profile);
            let battery = Battery::new(uniform(&mut rng, self.capacity.0, self.capacity.1));
            batteries.push(battery);
            let marks = distinct_sorted(&mut rng, 2 * j as usize, t);
            for m in 0..j as usize {
                let a = marks[2 * m];
                let d = marks[2 * m + 1];
                let accuracy = uniform(&mut rng, spec.accuracy.0, spec.accuracy.1);
                let per_round =
                    self.energy
                        .round_energy(spec.config.local_model(), &profile, accuracy);
                // The physical derivation of c_ij: what the battery funds,
                // clipped to the window (§IV-B).
                let affordable = battery.affordable_rounds(per_round);
                let window_len = d - a + 1;
                let rounds = affordable.min(window_len);
                if rounds == 0 {
                    continue;
                }
                let price = match spec.cost_model {
                    CostModel::UniformTotal => uniform(&mut rng, spec.price.0, spec.price.1),
                    CostModel::TimeProportional { unit } => {
                        let t_ij = spec.config.local_model().local_iterations(accuracy)
                            * profile.compute_time()
                            + profile.comm_time();
                        uniform(&mut rng, unit.0, unit.1) * t_ij
                    }
                };
                let bid = Bid::new(price, accuracy, Window::new(Round(a), Round(d)), rounds)?;
                instance.add_bid(client, bid)?;
            }
        }
        Ok((instance, batteries))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fl_auction::ClientId;

    fn workload() -> BatteryWorkload {
        let mut w = BatteryWorkload::paper_default();
        w.spec = w.spec.with_clients(60).with_bids_per_client(3);
        w
    }

    #[test]
    fn rounds_are_battery_funded() {
        let w = workload();
        let (inst, batteries) = w.generate(5).unwrap();
        assert_eq!(batteries.len(), inst.num_clients());
        for (r, bid) in inst.iter_bids() {
            let profile = &inst.clients()[r.client.index()];
            let per_round =
                w.energy
                    .round_energy(inst.config().local_model(), profile, bid.accuracy());
            let affordable = batteries[r.client.index()].affordable_rounds(per_round);
            assert!(
                bid.rounds() <= affordable,
                "{r} offers {} rounds but can only afford {affordable}",
                bid.rounds()
            );
            assert!(bid.rounds() <= bid.window().len());
        }
    }

    #[test]
    fn richer_batteries_offer_weakly_more_rounds() {
        let mut poor = workload();
        poor.capacity = (40.0, 60.0);
        let mut rich = workload();
        rich.capacity = (2_000.0, 3_000.0);
        let (pi, _) = poor.generate(9).unwrap();
        let (ri, _) = rich.generate(9).unwrap();
        let mean_rounds = |inst: &Instance| -> f64 {
            let (sum, n) = inst.iter_bids().fold((0u64, 0u64), |(s, n), (_, b)| {
                (s + u64::from(b.rounds()), n + 1)
            });
            sum as f64 / n.max(1) as f64
        };
        assert!(
            mean_rounds(&ri) > mean_rounds(&pi),
            "rich fleet must offer more rounds: {} vs {}",
            mean_rounds(&ri),
            mean_rounds(&pi)
        );
    }

    #[test]
    fn starved_batteries_suppress_bids() {
        let mut w = workload();
        w.capacity = (1.0, 2.0); // cannot fund a single round
        let (inst, _) = w.generate(2).unwrap();
        assert_eq!(inst.num_bids(), 0);
        // Clients still registered.
        assert_eq!(inst.num_clients(), 60);
        assert!(inst.bids_of(ClientId(0)).is_empty());
    }

    #[test]
    fn invalid_capacity_rejected() {
        let mut w = workload();
        w.capacity = (0.0, 10.0);
        assert!(w.generate(0).is_err());
        w.capacity = (10.0, 5.0);
        assert!(w.generate(0).is_err());
    }

    #[test]
    fn generated_instances_are_auctionable() {
        let mut w = workload();
        w.spec = w.spec.with_clients(200).with_config(
            fl_auction::AuctionConfig::builder()
                .max_rounds(16)
                .clients_per_round(3)
                .round_time_limit(60.0)
                .build()
                .unwrap(),
        );
        let (inst, _) = w.generate(7).unwrap();
        let outcome = fl_auction::run_auction(&inst).expect("battery workload is feasible");
        assert!(fl_auction::verify::outcome_violations(&inst, &outcome).is_empty());
    }
}

//! Diurnal availability patterns.
//!
//! The paper's window construction (2J sorted uniform marks) spreads
//! availability evenly over the horizon. Real mobile fleets are anything
//! but uniform: phones charge (and train) at night, office machines are
//! free in the evening. When global iterations map to wall-clock periods,
//! availability *clusters* — thinning supply in unpopular rounds, which is
//! precisely the regime where FCFS collapses and price-aware selection
//! earns its keep. This generator draws each client's availability around
//! a peak period.

use fl_auction::{AuctionError, Bid, ClientProfile, Instance, Round, Window};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::paper::{CostModel, WorkloadSpec};
use crate::sample::uniform;

/// One activity peak in the population.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActivityPeak {
    /// Peak position as a fraction of the horizon (0 = round 1, 1 = T).
    pub center: f64,
    /// Population share drawn to this peak (relative weight).
    pub weight: f64,
    /// Window-centre jitter around the peak, as a fraction of the horizon.
    pub spread: f64,
}

/// A workload whose availability windows cluster around activity peaks.
#[derive(Debug, Clone, PartialEq)]
pub struct DiurnalWorkload {
    /// Base parameters (client count, prices, accuracies, config).
    pub spec: WorkloadSpec,
    /// The population's activity peaks.
    pub peaks: Vec<ActivityPeak>,
    /// Window length range, as fractions of the horizon.
    pub window_len: (f64, f64),
}

impl DiurnalWorkload {
    /// A two-peak "overnight chargers + lunch-break users" fleet.
    pub fn two_peak(spec: WorkloadSpec) -> Self {
        DiurnalWorkload {
            spec,
            peaks: vec![
                ActivityPeak {
                    center: 0.15,
                    weight: 0.65,
                    spread: 0.08,
                },
                ActivityPeak {
                    center: 0.6,
                    weight: 0.35,
                    spread: 0.05,
                },
            ],
            window_len: (0.1, 0.3),
        }
    }

    /// Generates an instance: each client picks a peak (by weight), draws a
    /// window centred near it, and bids once per window (the paper's `J`
    /// is reinterpreted as windows per client, possibly overlapping the
    /// same peak).
    ///
    /// # Errors
    ///
    /// [`AuctionError::InvalidInstance`] on an empty/invalid peak list or
    /// degenerate window-length range.
    pub fn generate(&self, seed: u64) -> Result<Instance, AuctionError> {
        if self.peaks.is_empty() {
            return Err(AuctionError::InvalidInstance("no activity peaks".into()));
        }
        if self.peaks.iter().any(|p| {
            !(0.0..=1.0).contains(&p.center)
                || p.weight.is_nan()
                || p.weight <= 0.0
                || p.spread.is_nan()
                || p.spread < 0.0
        }) {
            return Err(AuctionError::InvalidInstance(
                "peaks need center ∈ [0,1], weight > 0, spread ≥ 0".into(),
            ));
        }
        if !(self.window_len.0 > 0.0
            && self.window_len.1 >= self.window_len.0
            && self.window_len.1 <= 1.0)
        {
            return Err(AuctionError::InvalidInstance(
                "window length fractions must satisfy 0 < lo ≤ hi ≤ 1".into(),
            ));
        }
        let spec = &self.spec;
        let t = spec.config.max_rounds();
        let mut rng = StdRng::seed_from_u64(seed);
        let total_weight: f64 = self.peaks.iter().map(|p| p.weight).sum();
        let mut instance = Instance::new(spec.config.clone());
        for _ in 0..spec.clients {
            let profile = ClientProfile::new(
                uniform(&mut rng, spec.compute_time.0, spec.compute_time.1),
                uniform(&mut rng, spec.comm_time.0, spec.comm_time.1),
            )?;
            let client = instance.add_client(profile);
            let peak = self.draw_peak(&mut rng, total_weight);
            for _ in 0..spec.bids_per_client {
                // Window centre jittered around the peak; length from the
                // configured fraction range; both clipped into [1, T].
                let center_frac =
                    (peak.center + uniform(&mut rng, -peak.spread, peak.spread)).clamp(0.0, 1.0);
                let len_frac = uniform(&mut rng, self.window_len.0, self.window_len.1);
                let len = ((len_frac * f64::from(t)).round() as u32).clamp(1, t);
                let center = 1 + (center_frac * f64::from(t - 1)).round() as u32;
                let half = len / 2;
                let a = center.saturating_sub(half).max(1);
                let d = (a + len - 1).min(t);
                let a = d.saturating_sub(len - 1).max(1);
                let window = Window::new(Round(a), Round(d));
                let c = rng.random_range(1..=window.len());
                let accuracy = uniform(&mut rng, spec.accuracy.0, spec.accuracy.1);
                let price = match spec.cost_model {
                    CostModel::UniformTotal => uniform(&mut rng, spec.price.0, spec.price.1),
                    CostModel::TimeProportional { unit } => {
                        let t_ij = spec.config.local_model().local_iterations(accuracy)
                            * profile.compute_time()
                            + profile.comm_time();
                        uniform(&mut rng, unit.0, unit.1) * t_ij
                    }
                };
                instance.add_bid(client, Bid::new(price, accuracy, window, c)?)?;
            }
        }
        Ok(instance)
    }

    fn draw_peak(&self, rng: &mut StdRng, total_weight: f64) -> ActivityPeak {
        let mut x = rng.random_range(0.0..total_weight);
        for p in &self.peaks {
            if x < p.weight {
                return *p;
            }
            x -= p.weight;
        }
        *self.peaks.last().expect("peaks is non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload() -> DiurnalWorkload {
        DiurnalWorkload::two_peak(
            WorkloadSpec::paper_default()
                .with_clients(300)
                .with_bids_per_client(2),
        )
    }

    #[test]
    fn windows_cluster_around_peaks() {
        let w = workload();
        let inst = w.generate(3).unwrap();
        let t = f64::from(inst.config().max_rounds());
        // Count window centres near each peak vs in the dead zone between.
        let mut near_peaks = 0usize;
        let mut dead_zone = 0usize;
        for (_, bid) in inst.iter_bids() {
            let center =
                (f64::from(bid.window().start().0) + f64::from(bid.window().end().0)) / 2.0 / t;
            if (center - 0.15).abs() < 0.2 || (center - 0.6).abs() < 0.15 {
                near_peaks += 1;
            } else if (0.8..=1.0).contains(&center) {
                dead_zone += 1;
            }
        }
        assert!(
            near_peaks > 10 * dead_zone.max(1),
            "windows should cluster: {near_peaks} near peaks vs {dead_zone} in the dead zone"
        );
    }

    #[test]
    fn generation_is_deterministic_and_valid() {
        let w = workload();
        let a = w.generate(7).unwrap();
        let b = w.generate(7).unwrap();
        assert_eq!(a.num_bids(), b.num_bids());
        for (r, bid) in a.iter_bids() {
            assert!(bid.window().start().0 >= 1);
            assert!(bid.window().end().0 <= a.config().max_rounds());
            assert!(bid.rounds() <= bid.window().len());
            let _ = r;
        }
    }

    #[test]
    fn invalid_configurations_rejected() {
        let mut w = workload();
        w.peaks.clear();
        assert!(w.generate(0).is_err());
        let mut w = workload();
        w.peaks[0].center = 1.5;
        assert!(w.generate(0).is_err());
        let mut w = workload();
        w.window_len = (0.0, 0.5);
        assert!(w.generate(0).is_err());
    }

    #[test]
    fn clustered_supply_starves_off_peak_rounds() {
        // With demand in every round but supply clustered, the full
        // auction is usually infeasible at large horizons — the auction
        // must settle on a horizon the fleet can actually staff.
        let w = workload();
        let inst = w.generate(11).unwrap();
        match fl_auction::run_auction(&inst) {
            Ok(outcome) => {
                assert!(fl_auction::verify::outcome_violations(&inst, &outcome).is_empty());
                // Feasible horizons are the early, well-staffed ones.
                assert!(outcome.horizon() <= inst.config().max_rounds());
            }
            Err(fl_auction::AuctionError::Infeasible) => {
                // Acceptable: the dead zone cannot be staffed at any
                // admissible horizon ≥ T_0.
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
}

//! Open-loop arrival processes for service-layer load generation.
//!
//! An *open-loop* load generator fires sessions at predetermined times
//! regardless of how fast the server answers — the only arrival model
//! that actually exposes queueing collapse (a closed loop self-throttles
//! and hides it). This module turns a seed into a deterministic arrival
//! schedule: the `loadgen` bin replays the same offered load every run,
//! so latency trajectories are comparable across builds.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// The inter-arrival law of an open-loop session stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Poisson arrivals: exponential inter-arrival gaps with the given
    /// mean rate (sessions per second).
    Poisson {
        /// Mean arrival rate λ, sessions per second. Must be positive.
        rate_per_sec: f64,
    },
    /// Evenly spaced arrivals (a paced benchmark): one session every
    /// `1/rate_per_sec` seconds, no randomness.
    Uniform {
        /// Arrival rate, sessions per second. Must be positive.
        rate_per_sec: f64,
    },
    /// Bursty arrivals: batches of `burst` back-to-back sessions, the
    /// batches themselves Poisson at `rate_per_sec / burst` — same mean
    /// load as `Poisson`, far harsher tail.
    Bursty {
        /// Mean arrival rate λ, sessions per second. Must be positive.
        rate_per_sec: f64,
        /// Sessions per burst (≥ 1).
        burst: u32,
    },
}

impl ArrivalProcess {
    /// The mean offered load in sessions per second.
    pub fn rate_per_sec(self) -> f64 {
        match self {
            ArrivalProcess::Poisson { rate_per_sec }
            | ArrivalProcess::Uniform { rate_per_sec }
            | ArrivalProcess::Bursty { rate_per_sec, .. } => rate_per_sec,
        }
    }

    /// Generates the arrival offsets (from test start) of `n` sessions,
    /// non-decreasing, fully determined by `(self, seed)`.
    ///
    /// # Panics
    ///
    /// Panics if the configured rate is not strictly positive or a burst
    /// size is zero.
    pub fn schedule(self, seed: u64, n: usize) -> Vec<Duration> {
        let rate = self.rate_per_sec();
        assert!(
            rate.is_finite() && rate > 0.0,
            "arrival rate must be positive, got {rate}"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::with_capacity(n);
        let mut clock = 0.0f64;
        match self {
            ArrivalProcess::Uniform { .. } => {
                let gap = 1.0 / rate;
                for i in 0..n {
                    out.push(Duration::from_secs_f64(gap * i as f64));
                }
            }
            ArrivalProcess::Poisson { .. } => {
                for _ in 0..n {
                    clock += exponential_gap(&mut rng, rate);
                    out.push(Duration::from_secs_f64(clock));
                }
            }
            ArrivalProcess::Bursty { burst, .. } => {
                assert!(burst >= 1, "burst size must be at least 1");
                let batch_rate = rate / f64::from(burst);
                while out.len() < n {
                    clock += exponential_gap(&mut rng, batch_rate);
                    for _ in 0..burst {
                        if out.len() == n {
                            break;
                        }
                        out.push(Duration::from_secs_f64(clock));
                    }
                }
            }
        }
        out
    }
}

/// One exponential inter-arrival gap with mean `1/rate`, clamped away
/// from `ln(0)`.
fn exponential_gap(rng: &mut StdRng, rate: f64) -> f64 {
    let u = rng.next_f64().max(f64::MIN_POSITIVE);
    -u.ln() / rate
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_deterministic_per_seed() {
        let p = ArrivalProcess::Poisson { rate_per_sec: 50.0 };
        assert_eq!(p.schedule(7, 100), p.schedule(7, 100));
        assert_ne!(p.schedule(7, 100), p.schedule(8, 100));
    }

    #[test]
    fn offsets_are_non_decreasing() {
        for p in [
            ArrivalProcess::Poisson { rate_per_sec: 20.0 },
            ArrivalProcess::Uniform { rate_per_sec: 20.0 },
            ArrivalProcess::Bursty {
                rate_per_sec: 20.0,
                burst: 4,
            },
        ] {
            let xs = p.schedule(3, 200);
            assert_eq!(xs.len(), 200);
            assert!(xs.windows(2).all(|w| w[0] <= w[1]), "{p:?}");
        }
    }

    #[test]
    fn mean_rate_is_roughly_the_configured_rate() {
        let rate = 100.0;
        let n = 5_000;
        for p in [
            ArrivalProcess::Poisson { rate_per_sec: rate },
            ArrivalProcess::Bursty {
                rate_per_sec: rate,
                burst: 5,
            },
        ] {
            let xs = p.schedule(42, n);
            let span = xs.last().unwrap().as_secs_f64();
            let empirical = (n as f64 - 1.0) / span;
            assert!(
                (empirical / rate - 1.0).abs() < 0.15,
                "{p:?}: empirical rate {empirical:.1}/s vs configured {rate}/s"
            );
        }
    }

    #[test]
    fn uniform_is_exactly_paced() {
        let xs = ArrivalProcess::Uniform { rate_per_sec: 10.0 }.schedule(0, 5);
        assert_eq!(xs[0], Duration::ZERO);
        assert_eq!(xs[4], Duration::from_millis(400));
    }

    #[test]
    fn bursts_arrive_back_to_back() {
        let xs = ArrivalProcess::Bursty {
            rate_per_sec: 10.0,
            burst: 3,
        }
        .schedule(1, 9);
        for chunk in xs.chunks(3) {
            assert!(chunk.iter().all(|t| *t == chunk[0]));
        }
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_panics() {
        let _ = ArrivalProcess::Poisson { rate_per_sec: 0.0 }.schedule(0, 1);
    }
}

//! Seeded workload generators for the auction experiments.
//!
//! * [`WorkloadSpec`] reproduces the paper's §VII-A simulation setup
//!   verbatim (uniform parameter draws, disjoint windows from `2J` sorted
//!   distinct marks);
//! * [`DeviceMix`] generates *clustered* heterogeneous fleets — the
//!   synthetic stand-in for real device traces;
//! * [`sample`] holds the underlying sampling primitives.
//!
//! Everything is deterministic per `(spec, seed)`, so every figure in
//! `EXPERIMENTS.md` can be regenerated bit-for-bit.
//!
//! # Example
//!
//! ```
//! use fl_workload::WorkloadSpec;
//!
//! # fn main() -> Result<(), fl_auction::AuctionError> {
//! let spec = WorkloadSpec::paper_default().with_clients(100);
//! let instance = spec.generate(42)?;
//! assert_eq!(instance.num_clients(), 100);
//! assert_eq!(instance.num_bids(), 500); // J = 5 bids each
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrival;
mod battery;
mod device;
mod diurnal;
mod paper;
pub mod sample;
pub mod stress;

pub use arrival::ArrivalProcess;
pub use battery::BatteryWorkload;
pub use device::{DeviceClass, DeviceMix};
pub use diurnal::{ActivityPeak, DiurnalWorkload};
pub use paper::{CostModel, Range, WorkloadSpec};

//! The paper's simulation setup (§VII-A), parameterised and seeded.
//!
//! Defaults: `I = 1000` clients, `J = 5` bids each, `T = 50`, `K = 20`,
//! `t_cmp ∈ [5,10]`, `t_com ∈ [10,15]`, `θ ∈ [0.3,0.8]`,
//! `T_l(θ) = ⌊10(1−θ)⌋`, prices in `[10,50]`, `t_max = 60`. Each client's
//! `J` windows come from `2J` distinct sorted draws in `[1,T]` (adjacent
//! pairs), and `c_ij` is uniform in `[1, d_ij − a_ij]`.

use fl_auction::{AuctionConfig, AuctionError, Bid, ClientProfile, Instance, Round, Window};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::sample::{distinct_sorted, uniform};

/// A closed interval used for uniform parameter draws.
pub type Range = (f64, f64);

/// How a bid's claimed cost `b_ij` is synthesised.
///
/// §VII-A states costs are "uniformly distributed in the range of
/// `[10, 50]`" — that is [`CostModel::UniformTotal`]. However, the shape of
/// the paper's Fig. 7 (social cost dipping at `T̂_g ≈ 26` because
/// "computation cost … drops with the increase of `T̂_g`" and
/// "communication cost dominates" later) is only producible when claimed
/// costs *correlate with the bid's per-round computation and communication
/// time*; independent uniform costs make the cheapest horizon the smallest
/// one. [`CostModel::TimeProportional`] reconstructs that correlated model:
/// `b_ij = u · (T_l(θ_ij)·t_i^cmp + t_i^com)` with a uniform unit price
/// `u`. Both models are exercised by the Fig. 7 harness; see
/// `EXPERIMENTS.md`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CostModel {
    /// Literal §VII-A: `b_ij ~ U[price.0, price.1]`, independent of
    /// everything else.
    UniformTotal,
    /// Energy-proportional: `b_ij = u · t_ij` where `t_ij` is the bid's
    /// per-round wall clock and `u ~ U[unit.0, unit.1]`.
    TimeProportional {
        /// Range of the per-time-unit price `u`.
        unit: Range,
    },
}

/// Declarative description of a synthetic auction workload.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Number of clients `I`.
    pub clients: usize,
    /// Bids per client `J`.
    pub bids_per_client: u32,
    /// The announced auction configuration (`T`, `K`, `t_max`, model).
    pub config: AuctionConfig,
    /// Range of per-local-iteration compute times `t_i^cmp`.
    pub compute_time: Range,
    /// Range of per-round communication times `t_i^com`.
    pub comm_time: Range,
    /// Range of local accuracies `θ_ij`.
    pub accuracy: Range,
    /// Range of claimed costs `b_ij` (the meaning depends on the cost
    /// model: total cost for [`CostModel::UniformTotal`], ignored for
    /// [`CostModel::TimeProportional`]).
    pub price: Range,
    /// How claimed costs are synthesised.
    pub cost_model: CostModel,
}

impl WorkloadSpec {
    /// The paper's default evaluation setting.
    pub fn paper_default() -> Self {
        WorkloadSpec {
            clients: 1000,
            bids_per_client: 5,
            config: AuctionConfig::paper_default(),
            compute_time: (5.0, 10.0),
            comm_time: (10.0, 15.0),
            accuracy: (0.3, 0.8),
            price: (10.0, 50.0),
            cost_model: CostModel::UniformTotal,
        }
    }

    /// Returns a copy with a different client count (Fig. 5 / Fig. 8 sweeps).
    pub fn with_clients(mut self, clients: usize) -> Self {
        self.clients = clients;
        self
    }

    /// Returns a copy with a different bids-per-client count (Fig. 6 sweep).
    pub fn with_bids_per_client(mut self, j: u32) -> Self {
        self.bids_per_client = j;
        self
    }

    /// Returns a copy with a different auction configuration.
    pub fn with_config(mut self, config: AuctionConfig) -> Self {
        self.config = config;
        self
    }

    /// Returns a copy with a different cost model (see [`CostModel`]).
    pub fn with_cost_model(mut self, cost_model: CostModel) -> Self {
        self.cost_model = cost_model;
        self
    }

    /// Materialises one instance from a seed. The same `(spec, seed)` pair
    /// always yields the identical instance.
    ///
    /// # Errors
    ///
    /// Returns [`AuctionError::InvalidInstance`] if the spec is internally
    /// inconsistent (e.g. `2J > T`, so windows cannot be drawn, or an empty
    /// range is inverted).
    pub fn generate(&self, seed: u64) -> Result<Instance, AuctionError> {
        self.validate()?;
        let mut rng = StdRng::seed_from_u64(seed);
        let t = self.config.max_rounds();
        let j = self.bids_per_client;
        let mut instance = Instance::new(self.config.clone());
        for _ in 0..self.clients {
            let profile = ClientProfile::new(
                uniform(&mut rng, self.compute_time.0, self.compute_time.1),
                uniform(&mut rng, self.comm_time.0, self.comm_time.1),
            )?;
            let client = instance.add_client(profile);
            // 2J distinct sorted draws → J disjoint windows.
            let marks = distinct_sorted(&mut rng, 2 * j as usize, t);
            let t_cmp = instance.clients()[client.index()].compute_time();
            let t_com = instance.clients()[client.index()].comm_time();
            for m in 0..j as usize {
                let a = marks[2 * m];
                let d = marks[2 * m + 1];
                let rounds = rng_range_u32(&mut rng, 1, d - a);
                let accuracy = uniform(&mut rng, self.accuracy.0, self.accuracy.1);
                let price = match self.cost_model {
                    CostModel::UniformTotal => uniform(&mut rng, self.price.0, self.price.1),
                    CostModel::TimeProportional { unit } => {
                        let t_ij =
                            self.config.local_model().local_iterations(accuracy) * t_cmp + t_com;
                        uniform(&mut rng, unit.0, unit.1) * t_ij
                    }
                };
                let bid = Bid::new(price, accuracy, Window::new(Round(a), Round(d)), rounds)?;
                instance.add_bid(client, bid)?;
            }
        }
        Ok(instance)
    }

    pub(crate) fn validate(&self) -> Result<(), AuctionError> {
        if self.clients == 0 {
            return Err(AuctionError::InvalidInstance(
                "spec needs at least one client".into(),
            ));
        }
        if self.bids_per_client == 0 {
            return Err(AuctionError::InvalidInstance(
                "spec needs at least one bid per client".into(),
            ));
        }
        if 2 * self.bids_per_client > self.config.max_rounds() {
            return Err(AuctionError::InvalidInstance(format!(
                "2J = {} window endpoints cannot be distinct within T = {}",
                2 * self.bids_per_client,
                self.config.max_rounds()
            )));
        }
        for (name, (lo, hi)) in [
            ("compute_time", self.compute_time),
            ("comm_time", self.comm_time),
            ("accuracy", self.accuracy),
            ("price", self.price),
        ] {
            if !(lo.is_finite() && hi.is_finite() && lo <= hi) {
                return Err(AuctionError::InvalidInstance(format!(
                    "range {name} = [{lo}, {hi}] is not a valid interval"
                )));
            }
        }
        if self.accuracy.0 <= 0.0 || self.accuracy.1 >= 1.0 {
            return Err(AuctionError::InvalidInstance(
                "accuracy range must stay strictly inside (0, 1)".into(),
            ));
        }
        Ok(())
    }
}

fn rng_range_u32(rng: &mut StdRng, lo: u32, hi: u32) -> u32 {
    if hi <= lo {
        lo
    } else {
        rng.random_range(lo..=hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> WorkloadSpec {
        let mut s = WorkloadSpec::paper_default();
        s.clients = 40;
        s.bids_per_client = 3;
        s
    }

    #[test]
    fn generates_the_requested_shape() {
        let inst = small_spec().generate(1).unwrap();
        assert_eq!(inst.num_clients(), 40);
        assert_eq!(inst.num_bids(), 120);
    }

    #[test]
    fn windows_are_disjoint_and_ordered_per_client() {
        let inst = small_spec().generate(2).unwrap();
        for ci in 0..inst.num_clients() {
            let bids = inst.bids_of(fl_auction::ClientId(ci as u32));
            for pair in bids.windows(2) {
                assert!(
                    pair[0].window().end() < pair[1].window().start(),
                    "windows must not overlap: {} then {}",
                    pair[0].window(),
                    pair[1].window()
                );
            }
        }
    }

    #[test]
    fn parameters_respect_paper_ranges() {
        let inst = small_spec().generate(3).unwrap();
        for p in inst.clients() {
            assert!((5.0..=10.0).contains(&p.compute_time()));
            assert!((10.0..=15.0).contains(&p.comm_time()));
        }
        for (_, b) in inst.iter_bids() {
            assert!((0.3..=0.8).contains(&b.accuracy()));
            assert!((10.0..=50.0).contains(&b.price()));
            let w = b.window();
            assert!(b.rounds() >= 1 && b.rounds() <= w.end().0 - w.start().0);
            assert!(w.start().0 >= 1 && w.end().0 <= 50);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = small_spec().generate(9).unwrap();
        let b = small_spec().generate(9).unwrap();
        let c = small_spec().generate(10).unwrap();
        let fingerprint = |i: &Instance| -> Vec<(f64, f64, u32)> {
            i.iter_bids()
                .map(|(_, b)| (b.price(), b.accuracy(), b.rounds()))
                .collect()
        };
        assert_eq!(fingerprint(&a), fingerprint(&b));
        assert_ne!(fingerprint(&a), fingerprint(&c));
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let mut s = small_spec();
        s.clients = 0;
        assert!(s.generate(0).is_err());
        let mut s = small_spec();
        s.bids_per_client = 30; // 2J = 60 > T = 50
        assert!(s.generate(0).is_err());
        let mut s = small_spec();
        s.accuracy = (0.0, 0.8);
        assert!(s.generate(0).is_err());
        let mut s = small_spec();
        s.price = (50.0, 10.0);
        assert!(s.generate(0).is_err());
    }

    #[test]
    fn time_proportional_costs_track_round_time() {
        let spec = small_spec().with_cost_model(CostModel::TimeProportional { unit: (1.0, 1.0) });
        let inst = spec.generate(8).unwrap();
        for (r, b) in inst.iter_bids() {
            let t_ij = inst.round_time(r);
            assert!(
                (b.price() - t_ij).abs() < 1e-9,
                "unit price 1 must make b == t_ij ({} vs {t_ij})",
                b.price()
            );
        }
        // With a unit range the correlation persists (b/t_ij within range).
        let spec2 = small_spec().with_cost_model(CostModel::TimeProportional { unit: (0.5, 2.0) });
        let inst2 = spec2.generate(8).unwrap();
        for (r, b) in inst2.iter_bids() {
            let ratio = b.price() / inst2.round_time(r);
            assert!((0.5..=2.0).contains(&ratio), "ratio {ratio}");
        }
    }

    #[test]
    fn builder_style_overrides() {
        let s = WorkloadSpec::paper_default()
            .with_clients(7)
            .with_bids_per_client(2);
        assert_eq!(s.clients, 7);
        assert_eq!(s.bids_per_client, 2);
    }

    #[test]
    fn default_auction_on_generated_instance_is_feasible() {
        // The paper's default has ample supply; a scaled-down version must
        // still admit a feasible outcome.
        let mut s = small_spec();
        s.clients = 150;
        s.config = AuctionConfig::builder()
            .max_rounds(20)
            .clients_per_round(3)
            .round_time_limit(60.0)
            .build()
            .unwrap();
        s.bids_per_client = 4;
        let inst = s.generate(5).unwrap();
        let outcome = fl_auction::run_auction(&inst).expect("feasible");
        assert!(fl_auction::verify::outcome_violations(&inst, &outcome).is_empty());
    }
}

//! Pins the "≤ 3 % overhead with sinks disabled" claim on the columnar
//! `A_winner` hot path (ROADMAP / CHANGES PR-2; re-verified after the
//! columnar bid-store rewrite).
//!
//! The guard is deliberately measured the robust way: the disabled
//! fast-path cost per entry point is micro-timed, multiplied by the
//! number of events one `winner_fig3`-shaped solve actually dispatches,
//! and divided by the solve's own min-of-N wall clock. That quotient is
//! stable across machines (both numerator and denominator scale with the
//! machine), unlike a direct A/B timing of two sub-millisecond runs.

use fl_bench::overhead::measure;
use fl_bench::suite::find_scenario;

/// The claimed ceiling: disabled instrumentation may occupy at most 3 %
/// of the hot path.
const CLAIM: f64 = 0.03;

#[test]
fn disabled_telemetry_stays_within_three_percent_of_the_winner_hot_path() {
    let fig3 = find_scenario("winner_fig3").expect("winner_fig3 is in the curated set");
    let report = measure(&fig3.smoke, 5).expect("overhead measurement runs");
    assert!(
        report.events > 0,
        "the winner hot path emits no telemetry — census broken: {report:?}"
    );
    assert!(
        report.share <= CLAIM,
        "disabled telemetry takes {:.4} % of the A_winner hot path \
         (claim: <= {:.0} %): {} events x {:.1} ns against a {:.3} ms solve",
        report.share * 100.0,
        CLAIM * 100.0,
        report.events,
        report.per_op_ns,
        report.solve_ms
    );
}

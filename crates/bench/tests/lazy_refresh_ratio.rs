//! Regression gate for the coverage-index lazy queue.
//!
//! Before the columnar refactor, every lazy-queue entry went stale after
//! one greedy iteration, so the `winner_fig3` profile re-evaluated
//! `winner.lazy_refreshes` ≈ 10× `winner.greedy_iterations` (598 vs 62 in
//! the pre-refactor BENCH_main.json baseline). The saturation-event
//! `fl_auction::columnar::CoverageIndex` keeps an entry valid until a
//! round inside its window actually saturates, and the queue only counts
//! (and re-inserts) an entry whose gain truly changed — a stale pop whose
//! recomputed gain matches its cached key is accepted as the exact
//! minimum on the spot. The counter therefore measures the workload's
//! intrinsic invalidation pressure, not index conservatism. On fig3 the
//! narrow windows (2J marks over T=24 ⇒ width ≈ 3) put `c` close to the
//! window width, so most saturations genuinely invalidate overlapping
//! bids: the measured floor is 316 refreshes for 62 selections (≈ 5×),
//! down from 598 (≈ 10×). This test pins that improvement so a queue
//! regression cannot land silently.

use std::sync::Arc;

use fl_auction::{AWinner, WdpSolver};
use fl_bench::gen_prequalified_wdp;
use fl_telemetry::{install_local, Recorder};

/// The `winner_fig3` full-scale workload (see `fl_bench::suite`).
const SEED: u64 = 42;
const CLIENTS: u32 = 200;
const BIDS_PER_CLIENT: u32 = 4;
const ROUNDS: u32 = 24;
const K: u32 = 10;

#[test]
fn lazy_refreshes_stay_below_six_per_selection_on_fig3() {
    let wdp = gen_prequalified_wdp(SEED, CLIENTS, BIDS_PER_CLIENT, ROUNDS, K);
    let recorder = Arc::new(Recorder::default());
    let guard = install_local(recorder.clone());
    AWinner::new()
        .solve_wdp(&wdp)
        .expect("fig3 WDP is feasible");
    drop(guard);
    let snapshot = recorder.snapshot();
    let iterations = snapshot.counters["winner.greedy_iterations"];
    let refreshes = snapshot.counters["winner.lazy_refreshes"];
    assert!(iterations > 0, "the greedy must select winners");
    // Pre-refactor: 598 refreshes / 62 selections (≈ 10×, every pop past
    // the first per iteration re-derived a schedule). Saturation-indexed:
    // 316 / 62 (≈ 5×, each a branch-free window count, no sort). The 6×
    // threshold gives noise headroom while catching a return to stamp-
    // per-iteration staleness.
    assert!(
        refreshes <= 6 * iterations,
        "lazy queue regressed: {refreshes} refreshes for {iterations} iterations \
         (pre-refactor ratio was ≈ 10×; saturation-indexed ratio is ≈ 5×)"
    );
}

#[test]
fn refresh_counter_still_counts_real_invalidations() {
    // A K=1 workload where every selection saturates its rounds outright:
    // refreshes must be non-zero (the counter is live, not trivially
    // optimised away).
    let wdp = gen_prequalified_wdp(SEED, 40, 2, 8, 1);
    let recorder = Arc::new(Recorder::default());
    let guard = install_local(recorder.clone());
    let _ = AWinner::new().solve_wdp(&wdp);
    drop(guard);
    let snapshot = recorder.snapshot();
    assert!(
        snapshot.counters["winner.lazy_refreshes"] > 0,
        "overlapping windows must trigger at least one re-evaluation"
    );
}

//! Acceptance tests for the benchmark observatory (ISSUE 4, criterion 3):
//! same-seed determinism of [`BenchRecord`]s, the compare gate tripping on
//! injected counter drift and out-of-margin timing regressions (and staying
//! silent within the margin), and byte-stable schema round-trips.

use fl_bench::compare::{compare_records, verdict, CompareOpts, Severity};
use fl_bench::schema::{append_history, main_summary, read_history, BenchRecord};
use fl_bench::suite::{run_scenario, Scale, Scenario, ScenarioKind};

/// A small but real auction scenario — large enough to exercise
/// qualification, greedy cover, payments, and the dual certificate.
fn scenario() -> Scenario {
    Scenario {
        name: "acceptance",
        summary: "integration-test auction",
        kind: ScenarioKind::Auction { threads: 1 },
        full: Scale {
            clients: 30,
            bids_per_client: 3,
            rounds: 10,
            k: 3,
        },
        smoke: Scale {
            clients: 20,
            bids_per_client: 2,
            rounds: 8,
            k: 3,
        },
    }
}

fn record() -> BenchRecord {
    run_scenario(&scenario(), true, 2).expect("scenario runs")
}

#[test]
fn two_same_seed_runs_agree_on_every_non_timing_field() {
    let a = record();
    let b = record();
    assert_eq!(
        a.deterministic_view(),
        b.deterministic_view(),
        "same seed must give byte-identical deterministic projections"
    );
    // The record is substantive, not a husk.
    assert!(!a.phases.is_empty(), "per-phase profile must be populated");
    assert!(a.phases.iter().all(|(_, p)| p.calls > 0));
    assert!(!a.counters.is_empty(), "counters must be populated");
    assert!(a.economics.social_cost > 0.0);
    assert!(a.economics.total_payment >= a.economics.social_cost);
    assert!(a.economics.payment_overhead >= 1.0);
    assert!(a.economics.winners > 0);
    assert!(a.mechanism.greedy_iterations > 0);
    assert!(a.mechanism.qualify_examined > 0);
}

#[test]
fn compare_trips_on_injected_counter_drift_even_without_timing() {
    let base = record();
    let mut drifted = base.clone();
    let idx = drifted
        .counters
        .iter()
        .position(|(name, _)| name.contains("greedy"))
        .unwrap_or(0);
    drifted.counters[idx].1 += 1;
    let opts = CompareOpts {
        timing: false, // the CI configuration
        ..CompareOpts::default()
    };
    let findings = compare_records(&base, &drifted, opts);
    assert!(verdict(&findings), "counter drift must fail the gate");
    assert!(findings
        .iter()
        .any(|f| f.severity == Severity::Drift && f.message.contains("drifted")));
}

#[test]
fn compare_trips_beyond_the_timing_margin_and_not_within_it() {
    let base = record();
    let opts = CompareOpts {
        timing: true,
        timing_margin: 0.25,
    };

    let mut regressed = base.clone();
    regressed.timing.min_ms = base.timing.min_ms * 1.30; // > 25% slower
    let findings = compare_records(&base, &regressed, opts);
    assert!(
        findings.iter().any(|f| f.severity == Severity::Regression),
        "30% slow-down must trip a 25% margin: {findings:?}"
    );
    assert!(verdict(&findings));

    let mut noisy = base.clone();
    noisy.timing.min_ms = base.timing.min_ms * 1.20; // within margin
    let findings = compare_records(&base, &noisy, opts);
    assert!(
        !verdict(&findings),
        "20% noise must stay silent under a 25% margin: {findings:?}"
    );
}

#[test]
fn schema_round_trip_is_byte_stable() {
    let r = record();
    let json = r.to_json();
    let parsed = BenchRecord::from_json(&json).expect("record parses back");
    assert_eq!(
        parsed.to_json(),
        json,
        "encode -> parse -> encode must be stable"
    );
    assert_eq!(parsed.deterministic_view(), r.deterministic_view());
}

#[test]
fn history_and_summary_files_round_trip_on_disk() {
    let dir = std::env::temp_dir().join(format!("bench_suite_it_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("history.jsonl");

    let a = record();
    let mut b = a.clone();
    b.env.build = "next".into();
    append_history(&path, &a).unwrap();
    append_history(&path, &b).unwrap();
    let read = read_history(&path).unwrap();
    assert_eq!(read.len(), 2);
    assert_eq!(read[0].to_json(), a.to_json());
    assert_eq!(read[1].to_json(), b.to_json());

    // The summary keeps only the latest record per key and stays valid JSON.
    let summary = main_summary(&read);
    fl_telemetry::json::validate(&summary).expect("summary is valid JSON");
    assert!(summary.contains("\"acceptance@smoke\""));
    assert!(summary.contains("\"next\""));

    std::fs::remove_dir_all(&dir).ok();
}

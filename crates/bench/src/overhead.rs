//! Measures the cost of *disabled* telemetry on the `A_winner` hot path —
//! the standing "≤ 3 % overhead with sinks disabled" claim.
//!
//! With no sink installed every `fl-telemetry` entry point is one branch
//! on a relaxed atomic plus a thread-local cell read. This module turns
//! that design constraint into a measured number on the real workload:
//!
//! 1. count the telemetry events one `winner_fig3`-shaped WDP solve
//!    actually emits (via a counting sink);
//! 2. micro-time the disabled fast path per entry point;
//! 3. min-of-N time the solve itself with no sink installed;
//! 4. report `share = events × per_op / solve` — the fraction of the hot
//!    path spent inside disabled instrumentation.
//!
//! The guard test (`crates/bench/tests/telemetry_overhead.rs`) holds
//! `share` to the claimed 3 % bound; `bench_suite report` re-measures at
//! full scale and prints the number into `results/REPORT_perf.md`.

use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use fl_auction::{AWinner, WdpSolver};
use fl_telemetry::{install_local, Event, Recorder, Sink};

use crate::runner::gen_prequalified_wdp;
use crate::suite::{Scale, SUITE_SEED};

/// Iterations of the disabled fast-path micro-loop (two entry points per
/// iteration). Large enough that the per-op quotient is stable to well
/// under a nanosecond on any machine CI runs on.
const MICRO_ITERS: u64 = 200_000;

/// One measurement of disabled-telemetry cost on the WDP hot path.
#[derive(Debug, Clone, Copy)]
pub struct OverheadReport {
    /// Bids in the measured WDP (`clients × bids_per_client`).
    pub bids: u64,
    /// Telemetry events one solve dispatches when a sink is listening —
    /// an upper bound on disabled-path branches (span ends count here
    /// but cost nothing when inert).
    pub events: u64,
    /// Measured disabled fast-path cost per entry point, nanoseconds.
    pub per_op_ns: f64,
    /// Min-of-N wall clock of one solve with **no** sink installed.
    pub solve_ms: f64,
    /// Min-of-N wall clock of the same solve with a [`Recorder`]
    /// installed (context: what turning telemetry *on* costs).
    pub recorded_ms: f64,
    /// `events × per_op_ns / solve_ns` — the fraction of the hot path
    /// spent in disabled instrumentation.
    pub share: f64,
}

/// Counts every dispatched event; the cheapest possible sink, so the
/// event census does not distort the count.
#[derive(Default)]
struct CountingSink {
    n: AtomicU64,
}

impl Sink for CountingSink {
    fn on_event(&self, _event: &Event<'_>) {
        self.n.fetch_add(1, Ordering::Relaxed);
    }
}

/// Measures disabled-telemetry overhead on the `A_winner` hot path at the
/// given scale, min-of-`passes`.
///
/// # Errors
///
/// When a sink is already active on this thread (the "disabled" passes
/// would silently measure an enabled configuration) or the solve fails.
pub fn measure(scale: &Scale, passes: usize) -> Result<OverheadReport, String> {
    if fl_telemetry::enabled() {
        return Err(
            "telemetry sinks are active on this thread — the disabled-overhead \
             measurement would be invalid"
                .into(),
        );
    }
    let passes = passes.max(1);
    let wdp = gen_prequalified_wdp(
        SUITE_SEED,
        scale.clients as u32,
        scale.bids_per_client,
        scale.rounds,
        scale.k,
    );
    let solver = AWinner::new();

    // 1. Event census: one solve under a counting sink.
    let counter = Arc::new(CountingSink::default());
    let events = {
        let _guard = install_local(counter.clone());
        solver
            .solve_wdp(&wdp)
            .map_err(|e| format!("A_winner failed under census: {e}"))?;
        counter.n.load(Ordering::Relaxed)
    };

    // 2. Disabled fast path per entry point. `black_box` keeps the
    //    optimizer from hoisting the enabled() check out of the loop.
    let started = Instant::now();
    for i in 0..MICRO_ITERS {
        fl_telemetry::counter(black_box("bench.overhead.probe"), black_box(i & 1));
        fl_telemetry::sample(black_box("bench.overhead.probe_ms"), black_box(0.5));
    }
    let per_op_ns = started.elapsed().as_secs_f64() * 1e9 / (2 * MICRO_ITERS) as f64;

    // 3. The solve with no sink installed (the production configuration).
    let mut solve_ms = f64::INFINITY;
    for _ in 0..passes {
        let started = Instant::now();
        let solution = solver
            .solve_wdp(&wdp)
            .map_err(|e| format!("A_winner failed: {e}"))?;
        let elapsed = started.elapsed().as_secs_f64() * 1e3;
        black_box(solution.cost());
        solve_ms = solve_ms.min(elapsed);
    }

    // 4. The same solve with a full recorder listening, for context.
    let mut recorded_ms = f64::INFINITY;
    for _ in 0..passes {
        let recorder = Arc::new(Recorder::default());
        let guard = install_local(recorder);
        let started = Instant::now();
        let solution = solver
            .solve_wdp(&wdp)
            .map_err(|e| format!("A_winner failed under recorder: {e}"))?;
        let elapsed = started.elapsed().as_secs_f64() * 1e3;
        drop(guard);
        black_box(solution.cost());
        recorded_ms = recorded_ms.min(elapsed);
    }

    let share = (events as f64 * per_op_ns) / (solve_ms * 1e6);
    Ok(OverheadReport {
        bids: scale.clients as u64 * u64::from(scale.bids_per_client),
        events,
        per_op_ns,
        solve_ms,
        recorded_ms,
        share,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_census_counts_real_events_and_the_share_is_finite() {
        let scale = Scale {
            clients: 20,
            bids_per_client: 2,
            rounds: 8,
            k: 2,
        };
        let report = measure(&scale, 2).expect("measurement runs");
        assert_eq!(report.bids, 40);
        // The solve opens wdp_greedy/payment/dual_certificate spans and
        // bumps iteration counters — the census must see them.
        assert!(report.events >= 5, "census too small: {report:?}");
        assert!(report.per_op_ns > 0.0 && report.per_op_ns.is_finite());
        assert!(report.solve_ms > 0.0 && report.recorded_ms > 0.0);
        assert!(report.share.is_finite() && report.share >= 0.0);
    }

    #[test]
    fn measurement_refuses_to_run_with_a_sink_active() {
        let recorder = Arc::new(Recorder::default());
        let _guard = install_local(recorder);
        let scale = Scale {
            clients: 10,
            bids_per_client: 2,
            rounds: 6,
            k: 2,
        };
        let err = measure(&scale, 1).expect_err("active sink must be rejected");
        assert!(err.contains("sinks are active"), "{err}");
    }
}

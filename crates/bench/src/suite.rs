//! The curated scenario set behind `bench_suite`, and the runner that
//! turns one scenario into one [`BenchRecord`].
//!
//! Every scenario is a fixed-seed workload pushed through the real
//! pipeline entry points (`run_auction_with`, `sweep_horizons`, the
//! Myerson re-pricer, the FedAvg simulator) under a fresh thread-local
//! [`Recorder`]. A scenario is executed `runs` times: the minimum wall
//! clock becomes the record's timing statistic, and every pass's
//! timing-free telemetry (span tree, counters, gauges, histograms,
//! messages) plus economics must agree **bit-for-bit** — any divergence is
//! a determinism bug and fails the run before anything is written.
//!
//! Parallel scenarios pin their worker-thread count explicitly (never
//! `FL_THREADS` or auto-detection): the pruned-horizon set of `A_FL`
//! depends on the wave width, so a machine-dependent thread count would
//! make counters machine-dependent and break the cross-platform
//! determinism gate.

use std::cell::RefCell;
use std::sync::Arc;
use std::time::Instant;

use fl_auction::truthful::myerson_payments;
use fl_auction::{
    run_auction_with, AWinner, AuctionConfig, EconomicHealth, Instance, MechanismStats,
    OnlineAuction, SweepStrategy, WdpSolver,
};
use fl_flpd::wire::{BidParams, OpenParams};
use fl_flpd::{Client, ClientConfig, CloseReply, Daemon, DaemonConfig};
use fl_sim::{DatasetSpec, FaultModel, Federation, FlJob, RecoveryPolicy};
use fl_telemetry::json::Json;
use fl_telemetry::{install_local, Recorder, Snapshot};
use fl_workload::WorkloadSpec;
use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

use crate::runner::gen_prequalified_wdp;
use crate::schema::{
    BenchRecord, EnvBlock, PhaseList, PhaseProfile, ScaleBlock, TimingBlock, SCHEMA_VERSION,
};

/// The fixed seed every scenario runs under.
pub const SUITE_SEED: u64 = 42;
/// Payment-bisection cap for the recovery scenario — safely above the
/// workload's price range.
const MYERSON_CAP: f64 = 500.0;

/// Workload scale of one scenario variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Number of clients `I`.
    pub clients: usize,
    /// Bids per client `J`.
    pub bids_per_client: u32,
    /// Maximum horizon `T`.
    pub rounds: u32,
    /// Per-round demand `K`.
    pub k: u32,
}

impl Scale {
    fn block(&self) -> ScaleBlock {
        ScaleBlock {
            clients: self.clients as u64,
            bids_per_client: u64::from(self.bids_per_client),
            rounds: u64::from(self.rounds),
            k: u64::from(self.k),
        }
    }
}

/// What one scenario exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioKind {
    /// A single pre-qualified WDP solved by `A_winner` (Fig. 3 setting).
    Wdp,
    /// The full `A_FL` enumeration with the given pinned worker count
    /// (1 = sequential).
    Auction {
        /// Pinned sweep worker threads.
        threads: usize,
    },
    /// The unpruned horizon sweep with the given pinned worker count.
    Sweep {
        /// Pinned sweep worker threads.
        threads: usize,
    },
    /// The whole service pipeline: auction, Myerson re-pricing, standby
    /// pool, simulated execution under churn with standby recovery.
    Recovery,
    /// Full session lifecycles against a live `flpd` daemon over loopback
    /// TCP: open, register clients, submit bids, close the epoch, query
    /// payments — journal and wire layers included.
    Service,
    /// The streaming auction driver: every workload bid pushed through
    /// [`fl_auction::OnlineAuction`] as an arrival stream (irrevocable
    /// commit/reject on arrival under a posted budget), then the
    /// committed set compared against the offline `A_FL` solve of the
    /// same instance for the empirical competitive ratio.
    OnlineIngest,
}

impl ScenarioKind {
    /// Schema tag for the record's `kind` field.
    pub fn tag(self) -> &'static str {
        match self {
            ScenarioKind::Wdp => "wdp",
            ScenarioKind::Auction { .. } => "auction",
            ScenarioKind::Sweep { .. } => "sweep",
            ScenarioKind::Recovery => "recovery",
            ScenarioKind::Service => "service",
            ScenarioKind::OnlineIngest => "online_ingest",
        }
    }

    fn threads(self) -> usize {
        match self {
            ScenarioKind::Auction { threads } | ScenarioKind::Sweep { threads } => threads,
            ScenarioKind::Wdp
            | ScenarioKind::Recovery
            | ScenarioKind::Service
            | ScenarioKind::OnlineIngest => 1,
        }
    }
}

/// One named workload scenario with its full-scale and CI (`--smoke`)
/// variants.
#[derive(Debug, Clone, Copy)]
pub struct Scenario {
    /// Stable history key.
    pub name: &'static str,
    /// One-line description for `bench_suite list` and the report.
    pub summary: &'static str,
    /// What the scenario exercises.
    pub kind: ScenarioKind,
    /// Full (paper/stress) scale.
    pub full: Scale,
    /// Reduced CI scale.
    pub smoke: Scale,
}

impl Scenario {
    /// The scale of the requested variant.
    pub fn scale(&self, smoke: bool) -> Scale {
        if smoke {
            self.smoke
        } else {
            self.full
        }
    }
}

/// The curated suite, in reporting order.
pub fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "winner_fig3",
            summary: "A_winner on one pre-qualified WDP at the Fig. 3 setting",
            kind: ScenarioKind::Wdp,
            full: Scale {
                clients: 200,
                bids_per_client: 4,
                rounds: 24,
                k: 10,
            },
            smoke: Scale {
                clients: 40,
                bids_per_client: 3,
                rounds: 12,
                k: 4,
            },
        },
        Scenario {
            name: "afl_fig5",
            summary: "full A_FL at the paper's Fig. 5 scale (sequential)",
            kind: ScenarioKind::Auction { threads: 1 },
            full: Scale {
                clients: 200,
                bids_per_client: 4,
                rounds: 16,
                k: 5,
            },
            smoke: Scale {
                clients: 60,
                bids_per_client: 3,
                rounds: 10,
                k: 3,
            },
        },
        Scenario {
            name: "afl_stress",
            summary: "full A_FL at stress scale (sequential)",
            kind: ScenarioKind::Auction { threads: 1 },
            full: Scale {
                clients: 400,
                bids_per_client: 5,
                rounds: 32,
                k: 6,
            },
            smoke: Scale {
                clients: 80,
                bids_per_client: 3,
                rounds: 12,
                k: 3,
            },
        },
        // The scale frontier: A_winner on the columnar store as the bid
        // count climbs 10³ → 10⁴ → 10⁵ (clients × 4 bids each). One shared
        // shape (T = 64, K = 8, J = 4) so the trajectory isolates bid-count
        // scaling; see the "Scale frontier" section of REPORT_perf.md for
        // the bids/sec headline derived from these records.
        Scenario {
            name: "scale_frontier_1k",
            summary: "A_winner on a 1 000-bid WDP (columnar scale frontier)",
            kind: ScenarioKind::Wdp,
            full: Scale {
                clients: 250,
                bids_per_client: 4,
                rounds: 64,
                k: 8,
            },
            smoke: Scale {
                clients: 125,
                bids_per_client: 4,
                rounds: 64,
                k: 8,
            },
        },
        Scenario {
            name: "scale_frontier_10k",
            summary: "A_winner on a 10 000-bid WDP (columnar scale frontier)",
            kind: ScenarioKind::Wdp,
            full: Scale {
                clients: 2_500,
                bids_per_client: 4,
                rounds: 64,
                k: 8,
            },
            smoke: Scale {
                clients: 250,
                bids_per_client: 4,
                rounds: 64,
                k: 8,
            },
        },
        Scenario {
            name: "scale_frontier_100k",
            summary: "A_winner on a 100 000-bid WDP (columnar scale frontier)",
            kind: ScenarioKind::Wdp,
            full: Scale {
                clients: 25_000,
                bids_per_client: 4,
                rounds: 64,
                k: 8,
            },
            smoke: Scale {
                clients: 250,
                bids_per_client: 4,
                rounds: 64,
                k: 8,
            },
        },
        Scenario {
            name: "sweep_sequential",
            summary: "unpruned horizon sweep, sequential",
            kind: ScenarioKind::Sweep { threads: 1 },
            full: Scale {
                clients: 125,
                bids_per_client: 4,
                rounds: 64,
                k: 5,
            },
            smoke: Scale {
                clients: 40,
                bids_per_client: 3,
                rounds: 16,
                k: 3,
            },
        },
        Scenario {
            name: "sweep_parallel4",
            summary: "unpruned horizon sweep, 4 pinned workers",
            kind: ScenarioKind::Sweep { threads: 4 },
            full: Scale {
                clients: 125,
                bids_per_client: 4,
                rounds: 64,
                k: 5,
            },
            smoke: Scale {
                clients: 40,
                bids_per_client: 3,
                rounds: 16,
                k: 3,
            },
        },
        Scenario {
            name: "afl_recovery",
            summary: "auction + Myerson re-pricing + standby pool + simulated churn recovery",
            kind: ScenarioKind::Recovery,
            full: Scale {
                clients: 200,
                bids_per_client: 4,
                rounds: 16,
                k: 5,
            },
            smoke: Scale {
                clients: 60,
                bids_per_client: 3,
                rounds: 10,
                k: 3,
            },
        },
        Scenario {
            name: "flpd_service",
            summary: "full session lifecycles against a live flpd daemon over loopback TCP",
            kind: ScenarioKind::Service,
            // `clients` is the total across the run; the driver partitions
            // it into sessions of `SERVICE_CLIENTS_PER_SESSION`.
            full: Scale {
                clients: 100,
                bids_per_client: 2,
                rounds: 8,
                k: 2,
            },
            smoke: Scale {
                clients: 20,
                bids_per_client: 2,
                rounds: 8,
                k: 2,
            },
        },
        Scenario {
            name: "online_ingest",
            summary: "sustained streaming ingest through OnlineAuction + competitive ratio vs offline A_FL",
            kind: ScenarioKind::OnlineIngest,
            full: Scale {
                clients: 2_000,
                bids_per_client: 4,
                rounds: 16,
                k: 5,
            },
            smoke: Scale {
                clients: 100,
                bids_per_client: 3,
                rounds: 10,
                k: 3,
            },
        },
    ]
}

/// Looks a scenario up by name.
pub fn find_scenario(name: &str) -> Option<Scenario> {
    scenarios().into_iter().find(|s| s.name == name)
}

fn instance(scale: &Scale, threads: usize) -> Result<Instance, String> {
    WorkloadSpec::paper_default()
        .with_clients(scale.clients)
        .with_bids_per_client(scale.bids_per_client)
        .with_config(
            AuctionConfig::builder()
                .max_rounds(scale.rounds)
                .clients_per_round(scale.k)
                .round_time_limit(60.0)
                .sweep_strategy(SweepStrategy::with_threads(threads))
                .build()
                .map_err(|e| format!("invalid config: {e}"))?,
        )
        .generate(SUITE_SEED)
        .map_err(|e| format!("workload generation failed: {e}"))
}

/// One pass of the scenario's pipeline; returns its economic health.
fn execute(kind: ScenarioKind, scale: &Scale) -> Result<EconomicHealth, String> {
    match kind {
        ScenarioKind::Wdp => {
            let wdp = gen_prequalified_wdp(
                SUITE_SEED,
                scale.clients as u32,
                scale.bids_per_client,
                scale.rounds,
                scale.k,
            );
            let solution = AWinner::new()
                .solve_wdp(&wdp)
                .map_err(|e| format!("A_winner failed: {e}"))?;
            Ok(EconomicHealth::of_solution(&solution))
        }
        ScenarioKind::Auction { threads } => {
            let inst = instance(scale, threads)?;
            let outcome = run_auction_with(&inst, &AWinner::new())
                .map_err(|e| format!("A_FL failed: {e}"))?;
            Ok(EconomicHealth::of_outcome(&inst, &outcome))
        }
        ScenarioKind::Sweep { threads } => {
            let inst = instance(scale, threads)?;
            let sweep = fl_auction::sweep_horizons(&inst, &AWinner::new())
                .map_err(|e| format!("sweep failed: {e}"))?;
            // Fold to A_FL's answer: cheapest cost, smallest horizon on
            // exact ties (the sweep is ascending, `<` keeps the first).
            let best = sweep
                .iter()
                .filter_map(|h| h.result.as_ref().ok())
                .fold(None::<&fl_auction::WdpSolution>, |acc, sol| match acc {
                    Some(b) if b.cost() <= sol.cost() => Some(b),
                    _ => Some(sol),
                })
                .ok_or("no feasible horizon in the sweep")?;
            Ok(EconomicHealth::of_solution(best))
        }
        ScenarioKind::Service => service_pass(scale),
        ScenarioKind::OnlineIngest => online_ingest_pass(scale),
        ScenarioKind::Recovery => {
            let inst = instance(scale, 1)?;
            let outcome = run_auction_with(&inst, &AWinner::new())
                .map_err(|e| format!("A_FL failed: {e}"))?;
            let health = EconomicHealth::of_outcome(&inst, &outcome);
            // Exact threshold re-pricing of every winner (Myerson
            // bisection) — the `truthful.bisection_probes` driver.
            let wdp = crate::runner::wdp_at(&inst, outcome.horizon());
            let repriced = myerson_payments(&wdp, outcome.solution(), MYERSON_CAP, 1e-7);
            if repriced.len() != outcome.solution().winners().len() {
                return Err("Myerson re-pricing lost a winner".into());
            }
            // Simulated execution under Bernoulli churn with standby
            // recovery.
            let federation =
                Federation::generate(&DatasetSpec::default(), inst.num_clients(), SUITE_SEED);
            let report = FlJob::new(0.3)
                .with_faults(FaultModel::bernoulli(0.2))
                .with_recovery(RecoveryPolicy::Standby)
                .with_coverage_floor(scale.k)
                .run(&inst, &outcome, &federation, SUITE_SEED);
            if report.rounds.len() as u32 != outcome.horizon() {
                return Err("simulator did not run the full horizon".into());
            }
            Ok(health)
        }
    }
}

/// Posted per-scheduled-round price of the `online_ingest` scenario; the
/// budget is `π · K · T̂`, so π is pinned directly. Chosen at the middle
/// of the paper workload's `[10, 50]` price band: a realistic mix of
/// commits and price-gate rejections rather than an accept-everything
/// stream.
const ONLINE_PRICE_PER_ROUND: f64 = 25.0;

/// One pass of the `online_ingest` scenario: every workload bid pushed
/// through [`OnlineAuction`] in client-major arrival order, decisions
/// irrevocable on arrival. The driver's own `online.*` counters land in
/// the pass snapshot (so the commit/reject mix is part of the bit-exact
/// determinism gate), and the committed set is compared against the
/// offline `A_FL` solve of the identical instance:
/// `online.competitive_ratio_milli` (a counter, ratio ×1000 rounded, so
/// it survives into the history record) when the stream reached full
/// coverage, `online.ratio_unavailable` otherwise.
///
/// The sustained-ingest headline (bids/sec) is derived in the report
/// from `online.arrived / min_ms`.
fn online_ingest_pass(scale: &Scale) -> Result<EconomicHealth, String> {
    let inst = instance(scale, 1)?;
    let budget = ONLINE_PRICE_PER_ROUND * f64::from(scale.k) * f64::from(scale.rounds);
    let mut online = OnlineAuction::new(inst.config().clone(), budget)
        .map_err(|e| format!("online open failed: {e}"))?;
    for profile in inst.clients() {
        online.register_client(*profile);
    }
    {
        let _g = fl_telemetry::span!("online.ingest");
        for c in 0..inst.num_clients() {
            let client = fl_auction::ClientId(c as u32);
            for bid in inst.bids_of(client) {
                online
                    .submit(client, *bid)
                    .map_err(|e| format!("submit failed: {e}"))?;
            }
        }
    }
    let outcome = online.finish();
    // Offline comparator on the same instance: the batch A_FL cost.
    let offline = {
        let _g = fl_telemetry::span!("online.offline_reference");
        run_auction_with(&inst, &AWinner::new())
            .map_err(|e| format!("offline A_FL reference failed: {e}"))?
    };
    match outcome.competitive_ratio(offline.social_cost()) {
        Some(ratio) => {
            // Milli-units keep three decimals visible through the
            // integer counter channel (gauges never reach the record).
            fl_telemetry::counter!(
                "online.competitive_ratio_milli",
                (ratio * 1e3).round() as u64
            );
        }
        None => {
            fl_telemetry::counter!("online.ratio_unavailable");
        }
    }
    fl_telemetry::counter!(
        "online.coverage_pct",
        (100 * outcome.covered()) / outcome.total_demand().max(1)
    );
    Ok(EconomicHealth::of_solution(&outcome.solution()))
}

/// FL clients registered per daemon session in the service scenario;
/// `Scale::clients` is the total across the whole run.
const SERVICE_CLIENTS_PER_SESSION: usize = 5;

thread_local! {
    /// Side channel from [`service_pass`] to [`run_scenario`]: the
    /// daemon's own per-command quantiles (`service.srv.*` phases),
    /// which cannot travel through the bench recorder because the
    /// daemon's threads never touch the bench's thread-local sink.
    static SERVER_PHASES: RefCell<PhaseList> = const { RefCell::new(Vec::new()) };
}

/// One pass of the `flpd_service` scenario: self-host a daemon on an
/// ephemeral loopback port with a scratch journal, then drive full
/// session lifecycles (open, register, bid, close, query payments)
/// sequentially from this thread.
///
/// Telemetry discipline: the recorder installed by [`run_scenario`] is
/// thread-local, so the daemon's worker threads never write into it —
/// every span and counter below is emitted from the bench thread, which
/// keeps the pass view deterministic. Client retries are possible under
/// a slow machine but idempotent, so only *logical* operations are
/// counted, never attempts.
fn service_pass(scale: &Scale) -> Result<EconomicHealth, String> {
    let dir = fl_flpd::testutil::TempDir::new("bench-service");
    let mut daemon = Daemon::start(DaemonConfig::new(dir.path().join("wal.jsonl")))
        .map_err(|e| format!("daemon start failed: {e}"))?;
    let mut client = Client::new(
        daemon.addr(),
        ClientConfig {
            seed: SUITE_SEED,
            ..ClientConfig::default()
        },
    );

    let sessions = (scale.clients / SERVICE_CLIENTS_PER_SESSION).max(1);
    let per_session = SERVICE_CLIENTS_PER_SESSION as u32;
    let t = scale.rounds;
    let mut last_committed = None;
    let mut committed_count = 0u64;
    for s in 0..sessions {
        let _session = fl_telemetry::span!("service.session");
        let mut rng = StdRng::seed_from_u64(SUITE_SEED ^ (s as u64).wrapping_mul(0x9e37_79b9));
        let sid = {
            let _g = fl_telemetry::span!("service.open");
            client
                .open(OpenParams::new(0, t, scale.k, 60.0))
                .map_err(|e| format!("open: {e}"))?
        };
        {
            let _g = fl_telemetry::span!("service.submit");
            for c in 0..per_session {
                client
                    .add_client(&sid, 1.0 + rng.next_f64(), 2.0 + rng.next_f64() * 2.0)
                    .map_err(|e| format!("add_client: {e}"))?;
                for j in 0..scale.bids_per_client {
                    // The first bid of every client spans the full horizon
                    // so the pool always covers demand; the rest draw
                    // random windows for a non-trivial WDP.
                    let (a, d) = if j == 0 {
                        (1, t)
                    } else {
                        let a = rng.random_range(1..=t);
                        (a, rng.random_range(a..=t))
                    };
                    client
                        .add_bid(
                            &sid,
                            BidParams {
                                client: c,
                                price: 1.0 + rng.next_f64() * 5.0,
                                theta: 0.5 + rng.next_f64() * 0.3,
                                a,
                                d,
                                c: rng.random_range(1..=(d - a + 1)),
                            },
                        )
                        .map_err(|e| format!("add_bid: {e}"))?;
                    fl_telemetry::counter!("service.bids");
                }
            }
        }
        let reply = {
            let _g = fl_telemetry::span!("service.close");
            client.close(&sid).map_err(|e| format!("close: {e}"))?
        };
        match reply {
            CloseReply::Committed(outcome) => {
                committed_count += 1;
                fl_telemetry::counter!("service.committed");
                fl_telemetry::counter!("service.winners", outcome.solution().winners().len());
                let _g = fl_telemetry::span!("service.payments");
                client
                    .payments(&sid, 0)
                    .map_err(|e| format!("payments: {e}"))?;
                last_committed = Some(outcome);
            }
            CloseReply::Aborted(_) => {
                fl_telemetry::counter!("service.aborted");
            }
        }
        fl_telemetry::counter!("service.sessions");
    }
    // The daemon's own view of the run: per-command quantiles from its
    // sharded live-metrics plane, committed to the record as
    // `service.srv.*` phases. `calls` is the *client-side logical* op
    // count — deterministic, unlike the server's sample count, which
    // grows with retries — while the timing columns are the server's
    // wall clock (compare-excluded, like every `*_ms` field).
    let stats = client
        .stats_doc()
        .map_err(|e| format!("final stats fetch: {e}"))?;
    let logical: [(&str, u64); 5] = [
        ("open", sessions as u64),
        ("client", sessions as u64 * u64::from(per_session)),
        (
            "bid",
            sessions as u64 * u64::from(per_session) * u64::from(scale.bids_per_client),
        ),
        ("close", sessions as u64),
        ("payment", committed_count),
    ];
    let hists = stats.get("live").and_then(|l| l.get("hists")).cloned();
    let srv: PhaseList = logical
        .iter()
        .map(|(op, calls)| {
            let h = hists
                .as_ref()
                .and_then(|hs| hs.get(&format!("service.cmd.{op}_ms")));
            let f = |k: &str| {
                h.and_then(|h| h.get(k))
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0)
            };
            let n = h
                .and_then(|h| h.get("n"))
                .and_then(Json::as_u64)
                .unwrap_or(0);
            (
                format!("service.srv.{op}"),
                PhaseProfile {
                    calls: *calls,
                    total_ms: f("mean") * n as f64,
                    p50_ms: f("p50"),
                    p90_ms: f("p90"),
                    p99_ms: f("p99"),
                },
            )
        })
        .collect();
    SERVER_PHASES.with(|p| *p.borrow_mut() = srv);
    daemon.stop();
    let outcome = last_committed.ok_or("no session committed an epoch")?;
    Ok(EconomicHealth::of_solution(outcome.solution()))
}

/// Everything of a pass that must reproduce bit-for-bit under the same
/// seed: the timing-free snapshot plus the economics. Wall-clock fields
/// are deliberately excluded.
fn deterministic_pass_view(snapshot: &Snapshot, health: &EconomicHealth) -> String {
    format!(
        "{}\ncounters: {:?}\ngauges: {:?}\nhistograms: {:?}\nmessages: {:?}\neconomics: {:?}",
        snapshot.tree_string(),
        snapshot.counters,
        snapshot.gauges,
        snapshot.histograms,
        snapshot.messages,
        health,
    )
}

/// Runs one scenario variant `runs` times and assembles its record.
///
/// # Errors
///
/// Pipeline failures, and any pass-to-pass divergence of the deterministic
/// telemetry (reported with the differing views).
pub fn run_scenario(scenario: &Scenario, smoke: bool, runs: usize) -> Result<BenchRecord, String> {
    let runs = runs.max(2); // at least two passes for the determinism check
    let scale = scenario.scale(smoke);
    let mut runs_ms: Vec<f64> = Vec::with_capacity(runs);
    let mut first: Option<(Snapshot, EconomicHealth, String)> = None;
    for pass in 0..runs {
        let recorder = Arc::new(Recorder::default());
        let guard = install_local(recorder.clone());
        let start = Instant::now();
        let health = execute(scenario.kind, &scale);
        let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
        drop(guard);
        let health = health?;
        runs_ms.push(elapsed_ms);
        let snapshot = recorder.snapshot();
        let view = deterministic_pass_view(&snapshot, &health);
        match &first {
            None => first = Some((snapshot, health, view)),
            Some((_, _, reference)) => {
                if view != *reference {
                    return Err(format!(
                        "scenario {}: pass {} diverged from pass 0 on timing-free \
                         telemetry — determinism bug\n--- pass 0 ---\n{reference}\n--- pass {pass} ---\n{view}",
                        scenario.name, pass
                    ));
                }
            }
        }
    }
    let (snapshot, health, _) = first.expect("runs >= 2");
    let (mut phases, counters) = BenchRecord::profile_from_snapshot(&snapshot);
    if scenario.kind == ScenarioKind::Service {
        // Merge the daemon-side quantiles captured by the last pass;
        // call counts are identical across passes by construction.
        let server = SERVER_PHASES.with(|p| std::mem::take(&mut *p.borrow_mut()));
        phases.extend(server);
        phases.sort_by(|a, b| a.0.cmp(&b.0));
    }
    if phases.is_empty() {
        return Err(format!(
            "scenario {}: no telemetry phases recorded — instrumentation regressed",
            scenario.name
        ));
    }
    let min_ms = runs_ms.iter().copied().fold(f64::INFINITY, f64::min);
    Ok(BenchRecord {
        schema_version: SCHEMA_VERSION,
        scenario: scenario.name.to_string(),
        kind: scenario.kind.tag().to_string(),
        env: EnvBlock {
            seed: SUITE_SEED,
            cores: std::thread::available_parallelism().map_or(1, |n| n.get()) as u64,
            threads: scenario.kind.threads() as u64,
            smoke,
            build: std::env::var("FL_BUILD_INFO").unwrap_or_else(|_| "unknown".into()),
            scale: scale.block(),
        },
        timing: TimingBlock {
            runs: runs as u64,
            min_ms,
            runs_ms,
        },
        phases,
        counters,
        mechanism: MechanismStats::from_snapshot(&snapshot),
        economics: health,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_suite_has_at_least_four_uniquely_named_scenarios() {
        let all = scenarios();
        assert!(all.len() >= 4);
        let mut names: Vec<&str> = all.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len(), "scenario names must be unique");
        assert!(find_scenario("afl_fig5").is_some());
        assert!(find_scenario("nope").is_none());
        // Every parallel scenario pins its thread count (no auto-detect).
        for s in &all {
            assert!(s.kind.threads() >= 1);
        }
    }

    #[test]
    fn the_scale_frontier_spans_three_decades_of_bids() {
        for (name, bids) in [
            ("scale_frontier_1k", 1_000u64),
            ("scale_frontier_10k", 10_000),
            ("scale_frontier_100k", 100_000),
        ] {
            let s = find_scenario(name).unwrap_or_else(|| panic!("{name} missing"));
            assert_eq!(s.kind, ScenarioKind::Wdp, "{name} must be a raw WDP solve");
            assert_eq!(
                s.full.clients as u64 * u64::from(s.full.bids_per_client),
                bids,
                "{name} full scale must hold exactly {bids} bids"
            );
            assert!(
                s.smoke.clients as u64 * u64::from(s.smoke.bids_per_client) <= 1_000,
                "{name} smoke variant must stay at or below 10³ bids for CI"
            );
            // All three share one shape so the trajectory isolates the
            // bid count.
            assert_eq!((s.full.rounds, s.full.k), (64, 8), "{name} shape drifted");
        }
    }

    #[test]
    fn smoke_scales_are_smaller_than_full_scales() {
        for s in scenarios() {
            assert!(s.smoke.clients < s.full.clients, "{}", s.name);
            assert!(s.smoke.rounds <= s.full.rounds, "{}", s.name);
        }
    }
}

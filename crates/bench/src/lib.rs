//! Experiment harness regenerating the paper's evaluation (§VII).
//!
//! One binary per figure — see `DESIGN.md` for the experiment index:
//!
//! | binary | reproduces |
//! |--------|------------|
//! | `fig3` | Fig. 3 — `A_winner` performance ratio vs `T̂_g` and `J` |
//! | `fig4` | Fig. 4 — `A_FL` vs benchmarks performance ratio vs `I`, `J` |
//! | `fig5` | Fig. 5 — social cost vs number of clients `I` |
//! | `fig6` | Fig. 6 — social cost vs bids per client `J` |
//! | `fig7` | Fig. 7 — social cost vs fixed `T̂_g` |
//! | `fig8` | Fig. 8 — running time vs `I` |
//! | `fig9` | Fig. 9 — payment vs claimed cost (individual rationality) |
//! | `headline` | the abstract's 10% / 40% / 75% cost-reduction claims |
//! | `ablation_*` | design-choice ablations (see DESIGN.md) |
//!
//! Each binary prints its table and writes `results/<name>.csv`.
//! Criterion micro-benchmarks live in `benches/`.
//!
//! Performance is tracked by one orchestrator, `bench_suite` (the
//! benchmark observatory): it runs the curated scenario set in
//! [`suite`], emits one versioned [`schema::BenchRecord`] per scenario
//! into `results/BENCH_history.jsonl`, summarizes the latest records into
//! the repo-root `BENCH_main.json`, diffs runs with the noise-aware gate
//! in [`compare`], and renders the [`trajectory`] dashboard
//! `results/REPORT_perf.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compare;
pub mod output;
pub mod overhead;
pub mod runner;
pub mod schema;
pub mod stats;
pub mod suite;
pub mod telemetry;
pub mod trajectory;

pub use output::{results_dir, Table};
pub use runner::{gen_prequalified_wdp, par_map, timed, wdp_at, Algo};
pub use schema::{BenchRecord, SCHEMA_VERSION};
pub use stats::Summary;

//! Experiment harness regenerating the paper's evaluation (§VII).
//!
//! One binary per figure — see `DESIGN.md` for the experiment index:
//!
//! | binary | reproduces |
//! |--------|------------|
//! | `fig3` | Fig. 3 — `A_winner` performance ratio vs `T̂_g` and `J` |
//! | `fig4` | Fig. 4 — `A_FL` vs benchmarks performance ratio vs `I`, `J` |
//! | `fig5` | Fig. 5 — social cost vs number of clients `I` |
//! | `fig6` | Fig. 6 — social cost vs bids per client `J` |
//! | `fig7` | Fig. 7 — social cost vs fixed `T̂_g` |
//! | `fig8` | Fig. 8 — running time vs `I` |
//! | `fig9` | Fig. 9 — payment vs claimed cost (individual rationality) |
//! | `headline` | the abstract's 10% / 40% / 75% cost-reduction claims |
//! | `ablation_*` | design-choice ablations (see DESIGN.md) |
//!
//! Each binary prints its table and writes `results/<name>.csv`.
//! Criterion micro-benchmarks live in `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod output;
pub mod runner;
pub mod stats;
pub mod telemetry;

pub use output::{results_dir, Table};
pub use runner::{gen_prequalified_wdp, par_map, timed, wdp_at, Algo};
pub use stats::Summary;

//! Algorithm suite and execution helpers shared by the figure binaries.

use std::time::{Duration, Instant};

use fl_auction::{
    qualify, run_auction_with, AWinner, AuctionError, AuctionOutcome, BidRef, ClientId, Instance,
    QualifiedBid, Round, Wdp, WdpError, WdpSolution, WdpSolver, Window,
};
use fl_baselines::{FcfsBaseline, GreedyBaseline, OnlineBaseline};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The algorithm suite the paper's evaluation compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algo {
    /// The paper's mechanism (`A_FL` with `A_winner` inside).
    Afl,
    /// Static-ratio greedy (paper's ref. \[20\]).
    Greedy,
    /// Posted-price online mechanism (paper's ref. \[17\]).
    Online,
    /// First-come-first-served (paper's ref. \[21\]).
    Fcfs,
}

impl Algo {
    /// All four algorithms, in the paper's plotting order.
    pub const ALL: [Algo; 4] = [Algo::Afl, Algo::Greedy, Algo::Online, Algo::Fcfs];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            Algo::Afl => "A_FL",
            Algo::Greedy => "Greedy",
            Algo::Online => "A_online",
            Algo::Fcfs => "FCFS",
        }
    }

    /// Runs the full auction (outer `T̂_g` enumeration) with this
    /// algorithm's WDP solver.
    ///
    /// # Errors
    ///
    /// Propagates [`AuctionError`] from the outer loop.
    pub fn run(self, instance: &Instance) -> Result<AuctionOutcome, AuctionError> {
        match self {
            Algo::Afl => run_auction_with(instance, &AWinner::new()),
            Algo::Greedy => run_auction_with(instance, &GreedyBaseline::new()),
            Algo::Online => run_auction_with(instance, &OnlineBaseline::new()),
            Algo::Fcfs => run_auction_with(instance, &FcfsBaseline::new()),
        }
    }

    /// Solves a single fixed-horizon WDP with this algorithm's solver.
    ///
    /// # Errors
    ///
    /// Propagates [`WdpError`] from the solver.
    pub fn solve_wdp(self, wdp: &Wdp) -> Result<WdpSolution, WdpError> {
        match self {
            Algo::Afl => AWinner::new().solve_wdp(wdp),
            Algo::Greedy => GreedyBaseline::new().solve_wdp(wdp),
            Algo::Online => OnlineBaseline::new().solve_wdp(wdp),
            Algo::Fcfs => FcfsBaseline::new().solve_wdp(wdp),
        }
    }
}

/// Runs `f` and returns its result with the elapsed wall-clock time.
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed())
}

/// Applies `f` to every item on scoped worker threads (one per item, which
/// is fine for the harness's row-level parallelism) and returns results in
/// input order. Results are bit-identical to the sequential map — each
/// item's work is independent and internally seeded.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let mut out: Vec<Option<R>> = Vec::new();
    out.resize_with(items.len(), || None);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(items.len());
        for item in items {
            let f = &f;
            handles.push(scope.spawn(move || f(item)));
        }
        for (slot, h) in out.iter_mut().zip(handles) {
            *slot = Some(h.join().expect("harness worker panicked"));
        }
    });
    out.into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

/// Builds the qualified WDP of `instance` at a fixed horizon (Fig. 7's
/// per-`T̂_g` evaluation).
pub fn wdp_at(instance: &Instance, horizon: u32) -> Wdp {
    qualify(instance, horizon)
}

/// Generates a *pre-qualified* WDP for the Fig. 3 setting: every bid
/// already satisfies constraints (6b) and (6d) ("to ensure there are
/// enough bids, we assume that all bids can satisfy...").
///
/// Windows follow the paper's construction — `2J` distinct sorted marks
/// inside `[1, horizon]`, adjacent pairs — so window length shrinks as `J`
/// grows (the effect behind Fig. 3's decreasing-in-`J` ratio).
/// `c ∈ [1, d − a]`, prices uniform in `[10, 50]`.
///
/// # Panics
///
/// Panics if `2·bids_per_client > horizon` (not enough distinct marks).
pub fn gen_prequalified_wdp(
    seed: u64,
    clients: u32,
    bids_per_client: u32,
    horizon: u32,
    k: u32,
) -> Wdp {
    assert!(
        2 * bids_per_client <= horizon,
        "2J = {} marks cannot be distinct within horizon {horizon}",
        2 * bids_per_client
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut bids = Vec::new();
    for i in 0..clients {
        let marks =
            fl_workload::sample::distinct_sorted(&mut rng, 2 * bids_per_client as usize, horizon);
        for j in 0..bids_per_client {
            let a = marks[2 * j as usize];
            let d = marks[2 * j as usize + 1];
            let c = if d > a {
                rng.random_range(1..=(d - a))
            } else {
                1
            };
            bids.push(QualifiedBid {
                bid_ref: BidRef::new(ClientId(i), j),
                price: rng.random_range(10.0..=50.0),
                accuracy: 1.0 - 1.0 / f64::from(horizon),
                window: Window::new(Round(a), Round(d)),
                rounds: c,
                round_time: 1.0,
            });
        }
    }
    Wdp::new(horizon, k, bids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fl_workload::WorkloadSpec;

    #[test]
    fn algo_names_match_the_paper() {
        let names: Vec<&str> = Algo::ALL.iter().map(|a| a.name()).collect();
        assert_eq!(names, vec!["A_FL", "Greedy", "A_online", "FCFS"]);
    }

    #[test]
    fn all_algorithms_solve_a_small_default_instance() {
        let spec = WorkloadSpec::paper_default()
            .with_clients(120)
            .with_bids_per_client(4)
            .with_config(
                fl_auction::AuctionConfig::builder()
                    .max_rounds(16)
                    .clients_per_round(3)
                    .round_time_limit(60.0)
                    .build()
                    .unwrap(),
            );
        let inst = spec.generate(11).unwrap();
        let mut costs = Vec::new();
        for algo in Algo::ALL {
            let outcome = algo
                .run(&inst)
                .unwrap_or_else(|e| panic!("{} failed: {e}", algo.name()));
            assert!(
                fl_auction::verify::outcome_violations(&inst, &outcome).is_empty(),
                "{} produced an infeasible outcome",
                algo.name()
            );
            costs.push((algo, outcome.social_cost()));
        }
        // A_FL must be no worse than every baseline on any instance where
        // all succeed (it picks the best horizon with the best greedy).
        let afl = costs[0].1;
        for (algo, c) in &costs[1..] {
            assert!(
                afl <= c * 1.35 + 1e-9,
                "A_FL ({afl}) should not be drastically worse than {} ({c})",
                algo.name()
            );
        }
    }

    #[test]
    fn prequalified_wdp_shape() {
        let wdp = gen_prequalified_wdp(3, 10, 4, 8, 2);
        assert_eq!(wdp.bids().len(), 40);
        assert_eq!(wdp.horizon(), 8);
        for b in wdp.bids() {
            assert!(b.window.end().0 <= 8);
            assert!(b.rounds >= 1);
            assert!(b.rounds <= b.window.len());
            assert!((10.0..=50.0).contains(&b.price));
        }
    }

    #[test]
    fn timed_reports_a_duration() {
        let (v, d) = timed(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(d.as_nanos() > 0);
    }

    #[test]
    fn par_map_preserves_order_and_values() {
        let xs: Vec<u64> = (0..20).collect();
        let seq: Vec<u64> = xs.iter().map(|x| x * x).collect();
        let par = par_map(xs, |x| x * x);
        assert_eq!(par, seq);
        assert!(par_map(Vec::<u64>::new(), |x| x).is_empty());
    }

    #[test]
    fn wdp_at_matches_direct_qualification() {
        let inst = WorkloadSpec::paper_default()
            .with_clients(20)
            .generate(1)
            .unwrap();
        let w = wdp_at(&inst, 10);
        assert_eq!(w.horizon(), 10);
        assert_eq!(w.bids().len(), fl_auction::qualify(&inst, 10).bids().len());
    }
}

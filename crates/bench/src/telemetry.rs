//! Telemetry bootstrap shared by every bench binary.
//!
//! Each binary's `main` starts with
//! `let _telemetry = fl_bench::telemetry::init("<name>");`, which installs
//! the global sinks for the whole process:
//!
//! * a [`JsonlSink`] mirroring every event into
//!   `results/telemetry/<name>.jsonl` (machine-readable trace);
//! * an [`EnvLogger`] on stderr, verbosity from the `FL_LOG` environment
//!   variable (`error|warn|info|debug|trace`), suppressed entirely by a
//!   `--quiet` argument — printed stdout output is never affected;
//! * a [`Recorder`] aggregating counters/histograms/phase timings, which
//!   [`Telemetry::write_snapshot`] can export as a JSON perf snapshot.
//!
//! The guards uninstall on drop, so telemetry ends with `main`.

use std::io;
use std::path::PathBuf;
use std::sync::Arc;

use fl_telemetry::{install_global, EnvLogger, GlobalSinkGuard, JsonlSink, Recorder};

use crate::output::results_dir;

/// Live telemetry session for one bench binary (RAII: sinks uninstall and
/// the JSON-lines trace flushes when this drops).
pub struct Telemetry {
    run: String,
    recorder: Arc<Recorder>,
    jsonl: Option<Arc<JsonlSink>>,
    _guards: Vec<GlobalSinkGuard>,
}

/// Installs the standard bench sinks; `run` names the trace file
/// `results/telemetry/<run>.jsonl`.
///
/// Honours `--quiet` (drops the stderr logger regardless of `FL_LOG`) from
/// the process arguments. A trace-file creation failure degrades to a
/// warning on stderr rather than an abort — experiments still run on a
/// read-only results directory.
pub fn init(run: &str) -> Telemetry {
    let quiet = std::env::args().any(|a| a == "--quiet");
    let mut guards = Vec::new();

    let recorder = Arc::new(Recorder::default());
    guards.push(install_global(recorder.clone()));

    let jsonl =
        match JsonlSink::create(results_dir().join("telemetry").join(format!("{run}.jsonl"))) {
            Ok(sink) => {
                let sink = Arc::new(sink);
                guards.push(install_global(sink.clone()));
                Some(sink)
            }
            Err(e) => {
                eprintln!("telemetry: cannot create trace file for {run}: {e}");
                None
            }
        };

    if !quiet {
        if let Some(logger) = EnvLogger::from_env() {
            guards.push(install_global(Arc::new(logger)));
        }
    }

    Telemetry {
        run: run.to_string(),
        recorder,
        jsonl,
        _guards: guards,
    }
}

impl Telemetry {
    /// The run name passed to [`init`].
    pub fn run(&self) -> &str {
        &self.run
    }

    /// The process-wide aggregating recorder.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Writes the recorder's current snapshot to `results/<name>.json` and
    /// returns the path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_snapshot(&self, name: &str) -> io::Result<PathBuf> {
        write_results_json(name, &self.recorder.snapshot().to_json())
    }

    /// Flushes the JSON-lines trace to disk (also happens on drop).
    pub fn flush(&self) {
        if let Some(sink) = &self.jsonl {
            if let Err(e) = sink.flush() {
                eprintln!("telemetry: flush failed for {}: {e}", self.run);
            }
        }
    }
}

impl Drop for Telemetry {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Validates `json` and writes it to `results/<name>.json`, returning the
/// path.
///
/// # Errors
///
/// Returns [`io::ErrorKind::InvalidData`] when `json` does not parse, and
/// propagates filesystem errors.
pub fn write_results_json(name: &str, json: &str) -> io::Result<PathBuf> {
    fl_telemetry::json::validate(json)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{name}: {e}")))?;
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    std::fs::write(&path, json)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_results_json_rejects_malformed_documents() {
        let err = write_results_json("unit-telemetry-bad", "{nope").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn write_results_json_round_trips() {
        let path = write_results_json("unit-telemetry-ok", "{\"a\":1}").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"a\":1}");
        std::fs::remove_file(path).ok();
    }
}

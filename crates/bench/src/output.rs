//! Experiment output: aligned console tables and CSV files.
//!
//! Every figure binary prints a table (the "series" the paper plots) and
//! mirrors it into `results/<name>.csv` so plots can be regenerated
//! without re-running the experiment.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// A rectangular experiment result: header plus rows of cells.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column names.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row<S: Into<String>>(&mut self, row: impl IntoIterator<Item = S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width {} != header width {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders an aligned, boxless console table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.chars().count();
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                width[i] = width[i].max(cell.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = width[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (cols.saturating_sub(1))));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders RFC-4180-ish CSV (quotes cells containing commas/quotes).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV under `dir/name.csv`, creating `dir` if needed, and
    /// returns the path written.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_csv(&self, dir: impl AsRef<Path>, name: &str) -> std::io::Result<PathBuf> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.csv"));
        let mut f = fs::File::create(&path)?;
        f.write_all(self.to_csv().as_bytes())?;
        Ok(path)
    }
}

impl Table {
    /// Parses a table back from CSV text produced by [`Table::to_csv`]
    /// (RFC-4180 quoting; embedded newlines inside quoted cells are
    /// supported).
    ///
    /// Returns `None` for empty input or rows whose width disagrees with
    /// the header.
    pub fn from_csv(text: &str) -> Option<Table> {
        let rows = parse_csv(text);
        let mut it = rows.into_iter();
        let header = it.next()?;
        let width = header.len();
        let mut table = Table::new(header);
        for row in it {
            if row.len() != width {
                return None;
            }
            table.push_row(row);
        }
        Some(table)
    }

    /// Renders the table as a GitHub-flavoured markdown table.
    pub fn to_markdown(&self) -> String {
        let esc = |s: &str| s.replace('|', "\\|");
        let mut out = String::new();
        out.push_str("| ");
        out.push_str(
            &self
                .header
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(" | "),
        );
        out.push_str(" |\n|");
        out.push_str(&"---|".repeat(self.header.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str("| ");
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(" | "));
            out.push_str(" |\n");
        }
        out
    }
}

/// Minimal RFC-4180 CSV reader matching [`Table::to_csv`]'s writer.
fn parse_csv(text: &str) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    let mut row = Vec::new();
    let mut cell = String::new();
    let mut quoted = false;
    let mut chars = text.chars().peekable();
    while let Some(ch) = chars.next() {
        if quoted {
            match ch {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        cell.push('"');
                    } else {
                        quoted = false;
                    }
                }
                _ => cell.push(ch),
            }
        } else {
            match ch {
                '"' if cell.is_empty() => quoted = true,
                ',' => row.push(std::mem::take(&mut cell)),
                '\n' => {
                    row.push(std::mem::take(&mut cell));
                    rows.push(std::mem::take(&mut row));
                }
                '\r' => {}
                _ => cell.push(ch),
            }
        }
    }
    if !cell.is_empty() || !row.is_empty() {
        row.push(cell);
        rows.push(row);
    }
    rows
}

/// The default output directory for experiment CSVs, relative to the
/// workspace root (`results/`).
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench → workspace root is two levels up.
    let manifest = env!("CARGO_MANIFEST_DIR");
    Path::new(manifest)
        .ancestors()
        .nth(2)
        .unwrap_or_else(|| Path::new("."))
        .join("results")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(["x", "cost"]);
        t.push_row(["1", "10.5"]);
        t.push_row(["2", "9.75"]);
        t
    }

    #[test]
    fn render_aligns_columns() {
        let r = sample().render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains('x') && lines[0].contains("cost"));
        assert!(lines[2].trim_start().starts_with('1'));
    }

    #[test]
    fn csv_round_trip_and_escaping() {
        let mut t = Table::new(["a", "b"]);
        t.push_row(["plain", "with,comma"]);
        t.push_row(["quote\"inside", "ok"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"with,comma\""));
        assert!(csv.contains("\"quote\"\"inside\""));
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_row_panics() {
        let mut t = Table::new(["a", "b"]);
        t.push_row(["only-one"]);
    }

    #[test]
    fn write_csv_creates_file() {
        let dir = std::env::temp_dir().join("fl-bench-test-output");
        let path = sample().write_csv(&dir, "unit").unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("x,cost"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn csv_round_trips_through_from_csv() {
        let mut t = Table::new(["a", "b"]);
        t.push_row(["plain", "with,comma"]);
        t.push_row(["quote\"inside", "multi\nline"]);
        let csv = t.to_csv();
        let back = Table::from_csv(&csv).expect("well-formed");
        assert_eq!(back, t);
    }

    #[test]
    fn from_csv_rejects_ragged_rows() {
        assert!(Table::from_csv("a,b\n1\n").is_none());
        assert!(Table::from_csv("").is_none());
    }

    #[test]
    fn markdown_rendering_escapes_pipes() {
        let mut t = Table::new(["x", "a|b"]);
        t.push_row(["1", "2"]);
        let md = t.to_markdown();
        assert!(md.contains("a\\|b"));
        assert!(md.starts_with("| x | "));
        assert_eq!(md.lines().count(), 3);
    }

    #[test]
    fn results_dir_is_workspace_relative() {
        let d = results_dir();
        assert!(d.ends_with("results"));
    }
}

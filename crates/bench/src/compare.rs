//! The noise-aware regression gate: diffing two [`BenchRecord`]s (or the
//! last two history entries per scenario).
//!
//! Two classes of field, two policies:
//!
//! * **Deterministic fields** (seed, scale, counters, mechanism stats,
//!   economics, phase call counts) must be *bit-identical* for the same
//!   seed and same code — any drift is a [`Severity::Drift`] hard failure.
//!   This is the cross-platform correctness oracle: a perf PR that changes
//!   a greedy iteration count or a payment by one ULP trips it.
//! * **Timing fields** are wall-clock noise. The gate flags a regression
//!   only when `current.min_ms` exceeds `baseline.min_ms` by more than a
//!   configurable relative margin — and *never* compares timing across
//!   records from differing core counts (a 1-core container measuring a
//!   parallel sweep says nothing about a 4-core one).

use crate::schema::BenchRecord;

/// Comparison knobs.
#[derive(Debug, Clone, Copy)]
pub struct CompareOpts {
    /// Whether to check timing at all (`false` in CI, where machines vary).
    pub timing: bool,
    /// Relative slow-down margin before a timing regression is flagged
    /// (0.25 = 25% over the baseline's min-of-N).
    pub timing_margin: f64,
}

impl Default for CompareOpts {
    fn default() -> Self {
        CompareOpts {
            timing: true,
            timing_margin: 0.25,
        }
    }
}

/// How bad one finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Deterministic-field drift or incomparable records — always fails.
    Drift,
    /// Timing regression beyond the margin — fails unless timing checks
    /// are disabled.
    Regression,
    /// Informational (timing skipped, improvements, unpaired scenarios).
    Note,
}

/// One comparison finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which history key the finding concerns.
    pub key: String,
    /// Finding class.
    pub severity: Severity,
    /// Human-readable description.
    pub message: String,
}

impl Finding {
    fn new(key: &str, severity: Severity, message: String) -> Finding {
        Finding {
            key: key.into(),
            severity,
            message,
        }
    }
}

/// Whether a finding set should fail the gate.
pub fn verdict(findings: &[Finding]) -> bool {
    findings
        .iter()
        .any(|f| matches!(f.severity, Severity::Drift | Severity::Regression))
}

/// Compares `current` against `baseline` (same scenario key expected).
pub fn compare_records(
    baseline: &BenchRecord,
    current: &BenchRecord,
    opts: CompareOpts,
) -> Vec<Finding> {
    let key = current.key();
    let mut findings = Vec::new();

    if baseline.key() != current.key() {
        findings.push(Finding::new(
            &key,
            Severity::Drift,
            format!(
                "records are for different scenarios ({} vs {})",
                baseline.key(),
                current.key()
            ),
        ));
        return findings;
    }
    if baseline.schema_version != current.schema_version {
        findings.push(Finding::new(
            &key,
            Severity::Drift,
            format!(
                "schema version changed ({} -> {}) — regenerate the baseline",
                baseline.schema_version, current.schema_version
            ),
        ));
        return findings;
    }
    if baseline.env.seed != current.env.seed || baseline.env.scale != current.env.scale {
        findings.push(Finding::new(
            &key,
            Severity::Drift,
            "seed or scale differ — records are not comparable".into(),
        ));
        return findings;
    }

    // Deterministic gate: byte-compare the canonical projections and cite
    // every differing line.
    let base_view = baseline.deterministic_view();
    let cur_view = current.deterministic_view();
    if base_view != cur_view {
        let diffs = diff_lines(&base_view, &cur_view);
        findings.push(Finding::new(
            &key,
            Severity::Drift,
            format!(
                "deterministic fields drifted (same seed, so this is a correctness change):\n{}",
                diffs.join("\n")
            ),
        ));
    }

    // Timing gate.
    if opts.timing {
        if baseline.env.cores != current.env.cores {
            findings.push(Finding::new(
                &key,
                Severity::Note,
                format!(
                    "timing skipped: baseline ran on {} core(s), current on {} — not comparable",
                    baseline.env.cores, current.env.cores
                ),
            ));
        } else if baseline.timing.min_ms > 0.0 {
            let ratio = current.timing.min_ms / baseline.timing.min_ms;
            if ratio > 1.0 + opts.timing_margin {
                findings.push(Finding::new(
                    &key,
                    Severity::Regression,
                    format!(
                        "timing regression: min-of-{} {:.3} ms -> {:.3} ms ({:+.1}% > margin {:.0}%)",
                        current.timing.runs,
                        baseline.timing.min_ms,
                        current.timing.min_ms,
                        (ratio - 1.0) * 100.0,
                        opts.timing_margin * 100.0
                    ),
                ));
            } else if ratio < 1.0 - opts.timing_margin {
                findings.push(Finding::new(
                    &key,
                    Severity::Note,
                    format!(
                        "timing improved: {:.3} ms -> {:.3} ms ({:+.1}%)",
                        baseline.timing.min_ms,
                        current.timing.min_ms,
                        (ratio - 1.0) * 100.0
                    ),
                ));
            }
        }
    }
    findings
}

/// Pairs the last two records per scenario key in `history` (older =
/// baseline, newer = current) and compares each pair. Keys with fewer than
/// two records yield a [`Severity::Note`].
pub fn compare_history(history: &[BenchRecord], opts: CompareOpts) -> Vec<Finding> {
    let mut keys: Vec<String> = Vec::new();
    for r in history {
        let key = r.key();
        if !keys.contains(&key) {
            keys.push(key);
        }
    }
    let mut findings = Vec::new();
    for key in keys {
        let of_key: Vec<&BenchRecord> = history.iter().filter(|r| r.key() == key).collect();
        match of_key.as_slice() {
            [] => unreachable!("key came from history"),
            [_single] => findings.push(Finding::new(
                &key,
                Severity::Note,
                "only one record in history — nothing to compare against".into(),
            )),
            [.., baseline, current] => {
                findings.extend(compare_records(baseline, current, opts));
            }
        }
    }
    findings
}

/// Line-level diff of the two canonical views (every line present in only
/// one side, prefixed with its side).
fn diff_lines(base: &str, cur: &str) -> Vec<String> {
    let base_lines: Vec<&str> = base.lines().collect();
    let cur_lines: Vec<&str> = cur.lines().collect();
    let mut out = Vec::new();
    for l in &base_lines {
        if !cur_lines.contains(l) {
            out.push(format!("  baseline: {l}"));
        }
    }
    for l in &cur_lines {
        if !base_lines.contains(l) {
            out.push(format!("  current:  {l}"));
        }
    }
    if out.is_empty() {
        out.push("  (views differ only in line order?)".into());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{run_scenario, Scale, Scenario, ScenarioKind};

    fn tiny() -> Scenario {
        Scenario {
            name: "unit_tiny",
            summary: "tiny auction for compare unit tests",
            kind: ScenarioKind::Auction { threads: 1 },
            full: Scale {
                clients: 14,
                bids_per_client: 2,
                rounds: 6,
                k: 2,
            },
            smoke: Scale {
                clients: 10,
                bids_per_client: 2,
                rounds: 5,
                k: 2,
            },
        }
    }

    fn record() -> BenchRecord {
        run_scenario(&tiny(), true, 2).expect("tiny scenario runs")
    }

    #[test]
    fn identical_records_compare_clean() {
        let r = record();
        let findings = compare_records(&r, &r.clone(), CompareOpts::default());
        assert!(!verdict(&findings), "{findings:?}");
    }

    #[test]
    fn counter_drift_is_a_hard_failure() {
        let base = record();
        let mut drifted = base.clone();
        drifted.counters[0].1 += 1;
        let findings = compare_records(&base, &drifted, CompareOpts::default());
        assert!(verdict(&findings));
        assert!(findings
            .iter()
            .any(|f| f.severity == Severity::Drift
                && f.message.contains("deterministic fields drifted")));
        // Disabling timing does not disable the deterministic gate.
        let no_timing = CompareOpts {
            timing: false,
            ..CompareOpts::default()
        };
        assert!(verdict(&compare_records(&base, &drifted, no_timing)));
    }

    #[test]
    fn economic_drift_is_a_hard_failure() {
        let base = record();
        let mut drifted = base.clone();
        drifted.economics.social_cost += 1e-9; // one-ULP-scale drift trips
        let findings = compare_records(&base, &drifted, CompareOpts::default());
        assert!(verdict(&findings));
    }

    #[test]
    fn timing_gate_uses_the_relative_margin() {
        let base = record();
        let mut slower = base.clone();
        slower.timing.min_ms = base.timing.min_ms * 1.5;
        let findings = compare_records(&base, &slower, CompareOpts::default());
        assert!(findings.iter().any(|f| f.severity == Severity::Regression));

        let mut within = base.clone();
        within.timing.min_ms = base.timing.min_ms * 1.1;
        let findings = compare_records(&base, &within, CompareOpts::default());
        assert!(!verdict(&findings), "{findings:?}");
    }

    #[test]
    fn timing_never_compares_across_core_counts() {
        let base = record();
        let mut other_machine = base.clone();
        other_machine.env.cores = base.env.cores + 7;
        other_machine.timing.min_ms = base.timing.min_ms * 100.0;
        let findings = compare_records(&base, &other_machine, CompareOpts::default());
        assert!(!verdict(&findings), "{findings:?}");
        assert!(findings
            .iter()
            .any(|f| f.severity == Severity::Note && f.message.contains("timing skipped")));
    }

    #[test]
    fn history_pairs_last_two_per_key() {
        let a = record();
        let mut b = a.clone();
        b.timing.min_ms *= 0.9;
        let mut c = b.clone();
        c.counters[0].1 += 5; // drift vs b — a must NOT be the baseline
        let findings = compare_history(&[a, b, c], CompareOpts::default());
        assert!(verdict(&findings));
        let singles = compare_history(&[record()], CompareOpts::default());
        assert!(!verdict(&singles));
        assert!(singles[0].message.contains("only one record"));
    }

    #[test]
    fn different_seeds_refuse_to_compare() {
        let base = record();
        let mut other = base.clone();
        other.env.seed += 1;
        let findings = compare_records(&base, &other, CompareOpts::default());
        assert!(verdict(&findings));
        assert!(findings[0].message.contains("not comparable"));
    }
}

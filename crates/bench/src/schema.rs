//! The versioned record schema every `bench_suite` scenario emits.
//!
//! One [`BenchRecord`] per scenario run, serialized as a single JSON line
//! appended to `results/BENCH_history.jsonl` (the trajectory) and
//! summarized into the repo-root `BENCH_main.json` (latest record per
//! scenario). The schema splits cleanly into two halves:
//!
//! * **Deterministic fields** — seed, scale, per-phase call counts,
//!   mechanism counters, economic health. For a fixed seed and fixed code
//!   these must reproduce *bit-for-bit* on any machine, which is what
//!   [`BenchRecord::deterministic_view`] canonicalizes and what
//!   `bench_suite compare` gates on with zero tolerance.
//! * **Timing fields** — min-of-N wall clock and per-phase quantiles.
//!   These vary run to run and machine to machine; `compare` only flags
//!   them beyond a relative margin, and never across differing core
//!   counts.
//!
//! Encoding uses the workspace's hand-rolled `fl_telemetry::json` helpers;
//! members are emitted in a fixed order and maps in sorted key order, so
//! `encode → parse → encode` is byte-stable (pinned by the round-trip
//! tests).

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use fl_auction::{EconomicHealth, MechanismStats};
use fl_telemetry::json::{self, Json};
use fl_telemetry::Snapshot;

/// Version of the record layout. Bump on any field addition/rename; the
/// compare gate refuses to diff records across versions.
pub const SCHEMA_VERSION: u64 = 1;

/// Workload scale knobs of one scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleBlock {
    /// Number of clients `I`.
    pub clients: u64,
    /// Bids per client `J`.
    pub bids_per_client: u64,
    /// Maximum horizon `T`.
    pub rounds: u64,
    /// Per-round demand `K`.
    pub k: u64,
}

/// Execution environment of one record.
#[derive(Debug, Clone, PartialEq)]
pub struct EnvBlock {
    /// Workload seed (deterministic field).
    pub seed: u64,
    /// Detected CPU cores — classification key for timing comparisons,
    /// never a deterministic field.
    pub cores: u64,
    /// Sweep worker threads the scenario pins (1 = sequential). Pinned per
    /// scenario, so deterministic.
    pub threads: u64,
    /// Whether the reduced CI scale was used (deterministic field).
    pub smoke: bool,
    /// Build identification passed via the `FL_BUILD_INFO` environment
    /// variable (e.g. `git describe` output); `"unknown"` otherwise.
    pub build: String,
    /// Workload scale (deterministic field).
    pub scale: ScaleBlock,
}

/// Wall-clock timing of the scenario's end-to-end passes.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingBlock {
    /// Number of timed passes.
    pub runs: u64,
    /// Minimum wall clock across the passes, in milliseconds — the
    /// regression-gate statistic (min-of-N is the low-noise estimator).
    pub min_ms: f64,
    /// Every pass's wall clock, in run order.
    pub runs_ms: Vec<f64>,
}

/// Aggregate of one telemetry phase (span name) inside a scenario pass.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseProfile {
    /// How many spans closed (deterministic field).
    pub calls: u64,
    /// Total milliseconds across calls (timing field).
    pub total_ms: f64,
    /// Median call duration (timing field).
    pub p50_ms: f64,
    /// 90th percentile call duration (timing field).
    pub p90_ms: f64,
    /// 99th percentile call duration (timing field).
    pub p99_ms: f64,
}

/// Named per-phase profiles, sorted by phase name.
pub type PhaseList = Vec<(String, PhaseProfile)>;

/// Named counter totals, sorted by counter name.
pub type CounterList = Vec<(String, u64)>;

/// One scenario run: the canonical record `bench_suite` appends to
/// `results/BENCH_history.jsonl`.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Layout version ([`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Scenario name (stable key across history).
    pub scenario: String,
    /// Scenario kind: `"wdp"`, `"auction"`, `"sweep"`, `"recovery"`, or
    /// `"service"`.
    pub kind: String,
    /// Execution environment.
    pub env: EnvBlock,
    /// End-to-end wall-clock timing.
    pub timing: TimingBlock,
    /// Per-phase profile from the first pass's recorder snapshot, sorted
    /// by phase name.
    pub phases: PhaseList,
    /// Every recorder counter of the first pass, sorted by name — the
    /// complete drift oracle.
    pub counters: CounterList,
    /// The stable named mechanism counters (subset of `counters`, via
    /// [`MechanismStats`]).
    pub mechanism: MechanismStats,
    /// Economic health of the chosen solution.
    pub economics: EconomicHealth,
}

impl BenchRecord {
    /// The history/summary key: scenario name, suffixed for smoke records
    /// so reduced-scale CI runs never pair with full-scale ones.
    pub fn key(&self) -> String {
        if self.env.smoke {
            format!("{}@smoke", self.scenario)
        } else {
            self.scenario.clone()
        }
    }

    /// Builds the phase and counter blocks from a recorder snapshot.
    /// `BTreeMap` iteration gives sorted keys, so the result is canonical.
    pub fn profile_from_snapshot(snapshot: &Snapshot) -> (PhaseList, CounterList) {
        let phases = snapshot
            .phases
            .iter()
            .map(|(name, stat)| {
                let t = &stat.timing_ms;
                (
                    name.clone(),
                    PhaseProfile {
                        calls: t.n as u64,
                        total_ms: t.sum,
                        p50_ms: t.p50,
                        p90_ms: t.p90,
                        p99_ms: t.p99,
                    },
                )
            })
            .collect();
        let counters = snapshot
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        (phases, counters)
    }

    /// Serializes the record as one line of canonical JSON (fixed member
    /// order, sorted map keys, no whitespace).
    pub fn to_json(&self) -> String {
        let scale = |s: &ScaleBlock| {
            json::object(&[
                ("clients".into(), s.clients.to_string()),
                ("bids_per_client".into(), s.bids_per_client.to_string()),
                ("rounds".into(), s.rounds.to_string()),
                ("k".into(), s.k.to_string()),
            ])
        };
        let env = json::object(&[
            ("seed".into(), self.env.seed.to_string()),
            ("cores".into(), self.env.cores.to_string()),
            ("threads".into(), self.env.threads.to_string()),
            ("smoke".into(), self.env.smoke.to_string()),
            ("build".into(), json::string(&self.env.build)),
            ("scale".into(), scale(&self.env.scale)),
        ]);
        let timing = json::object(&[
            ("runs".into(), self.timing.runs.to_string()),
            ("min_ms".into(), json::number(self.timing.min_ms)),
            (
                "runs_ms".into(),
                json::array(
                    &self
                        .timing
                        .runs_ms
                        .iter()
                        .map(|ms| json::number(*ms))
                        .collect::<Vec<_>>(),
                ),
            ),
        ]);
        let phases = json::object(
            &self
                .phases
                .iter()
                .map(|(name, p)| {
                    (
                        name.clone(),
                        json::object(&[
                            ("calls".into(), p.calls.to_string()),
                            ("total_ms".into(), json::number(p.total_ms)),
                            ("p50_ms".into(), json::number(p.p50_ms)),
                            ("p90_ms".into(), json::number(p.p90_ms)),
                            ("p99_ms".into(), json::number(p.p99_ms)),
                        ]),
                    )
                })
                .collect::<Vec<_>>(),
        );
        let counters = json::object(
            &self
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.to_string()))
                .collect::<Vec<_>>(),
        );
        let m = &self.mechanism;
        let mechanism = json::object(&[
            ("qualify_examined".into(), m.qualify_examined.to_string()),
            (
                "qualify_rejections".into(),
                m.qualification_rejections().to_string(),
            ),
            ("qualify_accepted".into(), m.qualify_accepted.to_string()),
            ("greedy_iterations".into(), m.greedy_iterations.to_string()),
            ("lazy_refreshes".into(), m.lazy_refreshes.to_string()),
            (
                "payment_no_runner_up".into(),
                m.payment_no_runner_up.to_string(),
            ),
            ("bisection_probes".into(), m.bisection_probes.to_string()),
            ("horizons_swept".into(), m.horizons_swept.to_string()),
            ("horizons_pruned".into(), m.horizons_pruned.to_string()),
            ("horizons_feasible".into(), m.horizons_feasible.to_string()),
            (
                "horizons_obviously_infeasible".into(),
                m.horizons_obviously_infeasible.to_string(),
            ),
            (
                "rejected_accuracy".into(),
                m.qualify_rejected_accuracy.to_string(),
            ),
            ("rejected_time".into(), m.qualify_rejected_time.to_string()),
            (
                "rejected_window".into(),
                m.qualify_rejected_window.to_string(),
            ),
            ("standby_entries".into(), m.standby_entries.to_string()),
        ]);
        let e = &self.economics;
        let economics = json::object(&[
            ("social_cost".into(), json::number(e.social_cost)),
            ("total_payment".into(), json::number(e.total_payment)),
            ("payment_overhead".into(), json::number(e.payment_overhead)),
            (
                "approx_ratio_bound".into(),
                json::number(e.approx_ratio_bound),
            ),
            (
                "approx_ratio_empirical".into(),
                json::number(e.approx_ratio_empirical),
            ),
            ("winners".into(), e.winners.to_string()),
            ("horizon".into(), e.horizon.to_string()),
            ("standby_pool".into(), e.standby_pool.to_string()),
        ]);
        json::object(&[
            ("schema_version".into(), self.schema_version.to_string()),
            ("scenario".into(), json::string(&self.scenario)),
            ("kind".into(), json::string(&self.kind)),
            ("env".into(), env),
            ("timing".into(), timing),
            ("phases".into(), phases),
            ("counters".into(), counters),
            ("mechanism".into(), mechanism),
            ("economics".into(), economics),
        ])
    }

    /// Parses a record back from its JSON line.
    ///
    /// # Errors
    ///
    /// Describes the first malformed or missing field.
    pub fn from_json(text: &str) -> Result<BenchRecord, String> {
        let doc = json::parse(text)?;
        let obj = |v: &Json, key: &str| -> Result<Json, String> {
            v.get(key).cloned().ok_or(format!("missing field {key:?}"))
        };
        let num = |v: &Json, key: &str| -> Result<f64, String> {
            obj(v, key)?.as_f64().ok_or(format!("{key:?} not a number"))
        };
        let uint = |v: &Json, key: &str| -> Result<u64, String> {
            obj(v, key)?
                .as_u64()
                .ok_or(format!("{key:?} not an unsigned integer"))
        };
        let text_field = |v: &Json, key: &str| -> Result<String, String> {
            Ok(obj(v, key)?
                .as_str()
                .ok_or(format!("{key:?} not a string"))?
                .to_string())
        };

        let schema_version = uint(&doc, "schema_version")?;
        if schema_version != SCHEMA_VERSION {
            return Err(format!(
                "schema version {schema_version} != supported {SCHEMA_VERSION}"
            ));
        }
        let env_v = obj(&doc, "env")?;
        let scale_v = obj(&env_v, "scale")?;
        let smoke = match obj(&env_v, "smoke")? {
            Json::Bool(b) => b,
            other => return Err(format!("\"smoke\" not a boolean: {other:?}")),
        };
        let env = EnvBlock {
            seed: uint(&env_v, "seed")?,
            cores: uint(&env_v, "cores")?,
            threads: uint(&env_v, "threads")?,
            smoke,
            build: text_field(&env_v, "build")?,
            scale: ScaleBlock {
                clients: uint(&scale_v, "clients")?,
                bids_per_client: uint(&scale_v, "bids_per_client")?,
                rounds: uint(&scale_v, "rounds")?,
                k: uint(&scale_v, "k")?,
            },
        };
        let timing_v = obj(&doc, "timing")?;
        let runs_ms = obj(&timing_v, "runs_ms")?
            .as_array()
            .ok_or("\"runs_ms\" not an array")?
            .iter()
            .map(|v| v.as_f64().ok_or("non-numeric entry in runs_ms"))
            .collect::<Result<Vec<f64>, _>>()?;
        let timing = TimingBlock {
            runs: uint(&timing_v, "runs")?,
            min_ms: num(&timing_v, "min_ms")?,
            runs_ms,
        };
        let phases = obj(&doc, "phases")?
            .members()
            .ok_or("\"phases\" not an object")?
            .iter()
            .map(|(name, p)| {
                Ok((
                    name.clone(),
                    PhaseProfile {
                        calls: uint(p, "calls")?,
                        total_ms: num(p, "total_ms")?,
                        p50_ms: num(p, "p50_ms")?,
                        p90_ms: num(p, "p90_ms")?,
                        p99_ms: num(p, "p99_ms")?,
                    },
                ))
            })
            .collect::<Result<Vec<_>, String>>()?;
        let counters = obj(&doc, "counters")?
            .members()
            .ok_or("\"counters\" not an object")?
            .iter()
            .map(|(name, v)| {
                Ok((
                    name.clone(),
                    v.as_u64().ok_or(format!("counter {name:?} not a u64"))?,
                ))
            })
            .collect::<Result<Vec<_>, String>>()?;
        let m = obj(&doc, "mechanism")?;
        let mechanism = MechanismStats {
            qualify_examined: uint(&m, "qualify_examined")?,
            qualify_rejected_accuracy: uint(&m, "rejected_accuracy")?,
            qualify_rejected_time: uint(&m, "rejected_time")?,
            qualify_rejected_window: uint(&m, "rejected_window")?,
            qualify_accepted: uint(&m, "qualify_accepted")?,
            greedy_iterations: uint(&m, "greedy_iterations")?,
            lazy_refreshes: uint(&m, "lazy_refreshes")?,
            payment_no_runner_up: uint(&m, "payment_no_runner_up")?,
            bisection_probes: uint(&m, "bisection_probes")?,
            horizons_swept: uint(&m, "horizons_swept")?,
            horizons_pruned: uint(&m, "horizons_pruned")?,
            horizons_feasible: uint(&m, "horizons_feasible")?,
            horizons_obviously_infeasible: uint(&m, "horizons_obviously_infeasible")?,
            standby_entries: uint(&m, "standby_entries")?,
        };
        let e = obj(&doc, "economics")?;
        let economics = EconomicHealth {
            social_cost: num(&e, "social_cost")?,
            total_payment: num(&e, "total_payment")?,
            payment_overhead: num(&e, "payment_overhead")?,
            approx_ratio_bound: num(&e, "approx_ratio_bound")?,
            approx_ratio_empirical: num(&e, "approx_ratio_empirical")?,
            winners: uint(&e, "winners")?,
            horizon: uint(&e, "horizon")?,
            standby_pool: uint(&e, "standby_pool")?,
        };
        Ok(BenchRecord {
            schema_version,
            scenario: text_field(&doc, "scenario")?,
            kind: text_field(&doc, "kind")?,
            env,
            timing,
            phases,
            counters,
            mechanism,
            economics,
        })
    }

    /// Canonical projection of every **deterministic** field — one line per
    /// field, so compare failures can cite the exact divergence.
    ///
    /// Excluded: wall-clock timing (the whole `timing` block, phase `*_ms`
    /// fields) and machine identity (`cores`, `build`). Included: seed,
    /// scale, threads, phase call counts, all counters, mechanism stats,
    /// economics (floats printed via their exact shortest round-trip form,
    /// so equality is bit-equality).
    pub fn deterministic_view(&self) -> String {
        let mut out = String::new();
        let mut line = |k: &str, v: String| {
            let _ = writeln!(out, "{k} = {v}");
        };
        line("schema_version", self.schema_version.to_string());
        line("scenario", self.scenario.clone());
        line("kind", self.kind.clone());
        line("env.seed", self.env.seed.to_string());
        line("env.threads", self.env.threads.to_string());
        line("env.smoke", self.env.smoke.to_string());
        line("env.scale.clients", self.env.scale.clients.to_string());
        line(
            "env.scale.bids_per_client",
            self.env.scale.bids_per_client.to_string(),
        );
        line("env.scale.rounds", self.env.scale.rounds.to_string());
        line("env.scale.k", self.env.scale.k.to_string());
        for (name, p) in &self.phases {
            line(&format!("phases.{name}.calls"), p.calls.to_string());
        }
        for (name, v) in &self.counters {
            line(&format!("counters.{name}"), v.to_string());
        }
        let m = &self.mechanism;
        line(
            "mechanism.greedy_iterations",
            m.greedy_iterations.to_string(),
        );
        line(
            "mechanism.qualify_rejections",
            m.qualification_rejections().to_string(),
        );
        line("mechanism.bisection_probes", m.bisection_probes.to_string());
        line("mechanism.horizons_swept", m.horizons_swept.to_string());
        line("mechanism.horizons_pruned", m.horizons_pruned.to_string());
        line("mechanism.standby_entries", m.standby_entries.to_string());
        let e = &self.economics;
        line("economics.social_cost", json::number(e.social_cost));
        line("economics.total_payment", json::number(e.total_payment));
        line(
            "economics.payment_overhead",
            json::number(e.payment_overhead),
        );
        line(
            "economics.approx_ratio_bound",
            json::number(e.approx_ratio_bound),
        );
        line(
            "economics.approx_ratio_empirical",
            json::number(e.approx_ratio_empirical),
        );
        line("economics.winners", e.winners.to_string());
        line("economics.horizon", e.horizon.to_string());
        line("economics.standby_pool", e.standby_pool.to_string());
        out
    }
}

/// Reads every record of a `BENCH_history.jsonl` file, oldest first.
/// Blank lines are skipped; a malformed line aborts with its line number.
///
/// # Errors
///
/// I/O errors and parse errors (as [`io::ErrorKind::InvalidData`]).
pub fn read_history(path: &Path) -> io::Result<Vec<BenchRecord>> {
    let text = fs::read_to_string(path)?;
    let mut records = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let record = BenchRecord::from_json(line).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}:{}: {e}", path.display(), i + 1),
            )
        })?;
        records.push(record);
    }
    Ok(records)
}

/// Appends one record as a JSON line, creating the file (and parents) on
/// first use.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn append_history(path: &Path, record: &BenchRecord) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    use std::io::Write as _;
    let mut f = fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(f, "{}", record.to_json())
}

/// Renders the `BENCH_main.json` summary: the latest record per
/// [`BenchRecord::key`], in first-seen key order.
pub fn main_summary(history: &[BenchRecord]) -> String {
    let mut order: Vec<String> = Vec::new();
    let mut latest: Vec<(String, String)> = Vec::new();
    for r in history {
        let key = r.key();
        if !order.contains(&key) {
            order.push(key.clone());
        }
        latest.retain(|(k, _)| *k != key);
        latest.push((key, r.to_json()));
    }
    let scenarios: Vec<(String, String)> = order
        .into_iter()
        .map(|key| {
            let json = latest
                .iter()
                .find(|(k, _)| *k == key)
                .expect("key recorded above")
                .1
                .clone();
            (key, json)
        })
        .collect();
    json::object(&[
        ("schema_version".into(), SCHEMA_VERSION.to_string()),
        ("scenarios".into(), json::object(&scenarios)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fully-populated record for unit tests.
    fn sample(scenario: &str, smoke: bool, cores: u64, min_ms: f64) -> BenchRecord {
        BenchRecord {
            schema_version: SCHEMA_VERSION,
            scenario: scenario.into(),
            kind: "auction".into(),
            env: EnvBlock {
                seed: 42,
                cores,
                threads: 1,
                smoke,
                build: "test".into(),
                scale: ScaleBlock {
                    clients: 10,
                    bids_per_client: 2,
                    rounds: 6,
                    k: 2,
                },
            },
            timing: TimingBlock {
                runs: 3,
                min_ms,
                runs_ms: vec![min_ms + 1.5, min_ms, min_ms + 0.25],
            },
            phases: vec![(
                "afl_run".into(),
                PhaseProfile {
                    calls: 1,
                    total_ms: min_ms,
                    p50_ms: min_ms,
                    p90_ms: min_ms,
                    p99_ms: min_ms,
                },
            )],
            counters: vec![
                ("afl.horizons_swept".into(), 5),
                ("qualify.accepted".into(), 9),
            ],
            mechanism: MechanismStats {
                horizons_swept: 5,
                qualify_accepted: 9,
                greedy_iterations: 7,
                ..MechanismStats::default()
            },
            economics: EconomicHealth {
                social_cost: 12.5,
                total_payment: 15.625,
                payment_overhead: 1.25,
                approx_ratio_bound: 3.0,
                approx_ratio_empirical: 1.1,
                winners: 3,
                horizon: 4,
                standby_pool: 6,
            },
        }
    }

    #[test]
    fn record_round_trips_byte_identically() {
        let r = sample("unit", false, 4, 10.0);
        let json = r.to_json();
        fl_telemetry::json::validate(&json).unwrap();
        let back = BenchRecord::from_json(&json).unwrap();
        assert_eq!(back, r);
        // encode → parse → encode must be byte-stable.
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn round_trip_preserves_nan_ratios_as_null() {
        let mut r = sample("unit", false, 4, 10.0);
        r.economics.approx_ratio_bound = f64::NAN;
        r.economics.approx_ratio_empirical = f64::NAN;
        let json = r.to_json();
        assert!(json.contains("\"approx_ratio_bound\":null"));
        let back = BenchRecord::from_json(&json).unwrap();
        assert!(back.economics.approx_ratio_bound.is_nan());
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn from_json_rejects_wrong_schema_version_and_missing_fields() {
        let r = sample("unit", false, 4, 10.0);
        let bumped = r
            .to_json()
            .replacen("\"schema_version\":1", "\"schema_version\":999", 1);
        assert!(BenchRecord::from_json(&bumped)
            .unwrap_err()
            .contains("schema version"));
        assert!(BenchRecord::from_json("{}").is_err());
        assert!(BenchRecord::from_json("not json").is_err());
    }

    #[test]
    fn deterministic_view_excludes_timing_and_machine_identity() {
        let mut a = sample("unit", false, 4, 10.0);
        let mut b = sample("unit", false, 8, 99.0); // different cores + timing
        b.env.build = "elsewhere".into();
        assert_eq!(a.deterministic_view(), b.deterministic_view());
        // …but a counter drift shows up.
        a.counters[0].1 += 1;
        assert_ne!(a.deterministic_view(), b.deterministic_view());
    }

    #[test]
    fn smoke_records_get_their_own_key() {
        assert_eq!(sample("s", false, 1, 1.0).key(), "s");
        assert_eq!(sample("s", true, 1, 1.0).key(), "s@smoke");
    }

    #[test]
    fn history_append_and_read_round_trip() {
        let dir = std::env::temp_dir().join("fl-bench-schema-history-test");
        std::fs::remove_dir_all(&dir).ok();
        let path = dir.join("BENCH_history.jsonl");
        let a = sample("one", false, 4, 10.0);
        let b = sample("two", true, 4, 5.0);
        append_history(&path, &a).unwrap();
        append_history(&path, &b).unwrap();
        let back = read_history(&path).unwrap();
        assert_eq!(back, vec![a, b]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn main_summary_keeps_the_latest_record_per_key() {
        let old = sample("one", false, 4, 10.0);
        let mut new = sample("one", false, 4, 8.0);
        new.economics.winners = 99;
        let other = sample("two", true, 4, 5.0);
        let summary = main_summary(&[old, other.clone(), new.clone()]);
        fl_telemetry::json::validate(&summary).unwrap();
        let doc = json::parse(&summary).unwrap();
        let scenarios = doc.get("scenarios").unwrap();
        let members = scenarios.members().unwrap();
        assert_eq!(members.len(), 2);
        assert_eq!(members[0].0, "one");
        assert_eq!(members[1].0, "two@smoke");
        assert_eq!(
            scenarios
                .get("one")
                .unwrap()
                .get("economics")
                .unwrap()
                .get("winners")
                .unwrap()
                .as_u64(),
            Some(99)
        );
    }
}

//! Ablation A1 — representative-schedule policy inside `A_winner`.
//!
//! The paper schedules each candidate bid on its *least-loaded* rounds
//! (which maximises the marginal utility `R_il(S)`). This ablation swaps
//! in an earliest-rounds policy and measures the damage: higher cost and,
//! on tight instances, outright infeasibility (the earliest rounds
//! saturate and later rounds starve).

use fl_auction::{run_auction_with, AWinner, SchedulePolicy};
use fl_bench::{results_dir, Summary, Table};
use fl_workload::WorkloadSpec;

fn main() {
    let _telemetry = fl_bench::telemetry::init("ablation_schedule");
    let seeds: Vec<u64> = (1..=5).collect();
    let spec = WorkloadSpec::paper_default().with_clients(500);

    let mut table = Table::new(["policy", "mean cost", "feasible runs"]);
    println!(
        "Ablation A1: schedule policy inside A_winner (I=500, {} seeds)",
        seeds.len()
    );
    for (name, policy) in [
        ("least-loaded (paper)", SchedulePolicy::LeastLoaded),
        ("earliest", SchedulePolicy::Earliest),
    ] {
        let solver = AWinner::new().with_policy(policy).without_certificate();
        let mut costs = Vec::new();
        let mut feasible = 0usize;
        for &seed in &seeds {
            let inst = spec.generate(seed).expect("paper spec is valid");
            if let Ok(out) = run_auction_with(&inst, &solver) {
                costs.push(out.social_cost());
                feasible += 1;
            }
        }
        table.push_row([
            name.to_string(),
            if costs.is_empty() {
                "n/a".into()
            } else {
                format!("{:.1}", Summary::of(&costs).mean)
            },
            format!("{feasible}/{}", seeds.len()),
        ]);
    }
    print!("{}", table.render());
    match table.write_csv(results_dir(), "ablation_schedule") {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
}

//! Ablation A7 — runtime coverage repair vs static over-provisioning.
//!
//! Two ways to survive dropout: buy spare capacity up front (A5's
//! `K_buy > K_need`), or buy exactly `K_need` and repair rounds at runtime
//! with the recovery layer (retries and the critically-priced standby
//! pool). This experiment runs both families under the same fault process
//! and seeds and compares total spend (procurement + repair), the fraction
//! of rounds meeting `K_need`, and the convergence round.

use fl_auction::AuctionConfig;
use fl_bench::{results_dir, Algo, Table};
use fl_sim::{DatasetSpec, FaultModel, Federation, FlJob, RecoveryPolicy};
use fl_workload::WorkloadSpec;

/// One experiment arm: how much to buy and how to repair.
struct Arm {
    label: &'static str,
    k_buy: u32,
    recovery: RecoveryPolicy,
}

/// Per-arm aggregate over all seeds.
struct ArmResult {
    label: &'static str,
    k_buy: u32,
    mean_cost: f64,
    mean_repair: f64,
    sla_pct: f64,
    convergence: Vec<f64>,
    samples: usize,
}

fn main() {
    let _telemetry = fl_bench::telemetry::init("ablation_recovery");
    let k_need = 5u32;
    let dropout = 0.3;
    let seeds: [u64; 3] = [1, 2, 3];
    let arms = [
        Arm {
            label: "none (K_buy = K_need)",
            k_buy: k_need,
            recovery: RecoveryPolicy::None,
        },
        Arm {
            label: "retry x2",
            k_buy: k_need,
            recovery: RecoveryPolicy::Retry {
                max_attempts: 2,
                backoff: 5.0,
            },
        },
        Arm {
            label: "standby",
            k_buy: k_need,
            recovery: RecoveryPolicy::Standby,
        },
        Arm {
            label: "hybrid",
            k_buy: k_need,
            recovery: RecoveryPolicy::Hybrid {
                max_attempts: 2,
                backoff: 5.0,
            },
        },
        Arm {
            label: "static K_buy = 7",
            k_buy: 7,
            recovery: RecoveryPolicy::None,
        },
        Arm {
            label: "static K_buy = 10",
            k_buy: 10,
            recovery: RecoveryPolicy::None,
        },
    ];

    println!(
        "Ablation A7: coverage repair vs over-provisioning ({:.0}% dropout, K_need = {k_need}, {} seeds)",
        dropout * 100.0,
        seeds.len()
    );
    let mut results: Vec<ArmResult> = Vec::new();
    for arm in &arms {
        let mut costs = Vec::new();
        let mut repairs = Vec::new();
        let mut met = 0usize;
        let mut total_rounds = 0usize;
        let mut convergence = Vec::new();
        for &seed in &seeds {
            let spec = WorkloadSpec::paper_default()
                .with_clients(400)
                .with_bids_per_client(4)
                .with_config(
                    AuctionConfig::builder()
                        .max_rounds(16)
                        .clients_per_round(arm.k_buy)
                        .round_time_limit(60.0)
                        .build()
                        .expect("valid config"),
                );
            let Ok(inst) = spec.generate(seed) else {
                continue;
            };
            let Ok(outcome) = Algo::Afl.run(&inst) else {
                continue;
            };
            let federation =
                Federation::generate(&DatasetSpec::default(), inst.num_clients(), seed);
            let report = FlJob::new(0.3)
                .with_faults(FaultModel::bernoulli(dropout))
                .with_recovery(arm.recovery)
                .with_coverage_floor(k_need)
                .run(&inst, &outcome, &federation, seed);
            costs.push(outcome.social_cost());
            repairs.push(report.repair_spend);
            for r in &report.rounds {
                total_rounds += 1;
                if r.coverage_gap == 0 {
                    met += 1;
                }
            }
            if let Some(t) = report.reached_at {
                convergence.push(f64::from(t));
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        results.push(ArmResult {
            label: arm.label,
            k_buy: arm.k_buy,
            mean_cost: mean(&costs),
            mean_repair: mean(&repairs),
            sla_pct: 100.0 * met as f64 / total_rounds.max(1) as f64,
            convergence,
            samples: costs.len(),
        });
    }

    let mut table = Table::new([
        "policy",
        "K_buy",
        "mean cost",
        "mean repair spend",
        "mean total spend",
        "rounds meeting K_need (%)",
        "mean convergence round",
    ]);
    for r in &results {
        let mean_conv = if r.convergence.is_empty() {
            "never".to_string()
        } else {
            format!(
                "{:.1}",
                r.convergence.iter().sum::<f64>() / r.convergence.len() as f64
            )
        };
        let fmt = |x: f64| {
            if r.samples == 0 {
                "n/a".to_string()
            } else {
                format!("{x:.1}")
            }
        };
        table.push_row([
            r.label.to_string(),
            r.k_buy.to_string(),
            fmt(r.mean_cost),
            fmt(r.mean_repair),
            fmt(r.mean_cost + r.mean_repair),
            format!("{:.1}", r.sla_pct),
            mean_conv,
        ]);
    }
    print!("{}", table.render());

    // Head-to-head: the hybrid arm's repair spend vs the *extra* up-front
    // spend of the cheapest static arm with at least its coverage.
    let baseline = results
        .iter()
        .find(|r| r.k_buy == k_need && matches!(r.samples, 1..))
        .map(|r| r.mean_cost);
    let hybrid = results.iter().find(|r| r.label == "hybrid");
    let static_match = hybrid.and_then(|h| {
        results
            .iter()
            .filter(|r| r.k_buy > k_need && r.sla_pct >= h.sla_pct - 1e-9)
            .min_by(|a, b| a.mean_cost.total_cmp(&b.mean_cost))
    });
    if let (Some(base), Some(h), Some(s)) = (baseline, hybrid, static_match) {
        let extra = s.mean_cost - base;
        println!(
            "hybrid repair spend {:.1} vs extra spend {:.1} of equivalent-coverage {} ({})",
            h.mean_repair,
            extra,
            s.label,
            if h.mean_repair <= extra {
                "repair is cheaper"
            } else {
                "over-provisioning is cheaper"
            }
        );
    } else if let Some(h) = hybrid {
        println!(
            "no static arm matched hybrid's {:.1}% coverage; hybrid repair spend {:.1}",
            h.sla_pct, h.mean_repair
        );
    }

    match table.write_csv(results_dir(), "ablation_recovery") {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
}

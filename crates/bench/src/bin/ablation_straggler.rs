//! Ablation A6 (extension) — hardware jitter and the `t_max` deadline.
//!
//! Constraint (6d) admits bids whose *nominal* round time fits `t_max`;
//! §VIII worries about "variations in the training process due to hardware
//! specifications". This experiment injects multiplicative slowdown noise
//! and measures how many bought participations actually land before the
//! deadline — and how much headroom (a tighter admission limit than the
//! true `t_max`) buys back.

use fl_auction::AuctionConfig;
use fl_bench::{results_dir, Algo, Table};
use fl_sim::{DatasetSpec, Federation, FlJob, StragglerModel};
use fl_workload::WorkloadSpec;

fn main() {
    let _telemetry = fl_bench::telemetry::init("ablation_straggler");
    let seeds: [u64; 3] = [1, 2, 3];
    let k_need = 4u32;
    let mut table = Table::new([
        "admission t_max",
        "straggle prob",
        "on-time participations (%)",
        "rounds meeting K (%)",
    ]);
    println!(
        "Ablation A6: stragglers vs admission headroom (deadline 60, {} seeds)",
        seeds.len()
    );
    // The real deadline stays 60; admission either uses the full 60 or
    // a conservative 45 (25% headroom for jitter).
    for admission in [60.0f64, 45.0] {
        for prob in [0.0f64, 0.2, 0.5] {
            let mut on_time = 0usize;
            let mut late = 0usize;
            let mut met = 0usize;
            let mut rounds_total = 0usize;
            for &seed in &seeds {
                let spec = WorkloadSpec::paper_default()
                    .with_clients(300)
                    .with_bids_per_client(4)
                    .with_config(
                        AuctionConfig::builder()
                            .max_rounds(14)
                            .clients_per_round(k_need)
                            .round_time_limit(admission)
                            .build()
                            .expect("valid config"),
                    );
                let Ok(inst) = spec.generate(seed) else {
                    continue;
                };
                let Ok(outcome) = Algo::Afl.run(&inst) else {
                    continue;
                };
                // Execution still enforces the REAL deadline of 60: rebuild
                // the same clients and bids under the true-deadline config.
                let exec = if (admission - 60.0).abs() < 1e-9 {
                    inst.clone()
                } else {
                    let true_cfg = AuctionConfig::builder()
                        .max_rounds(14)
                        .clients_per_round(k_need)
                        .round_time_limit(60.0)
                        .build()
                        .expect("valid config");
                    let mut exec = fl_auction::Instance::new(true_cfg);
                    for profile in inst.clients() {
                        exec.add_client(*profile);
                    }
                    for (r, bid) in inst.iter_bids() {
                        exec.add_bid(r.client, *bid).expect("same client ids");
                    }
                    exec
                };
                let federation =
                    Federation::generate(&DatasetSpec::default(), exec.num_clients(), seed);
                let mut job = FlJob::new(0.3);
                if prob > 0.0 {
                    job = job.with_stragglers(StragglerModel::new(prob, (1.2, 2.0)));
                }
                let report = job.run(&exec, &outcome, &federation, seed);
                for r in &report.rounds {
                    rounds_total += 1;
                    on_time += r.participants.len();
                    late += r.late.len();
                    if r.participants.len() as u32 >= k_need {
                        met += 1;
                    }
                }
            }
            let total = on_time + late;
            table.push_row([
                format!("{admission:.0}"),
                format!("{prob:.1}"),
                format!("{:.1}", 100.0 * on_time as f64 / total.max(1) as f64),
                format!("{:.1}", 100.0 * met as f64 / rounds_total.max(1) as f64),
            ]);
        }
    }
    print!("{}", table.render());
    match table.write_csv(results_dir(), "ablation_straggler") {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
}

//! `bench_suite` — the unified benchmark observatory.
//!
//! One orchestrator replaces the ad-hoc `bench_afl` / `bench_sweep` /
//! `perf_probe` binaries: it runs the curated scenario set (paper-scale
//! Fig. 3/5 settings, stress scale, sequential vs parallel sweep,
//! recovery-enabled pipeline) through the real entry points with the
//! fl-telemetry recorder installed, and emits one canonical
//! schema-versioned record per scenario.
//!
//! Artifacts:
//!
//! * `results/BENCH_history.jsonl` — every run ever appended (the
//!   trajectory);
//! * `BENCH_main.json` (repo root) — the latest record per scenario;
//! * `results/REPORT_perf.md` — the rendered dashboard (`report`).
//!
//! Subcommands:
//!
//! ```text
//! bench_suite [--smoke] [--runs N] [--scenario NAME]...   run + append + summarize
//! bench_suite compare [--margin F] [--no-timing]          gate on the last two history
//!                     [--baseline A --current B]          entries per scenario (or two files)
//! bench_suite report                                      render results/REPORT_perf.md
//! bench_suite list                                        print the scenario set
//! ```
//!
//! Every scenario is seeded; two same-seed runs must agree bit-for-bit on
//! all non-timing fields (the suite itself verifies this across its timed
//! passes and aborts on divergence). `compare` enforces the same property
//! across history — and never diffs timing between records from differing
//! core counts. Set `FL_BUILD_INFO` (e.g. to `git describe` output) to
//! label records with their build.

use std::path::PathBuf;
use std::process::ExitCode;

use fl_bench::compare::{compare_history, compare_records, verdict, CompareOpts, Severity};
use fl_bench::schema::{append_history, main_summary, read_history, BenchRecord};
use fl_bench::suite::{find_scenario, run_scenario, scenarios};
use fl_bench::{results_dir, Table};

fn history_path() -> PathBuf {
    results_dir().join("BENCH_history.jsonl")
}

fn main_path() -> PathBuf {
    // results_dir() is <workspace>/results; BENCH_main.json sits at the root.
    results_dir()
        .parent()
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
        .join("BENCH_main.json")
}

fn report_path() -> PathBuf {
    results_dir().join("REPORT_perf.md")
}

/// Reads `--flag value` style options out of the argument list.
struct Args {
    raw: Vec<String>,
}

impl Args {
    fn new() -> Args {
        Args {
            raw: std::env::args().skip(1).collect(),
        }
    }

    fn has(&self, flag: &str) -> bool {
        self.raw.iter().any(|a| a == flag)
    }

    fn value_of(&self, flag: &str) -> Option<&str> {
        self.raw
            .iter()
            .position(|a| a == flag)
            .and_then(|i| self.raw.get(i + 1))
            .map(String::as_str)
    }

    fn values_of(&self, flag: &str) -> Vec<&str> {
        let mut out = Vec::new();
        for (i, a) in self.raw.iter().enumerate() {
            if a == flag {
                if let Some(v) = self.raw.get(i + 1) {
                    out.push(v.as_str());
                }
            }
        }
        out
    }

    fn subcommand(&self) -> Option<&str> {
        self.raw
            .first()
            .map(String::as_str)
            .filter(|s| !s.starts_with("--"))
    }
}

fn cmd_run(args: &Args) -> ExitCode {
    let _telemetry = fl_bench::telemetry::init("bench_suite");
    let smoke = args.has("--smoke");
    let runs: usize = args
        .value_of("--runs")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let requested = args.values_of("--scenario");
    let selected: Vec<_> = scenarios()
        .into_iter()
        .filter(|s| requested.is_empty() || requested.contains(&s.name))
        .collect();
    if selected.is_empty() {
        eprintln!("bench_suite: no scenario matches {requested:?} (see `bench_suite list`)");
        return ExitCode::FAILURE;
    }
    println!(
        "BENCH_suite: {} scenario(s), {} timed pass(es) each{}",
        selected.len(),
        runs.max(2),
        if smoke { ", smoke scale" } else { "" }
    );

    let mut table = Table::new([
        "scenario",
        "kind",
        "min_ms",
        "social_cost",
        "overhead",
        "approx_emp",
        "winners",
    ]);
    for scenario in &selected {
        match run_scenario(scenario, smoke, runs) {
            Ok(record) => {
                let e = &record.economics;
                table.push_row(vec![
                    record.key(),
                    record.kind.clone(),
                    format!("{:.3}", record.timing.min_ms),
                    format!("{:.4}", e.social_cost),
                    format!("{:.4}", e.payment_overhead),
                    if e.approx_ratio_empirical.is_finite() {
                        format!("{:.4}", e.approx_ratio_empirical)
                    } else {
                        "n/a".into()
                    },
                    e.winners.to_string(),
                ]);
                if let Err(e) = append_history(&history_path(), &record) {
                    eprintln!("bench_suite: cannot append history: {e}");
                    return ExitCode::FAILURE;
                }
            }
            Err(e) => {
                eprintln!("bench_suite: scenario {} failed:\n{e}", scenario.name);
                return ExitCode::FAILURE;
            }
        }
    }
    print!("{}", table.render());
    println!("determinism: OK — every scenario's passes agreed on all non-timing fields");

    // Rewrite the repo-root summary from the full history.
    let history = match read_history(&history_path()) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("bench_suite: cannot re-read history: {e}");
            return ExitCode::FAILURE;
        }
    };
    let summary = main_summary(&history);
    if let Err(e) = fl_telemetry::json::validate(&summary) {
        eprintln!("bench_suite: summary failed validation: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(main_path(), &summary) {
        eprintln!("bench_suite: cannot write {}: {e}", main_path().display());
        return ExitCode::FAILURE;
    }
    println!("wrote {}", history_path().display());
    println!("wrote {}", main_path().display());
    ExitCode::SUCCESS
}

fn load_single(path: &str) -> Result<BenchRecord, String> {
    // Accept either a bare record file or a .jsonl (last record wins).
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let last = text
        .lines()
        .rfind(|l| !l.trim().is_empty())
        .ok_or(format!("{path}: empty"))?;
    BenchRecord::from_json(last).map_err(|e| format!("{path}: {e}"))
}

fn cmd_compare(args: &Args) -> ExitCode {
    let opts = CompareOpts {
        timing: !args.has("--no-timing"),
        timing_margin: args
            .value_of("--margin")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.25),
    };
    let findings = match (args.value_of("--baseline"), args.value_of("--current")) {
        (Some(base), Some(cur)) => {
            let (base, cur) = match (load_single(base), load_single(cur)) {
                (Ok(b), Ok(c)) => (b, c),
                (Err(e), _) | (_, Err(e)) => {
                    eprintln!("bench_suite compare: {e}");
                    return ExitCode::FAILURE;
                }
            };
            compare_records(&base, &cur, opts)
        }
        (None, None) => {
            let path = history_path();
            let history = match read_history(&path) {
                Ok(h) => h,
                Err(e) => {
                    eprintln!("bench_suite compare: {e}");
                    return ExitCode::FAILURE;
                }
            };
            compare_history(&history, opts)
        }
        _ => {
            eprintln!("bench_suite compare: --baseline and --current must be given together");
            return ExitCode::FAILURE;
        }
    };

    for f in &findings {
        let tag = match f.severity {
            Severity::Drift => "DRIFT",
            Severity::Regression => "REGRESSION",
            Severity::Note => "note",
        };
        println!("[{tag}] {}: {}", f.key, f.message);
    }
    if verdict(&findings) {
        eprintln!("bench_suite compare: FAILED");
        ExitCode::FAILURE
    } else {
        println!(
            "compare: OK ({} finding(s), none gating; timing margin {:.0}%{})",
            findings.len(),
            opts.timing_margin * 100.0,
            if opts.timing { "" } else { ", timing disabled" }
        );
        ExitCode::SUCCESS
    }
}

fn cmd_report() -> ExitCode {
    let history = match read_history(&history_path()) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("bench_suite report: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut md = fl_bench::trajectory::render(&history);
    // Re-verify the "≤ 3 % overhead with sinks disabled" claim live, at
    // the winner_fig3 full scale, and print the number into the report.
    let fig3 = find_scenario("winner_fig3").expect("winner_fig3 is in the curated set");
    match fl_bench::overhead::measure(&fig3.full, 5) {
        Ok(r) => md.push_str(&fl_bench::trajectory::telemetry_overhead_section(&r)),
        Err(e) => eprintln!("bench_suite report: overhead measurement skipped: {e}"),
    }
    if let Err(e) = std::fs::write(report_path(), &md) {
        eprintln!(
            "bench_suite report: cannot write {}: {e}",
            report_path().display()
        );
        return ExitCode::FAILURE;
    }
    println!("wrote {}", report_path().display());
    ExitCode::SUCCESS
}

fn cmd_list() -> ExitCode {
    let mut table = Table::new([
        "scenario",
        "kind",
        "full scale",
        "smoke scale",
        "what it measures",
    ]);
    for s in scenarios() {
        let fmt = |sc: fl_bench::suite::Scale| {
            format!(
                "I={} J={} T={} K={}",
                sc.clients, sc.bids_per_client, sc.rounds, sc.k
            )
        };
        table.push_row(vec![
            s.name.to_string(),
            s.kind.tag().to_string(),
            fmt(s.full),
            fmt(s.smoke),
            s.summary.to_string(),
        ]);
    }
    print!("{}", table.render());
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = Args::new();
    match args.subcommand() {
        None | Some("run") => cmd_run(&args),
        Some("compare") => cmd_compare(&args),
        Some("report") => cmd_report(),
        Some("list") => cmd_list(),
        Some(other) => {
            // Validate scenario names early for a friendlier error.
            if find_scenario(other).is_some() {
                eprintln!("bench_suite: to run one scenario use `--scenario {other}`");
            } else {
                eprintln!("bench_suite: unknown subcommand {other:?} (run|compare|report|list)");
            }
            ExitCode::FAILURE
        }
    }
}

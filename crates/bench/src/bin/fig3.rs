//! Fig. 3 — performance ratio of `A_winner` under different numbers of
//! global iterations `T̂_g` and bids per client `J`.
//!
//! Paper setting: all bids pre-qualified (constraints (6b)/(6d) assumed
//! satisfied); ratio = `A_winner` cost / optimal cost. The paper reports
//! ratios < 1.3, decreasing in `J` and increasing in `T̂_g`.
//!
//! Scale note: the optimum comes from our branch-and-bound, so the sweep
//! runs at `I = 20`, `K = 3` (the paper used MATLAB's ILP solver; see
//! DESIGN.md substitutions). Pass `--full` for a wider sweep.

use fl_auction::{AWinner, WdpSolver};
use fl_bench::{gen_prequalified_wdp, results_dir, Summary, Table};
use fl_exact::ExactSolver;

fn main() {
    let _telemetry = fl_bench::telemetry::init("fig3");
    let full = std::env::args().any(|a| a == "--full");
    let horizons: Vec<u32> = if full {
        vec![4, 6, 8, 10, 12, 14]
    } else {
        vec![4, 6, 8, 10, 12]
    };
    let js: Vec<u32> = vec![2, 3, 4];
    let seeds: Vec<u64> = if full {
        (0..20).collect()
    } else {
        (0..10).collect()
    };
    let (clients, k) = (30u32, 3u32);

    let mut table = Table::new(
        std::iter::once("T_g".to_string()).chain(js.iter().map(|j| format!("ratio(J={j})"))),
    );
    println!(
        "Fig. 3: A_winner performance ratio (I={clients}, K={k}, {} seeds)",
        seeds.len()
    );
    for &h in &horizons {
        let mut row = vec![h.to_string()];
        for &j in &js {
            if 2 * j > h {
                row.push("—".into());
                continue;
            }
            let mut ratios = Vec::new();
            let mut skipped = 0usize;
            for &seed in &seeds {
                let wdp = gen_prequalified_wdp(
                    seed * 1000 + u64::from(h) * 10 + u64::from(j),
                    clients,
                    j,
                    h,
                    k,
                );
                let greedy = AWinner::new().solve_wdp(&wdp);
                let opt = ExactSolver::new()
                    .with_node_budget(2_000_000)
                    .solve_wdp(&wdp);
                match (greedy, opt) {
                    (Ok(g), Ok(o)) if o.cost() > 0.0 => ratios.push(g.cost() / o.cost()),
                    _ => skipped += 1,
                }
            }
            if ratios.is_empty() {
                row.push(format!("n/a ({skipped} skipped)"));
            } else {
                let s = Summary::of(&ratios);
                row.push(format!("{:.3}", s.mean));
            }
        }
        table.push_row(row);
    }
    print!("{}", table.render());
    match table.write_csv(results_dir(), "fig3") {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
}

//! Fig. 8 — running time of `A_FL` and `A_online` under different numbers
//! of clients.
//!
//! Paper setting: `J = 10`, `I` up to 9000, mean of 5 runs (MATLAB tic/toc
//! on an i7-4270HQ). Absolute numbers are incomparable (this is Rust); the
//! *shape* to reproduce: `A_FL` grows mildly with `I`, runs faster than
//! `A_online`, and finishes a 9000-client instance comfortably.

use fl_bench::{results_dir, timed, Algo, Summary, Table};
use fl_workload::WorkloadSpec;

fn main() {
    let _telemetry = fl_bench::telemetry::init("fig8");
    let full = std::env::args().any(|a| a == "--full");
    let i_values: Vec<usize> = if full {
        vec![1000, 3000, 5000, 7000, 9000]
    } else {
        vec![1000, 2000, 3000]
    };
    let reps = if full { 5 } else { 3 };

    let mut table = Table::new(["I", "A_FL (s)", "A_online (s)"]);
    println!("Fig. 8: running time vs number of clients (J=10, mean of {reps} runs)");
    for &i in &i_values {
        let spec = WorkloadSpec::paper_default()
            .with_clients(i)
            .with_bids_per_client(10);
        let mut row = vec![i.to_string()];
        for algo in [Algo::Afl, Algo::Online] {
            let mut secs = Vec::new();
            for rep in 0..reps {
                let inst = spec.generate(rep as u64 + 1).expect("paper spec is valid");
                let (result, elapsed) = timed(|| algo.run(&inst));
                if result.is_ok() {
                    secs.push(elapsed.as_secs_f64());
                }
            }
            row.push(if secs.is_empty() {
                "n/a".into()
            } else {
                format!("{:.3}", Summary::of(&secs).mean)
            });
        }
        table.push_row(row);
        println!("  I = {i} done");
    }
    print!("{}", table.render());
    match table.write_csv(results_dir(), "fig8") {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
}

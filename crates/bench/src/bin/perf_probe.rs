//! Quick wall-clock probe (not a paper figure): lazy vs full-scan
//! A_winner, and A_FL end-to-end at paper scale.
use fl_auction::{AWinner, WdpSolver};
use fl_bench::{gen_prequalified_wdp, timed, Algo};
use fl_workload::WorkloadSpec;

fn main() {
    let _telemetry = fl_bench::telemetry::init("perf_probe");
    let wdp = gen_prequalified_wdp(7, 1000, 5, 30, 20);
    let (a, ta) = timed(|| AWinner::new().without_certificate().solve_wdp(&wdp));
    let (b, tb) = timed(|| {
        AWinner::new()
            .with_full_scan()
            .without_certificate()
            .solve_wdp(&wdp)
    });
    println!(
        "A_winner I=1000 J=5 T=30 K=20: lazy {:.3}s vs full {:.3}s ({} vs {})",
        ta.as_secs_f64(),
        tb.as_secs_f64(),
        a.map(|s| s.cost()).unwrap_or(f64::NAN),
        b.map(|s| s.cost()).unwrap_or(f64::NAN),
    );
    for clients in [1000usize, 3000] {
        let inst = WorkloadSpec::paper_default()
            .with_clients(clients)
            .generate(1)
            .unwrap();
        let (r, d) = timed(|| Algo::Afl.run(&inst));
        println!(
            "A_FL I={clients}: cost {:.1} in {:.2}s",
            r.map(|o| o.social_cost()).unwrap_or(f64::NAN),
            d.as_secs_f64()
        );
    }
}

//! Fig. 7 — social cost at different *fixed* numbers of global iterations
//! `T̂_g ∈ [T_0, T]`.
//!
//! The paper shows every algorithm except FCFS dipping to a minimum
//! (reported at `T̂_g = 26`) before communication cost dominates. That dip
//! requires claimed costs correlated with per-round computation /
//! communication time (see `fl_workload::CostModel`), so this binary runs
//! the sweep under **both** cost models:
//!
//! * `uniform` — the literal §VII-A `b ~ U[10, 50]`;
//! * `timeprop` — the energy-proportional reconstruction.
//!
//! Both exhibit the dip-then-rise shape; the uniform model's minimum sits
//! at a smaller `T̂_g` than the paper's 26 (see EXPERIMENTS.md).

use fl_auction::{min_horizon, qualify};
use fl_bench::{results_dir, Algo, Summary, Table};
use fl_workload::{CostModel, WorkloadSpec};

fn run_model(name: &str, spec: &WorkloadSpec, seeds: &[u64], step: u32) -> Table {
    let mut table = Table::new(
        std::iter::once("T_g".to_string()).chain(Algo::ALL.iter().map(|a| a.name().to_string())),
    );
    // T_0 depends on θ_min of the realised instance; compute from seed 0's
    // instance (θ range is identical across seeds).
    let probe = spec.generate(seeds[0]).expect("spec is valid");
    let t0 = min_horizon(&probe).expect("instance has bids");
    let t_max = spec.config.max_rounds();
    let mut best = (0u32, f64::INFINITY);
    for horizon in (t0..=t_max).step_by(step as usize) {
        let mut row = vec![horizon.to_string()];
        for algo in Algo::ALL {
            let mut costs = Vec::new();
            for &seed in seeds {
                let inst = spec.generate(seed).expect("spec is valid");
                let wdp = qualify(&inst, horizon);
                if let Ok(sol) = algo.solve_wdp(&wdp) {
                    costs.push(sol.cost());
                }
            }
            if costs.is_empty() {
                row.push("n/a".into());
            } else {
                let mean = Summary::of(&costs).mean;
                if algo == Algo::Afl && mean < best.1 {
                    best = (horizon, mean);
                }
                row.push(format!("{mean:.1}"));
            }
        }
        table.push_row(row);
    }
    println!(
        "[{name}] A_FL minimum at T_g = {} (cost {:.1})",
        best.0, best.1
    );
    table
}

fn main() {
    let _telemetry = fl_bench::telemetry::init("fig7");
    let full = std::env::args().any(|a| a == "--full");
    let seeds: Vec<u64> = if full { vec![1, 2, 3] } else { vec![1] };
    let step = if full { 1 } else { 3 };

    println!("Fig. 7: social cost at fixed T_g (I=1000, J=5)");
    for (name, model) in [
        ("uniform", CostModel::UniformTotal),
        ("timeprop", CostModel::TimeProportional { unit: (0.5, 2.5) }),
    ] {
        let spec = WorkloadSpec::paper_default().with_cost_model(model);
        let table = run_model(name, &spec, &seeds, step);
        print!("{}", table.render());
        match table.write_csv(results_dir(), &format!("fig7_{name}")) {
            Ok(p) => println!("wrote {}\n", p.display()),
            Err(e) => eprintln!("could not write CSV: {e}"),
        }
    }
}

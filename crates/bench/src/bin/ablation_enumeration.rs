//! Ablation A2 — the value of enumerating `T̂_g`.
//!
//! §II criticises prior work for fixing the number of global iterations
//! upfront. This ablation quantifies that: `A_FL`'s full enumeration
//! versus solving only at `T̂_g = T` (the announced maximum) and only at
//! `T̂_g = T_0` (the smallest admissible horizon).

use fl_auction::{min_horizon, qualify, AWinner, WdpSolver};
use fl_bench::{results_dir, Algo, Summary, Table};
use fl_workload::{CostModel, WorkloadSpec};

fn main() {
    let _telemetry = fl_bench::telemetry::init("ablation_enumeration");
    let seeds: Vec<u64> = (1..=5).collect();
    // The time-proportional cost model makes the horizon choice
    // interesting (the optimum sits strictly inside [T_0, T]).
    let spec = WorkloadSpec::paper_default()
        .with_cost_model(CostModel::TimeProportional { unit: (0.5, 2.5) });

    let mut enumerated = Vec::new();
    let mut at_t0 = Vec::new();
    let mut at_t_max = Vec::new();
    for &seed in &seeds {
        let inst = spec.generate(seed).expect("paper spec is valid");
        if let Ok(out) = Algo::Afl.run(&inst) {
            enumerated.push(out.social_cost());
        }
        let t0 = min_horizon(&inst).expect("instance has bids");
        let solver = AWinner::new().without_certificate();
        if let Ok(sol) = solver.solve_wdp(&qualify(&inst, t0)) {
            at_t0.push(sol.cost());
        }
        if let Ok(sol) = solver.solve_wdp(&qualify(&inst, inst.config().max_rounds())) {
            at_t_max.push(sol.cost());
        }
    }

    let mut table = Table::new(["strategy", "mean cost"]);
    for (name, list) in [
        ("enumerate T_g (A_FL)", &enumerated),
        ("fixed T_g = T_0", &at_t0),
        ("fixed T_g = T", &at_t_max),
    ] {
        table.push_row([
            name.to_string(),
            if list.is_empty() {
                "infeasible".into()
            } else {
                format!("{:.1}", Summary::of(list).mean)
            },
        ]);
    }
    println!(
        "Ablation A2: horizon enumeration vs fixed horizon ({} seeds)",
        seeds.len()
    );
    print!("{}", table.render());
    match table.write_csv(results_dir(), "ablation_enumeration") {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
}

//! Fig. 9 — payment versus claimed cost of every winning bid.
//!
//! One default-sized `A_FL` run; the paper's scatter shows payment ≥
//! claimed cost for every winner (individual rationality, Theorem 2).
//! The CSV written here is the scatter's raw data.

use fl_auction::verify::ir_violations;
use fl_bench::{results_dir, Algo, Table};
use fl_workload::WorkloadSpec;

fn main() {
    let _telemetry = fl_bench::telemetry::init("fig9");
    let inst = WorkloadSpec::paper_default()
        .generate(1)
        .expect("paper spec is valid");
    let outcome = Algo::Afl.run(&inst).expect("default instance is feasible");

    let mut table = Table::new(["winner", "claimed_cost", "payment", "utility"]);
    for (idx, w) in outcome.solution().winners().iter().enumerate() {
        table.push_row([
            idx.to_string(),
            format!("{:.2}", w.price),
            format!("{:.2}", w.payment),
            format!("{:.2}", w.utility()),
        ]);
    }
    let violations = ir_violations(outcome.solution());
    let total_paid = outcome.solution().total_payment();
    println!(
        "Fig. 9: {} winners, social cost {:.1}, total payment {:.1}",
        outcome.solution().winners().len(),
        outcome.social_cost(),
        total_paid
    );
    println!("individual-rationality violations: {}", violations.len());
    assert!(violations.is_empty(), "Theorem 2 must hold: {violations:?}");
    // Print only the first rows on the console; the CSV has everything.
    let preview: Vec<String> = table.render().lines().take(12).map(String::from).collect();
    println!("{}", preview.join("\n"));
    println!("... ({} winners total)", table.len());
    match table.write_csv(results_dir(), "fig9") {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
}

//! Fig. 5 — social cost under different numbers of clients `I`.
//!
//! Paper defaults (`J = 5`, `T = 50`, `K = 20`); the paper reports `A_FL`
//! lowest everywhere, with its cost falling slightly as `I` grows (more
//! clients → higher probability of cheap bids).

use fl_bench::{par_map, results_dir, Algo, Summary, Table};
use fl_workload::WorkloadSpec;

fn main() {
    let _telemetry = fl_bench::telemetry::init("fig5");
    let full = std::env::args().any(|a| a == "--full");
    let i_values: Vec<usize> = if full {
        vec![1000, 3000, 5000, 7000, 9000]
    } else {
        vec![1000, 2000, 3000]
    };
    let seeds: Vec<u64> = vec![1, 2, 3];

    let mut table = Table::new(
        std::iter::once("I".to_string()).chain(Algo::ALL.iter().map(|a| a.name().to_string())),
    );
    println!(
        "Fig. 5: social cost vs number of clients ({} seeds each)",
        seeds.len()
    );
    let rows = par_map(i_values.clone(), |i| {
        let spec = WorkloadSpec::paper_default().with_clients(i);
        let mut row = vec![i.to_string()];
        for algo in Algo::ALL {
            let mut costs = Vec::new();
            for &seed in &seeds {
                let inst = spec.generate(seed).expect("paper spec is valid");
                if let Ok(out) = algo.run(&inst) {
                    costs.push(out.social_cost());
                }
            }
            row.push(if costs.is_empty() {
                "n/a".into()
            } else {
                format!("{:.1}", Summary::of(&costs).mean)
            });
        }
        println!("  I = {i} done");
        row
    });
    for row in rows {
        table.push_row(row);
    }
    print!("{}", table.render());
    match table.write_csv(results_dir(), "fig5") {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
}

//! `bench_afl` — instrumented end-to-end profile of the full pipeline.
//!
//! Runs a fixed-seed workload through the whole stack — `A_FL`
//! (qualification, greedy winner determination, critical-value payments,
//! dual certificate), Myerson threshold re-pricing, standby-pool
//! construction, and the FedAvg simulator under Bernoulli dropout with
//! standby recovery — **twice**, each pass under its own fresh
//! [`Recorder`]. The two traces must agree on everything except
//! wall-clock timing (span tree, counters, gauges, histogram summaries,
//! messages); any divergence is a determinism bug and fails the run.
//!
//! Artifacts:
//!
//! * `results/BENCH_afl.json` — the first pass's perf snapshot
//!   (per-phase timing quantiles, counters, gauges, histograms);
//! * `results/telemetry/bench_afl.jsonl` — the raw event trace from the
//!   process-wide sinks installed by [`fl_bench::telemetry::init`].
//!
//! Flags: `--smoke` (CI scale), `--quiet` (no stderr logger), and the
//! `FL_LOG` environment variable for stderr verbosity.

use std::process::ExitCode;
use std::sync::Arc;

use fl_auction::truthful::myerson_payments;
use fl_auction::{run_auction, AuctionConfig};
use fl_bench::{results_dir, wdp_at, Table};
use fl_sim::{DatasetSpec, FaultModel, Federation, FlJob, RecoveryPolicy};
use fl_telemetry::{install_local, Recorder, Snapshot};
use fl_workload::WorkloadSpec;

const SEED: u64 = 42;
/// Payment-bisection cap — safely above the workload's price range.
const CAP: f64 = 500.0;

/// Workload scale: the default mirrors the recovery-ablation setting;
/// `--smoke` shrinks it for CI.
struct Scale {
    clients: usize,
    bids_per_client: u32,
    rounds: u32,
    k: u32,
}

impl Scale {
    fn new(smoke: bool) -> Scale {
        if smoke {
            Scale {
                clients: 60,
                bids_per_client: 3,
                rounds: 10,
                k: 3,
            }
        } else {
            Scale {
                clients: 200,
                bids_per_client: 4,
                rounds: 16,
                k: 5,
            }
        }
    }

    fn spec(&self) -> WorkloadSpec {
        WorkloadSpec::paper_default()
            .with_clients(self.clients)
            .with_bids_per_client(self.bids_per_client)
            .with_config(
                AuctionConfig::builder()
                    .max_rounds(self.rounds)
                    .clients_per_round(self.k)
                    .round_time_limit(60.0)
                    .build()
                    .expect("valid config"),
            )
    }
}

/// One full pipeline pass under a fresh thread-local recorder.
fn profiled_pass(scale: &Scale) -> Snapshot {
    let recorder = Arc::new(Recorder::default());
    let guard = install_local(recorder.clone());

    let inst = scale.spec().generate(SEED).expect("workload generates");
    let outcome = run_auction(&inst).expect("the paper workload is feasible");

    // Exact threshold re-pricing of every winner (Myerson bisection).
    let wdp = wdp_at(&inst, outcome.horizon());
    let repriced = myerson_payments(&wdp, outcome.solution(), CAP, 1e-7);

    // Standby pool + simulated execution under dropout with repair.
    let pool = outcome.standby_pool(&inst);
    let federation = Federation::generate(&DatasetSpec::default(), inst.num_clients(), SEED);
    let report = FlJob::new(0.3)
        .with_faults(FaultModel::bernoulli(0.2))
        .with_recovery(RecoveryPolicy::Standby)
        .with_coverage_floor(scale.k)
        .run(&inst, &outcome, &federation, SEED);

    assert_eq!(report.rounds.len() as u32, outcome.horizon());
    assert_eq!(repriced.len(), outcome.solution().winners().len());
    assert!(!pool.is_empty(), "losers must back the chosen horizon");

    drop(guard);
    recorder.snapshot()
}

/// Fields of a snapshot that must reproduce bit-for-bit under the same
/// seed. Wall-clock timing (phases, span `elapsed`) is deliberately
/// excluded.
fn deterministic_view(s: &Snapshot) -> String {
    // tree_string() is timing-free; counters/gauges/histograms are data.
    format!(
        "{}\ncounters: {:?}\ngauges: {:?}\nhistograms: {:?}\nmessages: {:?}",
        s.tree_string(),
        s.counters,
        s.gauges,
        s.histograms,
        s.messages
    )
}

fn main() -> ExitCode {
    let telemetry = fl_bench::telemetry::init("bench_afl");
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = Scale::new(smoke);
    println!(
        "BENCH_afl: instrumented A_FL → simulator profile (I={}, J={}, T={}, K={}, seed={SEED}{})",
        scale.clients,
        scale.bids_per_client,
        scale.rounds,
        scale.k,
        if smoke { ", smoke" } else { "" }
    );

    let first = profiled_pass(&scale);
    let second = profiled_pass(&scale);

    let a = deterministic_view(&first);
    let b = deterministic_view(&second);
    if a != b {
        eprintln!("BENCH_afl: two same-seed passes disagree on timing-free telemetry:");
        eprintln!("--- first ---\n{a}\n--- second ---\n{b}");
        return ExitCode::FAILURE;
    }
    println!(
        "reproducibility: OK — {} spans, {} counters, {} histograms identical across both passes",
        first.phases.values().map(|p| p.timing_ms.n).sum::<usize>(),
        first.counters.len(),
        first.histograms.len()
    );

    let mut table = Table::new(["phase", "spans", "total_ms", "p50_ms", "p99_ms"]);
    for (name, stat) in &first.phases {
        let t = &stat.timing_ms;
        table.push_row(vec![
            name.clone(),
            t.n.to_string(),
            format!("{:.3}", t.sum),
            format!("{:.3}", t.p50),
            format!("{:.3}", t.p99),
        ]);
    }
    print!("{}", table.render());

    let mut counters = Table::new(["counter", "total"]);
    for (name, value) in &first.counters {
        counters.push_row(vec![name.clone(), value.to_string()]);
    }
    print!("{}", counters.render());

    match fl_bench::telemetry::write_results_json("BENCH_afl", &first.to_json()) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("BENCH_afl: could not write perf snapshot: {e}");
            return ExitCode::FAILURE;
        }
    }
    telemetry.flush();
    println!(
        "trace: {}",
        results_dir()
            .join("telemetry")
            .join("bench_afl.jsonl")
            .display()
    );
    ExitCode::SUCCESS
}

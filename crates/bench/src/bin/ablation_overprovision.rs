//! Ablation A5 (extension) — buying robustness against dropout.
//!
//! The paper's future work (§VIII) worries about clients dropping out
//! mid-job. The auction offers a lever the paper doesn't explore: *buy
//! more than you need*. This experiment fixes the model's true requirement
//! at `K_need` participants per round, lets the server procure
//! `K_buy ≥ K_need`, injects dropout, and measures what the extra spend
//! actually buys: the fraction of rounds that still meet `K_need` and the
//! convergence round.

use fl_auction::AuctionConfig;
use fl_bench::{results_dir, Algo, Table};
use fl_sim::{DatasetSpec, DropoutModel, Federation, FlJob};
use fl_workload::WorkloadSpec;

fn main() {
    let _telemetry = fl_bench::telemetry::init("ablation_overprovision");
    let k_need = 5u32;
    let dropout = 0.3;
    let seeds: [u64; 3] = [1, 2, 3];
    let mut table = Table::new([
        "K_buy",
        "mean cost",
        "rounds meeting K_need (%)",
        "mean convergence round",
    ]);
    println!(
        "Ablation A5: over-provisioning vs {:.0}% dropout (K_need = {k_need}, {} seeds)",
        dropout * 100.0,
        seeds.len()
    );
    for k_buy in [5u32, 7, 10, 15] {
        let mut costs = Vec::new();
        let mut met = 0usize;
        let mut total_rounds = 0usize;
        let mut convergence = Vec::new();
        for &seed in &seeds {
            let spec = WorkloadSpec::paper_default()
                .with_clients(400)
                .with_bids_per_client(4)
                .with_config(
                    AuctionConfig::builder()
                        .max_rounds(16)
                        .clients_per_round(k_buy)
                        .round_time_limit(60.0)
                        .build()
                        .expect("valid config"),
                );
            let Ok(inst) = spec.generate(seed) else {
                continue;
            };
            let Ok(outcome) = Algo::Afl.run(&inst) else {
                continue;
            };
            costs.push(outcome.social_cost());
            let federation =
                Federation::generate(&DatasetSpec::default(), inst.num_clients(), seed);
            let report = FlJob::new(0.3)
                .with_dropout(DropoutModel::new(dropout))
                .run(&inst, &outcome, &federation, seed);
            for r in &report.rounds {
                total_rounds += 1;
                if r.participants.len() as u32 >= k_need {
                    met += 1;
                }
            }
            if let Some(t) = report.reached_at {
                convergence.push(f64::from(t));
            }
        }
        // An empty sample set has no mean; "n/a" beats a misleading 0.0.
        let mean = |v: &[f64]| {
            if v.is_empty() {
                "n/a".to_string()
            } else {
                format!("{:.1}", v.iter().sum::<f64>() / v.len() as f64)
            }
        };
        table.push_row([
            k_buy.to_string(),
            mean(&costs),
            format!("{:.1}", 100.0 * met as f64 / total_rounds.max(1) as f64),
            if convergence.is_empty() {
                "never".into()
            } else {
                mean(&convergence)
            },
        ]);
    }
    print!("{}", table.render());
    match table.write_csv(results_dir(), "ablation_overprovision") {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
}

//! Fig. 4 — performance ratio of `A_FL` and the three benchmarks under
//! different numbers of clients `I` and bids per client `J`.
//!
//! Ratio = algorithm's social cost / exact optimum's social cost, with the
//! full outer `T̂_g` enumeration on both sides. The paper reports `A_FL`'s
//! ratio as the smallest and largely insensitive to `I` and `J`.
//!
//! Scale note: the optimum is branch-and-bound, so this runs at `T = 10`,
//! `K = 2` with tens of clients (see DESIGN.md substitutions).

use fl_auction::{run_auction_with, AuctionConfig};
use fl_bench::{results_dir, Algo, Summary, Table};
use fl_exact::ExactSolver;
use fl_workload::WorkloadSpec;

fn spec(i: usize, j: u32) -> WorkloadSpec {
    WorkloadSpec::paper_default()
        .with_clients(i)
        .with_bids_per_client(j)
        .with_config(
            AuctionConfig::builder()
                .max_rounds(10)
                .clients_per_round(2)
                .round_time_limit(60.0)
                .build()
                .expect("static config is valid"),
        )
}

fn ratios_for(spec: &WorkloadSpec, seeds: &[u64]) -> Vec<(Algo, Option<Summary>)> {
    let opt_solver = ExactSolver::new().with_node_budget(2_000_000);
    let mut per_algo: Vec<(Algo, Vec<f64>)> = Algo::ALL.iter().map(|&a| (a, Vec::new())).collect();
    for &seed in seeds {
        let Ok(inst) = spec.generate(seed) else {
            continue;
        };
        let Ok(opt) = run_auction_with(&inst, &opt_solver) else {
            continue;
        };
        if opt.social_cost() <= 0.0 {
            continue;
        }
        for (algo, ratios) in per_algo.iter_mut() {
            if let Ok(out) = algo.run(&inst) {
                ratios.push(out.social_cost() / opt.social_cost());
            }
        }
    }
    per_algo
        .into_iter()
        .map(|(a, r)| {
            (
                a,
                if r.is_empty() {
                    None
                } else {
                    Some(Summary::of(&r))
                },
            )
        })
        .collect()
}

fn sweep(label: &str, specs: Vec<(String, WorkloadSpec)>, seeds: &[u64]) -> Table {
    let mut table = Table::new(
        std::iter::once(label.to_string()).chain(Algo::ALL.iter().map(|a| a.name().to_string())),
    );
    for (x, s) in specs {
        let mut row = vec![x];
        for (_, summary) in ratios_for(&s, seeds) {
            row.push(match summary {
                Some(s) => format!("{:.3}", s.mean),
                None => "n/a".into(),
            });
        }
        table.push_row(row);
    }
    table
}

fn main() {
    let _telemetry = fl_bench::telemetry::init("fig4");
    let full = std::env::args().any(|a| a == "--full");
    let seeds: Vec<u64> = if full {
        (0..10).collect()
    } else {
        (0..5).collect()
    };

    println!("Fig. 4a: performance ratio vs number of clients I (J=3, T=10, K=2)");
    let i_values: Vec<usize> = if full {
        vec![10, 20, 30, 40, 50]
    } else {
        vec![10, 20, 30]
    };
    let t1 = sweep(
        "I",
        i_values
            .iter()
            .map(|&i| (i.to_string(), spec(i, 3)))
            .collect(),
        &seeds,
    );
    print!("{}", t1.render());
    t1.write_csv(results_dir(), "fig4_clients")
        .map(|p| println!("wrote {}", p.display()))
        .ok();

    println!("\nFig. 4b: performance ratio vs bids per client J (I=20, T=10, K=2)");
    let j_values: Vec<u32> = if full {
        vec![1, 2, 3, 4, 5]
    } else {
        vec![1, 2, 3, 4]
    };
    let t2 = sweep(
        "J",
        j_values
            .iter()
            .map(|&j| (j.to_string(), spec(20, j)))
            .collect(),
        &seeds,
    );
    print!("{}", t2.render());
    t2.write_csv(results_dir(), "fig4_bids")
        .map(|p| println!("wrote {}", p.display()))
        .ok();
}

//! The headline claims: "`A_FL` … reduces the social cost by 10%, 40%,
//! 75%, compared with Greedy, `A_online` and FCFS", and "produces a
//! close-to-optimal social cost with a small ratio (< 1.3)".
//!
//! Runs the default workload over several seeds, reports each benchmark's
//! mean cost, the cost reduction `1 − cost(A_FL)/cost(benchmark)`, and the
//! per-run approximation certificates (`H_{T̂_g}·ω` and the tighter `P/D`).

use fl_bench::{results_dir, Algo, Summary, Table};
use fl_workload::WorkloadSpec;

fn main() {
    let _telemetry = fl_bench::telemetry::init("headline");
    let full = std::env::args().any(|a| a == "--full");
    let seeds: Vec<u64> = if full {
        (1..=10).collect()
    } else {
        (1..=5).collect()
    };
    let spec = WorkloadSpec::paper_default();

    let mut costs: Vec<(Algo, Vec<f64>)> = Algo::ALL.iter().map(|&a| (a, Vec::new())).collect();
    let mut cert_bounds = Vec::new();
    let mut cert_empirical = Vec::new();
    // Runs where A_online fell back to its offline completion pass are a
    // different (partially offline) mechanism: they are excluded from the
    // ratio aggregates and reported separately.
    let mut online_degraded = 0usize;
    for &seed in &seeds {
        let inst = spec.generate(seed).expect("paper spec is valid");
        for (algo, list) in costs.iter_mut() {
            if let Ok(out) = algo.run(&inst) {
                if *algo == Algo::Online && out.solution().is_degraded() {
                    online_degraded += 1;
                    continue;
                }
                list.push(out.social_cost());
                if *algo == Algo::Afl {
                    if let Some(cert) = out.solution().certificate() {
                        if cert.ratio_bound().is_finite() {
                            cert_bounds.push(cert.ratio_bound());
                        }
                        let emp = cert.empirical_bound(out.social_cost());
                        if emp.is_finite() {
                            cert_empirical.push(emp);
                        }
                    }
                }
            }
        }
    }

    let afl_mean = Summary::of(&costs[0].1).mean;
    let mut table = Table::new(["algorithm", "mean cost", "reduction by A_FL"]);
    for (algo, list) in &costs {
        let mean = Summary::of(list).mean;
        let reduction = if *algo == Algo::Afl {
            "—".to_string()
        } else {
            format!("{:.0}%", 100.0 * (1.0 - afl_mean / mean))
        };
        table.push_row([algo.name().to_string(), format!("{mean:.1}"), reduction]);
    }
    println!("Headline claims ({} seeds, paper defaults):", seeds.len());
    print!("{}", table.render());
    if online_degraded > 0 {
        println!(
            "note: {online_degraded} A_online run(s) used the offline \
             completion pass and were excluded from the ratio aggregate"
        );
    }
    if !cert_empirical.is_empty() {
        println!(
            "A_FL certificate: H*omega bound mean {}, empirical P/D mean {}",
            if cert_bounds.is_empty() {
                "∞ (ψ_min degenerate)".to_string()
            } else {
                format!("{:.3}", Summary::of(&cert_bounds).mean)
            },
            Summary::of(&cert_empirical).mean
        );
    }
    match table.write_csv(results_dir(), "headline") {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }

    // Same comparison at a FIXED horizon (T̂_g = 26, the paper's reported
    // optimum). The paper's 10%/40%/75% reductions match this regime far
    // better than the per-algorithm horizon enumeration above — evidence
    // the original evaluation compared algorithms at a common T̂_g.
    let fixed_tg = 26u32;
    let mut fixed_costs: Vec<(Algo, Vec<f64>)> =
        Algo::ALL.iter().map(|&a| (a, Vec::new())).collect();
    let mut fixed_degraded = 0usize;
    for &seed in &seeds {
        let inst = spec.generate(seed).expect("paper spec is valid");
        let wdp = fl_auction::qualify(&inst, fixed_tg);
        for (algo, list) in fixed_costs.iter_mut() {
            if let Ok(sol) = algo.solve_wdp(&wdp) {
                if *algo == Algo::Online && sol.is_degraded() {
                    fixed_degraded += 1;
                    continue;
                }
                list.push(sol.cost());
            }
        }
    }
    let afl_fixed = Summary::of(&fixed_costs[0].1).mean;
    let mut fixed_table = Table::new(["algorithm", "mean cost", "reduction by A_FL"]);
    for (algo, list) in &fixed_costs {
        if list.is_empty() {
            fixed_table.push_row([algo.name().to_string(), "n/a".into(), "n/a".into()]);
            continue;
        }
        let mean = Summary::of(list).mean;
        let reduction = if *algo == Algo::Afl {
            "—".to_string()
        } else {
            format!("{:.0}%", 100.0 * (1.0 - afl_fixed / mean))
        };
        fixed_table.push_row([algo.name().to_string(), format!("{mean:.1}"), reduction]);
    }
    println!("\nSame claims at fixed T_g = {fixed_tg}:");
    print!("{}", fixed_table.render());
    if fixed_degraded > 0 {
        println!(
            "note: {fixed_degraded} A_online run(s) used the offline \
             completion pass and were excluded from the ratio aggregate"
        );
    }
    match fixed_table.write_csv(results_dir(), "headline_fixed_tg") {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
}

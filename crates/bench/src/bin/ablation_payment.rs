//! Ablation A4 — payment rules and actual truthfulness.
//!
//! Sweeps price misreports on small fixed-horizon WDPs and reports, per
//! payment rule, how often lying beats truth-telling and by how much:
//!
//! * **paper critical value** (Alg. 3) — truthful per-iteration, but a bid
//!   priced above its iteration payment can re-win later, and a
//!   competitor-less winner is paid its own bid, so profitable *overbids*
//!   exist (Lemma 2's "will fail otherwise" is optimistic);
//! * **pay-as-bid** — overbidding is directly profitable whenever the bid
//!   still wins;
//! * **exact Myerson threshold** (`fl_auction::truthful`) — payment is the
//!   bisection-located price at which the bid stops winning; utility is
//!   claim-independent while winning, so no profitable misreport exists
//!   (up to the monopoly cap);
//! * **VCG on the exact allocation** (`fl_exact::vcg`) — Clarke-pivot
//!   externality payments; dominant-strategy truthful by construction.
//!
//! Underbidding never helps any rule (the allocation is price-monotone,
//! Lemma 1) — also verified here.

use fl_auction::truthful::myerson_payment;
use fl_auction::{AWinner, BidRef, PaymentRule, Wdp, WdpSolver};
use fl_bench::{gen_prequalified_wdp, results_dir, Table};
use fl_exact::{vcg, ExactSolver};

const CAP: f64 = 500.0;

#[derive(Clone, Copy, PartialEq)]
enum Rule {
    Paper,
    PayAsBid,
    Myerson,
    Vcg,
}

/// **Client-level** utility when the WDP runs with (possibly misreported)
/// prices: if any of the client's bids wins, its payment minus the *true*
/// cost of that bid (looked up in `true_prices`, indexed like
/// `wdp.bids()`); otherwise 0. Client-level accounting matters: a client
/// holding several bids can "win via the other bid" after a misreport,
/// which per-bid accounting would misread as a utility jump.
fn utility(wdp: &Wdp, client: fl_auction::ClientId, true_prices: &[f64], rule: Rule) -> f64 {
    let true_cost_of = |r: BidRef| -> f64 {
        wdp.bids()
            .iter()
            .position(|b| b.bid_ref == r)
            .map(|i| true_prices[i])
            .expect("winner is a qualified bid")
    };
    if rule == Rule::Vcg {
        return match vcg(wdp, &ExactSolver::new(), CAP) {
            Ok(out) => out
                .solution
                .winners()
                .iter()
                .find(|w| w.bid_ref.client == client)
                .map_or(0.0, |w| w.payment - true_cost_of(w.bid_ref)),
            Err(_) => 0.0,
        };
    }
    let solver = match rule {
        Rule::PayAsBid => AWinner::new().with_payment_rule(PaymentRule::PayAsBid),
        _ => AWinner::new(),
    }
    .without_certificate();
    let Ok(sol) = solver.solve_wdp(wdp) else {
        return 0.0;
    };
    let Some(w) = sol.winners().iter().find(|w| w.bid_ref.client == client) else {
        return 0.0;
    };
    let payment = match rule {
        Rule::Myerson => {
            myerson_payment(wdp, w.bid_ref, CAP, 1e-7).expect("winner has a threshold")
        }
        _ => w.payment,
    };
    payment - true_cost_of(w.bid_ref)
}

fn reprice(wdp: &Wdp, bid: BidRef, price: f64) -> Wdp {
    let mut bids = wdp.bids().to_vec();
    for b in bids.iter_mut() {
        if b.bid_ref == bid {
            b.price = price;
        }
    }
    Wdp::new(wdp.horizon(), wdp.demand_per_round(), bids)
}

fn main() {
    let _telemetry = fl_bench::telemetry::init("ablation_payment");
    let seeds: Vec<u64> = (0..8).collect();
    let factors = [0.5, 0.8, 1.2, 1.5, 2.5];
    // Two client populations: single-bid clients are single-parameter
    // agents (threshold payments apply cleanly); multi-bid clients are
    // multi-parameter (a client can steer which of its own bids wins),
    // where per-bid threshold payments lose their guarantee.
    for (label, clients, j, file) in [
        (
            "single-bid clients (J=1)",
            16u32,
            1u32,
            "ablation_payment_j1",
        ),
        ("multi-bid clients (J=2)", 10, 2, "ablation_payment"),
    ] {
        let mut table = Table::new([
            "rule",
            "profitable overbids",
            "profitable underbids",
            "max gain",
            "cases",
        ]);
        println!("Ablation A4 [{label}]: misreport search (I={clients}, T_g=5, K=2)");
        for (name, rule) in [
            ("paper critical value", Rule::Paper),
            ("pay-as-bid", Rule::PayAsBid),
            ("exact Myerson", Rule::Myerson),
            ("VCG (exact allocation)", Rule::Vcg),
        ] {
            let mut over = 0usize;
            let mut under = 0usize;
            let mut cases = 0usize;
            let mut max_gain: f64 = 0.0;
            for &seed in &seeds {
                let wdp = gen_prequalified_wdp(seed, clients, j, 5, 2);
                let true_prices: Vec<f64> = wdp.bids().iter().map(|b| b.price).collect();
                for qb in wdp.bids() {
                    let truth = qb.price;
                    let honest = utility(&wdp, qb.bid_ref.client, &true_prices, rule);
                    for f in factors {
                        let lied = reprice(&wdp, qb.bid_ref, truth * f);
                        let u = utility(&lied, qb.bid_ref.client, &true_prices, rule);
                        cases += 1;
                        if u > honest + 1e-5 {
                            if f > 1.0 {
                                over += 1;
                            } else {
                                under += 1;
                            }
                            max_gain = max_gain.max(u - honest);
                        }
                    }
                }
            }
            table.push_row([
                name.to_string(),
                over.to_string(),
                under.to_string(),
                format!("{max_gain:.2}"),
                cases.to_string(),
            ]);
        }
        print!("{}", table.render());
        match table.write_csv(results_dir(), file) {
            Ok(p) => println!("wrote {}\n", p.display()),
            Err(e) => eprintln!("could not write CSV: {e}"),
        }
    }
}

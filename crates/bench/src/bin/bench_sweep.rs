//! `bench_sweep` — sequential vs parallel horizon-sweep benchmark.
//!
//! Generates one fixed-seed paper workload, runs the full (unpruned)
//! [`sweep_horizons`] enumeration under [`SweepStrategy::Sequential`] and
//! several parallel worker counts, and reports wall-clock speedups. Every
//! strategy's per-horizon results must be **bit-identical** to the
//! sequential reference (horizon order, qualified counts, solution cost
//! bits, winner sets, errors) — any divergence fails the run, making this
//! binary a release-mode determinism check as well as a benchmark.
//!
//! Artifacts: `results/BENCH_sweep.json` — the scale, detected core
//! count, per-strategy min-of-3 timings and speedups.
//!
//! Flags: `--smoke` (CI scale). Timing runs are performed with no
//! telemetry sinks installed, so neither code path pays capture/dispatch
//! overhead and the comparison isolates the sweep itself. The `FL_THREADS`
//! environment variable is deliberately *not* consulted: strategies are
//! pinned explicitly per measurement.

use std::process::ExitCode;
use std::time::Instant;

use fl_auction::{sweep_horizons, AWinner, AuctionConfig, HorizonOutcome, Instance, SweepStrategy};
use fl_bench::Table;
use fl_telemetry::json;
use fl_workload::WorkloadSpec;

const SEED: u64 = 42;
const TIMED_RUNS: usize = 3;

/// Workload scale: the default hits the `T ≥ 64`, `I·J ≥ 500` regime the
/// parallel sweep targets; `--smoke` shrinks it for CI.
struct Scale {
    clients: usize,
    bids_per_client: u32,
    rounds: u32,
    k: u32,
}

impl Scale {
    fn new(smoke: bool) -> Scale {
        if smoke {
            Scale {
                clients: 40,
                bids_per_client: 3,
                rounds: 16,
                k: 3,
            }
        } else {
            Scale {
                clients: 125,
                bids_per_client: 4,
                rounds: 64,
                k: 5,
            }
        }
    }

    /// The same logical instance under a chosen execution strategy (the
    /// strategy is excluded from config equality and from generation).
    fn instance(&self, strategy: SweepStrategy) -> Instance {
        WorkloadSpec::paper_default()
            .with_clients(self.clients)
            .with_bids_per_client(self.bids_per_client)
            .with_config(
                AuctionConfig::builder()
                    .max_rounds(self.rounds)
                    .clients_per_round(self.k)
                    .round_time_limit(60.0)
                    .sweep_strategy(strategy)
                    .build()
                    .expect("valid config"),
            )
            .generate(SEED)
            .expect("workload generates")
    }
}

/// A bit-exact digest of a sweep's results (timing-free).
fn fingerprint(sweep: &[HorizonOutcome]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for h in sweep {
        match &h.result {
            Ok(sol) => writeln!(
                out,
                "{} q={} cost={:016x} winners={:?}",
                h.horizon,
                h.qualified,
                sol.cost().to_bits(),
                sol.winners()
            ),
            Err(e) => writeln!(out, "{} q={} err={e}", h.horizon, h.qualified),
        }
        .expect("string write");
    }
    out
}

/// Min-of-N wall clock for a full sweep, after one warmup pass. Returns
/// the timing and the last sweep's results for fingerprinting.
fn time_sweep(inst: &Instance) -> (f64, Vec<HorizonOutcome>) {
    let solver = AWinner::new();
    let mut sweep = sweep_horizons(inst, &solver).expect("workload has bids");
    let mut best_ms = f64::INFINITY;
    for _ in 0..TIMED_RUNS {
        let start = Instant::now();
        sweep = sweep_horizons(inst, &solver).expect("workload has bids");
        best_ms = best_ms.min(start.elapsed().as_secs_f64() * 1e3);
    }
    (best_ms, sweep)
}

fn main() -> ExitCode {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = Scale::new(smoke);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "BENCH_sweep: horizon sweep, sequential vs parallel (I={}, J={}, T={}, K={}, seed={SEED}, cores={cores}{})",
        scale.clients,
        scale.bids_per_client,
        scale.rounds,
        scale.k,
        if smoke { ", smoke" } else { "" }
    );

    let strategies: Vec<(String, SweepStrategy)> = vec![
        ("sequential".into(), SweepStrategy::Sequential),
        ("parallel2".into(), SweepStrategy::Parallel { threads: 2 }),
        ("parallel4".into(), SweepStrategy::Parallel { threads: 4 }),
        (format!("auto{cores}"), SweepStrategy::auto()),
    ];

    let mut table = Table::new(["strategy", "threads", "min_ms", "speedup"]);
    let mut timings: Vec<(String, f64)> = Vec::new();
    let mut reference: Option<(f64, String)> = None;
    for (name, strategy) in &strategies {
        let inst = scale.instance(*strategy);
        let (ms, sweep) = time_sweep(&inst);
        let digest = fingerprint(&sweep);
        let (seq_ms, speedup) = match &reference {
            None => {
                reference = Some((ms, digest));
                (ms, 1.0)
            }
            Some((seq_ms, seq_digest)) => {
                if digest != *seq_digest {
                    eprintln!(
                        "BENCH_sweep: {name} results diverge from the sequential sweep — determinism bug"
                    );
                    return ExitCode::FAILURE;
                }
                (*seq_ms, seq_ms / ms)
            }
        };
        let _ = seq_ms;
        table.push_row(vec![
            name.clone(),
            strategy.threads().to_string(),
            format!("{ms:.2}"),
            format!("{speedup:.2}x"),
        ]);
        timings.push((name.clone(), ms));
    }
    println!(
        "determinism: OK — all {} strategies produced bit-identical sweeps",
        strategies.len()
    );
    print!("{}", table.render());
    if cores < 4 {
        println!("note: only {cores} core(s) available — parallel speedup is bounded by the machine, not the sweep");
    }

    let (seq_name, seq_ms) = (timings[0].0.clone(), timings[0].1);
    let timing_members: Vec<(String, String)> = timings
        .iter()
        .map(|(name, ms)| (name.clone(), json::number(*ms)))
        .collect();
    let speedup_members: Vec<(String, String)> = timings
        .iter()
        .skip(1)
        .map(|(name, ms)| (name.clone(), json::number(seq_ms / ms)))
        .collect();
    let scale_obj = json::object(&[
        ("clients".into(), json::number(scale.clients as f64)),
        (
            "bids_per_client".into(),
            json::number(f64::from(scale.bids_per_client)),
        ),
        ("rounds".into(), json::number(f64::from(scale.rounds))),
        ("k".into(), json::number(f64::from(scale.k))),
    ]);
    let doc = json::object(&[
        ("bench".into(), json::string("sweep")),
        ("seed".into(), json::number(SEED as f64)),
        ("smoke".into(), if smoke { "true" } else { "false" }.into()),
        ("cores".into(), json::number(cores as f64)),
        ("scale".into(), scale_obj),
        ("reference".into(), json::string(&seq_name)),
        ("timed_runs".into(), json::number(TIMED_RUNS as f64)),
        ("min_ms".into(), json::object(&timing_members)),
        (
            "speedup_vs_sequential".into(),
            json::object(&speedup_members),
        ),
    ]);
    match fl_bench::telemetry::write_results_json("BENCH_sweep", &doc) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("BENCH_sweep: could not write results: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

//! Fig. 6 — social cost under different numbers of bids per client `J`.
//!
//! Paper defaults (`I = 1000`); the paper reports every algorithm's cost
//! *increasing* in `J`: more bids per client shrink each window (the `2J`
//! sorted marks pack tighter), so per-bid coverage drops while prices stay
//! put.

use fl_bench::{par_map, results_dir, Algo, Summary, Table};
use fl_workload::WorkloadSpec;

fn main() {
    let _telemetry = fl_bench::telemetry::init("fig6");
    let full = std::env::args().any(|a| a == "--full");
    let j_values: Vec<u32> = if full {
        vec![1, 2, 4, 6, 8, 10]
    } else {
        vec![1, 3, 5, 7]
    };
    let seeds: Vec<u64> = vec![1, 2, 3];

    let mut table = Table::new(
        std::iter::once("J".to_string()).chain(Algo::ALL.iter().map(|a| a.name().to_string())),
    );
    println!(
        "Fig. 6: social cost vs bids per client ({} seeds each)",
        seeds.len()
    );
    let rows = par_map(j_values.clone(), |j| {
        let spec = WorkloadSpec::paper_default().with_bids_per_client(j);
        let mut row = vec![j.to_string()];
        for algo in Algo::ALL {
            let mut costs = Vec::new();
            for &seed in &seeds {
                let inst = spec.generate(seed).expect("paper spec is valid");
                if let Ok(out) = algo.run(&inst) {
                    costs.push(out.social_cost());
                }
            }
            row.push(if costs.is_empty() {
                "n/a".into()
            } else {
                format!("{:.1}", Summary::of(&costs).mean)
            });
        }
        println!("  J = {j} done");
        row
    });
    for row in rows {
        table.push_row(row);
    }
    print!("{}", table.render());
    match table.write_csv(results_dir(), "fig6") {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }

    // Companion sweep at a FIXED horizon (the paper's Fig. 6 shows cost
    // increasing in J; that trend is a fixed-demand effect — more bids per
    // client shrink windows and per-bid coverage while prices stay put.
    // With A_FL free to re-optimise T̂_g per J, supply growth wins instead;
    // see EXPERIMENTS.md).
    let fixed_tg = 26u32; // the paper's reported optimum
    let mut fixed = Table::new(
        std::iter::once("J".to_string()).chain(Algo::ALL.iter().map(|a| a.name().to_string())),
    );
    println!("\nFig. 6 companion: social cost vs J at fixed T_g = {fixed_tg}");
    let rows = par_map(j_values.clone(), |j| {
        let spec = WorkloadSpec::paper_default().with_bids_per_client(j);
        let mut row = vec![j.to_string()];
        for algo in Algo::ALL {
            let mut costs = Vec::new();
            for &seed in &seeds {
                let inst = spec.generate(seed).expect("paper spec is valid");
                let wdp = fl_auction::qualify(&inst, fixed_tg);
                if let Ok(sol) = algo.solve_wdp(&wdp) {
                    costs.push(sol.cost());
                }
            }
            row.push(if costs.is_empty() {
                "n/a".into()
            } else {
                format!("{:.1}", Summary::of(&costs).mean)
            });
        }
        row
    });
    for row in rows {
        fixed.push_row(row);
    }
    print!("{}", fixed.render());
    match fixed.write_csv(results_dir(), "fig6_fixed_tg") {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
}

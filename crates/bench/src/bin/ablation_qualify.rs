//! Ablation A3 — qualified-set construction: intent vs the literal
//! Alg. 1 line 6.
//!
//! The paper's line 6 reads `a_ij + c_ij ≤ T̂_g`, which is both off by one
//! and blind to `d_ij`; our default implements the evident intent (the
//! truncated window must hold `c_ij` rounds). This ablation runs both and
//! reports qualified-bid counts and final costs.

use fl_auction::{qualify, AuctionConfig, QualifyMode};
use fl_bench::{results_dir, Algo, Summary, Table};
use fl_workload::WorkloadSpec;

fn main() {
    let _telemetry = fl_bench::telemetry::init("ablation_qualify");
    let seeds: Vec<u64> = (1..=5).collect();
    let mut table = Table::new(["mode", "qualified@T=10", "qualified@T=50", "mean cost"]);
    println!("Ablation A3: qualification reading ({} seeds)", seeds.len());
    for (name, mode) in [
        ("intent (default)", QualifyMode::Intent),
        ("literal", QualifyMode::Literal),
    ] {
        let cfg = AuctionConfig::builder()
            .qualify_mode(mode)
            .build()
            .expect("valid");
        let spec = WorkloadSpec::paper_default().with_config(cfg);
        let mut q10 = Vec::new();
        let mut q50 = Vec::new();
        let mut costs = Vec::new();
        for &seed in &seeds {
            let inst = spec.generate(seed).expect("paper spec is valid");
            q10.push(qualify(&inst, 10).bids().len() as f64);
            q50.push(qualify(&inst, 50).bids().len() as f64);
            if let Ok(out) = Algo::Afl.run(&inst) {
                costs.push(out.social_cost());
            }
        }
        table.push_row([
            name.to_string(),
            format!("{:.0}", Summary::of(&q10).mean),
            format!("{:.0}", Summary::of(&q50).mean),
            if costs.is_empty() {
                "infeasible".into()
            } else {
                format!("{:.1}", Summary::of(&costs).mean)
            },
        ]);
    }
    print!("{}", table.render());
    match table.write_csv(results_dir(), "ablation_qualify") {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
}

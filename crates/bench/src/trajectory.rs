//! Renders `results/REPORT_perf.md` — the performance trajectory dashboard
//! assembled from `results/BENCH_history.jsonl`.
//!
//! Per scenario: a sparkline of the min-of-N wall clock over history, the
//! run-by-run table (build, cores, timing, economic invariants), and the
//! per-phase profile of the latest record. Records from differing core
//! counts share one table but are explicitly labelled — the sparkline is
//! drawn only over the most recent records with a matching core count, so
//! a 1-core container run never masquerades as a regression or a speedup.

use std::fmt::Write as _;

use crate::output::Table;
use crate::overhead::OverheadReport;
use crate::schema::BenchRecord;

/// The block glyphs used for sparklines, shortest to tallest.
const SPARKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Maps values onto spark glyphs (min → shortest, max → tallest).
fn sparkline(values: &[f64]) -> String {
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for v in values {
        lo = lo.min(*v);
        hi = hi.max(*v);
    }
    values
        .iter()
        .map(|v| {
            if !v.is_finite() {
                return '?';
            }
            let idx = if hi > lo {
                (((v - lo) / (hi - lo)) * (SPARKS.len() - 1) as f64).round() as usize
            } else {
                0
            };
            SPARKS[idx.min(SPARKS.len() - 1)]
        })
        .collect()
}

fn fmt_ratio(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.4}")
    } else {
        "n/a".into()
    }
}

/// The `scale_frontier_*` scenario keys, smallest to largest (full-scale
/// keys; the smoke variants carry an `@smoke` suffix and are excluded).
const FRONTIER_KEYS: [&str; 3] = [
    "scale_frontier_1k",
    "scale_frontier_10k",
    "scale_frontier_100k",
];

/// Renders the "Scale frontier" summary: the latest full-scale record of
/// each `scale_frontier_*` scenario as a bids-vs-throughput table, with a
/// bids/sec headline taken from the largest frontier present. Returns
/// `None` when the history holds no full-scale frontier records.
fn scale_frontier_section(history: &[BenchRecord]) -> Option<String> {
    let latest: Vec<&BenchRecord> = FRONTIER_KEYS
        .iter()
        .filter_map(|key| history.iter().rev().find(|r| r.key() == *key))
        .collect();
    if latest.is_empty() {
        return None;
    }
    let mut out = String::new();
    let _ = writeln!(out, "## Scale frontier");
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "`A_winner` on the columnar bid store as the bid count climbs three \
         decades under one fixed shape (J=4, T=64, K=8). Throughput is \
         `bids / (min_ms / 1000)` of the latest full-scale record per \
         frontier; rows from differing core counts are **not** mutually \
         comparable, and 1-core records are flagged."
    );
    let _ = writeln!(out);
    let mut table = Table::new(["scenario", "bids", "cores", "min_ms", "bids/sec"]);
    let mut headline: Option<(u64, f64, u64)> = None;
    for r in &latest {
        let bids = r.env.scale.clients * r.env.scale.bids_per_client;
        let bids_per_sec = bids as f64 / (r.timing.min_ms / 1e3);
        let cores = if r.env.cores == 1 {
            "1 ⚠".to_string()
        } else {
            r.env.cores.to_string()
        };
        table.push_row(vec![
            format!("`{}`", r.scenario),
            bids.to_string(),
            cores,
            format!("{:.3}", r.timing.min_ms),
            format!("{bids_per_sec:.0}"),
        ]);
        if headline.is_none_or(|(b, _, _)| bids > b) {
            headline = Some((bids, bids_per_sec, r.env.cores));
        }
    }
    out.push_str(&table.to_markdown());
    let (bids, bids_per_sec, cores) = headline.expect("latest is non-empty");
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "**Headline: {bids_per_sec:.0} bids/sec at the {bids}-bid frontier \
         ({cores} core(s){}).** Reproduce with \
         `cargo run --release -p fl-bench --bin bench_suite -- run \
         --scenario scale_frontier_1k --scenario scale_frontier_10k \
         --scenario scale_frontier_100k`.",
        if cores == 1 {
            " — 1-core record, machine-bounded"
        } else {
            ""
        }
    );
    let _ = writeln!(out);
    Some(out)
}

/// Renders the "Online ingest" summary: sustained streaming throughput of
/// the [`OnlineAuction`](fl_auction::OnlineAuction) driver, derived from
/// the latest `online_ingest` record's `online.arrived` counter over its
/// min-of-N wall clock, plus the on-arrival decision mix and the
/// competitive ratio against the offline `A_FL` solve of the same
/// instance. Full-scale records are preferred; with only smoke history
/// the section renders from `online_ingest@smoke` and says so. Returns
/// `None` when no `online_ingest` record exists yet.
fn online_ingest_section(history: &[BenchRecord]) -> Option<String> {
    let latest = history
        .iter()
        .rev()
        .find(|r| r.scenario == "online_ingest" && !r.env.smoke)
        .or_else(|| history.iter().rev().find(|r| r.scenario == "online_ingest"))?;
    let counter = |name: &str| {
        latest
            .counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    };
    let arrived = counter("online.arrived").unwrap_or(0);
    let bids_per_sec = arrived as f64 / (latest.timing.min_ms / 1e3);
    let mut out = String::new();
    let _ = writeln!(out, "## Online ingest");
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "Sustained streaming throughput of the `OnlineAuction` driver \
         (`{}` record, {} core(s)): every bid decided irrevocably on \
         arrival under the posted-price budget. Throughput is \
         `online.arrived / (min_ms / 1000)`.",
        latest.key(),
        latest.env.cores
    );
    let _ = writeln!(out);
    let mut table = Table::new(["metric", "value"]);
    table.push_row(vec!["bids arrived".into(), arrived.to_string()]);
    table.push_row(vec![
        "min_ms".into(),
        format!("{:.3}", latest.timing.min_ms),
    ]);
    table.push_row(vec!["bids/sec".into(), format!("{bids_per_sec:.0}")]);
    for (label, name) in [
        ("committed", "online.committed"),
        ("rejected", "online.rejected"),
        ("duplicates", "online.duplicates"),
        ("coverage %", "online.coverage_pct"),
    ] {
        if let Some(v) = counter(name) {
            table.push_row(vec![label.into(), v.to_string()]);
        }
    }
    match counter("online.competitive_ratio_milli") {
        Some(milli) => table.push_row(vec![
            "competitive ratio vs offline A_FL".into(),
            format!("{:.3}", milli as f64 / 1e3),
        ]),
        None => table.push_row(vec![
            "competitive ratio vs offline A_FL",
            "n/a (stream did not reach full coverage)",
        ]),
    }
    out.push_str(&table.to_markdown());
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "**Headline: {bids_per_sec:.0} bids/sec sustained on-arrival \
         ingest ({arrived} bids{}).** Reproduce with \
         `cargo run --release -p fl-bench --bin bench_suite -- run \
         --scenario online_ingest`.",
        if latest.env.smoke {
            ", smoke scale — run the full scenario for the comparable figure"
        } else {
            ""
        }
    );
    let _ = writeln!(out);
    Some(out)
}

/// Renders the "Telemetry overhead" section from a live measurement (see
/// [`crate::overhead::measure`]) — the standing "≤ 3 % with sinks
/// disabled" claim as a number, re-verified at report time.
pub fn telemetry_overhead_section(r: &OverheadReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## Telemetry overhead (sinks disabled)");
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "Measured at report time on the `A_winner` hot path ({} bids, the \
         `winner_fig3` shape): one solve dispatches **{}** telemetry \
         events; the disabled fast path costs **{:.1} ns** per entry \
         point; the solve itself takes **{:.3} ms** with no sink \
         installed ({:.3} ms with the full recorder listening). Disabled \
         instrumentation therefore occupies **{:.4} %** of the hot path — \
         the standing claim is **≤ 3 %**, pinned by the \
         `telemetry_overhead` integration test.",
        r.bids,
        r.events,
        r.per_op_ns,
        r.solve_ms,
        r.recorded_ms,
        r.share * 100.0
    );
    let _ = writeln!(out);
    out
}

/// Renders the full markdown dashboard from a history (oldest first).
pub fn render(history: &[BenchRecord]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# Performance trajectory");
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "Generated by `bench_suite report` from `results/BENCH_history.jsonl` \
         ({} record(s)). Timing is min-of-N wall clock; **timing is only \
         comparable between records with the same core count** — the \
         deterministic columns (cost, payment, ratio, winners) must be \
         identical for a fixed seed regardless of machine.",
        history.len()
    );
    let _ = writeln!(out);
    if let Some(frontier) = scale_frontier_section(history) {
        out.push_str(&frontier);
    }
    if let Some(online) = online_ingest_section(history) {
        out.push_str(&online);
    }

    let mut keys: Vec<String> = Vec::new();
    for r in history {
        let key = r.key();
        if !keys.contains(&key) {
            keys.push(key);
        }
    }

    for key in keys {
        let of_key: Vec<&BenchRecord> = history.iter().filter(|r| r.key() == key).collect();
        let latest = *of_key.last().expect("key came from history");
        let _ = writeln!(out, "## `{key}`");
        let _ = writeln!(out);
        let s = &latest.env.scale;
        let _ = writeln!(
            out,
            "kind `{}` · seed {} · I={} J={} T={} K={} · {} pinned thread(s)",
            latest.kind,
            latest.env.seed,
            s.clients,
            s.bids_per_client,
            s.rounds,
            s.k,
            latest.env.threads
        );
        let _ = writeln!(out);

        // Sparkline over the trailing run of records sharing the latest
        // record's core count.
        let comparable: Vec<&&BenchRecord> = of_key
            .iter()
            .rev()
            .take_while(|r| r.env.cores == latest.env.cores)
            .collect();
        let mut timings: Vec<f64> = comparable.iter().map(|r| r.timing.min_ms).collect();
        timings.reverse();
        let _ = writeln!(
            out,
            "min_ms trajectory ({} core(s), last {} run(s)): `{}` latest **{:.3} ms**",
            latest.env.cores,
            timings.len(),
            sparkline(&timings),
            latest.timing.min_ms
        );
        if of_key.iter().any(|r| r.env.cores != latest.env.cores) {
            let _ = writeln!(
                out,
                "(history also holds records from other core counts — listed below, \
                 excluded from the sparkline)"
            );
        }
        if of_key.iter().any(|r| r.env.cores == 1) {
            let _ = writeln!(
                out,
                "⚠ {} record(s) are from a 1-core machine: parallel scenarios are \
                 bounded by the machine there, not by the code.",
                of_key.iter().filter(|r| r.env.cores == 1).count()
            );
        }
        let _ = writeln!(out);

        let mut table = Table::new([
            "run",
            "build",
            "cores",
            "min_ms",
            "social_cost",
            "payment",
            "overhead",
            "approx_emp",
            "approx_bound",
            "winners",
            "standby",
        ]);
        for (i, r) in of_key.iter().enumerate() {
            let e = &r.economics;
            table.push_row(vec![
                (i + 1).to_string(),
                r.env.build.clone(),
                r.env.cores.to_string(),
                format!("{:.3}", r.timing.min_ms),
                format!("{:.4}", e.social_cost),
                format!("{:.4}", e.total_payment),
                fmt_ratio(e.payment_overhead),
                fmt_ratio(e.approx_ratio_empirical),
                fmt_ratio(e.approx_ratio_bound),
                e.winners.to_string(),
                e.standby_pool.to_string(),
            ]);
        }
        out.push_str(&table.to_markdown());
        let _ = writeln!(out);

        let _ = writeln!(out, "### Phase profile (latest record)");
        let _ = writeln!(out);
        let mut phases = Table::new(["phase", "calls", "total_ms", "p50_ms", "p90_ms", "p99_ms"]);
        for (name, p) in &latest.phases {
            phases.push_row(vec![
                format!("`{name}`"),
                p.calls.to_string(),
                format!("{:.3}", p.total_ms),
                format!("{:.3}", p.p50_ms),
                format!("{:.3}", p.p90_ms),
                format!("{:.3}", p.p99_ms),
            ]);
        }
        out.push_str(&phases.to_markdown());
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{run_scenario, Scale, Scenario, ScenarioKind};

    #[test]
    fn sparkline_scales_to_the_range() {
        assert_eq!(sparkline(&[1.0, 1.0, 1.0]), "▁▁▁");
        let line = sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(line.chars().count(), 3);
        assert!(line.starts_with('▁') && line.ends_with('█'));
        assert_eq!(sparkline(&[]), "");
    }

    #[test]
    fn report_renders_every_scenario_with_phases_and_economics() {
        let tiny = Scenario {
            name: "unit_report",
            summary: "tiny auction for report tests",
            kind: ScenarioKind::Auction { threads: 1 },
            full: Scale {
                clients: 12,
                bids_per_client: 2,
                rounds: 6,
                k: 2,
            },
            smoke: Scale {
                clients: 10,
                bids_per_client: 2,
                rounds: 5,
                k: 2,
            },
        };
        let mut a = run_scenario(&tiny, true, 2).unwrap();
        a.env.cores = 4; // pin so the test does not depend on the machine
        let mut one_core = a.clone();
        one_core.env.cores = 1;
        let md = render(&[one_core, a.clone()]);
        assert!(md.contains("## `unit_report@smoke`"));
        assert!(md.contains("min_ms trajectory"));
        assert!(md.contains("1-core machine"));
        assert!(md.contains("`afl_run`"));
        assert!(md.contains("overhead"));
        // Mixed core counts: sparkline only covers the trailing same-core run.
        assert!(md.contains("other core counts"));
        // No full-scale frontier records → no frontier section.
        assert!(!md.contains("## Scale frontier"));
    }

    #[test]
    fn scale_frontier_section_reports_throughput_and_flags_one_core_records() {
        let tiny = Scenario {
            name: "scale_frontier_1k",
            summary: "frontier stand-in for report tests",
            kind: ScenarioKind::Wdp,
            full: Scale {
                clients: 20,
                bids_per_client: 2,
                rounds: 8,
                k: 2,
            },
            smoke: Scale {
                clients: 10,
                bids_per_client: 2,
                rounds: 8,
                k: 2,
            },
        };
        let mut r = run_scenario(&tiny, false, 2).unwrap();
        r.env.cores = 1;
        r.timing.min_ms = 8.0; // 40 bids / 8 ms = 5000 bids/sec
        let md = render(&[r]);
        assert!(md.contains("## Scale frontier"));
        assert!(md.contains("`scale_frontier_1k`"));
        assert!(md.contains("5000"), "throughput column missing:\n{md}");
        assert!(md.contains("1-core record, machine-bounded"));
        assert!(md.contains("--scenario scale_frontier_100k"));
    }

    #[test]
    fn online_ingest_section_reports_bids_per_sec_and_the_decision_mix() {
        let tiny = Scenario {
            name: "online_ingest",
            summary: "online stand-in for report tests",
            kind: ScenarioKind::OnlineIngest,
            full: Scale {
                clients: 20,
                bids_per_client: 2,
                rounds: 8,
                k: 2,
            },
            smoke: Scale {
                clients: 10,
                bids_per_client: 2,
                rounds: 8,
                k: 2,
            },
        };
        let mut r = run_scenario(&tiny, true, 2).unwrap();
        r.timing.min_ms = 4.0; // 20 arrivals / 4 ms = 5000 bids/sec
        let md = render(&[r]);
        assert!(md.contains("## Online ingest"));
        assert!(md.contains("bids/sec"));
        assert!(md.contains("5000"), "throughput headline missing:\n{md}");
        assert!(md.contains("competitive ratio vs offline A_FL"));
        assert!(md.contains("smoke scale"));
        assert!(md.contains("--scenario online_ingest"));
    }
}

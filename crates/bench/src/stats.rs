//! Summary statistics over experiment repetitions.

/// Mean/std/min/max summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n − 1 denominator; 0 for n ≤ 1).
    pub std: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl Summary {
    /// Summarises a slice of samples.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or contains NaN.
    pub fn of(samples: &[f64]) -> Summary {
        assert!(!samples.is_empty(), "cannot summarise an empty sample");
        assert!(
            samples.iter().all(|x| !x.is_nan()),
            "samples must not contain NaN"
        );
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let std = if n > 1 {
            (samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64).sqrt()
        } else {
            0.0
        };
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Summary {
            n,
            mean,
            std,
            min,
            max,
        }
    }
}

impl Summary {
    /// Half-width of the normal-approximation 95% confidence interval of
    /// the mean (`1.96·σ/√n`; 0 for n ≤ 1).
    pub fn ci95(&self) -> f64 {
        if self.n > 1 {
            1.96 * self.std / (self.n as f64).sqrt()
        } else {
            0.0
        }
    }

    /// Relative spread `std / |mean|` (infinite for a zero mean with
    /// non-zero spread; 0 for constant samples).
    pub fn coefficient_of_variation(&self) -> f64 {
        if self.std == 0.0 {
            0.0
        } else if self.mean == 0.0 {
            f64::INFINITY
        } else {
            self.std / self.mean.abs()
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3} ± {:.3} (n={})", self.mean, self.std, self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarises_known_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.std - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    fn singleton_has_zero_std() {
        let s = Summary::of(&[7.0]);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.mean, 7.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_sample_panics() {
        let _ = Summary::of(&[]);
    }

    #[test]
    fn ci95_shrinks_with_sample_size() {
        let small = Summary::of(&[1.0, 3.0]);
        let big = Summary::of(&[1.0, 3.0, 1.0, 3.0, 1.0, 3.0, 1.0, 3.0]);
        assert!(big.ci95() < small.ci95());
        assert_eq!(Summary::of(&[5.0]).ci95(), 0.0);
    }

    #[test]
    fn coefficient_of_variation_edge_cases() {
        assert_eq!(Summary::of(&[2.0, 2.0]).coefficient_of_variation(), 0.0);
        assert!(Summary::of(&[-1.0, 1.0])
            .coefficient_of_variation()
            .is_infinite());
        let s = Summary::of(&[1.0, 3.0]);
        assert!((s.coefficient_of_variation() - s.std / 2.0).abs() < 1e-12);
    }

    #[test]
    fn display_is_compact() {
        let s = Summary::of(&[1.0, 3.0]);
        assert_eq!(s.to_string(), "2.000 ± 1.414 (n=2)");
    }
}

//! Criterion benchmarks for the exact substrate: branch-and-bound winner
//! determination, the LP relaxations, and the max-flow feasibility check.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fl_auction::WdpSolver;
use fl_bench::gen_prequalified_wdp;
use fl_exact::{colgen, relax, ExactSolver, RefineSolver};
use std::hint::black_box;

fn bench_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_bnb");
    group.sample_size(10);
    for &(clients, j, horizon) in &[(12u32, 2u32, 6u32), (20, 3, 8), (30, 3, 10)] {
        let wdp = gen_prequalified_wdp(11, clients, j, horizon, 2);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("I{clients}_J{j}_T{horizon}")),
            &wdp,
            |b, wdp| {
                b.iter(|| {
                    ExactSolver::new()
                        .solve_wdp(black_box(wdp))
                        .map(|s| s.cost())
                })
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("lp_relaxations");
    group.sample_size(10);
    let wdp = gen_prequalified_wdp(11, 20, 3, 8, 2);
    group.bench_function("schedule_lp", |b| {
        b.iter(|| relax::schedule_lp_bound(black_box(&wdp)))
    });
    group.bench_function("window_capacity", |b| {
        b.iter(|| relax::window_capacity_bound(black_box(&wdp)))
    });
    group.bench_function("column_generation_lp7", |b| {
        b.iter(|| colgen::solve_lp7(black_box(&wdp)).map(|r| r.objective))
    });
    group.finish();

    let mut group = c.benchmark_group("refine");
    group.sample_size(10);
    let wdp = gen_prequalified_wdp(11, 40, 3, 10, 3);
    group.bench_function("drop_and_repair_I40", |b| {
        b.iter(|| {
            RefineSolver::new()
                .solve_wdp(black_box(&wdp))
                .map(|s| s.cost())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_exact);
criterion_main!(benches);

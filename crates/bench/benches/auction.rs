//! Criterion benchmarks for the full `A_FL` mechanism (outer enumeration +
//! greedy WDPs + payments) — the programmatic counterpart of Fig. 8's
//! `A_FL` curve.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fl_bench::Algo;
use fl_workload::WorkloadSpec;
use std::hint::black_box;

fn bench_afl(c: &mut Criterion) {
    let mut group = c.benchmark_group("a_fl_full_auction");
    group.sample_size(10);
    for &clients in &[200usize, 500, 1000] {
        let inst = WorkloadSpec::paper_default()
            .with_clients(clients)
            .generate(1)
            .expect("paper spec is valid");
        group.bench_with_input(BenchmarkId::from_parameter(clients), &inst, |b, inst| {
            b.iter(|| Algo::Afl.run(black_box(inst)).map(|o| o.social_cost()))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("baselines_full_auction_I500");
    group.sample_size(10);
    let inst = WorkloadSpec::paper_default()
        .with_clients(500)
        .generate(1)
        .expect("paper spec is valid");
    for algo in [Algo::Greedy, Algo::Fcfs] {
        group.bench_function(algo.name(), |b| {
            b.iter(|| algo.run(black_box(&inst)).map(|o| o.social_cost()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_afl);
criterion_main!(benches);

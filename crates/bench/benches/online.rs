//! Criterion benchmarks for the `A_online` benchmark — the other curve of
//! Fig. 8 (the paper reports `A_FL` consistently faster).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fl_bench::Algo;
use fl_workload::WorkloadSpec;
use std::hint::black_box;

fn bench_online(c: &mut Criterion) {
    let mut group = c.benchmark_group("a_online_full_auction");
    group.sample_size(10);
    for &clients in &[200usize, 500, 1000] {
        let inst = WorkloadSpec::paper_default()
            .with_clients(clients)
            .generate(1)
            .expect("paper spec is valid");
        group.bench_with_input(BenchmarkId::from_parameter(clients), &inst, |b, inst| {
            b.iter(|| Algo::Online.run(black_box(inst)).map(|o| o.social_cost()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_online);
criterion_main!(benches);

//! Criterion micro-benchmarks for `A_winner` (single WDP solves).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fl_auction::{AWinner, WdpSolver};
use fl_bench::gen_prequalified_wdp;
use std::hint::black_box;

fn bench_winner(c: &mut Criterion) {
    let mut group = c.benchmark_group("a_winner");
    group.sample_size(20);
    for &(clients, j, horizon, k) in &[
        (100u32, 3u32, 10u32, 3u32),
        (500, 5, 20, 10),
        (1000, 5, 30, 20),
    ] {
        let wdp = gen_prequalified_wdp(7, clients, j, horizon, k);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("I{clients}_J{j}_T{horizon}_K{k}")),
            &wdp,
            |b, wdp| {
                b.iter(|| {
                    AWinner::new()
                        .without_certificate()
                        .solve_wdp(black_box(wdp))
                        .map(|s| s.cost())
                })
            },
        );
    }
    group.finish();

    // The certificate post-pass cost, isolated.
    let mut group = c.benchmark_group("a_winner_certificate");
    group.sample_size(20);
    let wdp = gen_prequalified_wdp(7, 500, 5, 20, 10);
    group.bench_function("with_certificate", |b| {
        b.iter(|| AWinner::new().solve_wdp(black_box(&wdp)).map(|s| s.cost()))
    });
    group.bench_function("without_certificate", |b| {
        b.iter(|| {
            AWinner::new()
                .without_certificate()
                .solve_wdp(black_box(&wdp))
                .map(|s| s.cost())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_winner);
criterion_main!(benches);

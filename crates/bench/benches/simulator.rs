//! Criterion benchmarks for the federated-learning simulator substrate:
//! local training to a target accuracy and a full FedAvg job over an
//! auctioned schedule.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fl_auction::{run_auction, AuctionConfig};
use fl_sim::{DatasetSpec, Federation, FlJob, LinearModel, LocalTrainer};
use fl_workload::WorkloadSpec;
use std::hint::black_box;

fn bench_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_training");
    group.sample_size(20);
    let fed = Federation::generate(
        &DatasetSpec {
            dim: 10,
            samples_per_client: 100,
            ..DatasetSpec::default()
        },
        1,
        3,
    );
    let start = LinearModel::zeros(11);
    for &theta in &[0.8f64, 0.5, 0.3] {
        group.bench_with_input(BenchmarkId::from_parameter(theta), &theta, |b, &theta| {
            b.iter(|| {
                LocalTrainer::default().train(black_box(&start), black_box(&fed.shards[0]), theta)
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("fedavg_job");
    group.sample_size(10);
    let spec = WorkloadSpec::paper_default()
        .with_clients(120)
        .with_bids_per_client(3)
        .with_config(
            AuctionConfig::builder()
                .max_rounds(12)
                .clients_per_round(3)
                .round_time_limit(60.0)
                .build()
                .expect("valid config"),
        );
    let inst = spec.generate(5).expect("valid spec");
    let outcome = run_auction(&inst).expect("feasible");
    let federation = Federation::generate(&DatasetSpec::default(), inst.num_clients(), 9);
    group.bench_function("auctioned_schedule", |b| {
        b.iter(|| {
            FlJob::new(0.3).run(
                black_box(&inst),
                black_box(&outcome),
                black_box(&federation),
                0,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);

use std::error::Error;
use std::fmt;

/// Errors returned by [`LinearProgram::solve`](crate::LinearProgram::solve).
///
/// The two "unsuccessful but well-defined" outcomes of an LP — infeasibility
/// and unboundedness — are reported as errors rather than solution variants:
/// in this workspace every caller treats them as exceptional (a WDP
/// relaxation is always feasible and bounded unless the instance itself is
/// broken), so the `?` operator is the ergonomic path.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LpError {
    /// No point satisfies all constraints (phase one terminated with a
    /// positive infeasibility residual).
    Infeasible,
    /// The objective can be improved without bound along a feasible ray.
    Unbounded,
    /// The iteration limit was exceeded; the instance is numerically
    /// degenerate beyond what Bland's rule recovered.
    IterationLimit {
        /// Number of pivots performed before giving up.
        pivots: usize,
    },
    /// The problem definition is malformed (e.g. a NaN coefficient or an
    /// upper bound below zero).
    InvalidProblem(String),
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "linear program is infeasible"),
            LpError::Unbounded => write!(f, "linear program is unbounded"),
            LpError::IterationLimit { pivots } => {
                write!(f, "simplex iteration limit exceeded after {pivots} pivots")
            }
            LpError::InvalidProblem(why) => write!(f, "invalid linear program: {why}"),
        }
    }
}

impl Error for LpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        assert_eq!(
            LpError::Infeasible.to_string(),
            "linear program is infeasible"
        );
        assert_eq!(
            LpError::Unbounded.to_string(),
            "linear program is unbounded"
        );
        assert!(LpError::IterationLimit { pivots: 7 }
            .to_string()
            .contains("7 pivots"));
        assert!(LpError::InvalidProblem("bad".into())
            .to_string()
            .contains("bad"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LpError>();
    }
}

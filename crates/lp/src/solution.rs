use crate::problem::{ConstraintId, VarId};

/// Optimal solution of a [`LinearProgram`](crate::LinearProgram).
///
/// Holds the objective value, the primal point, and the dual multipliers
/// recovered from the final simplex tableau.
///
/// # Dual conventions
///
/// For a **minimisation** problem the returned duals satisfy strong duality
/// in the form
///
/// ```text
/// objective = Σ_i dual(i)·rhs_i + Σ_j bound_dual(j)·upper_j
/// ```
///
/// with `dual(i) ≥ 0` for `≥` rows, `dual(i) ≤ 0` for `≤` rows, free for
/// `=` rows, and `bound_dual(j) ≤ 0` (only non-zero when the upper bound is
/// binding). Maximisation problems carry the mirrored signs.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    objective: f64,
    x: Vec<f64>,
    duals: Vec<f64>,
    bound_duals: Vec<f64>,
}

impl LpSolution {
    pub(crate) fn new(objective: f64, x: Vec<f64>, duals: Vec<f64>, bound_duals: Vec<f64>) -> Self {
        LpSolution {
            objective,
            x,
            duals,
            bound_duals,
        }
    }

    /// Optimal objective value.
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Value of variable `v` at the optimum.
    ///
    /// # Panics
    ///
    /// Panics if `v` belongs to a different program (index out of range).
    pub fn value(&self, v: VarId) -> f64 {
        self.x[v.index()]
    }

    /// The full primal point in variable-insertion order.
    pub fn values(&self) -> &[f64] {
        &self.x
    }

    /// Dual multiplier of constraint `c` (see the type-level docs for sign
    /// conventions).
    ///
    /// # Panics
    ///
    /// Panics if `c` belongs to a different program.
    pub fn dual(&self, c: ConstraintId) -> f64 {
        self.duals[c.index()]
    }

    /// Dual multiplier of the upper bound of variable `v`; zero when the
    /// bound is infinite or slack.
    ///
    /// # Panics
    ///
    /// Panics if `v` belongs to a different program.
    pub fn bound_dual(&self, v: VarId) -> f64 {
        self.bound_duals[v.index()]
    }
}

#[cfg(test)]
mod tests {
    use crate::{LinearProgram, Objective, Relation};

    #[test]
    fn values_slice_matches_individual_lookups() {
        let mut lp = LinearProgram::new(Objective::Minimize);
        let x = lp.add_var(1.0, 2.0);
        let y = lp.add_var(1.0, 2.0);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, 3.0);
        let sol = lp.solve().unwrap();
        assert_eq!(sol.values().len(), 2);
        assert_eq!(sol.values()[0], sol.value(x));
        assert_eq!(sol.values()[1], sol.value(y));
        // x + y must cover 3 within bounds.
        assert!(sol.value(x) + sol.value(y) >= 3.0 - 1e-9);
        assert!(sol.value(x) <= 2.0 + 1e-9 && sol.value(y) <= 2.0 + 1e-9);
    }
}

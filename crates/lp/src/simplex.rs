//! Dense two-phase primal simplex on an explicit tableau.
//!
//! The implementation keeps the full tableau (constraint rows plus a reduced
//! cost row) and updates it by Gaussian pivots. Phase one minimises the sum
//! of artificial variables to find a basic feasible solution; phase two
//! minimises the user objective. Entering columns are priced with Dantzig's
//! rule and the solver falls back to Bland's rule after a fixed pivot budget,
//! which guarantees termination on degenerate instances.

use crate::problem::{LinearProgram, Objective, Relation};
use crate::solution::LpSolution;
use crate::{LpError, EPS};

/// What a tableau row corresponds to in the user's problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RowKind {
    /// `i`-th user constraint.
    User(usize),
    /// Upper bound of structural variable `j` (`x_j ≤ u_j`).
    Bound(usize),
}

/// What a tableau column corresponds to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ColKind {
    Structural(usize),
    /// Slack (`+1`) of row `r`.
    Slack(usize),
    /// Surplus (`-1`) of row `r`.
    Surplus(usize),
    /// Artificial (`+1`) of row `r`; barred from entering in phase two.
    Artificial(usize),
}

struct Tableau {
    /// `rows × cols` coefficient matrix.
    a: Vec<Vec<f64>>,
    /// Right-hand side per row (kept non-negative by construction).
    b: Vec<f64>,
    /// Reduced-cost row for the current phase.
    z: Vec<f64>,
    /// Per-column costs of the current phase (for objective evaluation).
    costs: Vec<f64>,
    /// Basic column index per row.
    basis: Vec<usize>,
    cols: Vec<ColKind>,
    row_kinds: Vec<RowKind>,
    /// Whether the user row was negated to make its rhs non-negative.
    flipped: Vec<bool>,
}

impl Tableau {
    fn pivot(&mut self, row: usize, col: usize) {
        let piv = self.a[row][col];
        debug_assert!(piv.abs() > EPS, "pivot on a (near-)zero element");
        let inv = 1.0 / piv;
        for v in self.a[row].iter_mut() {
            *v *= inv;
        }
        self.b[row] *= inv;
        let pivot_row = self.a[row].clone();
        let pivot_rhs = self.b[row];
        for r in 0..self.a.len() {
            if r == row {
                continue;
            }
            let factor = self.a[r][col];
            if factor.abs() <= EPS {
                self.a[r][col] = 0.0;
                continue;
            }
            for (v, &p) in self.a[r].iter_mut().zip(&pivot_row) {
                *v -= factor * p;
            }
            self.a[r][col] = 0.0; // exact, avoids drift
            self.b[r] -= factor * pivot_rhs;
            if self.b[r] < 0.0 && self.b[r] > -EPS {
                self.b[r] = 0.0;
            }
        }
        let zfactor = self.z[col];
        if zfactor.abs() > EPS {
            for (v, &p) in self.z.iter_mut().zip(&pivot_row) {
                *v -= zfactor * p;
            }
            self.z[col] = 0.0;
        }
        let _ = pivot_rhs;
        self.basis[row] = col;
    }

    /// Runs the simplex loop for the current cost row.
    ///
    /// `allow_artificial` controls whether artificial columns may enter the
    /// basis (true only in phase one).
    fn optimize(&mut self, allow_artificial: bool) -> Result<(), LpError> {
        let ncols = self.cols.len();
        let nrows = self.a.len();
        let bland_after = 20 * (nrows + ncols) + 200;
        let max_pivots = 500 * (nrows + ncols) + 20_000;
        let mut pivots = 0usize;
        loop {
            let use_bland = pivots >= bland_after;
            let mut entering: Option<usize> = None;
            let mut best = -EPS;
            for (j, &kind) in self.cols.iter().enumerate() {
                if !allow_artificial && matches!(kind, ColKind::Artificial(_)) {
                    continue;
                }
                let zj = self.z[j];
                if use_bland {
                    if zj < -EPS {
                        entering = Some(j);
                        break;
                    }
                } else if zj < best {
                    best = zj;
                    entering = Some(j);
                }
            }
            let Some(col) = entering else {
                return Ok(()); // optimal for this phase
            };
            // Ratio test; ties broken by the smallest basis column index
            // (the Bland tie-break, safe to use unconditionally).
            let mut leave: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for r in 0..nrows {
                let arc = self.a[r][col];
                if arc > EPS {
                    let ratio = self.b[r] / arc;
                    let better = ratio < best_ratio - EPS
                        || (ratio < best_ratio + EPS
                            && leave.is_some_and(|l| self.basis[r] < self.basis[l]));
                    if better {
                        best_ratio = ratio;
                        leave = Some(r);
                    }
                }
            }
            let Some(row) = leave else {
                return Err(LpError::Unbounded);
            };
            self.pivot(row, col);
            pivots += 1;
            if pivots > max_pivots {
                return Err(LpError::IterationLimit { pivots });
            }
        }
    }

    /// Installs a new phase's per-column costs and recomputes the reduced
    /// cost row `z_j = c_j − c_B·B⁻¹A_j`.
    fn install_costs(&mut self, costs: Vec<f64>) {
        self.z.copy_from_slice(&costs);
        for (r, &bc) in self.basis.iter().enumerate() {
            let cb = costs[bc];
            if cb.abs() <= EPS {
                continue;
            }
            for (zj, arj) in self.z.iter_mut().zip(&self.a[r]) {
                *zj -= cb * arj;
            }
        }
        self.costs = costs;
    }

    /// Objective value of the current basic solution under the current
    /// phase's costs.
    fn objective(&self) -> f64 {
        self.basis
            .iter()
            .zip(&self.b)
            .map(|(&bc, &rhs)| self.costs[bc] * rhs)
            .sum()
    }
}

pub(crate) fn solve(lp: &LinearProgram) -> Result<LpSolution, LpError> {
    let n = lp.num_vars();
    // -- Densify user rows and append upper-bound rows. ---------------------
    let mut dense_rows: Vec<(Vec<f64>, Relation, f64, RowKind)> = Vec::new();
    for (idx, row) in lp.rows().iter().enumerate() {
        let mut coeffs = vec![0.0; n];
        for &(v, c) in &row.coeffs {
            coeffs[v] += c;
        }
        dense_rows.push((coeffs, row.relation, row.rhs, RowKind::User(idx)));
    }
    for (j, &u) in lp.uppers().iter().enumerate() {
        if u.is_finite() {
            let mut coeffs = vec![0.0; n];
            coeffs[j] = 1.0;
            dense_rows.push((coeffs, Relation::Le, u, RowKind::Bound(j)));
        }
    }

    // -- Flip rows to non-negative rhs, assign slack/surplus/artificial. ----
    let m = dense_rows.len();
    let mut cols: Vec<ColKind> = (0..n).map(ColKind::Structural).collect();
    let mut flipped = vec![false; m];
    let mut relations = Vec::with_capacity(m);
    for (r, (coeffs, rel, rhs, _)) in dense_rows.iter_mut().enumerate() {
        if *rhs < 0.0 {
            for c in coeffs.iter_mut() {
                *c = -*c;
            }
            *rhs = -*rhs;
            *rel = match *rel {
                Relation::Le => Relation::Ge,
                Relation::Ge => Relation::Le,
                Relation::Eq => Relation::Eq,
            };
            flipped[r] = true;
        }
        relations.push(*rel);
    }
    // Column layout: structural | slack/surplus per row | artificials.
    let mut slack_col = vec![usize::MAX; m];
    for (r, rel) in relations.iter().enumerate() {
        match rel {
            Relation::Le => {
                slack_col[r] = cols.len();
                cols.push(ColKind::Slack(r));
            }
            Relation::Ge => {
                slack_col[r] = cols.len();
                cols.push(ColKind::Surplus(r));
            }
            Relation::Eq => {}
        }
    }
    let mut art_col = vec![usize::MAX; m];
    for (r, rel) in relations.iter().enumerate() {
        if matches!(rel, Relation::Ge | Relation::Eq) {
            art_col[r] = cols.len();
            cols.push(ColKind::Artificial(r));
        }
    }
    let ncols = cols.len();

    // -- Build tableau. ------------------------------------------------------
    let mut a = vec![vec![0.0; ncols]; m];
    let mut b = vec![0.0; m];
    let mut basis = vec![usize::MAX; m];
    let mut row_kinds = Vec::with_capacity(m);
    for (r, (coeffs, rel, rhs, kind)) in dense_rows.into_iter().enumerate() {
        a[r][..n].copy_from_slice(&coeffs);
        b[r] = rhs;
        row_kinds.push(kind);
        match rel {
            Relation::Le => {
                a[r][slack_col[r]] = 1.0;
                basis[r] = slack_col[r];
            }
            Relation::Ge => {
                a[r][slack_col[r]] = -1.0;
                a[r][art_col[r]] = 1.0;
                basis[r] = art_col[r];
            }
            Relation::Eq => {
                a[r][art_col[r]] = 1.0;
                basis[r] = art_col[r];
            }
        }
    }

    let mut t = Tableau {
        a,
        b,
        z: vec![0.0; ncols],
        costs: vec![0.0; ncols],
        basis,
        cols,
        row_kinds,
        flipped,
    };

    // -- Phase one: minimise the sum of artificials. -------------------------
    let needs_phase_one = t.cols.iter().any(|c| matches!(c, ColKind::Artificial(_)));
    if needs_phase_one {
        let phase1: Vec<f64> = t
            .cols
            .iter()
            .map(|c| {
                if matches!(c, ColKind::Artificial(_)) {
                    1.0
                } else {
                    0.0
                }
            })
            .collect();
        t.install_costs(phase1);
        t.optimize(true)?;
        if t.objective() > 1e-7 {
            return Err(LpError::Infeasible);
        }
        // Drive artificials that linger in the basis (at value zero) out,
        // pivoting on any non-artificial column of their row; rows that are
        // all-zero elsewhere are redundant and keep the artificial at zero.
        for r in 0..t.a.len() {
            if matches!(t.cols[t.basis[r]], ColKind::Artificial(_)) {
                if let Some(j) = (0..t.cols.len()).find(|&j| {
                    !matches!(t.cols[j], ColKind::Artificial(_)) && t.a[r][j].abs() > 1e-7
                }) {
                    t.pivot(r, j);
                }
            }
        }
    }

    // -- Phase two: minimise the user objective. ------------------------------
    let sense = match lp.objective_sense() {
        Objective::Minimize => 1.0,
        Objective::Maximize => -1.0,
    };
    let phase2: Vec<f64> = t
        .cols
        .iter()
        .map(|c| match c {
            ColKind::Structural(j) => sense * lp.costs()[*j],
            _ => 0.0,
        })
        .collect();
    t.install_costs(phase2);
    t.optimize(false)?;

    // -- Extract the primal solution. -----------------------------------------
    let mut x = vec![0.0; n];
    for (r, &bc) in t.basis.iter().enumerate() {
        if let ColKind::Structural(j) = t.cols[bc] {
            x[j] = t.b[r];
        }
    }
    let objective = sense * t.objective();

    // -- Recover duals from the reduced-cost row. ------------------------------
    // For the minimised problem, y_i = c_B·B⁻¹e_i; the reduced cost of a
    // slack column (+e_i, cost 0) is −y_i and of a surplus column (−e_i) is
    // +y_i. Equality rows read the barred artificial column (+e_i) instead.
    let mut user_duals = vec![0.0; lp.num_constraints()];
    let mut bound_duals = vec![0.0; n];
    for r in 0..t.a.len() {
        let y_flipped = if slack_col[r] != usize::MAX {
            match t.cols[slack_col[r]] {
                ColKind::Slack(_) => -t.z[slack_col[r]],
                ColKind::Surplus(_) => t.z[slack_col[r]],
                _ => unreachable!("slack_col points at a slack or surplus column"),
            }
        } else {
            -t.z[art_col[r]]
        };
        // Undo the rhs-sign flip and the maximisation sign change.
        let y = sense * if t.flipped[r] { -y_flipped } else { y_flipped };
        match t.row_kinds[r] {
            RowKind::User(i) => user_duals[i] = y,
            RowKind::Bound(j) => bound_duals[j] = y,
        }
    }

    Ok(LpSolution::new(objective, x, user_duals, bound_duals))
}

#[cfg(test)]
mod tests {
    use crate::{LinearProgram, LpError, Objective, Relation};

    #[test]
    fn solves_textbook_maximization() {
        // max 3x + 5y st x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → obj 36 at (2, 6).
        let mut lp = LinearProgram::new(Objective::Maximize);
        let x = lp.add_var(3.0, f64::INFINITY);
        let y = lp.add_var(5.0, f64::INFINITY);
        lp.add_constraint(&[(x, 1.0)], Relation::Le, 4.0);
        lp.add_constraint(&[(y, 2.0)], Relation::Le, 12.0);
        lp.add_constraint(&[(x, 3.0), (y, 2.0)], Relation::Le, 18.0);
        let sol = lp.solve().unwrap();
        assert!((sol.objective() - 36.0).abs() < 1e-8);
        assert!((sol.value(x) - 2.0).abs() < 1e-8);
        assert!((sol.value(y) - 6.0).abs() < 1e-8);
    }

    #[test]
    fn solves_covering_minimization_with_ge_rows() {
        // min 2x + 3y st x + y ≥ 4, x ≥ 1 → obj 8 at (4, 0).
        let mut lp = LinearProgram::new(Objective::Minimize);
        let x = lp.add_var(2.0, f64::INFINITY);
        let y = lp.add_var(3.0, f64::INFINITY);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, 4.0);
        lp.add_constraint(&[(x, 1.0)], Relation::Ge, 1.0);
        let sol = lp.solve().unwrap();
        assert!((sol.objective() - 8.0).abs() < 1e-8);
        assert!((sol.value(x) - 4.0).abs() < 1e-8);
        assert!(sol.value(y).abs() < 1e-8);
    }

    #[test]
    fn equality_constraints_are_honoured() {
        // min x + y st x + 2y = 3, x - y = 0 → x = y = 1, obj 2.
        let mut lp = LinearProgram::new(Objective::Minimize);
        let x = lp.add_var(1.0, f64::INFINITY);
        let y = lp.add_var(1.0, f64::INFINITY);
        lp.add_constraint(&[(x, 1.0), (y, 2.0)], Relation::Eq, 3.0);
        lp.add_constraint(&[(x, 1.0), (y, -1.0)], Relation::Eq, 0.0);
        let sol = lp.solve().unwrap();
        assert!((sol.value(x) - 1.0).abs() < 1e-8);
        assert!((sol.value(y) - 1.0).abs() < 1e-8);
        assert!((sol.objective() - 2.0).abs() < 1e-8);
    }

    #[test]
    fn upper_bounds_are_enforced() {
        // min x + 5y st x + y ≥ 2, x ≤ 0.5 → x = 0.5, y = 1.5.
        let mut lp = LinearProgram::new(Objective::Minimize);
        let x = lp.add_var(1.0, 0.5);
        let y = lp.add_var(5.0, f64::INFINITY);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, 2.0);
        let sol = lp.solve().unwrap();
        assert!((sol.value(x) - 0.5).abs() < 1e-8);
        assert!((sol.value(y) - 1.5).abs() < 1e-8);
    }

    #[test]
    fn detects_infeasibility() {
        // x ≤ 1 and x ≥ 2 cannot both hold.
        let mut lp = LinearProgram::new(Objective::Minimize);
        let x = lp.add_var(1.0, 1.0);
        lp.add_constraint(&[(x, 1.0)], Relation::Ge, 2.0);
        assert_eq!(lp.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn detects_unboundedness() {
        // max x with no constraints at all.
        let mut lp = LinearProgram::new(Objective::Maximize);
        lp.add_var(1.0, f64::INFINITY);
        assert_eq!(lp.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn negative_rhs_rows_are_flipped_correctly() {
        // min x st -x ≤ -3  (i.e. x ≥ 3) → obj 3.
        let mut lp = LinearProgram::new(Objective::Minimize);
        let x = lp.add_var(1.0, f64::INFINITY);
        lp.add_constraint(&[(x, -1.0)], Relation::Le, -3.0);
        let sol = lp.solve().unwrap();
        assert!((sol.objective() - 3.0).abs() < 1e-8);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic Beale-style degeneracy; the Bland fallback must terminate.
        let mut lp = LinearProgram::new(Objective::Minimize);
        let x1 = lp.add_var(-0.75, f64::INFINITY);
        let x2 = lp.add_var(150.0, f64::INFINITY);
        let x3 = lp.add_var(-0.02, f64::INFINITY);
        let x4 = lp.add_var(6.0, f64::INFINITY);
        lp.add_constraint(
            &[(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)],
            Relation::Le,
            0.0,
        );
        lp.add_constraint(
            &[(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)],
            Relation::Le,
            0.0,
        );
        lp.add_constraint(&[(x3, 1.0)], Relation::Le, 1.0);
        let sol = lp.solve().unwrap();
        assert!((sol.objective() - (-0.05)).abs() < 1e-6);
    }

    #[test]
    fn duals_satisfy_strong_duality_on_covering_lp() {
        // min 2x + 3y st x + y ≥ 4 (dual y1), x ≥ 1 (dual y2).
        // Optimal duals: y1 = 2, y2 = 0; y·b = 8 = primal objective.
        let mut lp = LinearProgram::new(Objective::Minimize);
        let x = lp.add_var(2.0, f64::INFINITY);
        let y = lp.add_var(3.0, f64::INFINITY);
        let c1 = lp.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, 4.0);
        let c2 = lp.add_constraint(&[(x, 1.0)], Relation::Ge, 1.0);
        let sol = lp.solve().unwrap();
        let dual_obj = sol.dual(c1) * 4.0 + sol.dual(c2) * 1.0;
        assert!((dual_obj - sol.objective()).abs() < 1e-8);
        assert!(sol.dual(c1) >= -1e-9);
        assert!(sol.dual(c2) >= -1e-9);
    }

    #[test]
    fn duals_include_upper_bound_multipliers() {
        // min x + 5y st x + y ≥ 2, x ≤ 0.5.
        // obj = 8.0; y_cover = 5, w_x (bound dual) = -4 (binding at 0.5):
        // 5·2 + (−4)·0.5 = 8.
        let mut lp = LinearProgram::new(Objective::Minimize);
        let x = lp.add_var(1.0, 0.5);
        let y = lp.add_var(5.0, f64::INFINITY);
        let cover = lp.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, 2.0);
        let sol = lp.solve().unwrap();
        let dual_obj = sol.dual(cover) * 2.0 + sol.bound_dual(x) * 0.5;
        assert!(
            (dual_obj - sol.objective()).abs() < 1e-8,
            "dual obj {dual_obj}"
        );
    }

    #[test]
    fn zero_rhs_equality_is_fine() {
        let mut lp = LinearProgram::new(Objective::Minimize);
        let x = lp.add_var(1.0, f64::INFINITY);
        let y = lp.add_var(1.0, f64::INFINITY);
        lp.add_constraint(&[(x, 1.0), (y, -1.0)], Relation::Eq, 0.0);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, 2.0);
        let sol = lp.solve().unwrap();
        assert!((sol.value(x) - 1.0).abs() < 1e-8);
        assert!((sol.value(y) - 1.0).abs() < 1e-8);
    }

    #[test]
    fn redundant_rows_do_not_break_phase_one() {
        // Two identical equalities leave an artificial basic at zero.
        let mut lp = LinearProgram::new(Objective::Minimize);
        let x = lp.add_var(1.0, f64::INFINITY);
        lp.add_constraint(&[(x, 1.0)], Relation::Eq, 2.0);
        lp.add_constraint(&[(x, 1.0)], Relation::Eq, 2.0);
        let sol = lp.solve().unwrap();
        assert!((sol.value(x) - 2.0).abs() < 1e-8);
    }
}

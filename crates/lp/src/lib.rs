//! A small, dependency-free linear-programming solver.
//!
//! This crate is the bounding substrate for the exact winner-determination
//! solver in `fl-exact`: branch-and-bound prunes nodes with the objective of
//! the LP relaxation of the packing/covering integer program, and that
//! relaxation is solved here with a dense, two-phase primal simplex method.
//!
//! The solver targets the scale of the reproduction's exact experiments
//! (hundreds of variables and constraints), not industrial LPs. It trades
//! sparse sophistication for auditability:
//!
//! * problems are stated in a natural general form ([`LinearProgram`]) with
//!   `≤` / `≥` / `=` rows and per-variable upper bounds,
//! * the solver converts to standard computational form (slack, surplus and
//!   artificial columns) internally,
//! * phase one minimises infeasibility; phase two optimises the user
//!   objective with Dantzig pricing and an automatic switch to Bland's rule
//!   to rule out cycling,
//! * dual values and reduced costs are recovered from the final tableau so
//!   callers can check weak duality and complementary slackness.
//!
//! # Example
//!
//! Minimise `x + 2y` subject to `x + y ≥ 1`, `y ≤ 0.6`, `x, y ≥ 0`:
//!
//! ```
//! use fl_lp::{LinearProgram, Objective, Relation};
//!
//! # fn main() -> Result<(), fl_lp::LpError> {
//! let mut lp = LinearProgram::new(Objective::Minimize);
//! let x = lp.add_var(1.0, f64::INFINITY);
//! let y = lp.add_var(2.0, 0.6);
//! lp.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, 1.0);
//! let sol = lp.solve()?;
//! assert!((sol.objective() - 1.0).abs() < 1e-9);
//! assert!((sol.value(x) - 1.0).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod problem;
mod simplex;
mod solution;

pub use error::LpError;
pub use problem::{ConstraintId, LinearProgram, Objective, Relation, VarId};
pub use solution::LpSolution;

/// Numerical tolerance used throughout the solver for feasibility and
/// optimality tests.
pub const EPS: f64 = 1e-9;

use crate::simplex;
use crate::{LpError, LpSolution};

/// Optimisation direction of a [`LinearProgram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Objective {
    /// Minimise the objective function.
    Minimize,
    /// Maximise the objective function.
    Maximize,
}

/// Relation between a constraint's left-hand side and its right-hand side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relation {
    /// `lhs ≤ rhs`
    Le,
    /// `lhs ≥ rhs`
    Ge,
    /// `lhs = rhs`
    Eq,
}

/// Opaque handle to a decision variable of a [`LinearProgram`].
///
/// Handles are only meaningful for the program that created them; using a
/// handle with a different program yields a panic or nonsense indices, so
/// treat them as scoped tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Zero-based index of the variable in insertion order.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Opaque handle to a constraint row of a [`LinearProgram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConstraintId(pub(crate) usize);

impl ConstraintId {
    /// Zero-based index of the constraint in insertion order.
    pub fn index(self) -> usize {
        self.0
    }
}

#[derive(Debug, Clone)]
pub(crate) struct Row {
    /// `(variable index, coefficient)` pairs; duplicates are summed during
    /// densification.
    pub coeffs: Vec<(usize, f64)>,
    pub relation: Relation,
    pub rhs: f64,
}

/// A linear program in general form.
///
/// All variables are non-negative with an optional finite upper bound; rows
/// may be `≤`, `≥` or `=`. This matches the LP relaxations that arise from
/// the winner-determination ILPs in this workspace (coverage rows are `≥ K`,
/// one-bid-per-client rows are `≤ 1`, and `x_ij ∈ [0, 1]`).
///
/// # Example
///
/// ```
/// use fl_lp::{LinearProgram, Objective, Relation};
///
/// # fn main() -> Result<(), fl_lp::LpError> {
/// // max 3x + 2y  s.t.  x + y ≤ 4,  x ≤ 2
/// let mut lp = LinearProgram::new(Objective::Maximize);
/// let x = lp.add_var(3.0, 2.0);
/// let y = lp.add_var(2.0, f64::INFINITY);
/// lp.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Le, 4.0);
/// let sol = lp.solve()?;
/// assert!((sol.objective() - 10.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LinearProgram {
    objective: Objective,
    /// Objective coefficient per variable.
    costs: Vec<f64>,
    /// Finite or infinite upper bound per variable (lower bound is 0).
    uppers: Vec<f64>,
    rows: Vec<Row>,
}

impl LinearProgram {
    /// Creates an empty program with the given optimisation direction.
    pub fn new(objective: Objective) -> Self {
        LinearProgram {
            objective,
            costs: Vec::new(),
            uppers: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Adds a variable with objective coefficient `cost` and domain
    /// `[0, upper]` (`upper` may be `f64::INFINITY`).
    ///
    /// Returns the handle used to reference the variable in constraints and
    /// in the solution.
    pub fn add_var(&mut self, cost: f64, upper: f64) -> VarId {
        let id = VarId(self.costs.len());
        self.costs.push(cost);
        self.uppers.push(upper);
        id
    }

    /// Adds the constraint `Σ coeff·var  relation  rhs`.
    ///
    /// Mentioning the same variable twice sums the coefficients.
    pub fn add_constraint(
        &mut self,
        terms: &[(VarId, f64)],
        relation: Relation,
        rhs: f64,
    ) -> ConstraintId {
        let id = ConstraintId(self.rows.len());
        self.rows.push(Row {
            coeffs: terms.iter().map(|&(v, c)| (v.0, c)).collect(),
            relation,
            rhs,
        });
        id
    }

    /// Number of decision variables added so far.
    pub fn num_vars(&self) -> usize {
        self.costs.len()
    }

    /// Number of constraint rows added so far (upper bounds excluded).
    pub fn num_constraints(&self) -> usize {
        self.rows.len()
    }

    /// Optimisation direction this program was created with.
    pub fn objective_sense(&self) -> Objective {
        self.objective
    }

    /// Solves the program with the two-phase primal simplex method.
    ///
    /// # Errors
    ///
    /// * [`LpError::Infeasible`] if no feasible point exists.
    /// * [`LpError::Unbounded`] if the objective is unbounded.
    /// * [`LpError::InvalidProblem`] if a coefficient, bound or right-hand
    ///   side is NaN, a bound is negative, or a constraint references an
    ///   unknown variable.
    /// * [`LpError::IterationLimit`] on pathological cycling (not observed
    ///   in practice thanks to the Bland's-rule fallback).
    pub fn solve(&self) -> Result<LpSolution, LpError> {
        self.validate()?;
        simplex::solve(self)
    }

    fn validate(&self) -> Result<(), LpError> {
        for (i, (&c, &u)) in self.costs.iter().zip(&self.uppers).enumerate() {
            if c.is_nan() {
                return Err(LpError::InvalidProblem(format!(
                    "objective coefficient of variable {i} is NaN"
                )));
            }
            if u.is_nan() || u < 0.0 {
                return Err(LpError::InvalidProblem(format!(
                    "upper bound of variable {i} is {u}; bounds must be non-negative"
                )));
            }
        }
        for (r, row) in self.rows.iter().enumerate() {
            if row.rhs.is_nan() || row.rhs.is_infinite() {
                return Err(LpError::InvalidProblem(format!(
                    "right-hand side of constraint {r} is {}",
                    row.rhs
                )));
            }
            for &(v, c) in &row.coeffs {
                if v >= self.costs.len() {
                    return Err(LpError::InvalidProblem(format!(
                        "constraint {r} references unknown variable {v}"
                    )));
                }
                if c.is_nan() || c.is_infinite() {
                    return Err(LpError::InvalidProblem(format!(
                        "coefficient of variable {v} in constraint {r} is {c}"
                    )));
                }
            }
        }
        Ok(())
    }

    pub(crate) fn costs(&self) -> &[f64] {
        &self.costs
    }

    pub(crate) fn uppers(&self) -> &[f64] {
        &self.uppers
    }

    pub(crate) fn rows(&self) -> &[Row] {
        &self.rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_and_constraint_ids_are_sequential() {
        let mut lp = LinearProgram::new(Objective::Minimize);
        let a = lp.add_var(1.0, 1.0);
        let b = lp.add_var(1.0, 1.0);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        let c0 = lp.add_constraint(&[(a, 1.0)], Relation::Ge, 0.5);
        let c1 = lp.add_constraint(&[(b, 1.0)], Relation::Le, 0.5);
        assert_eq!(c0.index(), 0);
        assert_eq!(c1.index(), 1);
        assert_eq!(lp.num_vars(), 2);
        assert_eq!(lp.num_constraints(), 2);
    }

    #[test]
    fn nan_cost_is_rejected() {
        let mut lp = LinearProgram::new(Objective::Minimize);
        lp.add_var(f64::NAN, 1.0);
        assert!(matches!(lp.solve(), Err(LpError::InvalidProblem(_))));
    }

    #[test]
    fn negative_upper_bound_is_rejected() {
        let mut lp = LinearProgram::new(Objective::Minimize);
        lp.add_var(1.0, -1.0);
        assert!(matches!(lp.solve(), Err(LpError::InvalidProblem(_))));
    }

    #[test]
    fn unknown_variable_reference_is_rejected() {
        let mut lp = LinearProgram::new(Objective::Minimize);
        let x = lp.add_var(1.0, 1.0);
        let mut other = LinearProgram::new(Objective::Minimize);
        // Simulate a stale handle: reference var 5 in a 1-var program.
        other.add_var(1.0, 1.0);
        other.rows.push(Row {
            coeffs: vec![(5, 1.0)],
            relation: Relation::Ge,
            rhs: 1.0,
        });
        assert!(matches!(other.solve(), Err(LpError::InvalidProblem(_))));
        // The legitimate program still works.
        let mut ok = LinearProgram::new(Objective::Minimize);
        let y = ok.add_var(1.0, 1.0);
        ok.add_constraint(&[(y, 1.0)], Relation::Ge, 0.25);
        assert!(ok.solve().is_ok());
        let _ = x;
    }

    #[test]
    fn infinite_rhs_is_rejected() {
        let mut lp = LinearProgram::new(Objective::Minimize);
        let x = lp.add_var(1.0, 1.0);
        lp.add_constraint(&[(x, 1.0)], Relation::Le, f64::INFINITY);
        assert!(matches!(lp.solve(), Err(LpError::InvalidProblem(_))));
    }
}

//! Property tests for the simplex solver: returned points are feasible,
//! beat random feasible points, and satisfy strong duality.

use fl_lp::{LinearProgram, LpError, Objective, Relation};
use proptest::prelude::*;

/// A random covering-style LP: minimise `c·x` over `A x ≥ b`, `0 ≤ x ≤ u`,
/// constructed so that a feasible point always exists (`x = u` works by
/// making `b ≤ A·u`).
#[derive(Debug, Clone)]
struct CoverLp {
    costs: Vec<f64>,
    uppers: Vec<f64>,
    rows: Vec<(Vec<f64>, f64)>,
}

fn cover_lp() -> impl Strategy<Value = CoverLp> {
    (2usize..6, 1usize..5).prop_flat_map(|(n, m)| {
        let costs = prop::collection::vec(1u32..20, n..=n);
        let uppers = prop::collection::vec(1u32..5, n..=n);
        let coeffs = prop::collection::vec(prop::collection::vec(0u32..4, n..=n), m..=m);
        let slack = prop::collection::vec(0.0f64..1.0, m..=m);
        (costs, uppers, coeffs, slack).prop_map(|(costs, uppers, coeffs, slack)| {
            let costs: Vec<f64> = costs.into_iter().map(f64::from).collect();
            let uppers: Vec<f64> = uppers.into_iter().map(f64::from).collect();
            let rows = coeffs
                .into_iter()
                .zip(slack)
                .map(|(row, s)| {
                    let row: Vec<f64> = row.into_iter().map(f64::from).collect();
                    // rhs at most A·u, guaranteeing feasibility of x = u.
                    let max_rhs: f64 = row.iter().zip(&uppers).map(|(a, u)| a * u).sum();
                    (row, s * max_rhs)
                })
                .collect();
            CoverLp {
                costs,
                uppers,
                rows,
            }
        })
    })
}

fn build(lp_data: &CoverLp) -> (LinearProgram, Vec<fl_lp::VarId>, Vec<fl_lp::ConstraintId>) {
    let mut lp = LinearProgram::new(Objective::Minimize);
    let vars: Vec<_> = lp_data
        .costs
        .iter()
        .zip(&lp_data.uppers)
        .map(|(&c, &u)| lp.add_var(c, u))
        .collect();
    let mut rows = Vec::new();
    for (row, rhs) in &lp_data.rows {
        let terms: Vec<_> = vars.iter().zip(row).map(|(&v, &a)| (v, a)).collect();
        rows.push(lp.add_constraint(&terms, Relation::Ge, *rhs));
    }
    (lp, vars, rows)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn solution_is_feasible(data in cover_lp()) {
        let (lp, vars, _) = build(&data);
        let sol = lp.solve().expect("x = u is always feasible");
        for (j, &v) in vars.iter().enumerate() {
            let x = sol.value(v);
            prop_assert!(x >= -1e-8, "x_{j} = {x} negative");
            prop_assert!(x <= data.uppers[j] + 1e-8, "x_{j} = {x} over bound");
        }
        for (i, (row, rhs)) in data.rows.iter().enumerate() {
            let lhs: f64 = vars.iter().zip(row).map(|(&v, &a)| a * sol.value(v)).sum();
            prop_assert!(lhs >= rhs - 1e-7, "row {i}: {lhs} < {rhs}");
        }
    }

    #[test]
    fn objective_beats_the_all_upper_point(data in cover_lp()) {
        let (lp, _, _) = build(&data);
        let sol = lp.solve().expect("feasible");
        let naive: f64 = data.costs.iter().zip(&data.uppers).map(|(c, u)| c * u).sum();
        prop_assert!(sol.objective() <= naive + 1e-7);
        prop_assert!(sol.objective() >= -1e-9, "covering LPs have non-negative cost");
    }

    #[test]
    fn strong_duality_holds(data in cover_lp()) {
        let (lp, vars, row_ids) = build(&data);
        let sol = lp.solve().expect("feasible");
        // Dual objective: Σ y_i b_i + Σ w_j u_j (bound duals w ≤ 0).
        let mut dual = 0.0;
        for (i, &rid) in row_ids.iter().enumerate() {
            dual += sol.dual(rid) * data.rows[i].1;
        }
        for (j, &v) in vars.iter().enumerate() {
            dual += sol.bound_dual(v) * data.uppers[j];
        }
        prop_assert!(
            (dual - sol.objective()).abs() <= 1e-6 * (1.0 + sol.objective().abs()),
            "strong duality gap: dual {dual} vs primal {}",
            sol.objective()
        );
    }

    #[test]
    fn scaling_costs_scales_the_objective(data in cover_lp(), factor in 1u32..5) {
        let (lp, _, _) = build(&data);
        let base = lp.solve().expect("feasible").objective();
        let mut scaled = data.clone();
        for c in scaled.costs.iter_mut() {
            *c *= f64::from(factor);
        }
        let (lp2, _, _) = build(&scaled);
        let scaled_obj = lp2.solve().expect("feasible").objective();
        prop_assert!(
            (scaled_obj - f64::from(factor) * base).abs() <= 1e-6 * (1.0 + scaled_obj.abs()),
            "{scaled_obj} != {factor}·{base}"
        );
    }
}

#[test]
fn infeasible_row_is_detected() {
    let mut lp = LinearProgram::new(Objective::Minimize);
    let x = lp.add_var(1.0, 1.0);
    lp.add_constraint(&[(x, 1.0)], Relation::Ge, 5.0);
    assert_eq!(lp.solve().unwrap_err(), LpError::Infeasible);
}

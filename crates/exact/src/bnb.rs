//! Exact winner determination by branch-and-bound.
//!
//! Bids are branched on in ascending price-per-round order; each node keeps
//! an optimistic view of its partial selection (windows count as full
//! coverage) and is pruned by
//!
//! 1. a **per-round potential** test — some round can no longer reach `K`
//!    even if every remaining bid is accepted;
//! 2. a **fractional-knapsack bound** — the cheapest fractional completion
//!    of the remaining coverage demand already exceeds the incumbent;
//! 3. **early acceptance** — once the chosen set staffs every round
//!    (verified by max-flow), adding more bids only costs more, so the
//!    subtree closes.
//!
//! The incumbent is seeded with `A_winner`'s greedy solution, which is why
//! the search is fast on instances the greedy already solves near-optimally.

use fl_auction::{AWinner, QualifiedBid, Wdp, WdpError, WdpSolution, WdpSolver, WinnerEntry};

use crate::sched;
use crate::solver::{ExactOutcome, Optimality, ProvingWdpSolver};

/// Exact WDP solver (pay-as-bid; OPT is a yardstick, not a mechanism).
///
/// # Example
///
/// ```
/// use fl_auction::{BidRef, ClientId, QualifiedBid, Round, Wdp, WdpSolver, Window};
/// use fl_exact::ExactSolver;
///
/// # fn main() -> Result<(), fl_auction::WdpError> {
/// let bid = |client, price, a, d, c| QualifiedBid {
///     bid_ref: BidRef::new(ClientId(client), 0),
///     price,
///     accuracy: 0.5,
///     window: Window::new(Round(a), Round(d)),
///     rounds: c,
///     round_time: 1.0,
/// };
/// // The paper's worked example: OPT = B_1 + B_3 = $7.
/// let wdp = Wdp::new(3, 1, vec![
///     bid(1, 2.0, 1, 2, 1),
///     bid(2, 6.0, 2, 3, 2),
///     bid(3, 5.0, 1, 3, 2),
/// ]);
/// let opt = ExactSolver::new().solve_wdp(&wdp)?;
/// assert_eq!(opt.cost(), 7.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ExactSolver {
    node_budget: usize,
}

impl ExactSolver {
    /// Creates the solver with the default node budget (5 million).
    pub fn new() -> Self {
        ExactSolver {
            node_budget: 5_000_000,
        }
    }

    /// Overrides the node budget; exceeding it yields
    /// [`WdpError::ResourceLimit`].
    pub fn with_node_budget(mut self, nodes: usize) -> Self {
        self.node_budget = nodes;
        self
    }
}

impl Default for ExactSolver {
    fn default() -> Self {
        ExactSolver::new()
    }
}

impl WdpSolver for ExactSolver {
    fn name(&self) -> &str {
        "OPT"
    }

    /// Solves to proven optimality or fails.
    ///
    /// Budget exhaustion surfaces as [`WdpError::ResourceLimit`] even when
    /// a feasible incumbent exists — this method's contract is "a returned
    /// solution is the proven optimum". Use
    /// [`solve_proved`](ProvingWdpSolver::solve_proved) to receive the
    /// incumbent together with an explicit "bound, not proven optimal"
    /// marker instead.
    fn solve_wdp(&self, wdp: &Wdp) -> Result<WdpSolution, WdpError> {
        match self.solve_proved(wdp)? {
            ExactOutcome {
                solution,
                optimality: Optimality::Proven,
            } => Ok(solution),
            ExactOutcome {
                optimality: Optimality::Bounded { reason },
                ..
            } => Err(WdpError::ResourceLimit(format!(
                "{reason}; incumbent is a bound, not proven optimal"
            ))),
        }
    }
}

impl ProvingWdpSolver for ExactSolver {
    fn solve_proved(&self, wdp: &Wdp) -> Result<ExactOutcome, WdpError> {
        let horizon = wdp.horizon();
        let k = wdp.demand_per_round();
        // Branch order: ascending price per offered round, deterministic.
        let mut order: Vec<usize> = (0..wdp.bids().len()).collect();
        order.sort_by(|&a, &b| {
            let qa = &wdp.bids()[a];
            let qb = &wdp.bids()[b];
            (qa.price / f64::from(qa.rounds))
                .total_cmp(&(qb.price / f64::from(qb.rounds)))
                .then(qa.bid_ref.cmp(&qb.bid_ref))
        });
        let bids: Vec<&QualifiedBid> = order.iter().map(|&i| &wdp.bids()[i]).collect();
        let n = bids.len();

        // Root infeasibility proof: an *optimistic* transportation problem
        // (each client contributes its best capacity over the union of its
        // windows) that already falls short of K·T̂_g proves the ILP
        // infeasible without any branching.
        if !optimistic_feasible(&bids, horizon, k) {
            return Err(WdpError::Infeasible);
        }

        // suffix_cover[idx][t]: how many bids in bids[idx..] cover round t
        // (an optimistic stand-in for "distinct clients").
        let mut suffix_cover = vec![vec![0u32; horizon as usize]; n + 1];
        for idx in (0..n).rev() {
            let mut row = suffix_cover[idx + 1].clone();
            for t in bids[idx].window.rounds() {
                row[t.index()] += 1;
            }
            suffix_cover[idx] = row;
        }

        // Seed the incumbent with the greedy solution.
        let mut best_cost = f64::INFINITY;
        let mut best_set: Option<Vec<usize>> = None;
        if let Ok(greedy) = AWinner::new().without_certificate().solve_wdp(wdp) {
            best_cost = greedy.cost();
            let set: Vec<usize> = greedy
                .winners()
                .iter()
                .map(|w| {
                    bids.iter()
                        .position(|b| b.bid_ref == w.bid_ref)
                        .expect("greedy winner must be a qualified bid")
                })
                .collect();
            best_set = Some(set);
        }

        let mut search = Search {
            bids: &bids,
            horizon,
            k,
            suffix_cover: &suffix_cover,
            demand: u64::from(k) * u64::from(horizon),
            node_budget: self.node_budget,
            nodes: 0,
            exhausted: false,
            best_cost,
            best_set,
            chosen: Vec::new(),
            chosen_clients: std::collections::HashSet::new(),
            window_count: vec![0u32; horizon as usize],
            capacity: 0,
            cost: 0.0,
        };
        search.dfs(0);

        let Some(set) = search.best_set else {
            return if search.exhausted {
                // No incumbent at all: nothing reportable survives.
                Err(WdpError::ResourceLimit(format!(
                    "branch-and-bound node budget of {} exhausted before any \
                     feasible incumbent was found",
                    self.node_budget
                )))
            } else {
                Err(WdpError::Infeasible)
            };
        };
        let chosen: Vec<&QualifiedBid> = set.iter().map(|&i| bids[i]).collect();
        let schedules = sched::build_schedules(&chosen, horizon, k)
            .expect("an accepted incumbent must be schedulable");
        let mut cost = 0.0;
        let winners: Vec<WinnerEntry> = chosen
            .iter()
            .zip(schedules)
            .map(|(b, schedule)| {
                cost += b.price;
                WinnerEntry {
                    bid_ref: b.bid_ref,
                    price: b.price,
                    payment: b.price,
                    schedule,
                }
            })
            .collect();
        let optimality = if search.exhausted {
            Optimality::Bounded {
                reason: format!(
                    "branch-and-bound node budget of {} exhausted",
                    self.node_budget
                ),
            }
        } else {
            Optimality::Proven
        };
        Ok(ExactOutcome {
            solution: WdpSolution::new(horizon, winners, cost, None),
            optimality,
        })
    }
}

/// Optimistic feasibility: relax "one bid per client" to "one *composite*
/// bid per client" whose window is the union of the client's windows and
/// whose capacity is the client's largest `c`. Any integral solution of
/// the true ILP is feasible in this relaxation, so a shortfall here is an
/// infeasibility proof.
fn optimistic_feasible(bids: &[&QualifiedBid], horizon: u32, k: u32) -> bool {
    use std::collections::BTreeMap;
    let mut per_client: BTreeMap<u32, (u32, Vec<bool>)> = BTreeMap::new();
    for b in bids {
        let entry = per_client
            .entry(b.bid_ref.client.0)
            .or_insert_with(|| (0, vec![false; horizon as usize]));
        entry.0 = entry.0.max(b.rounds);
        for t in b.window.rounds() {
            entry.1[t.index()] = true;
        }
    }
    let n_clients = per_client.len();
    let source = 0usize;
    let sink = 1 + n_clients + horizon as usize;
    let mut net = crate::flow::FlowNetwork::new(sink + 1);
    for (ci, (_, (cap, cover))) in per_client.iter().enumerate() {
        net.add_edge(source, 1 + ci, i64::from(*cap));
        for (t, covered) in cover.iter().enumerate() {
            if *covered {
                net.add_edge(1 + ci, 1 + n_clients + t, 1);
            }
        }
    }
    for t in 0..horizon as usize {
        net.add_edge(1 + n_clients + t, sink, i64::from(k));
    }
    net.max_flow(source, sink) as u64 >= u64::from(k) * u64::from(horizon)
}

struct Search<'a> {
    bids: &'a [&'a QualifiedBid],
    horizon: u32,
    k: u32,
    suffix_cover: &'a [Vec<u32>],
    demand: u64,
    node_budget: usize,
    nodes: usize,
    /// Set when the node budget runs out; the search unwinds without
    /// exploring further but keeps the incumbent found so far.
    exhausted: bool,
    best_cost: f64,
    best_set: Option<Vec<usize>>,
    chosen: Vec<usize>,
    chosen_clients: std::collections::HashSet<u32>,
    /// Per-round count of chosen bids whose window covers the round.
    window_count: Vec<u32>,
    /// Σ c_b over chosen bids.
    capacity: u64,
    cost: f64,
}

impl Search<'_> {
    fn dfs(&mut self, idx: usize) {
        if self.exhausted {
            return;
        }
        self.nodes += 1;
        if self.nodes > self.node_budget {
            self.exhausted = true;
            return;
        }
        // Early acceptance: the chosen set may already be complete.
        if self.capacity >= self.demand && self.optimistic_chosen_coverage() >= self.demand {
            let chosen: Vec<&QualifiedBid> = self.chosen.iter().map(|&i| self.bids[i]).collect();
            if sched::is_feasible(&chosen, self.horizon, self.k) {
                if self.cost < self.best_cost - 1e-9 {
                    self.best_cost = self.cost;
                    self.best_set = Some(self.chosen.clone());
                }
                // Supersets only cost more; close the subtree.
                return;
            }
        }
        if idx == self.bids.len() {
            return;
        }
        // Per-round potential prune.
        for t in 0..self.horizon as usize {
            if self.window_count[t] + self.suffix_cover[idx][t] < self.k {
                return;
            }
        }
        // Fractional-knapsack bound on completing the remaining demand.
        if self.cost + self.completion_bound(idx) >= self.best_cost - 1e-9 {
            return;
        }
        // Branch 1: include bids[idx] (only if the client is free).
        let b = self.bids[idx];
        if !self.chosen_clients.contains(&b.bid_ref.client.0) {
            self.chosen.push(idx);
            self.chosen_clients.insert(b.bid_ref.client.0);
            for t in b.window.rounds() {
                self.window_count[t.index()] += 1;
            }
            self.capacity += u64::from(b.rounds);
            self.cost += b.price;
            self.dfs(idx + 1);
            self.cost -= b.price;
            self.capacity -= u64::from(b.rounds);
            for t in b.window.rounds() {
                self.window_count[t.index()] -= 1;
            }
            self.chosen_clients.remove(&b.bid_ref.client.0);
            self.chosen.pop();
        }
        // Branch 2: exclude bids[idx].
        self.dfs(idx + 1);
    }

    /// Optimistic useful coverage of the chosen set:
    /// `min(Σ c_b, Σ_t min(window_count_t, K))`.
    fn optimistic_chosen_coverage(&self) -> u64 {
        let window_side: u64 = self
            .window_count
            .iter()
            .map(|&w| u64::from(w.min(self.k)))
            .sum();
        self.capacity.min(window_side)
    }

    /// A lower bound on the extra cost to cover the remaining demand using
    /// bids `idx..`, by fractional knapsack over their capacities (they are
    /// already sorted by price per round). Returns `f64::INFINITY` when
    /// even fractional completion is impossible.
    fn completion_bound(&self, idx: usize) -> f64 {
        let covered = self.optimistic_chosen_coverage();
        let mut remaining = self.demand.saturating_sub(covered);
        if remaining == 0 {
            return 0.0;
        }
        let mut bound = 0.0;
        for b in &self.bids[idx..] {
            let cap = u64::from(b.rounds);
            if cap >= remaining {
                bound += b.price * (remaining as f64) / (cap as f64);
                return bound;
            }
            bound += b.price;
            remaining -= cap;
        }
        f64::INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fl_auction::{BidRef, ClientId, Round, Window};

    fn qb(client: u32, bid: u32, price: f64, a: u32, d: u32, c: u32) -> QualifiedBid {
        QualifiedBid {
            bid_ref: BidRef::new(ClientId(client), bid),
            price,
            accuracy: 0.5,
            window: Window::new(Round(a), Round(d)),
            rounds: c,
            round_time: 1.0,
        }
    }

    #[test]
    fn solves_paper_example_exactly() {
        let wdp = Wdp::new(
            3,
            1,
            vec![
                qb(1, 0, 2.0, 1, 2, 1),
                qb(2, 0, 6.0, 2, 3, 2),
                qb(3, 0, 5.0, 1, 3, 2),
            ],
        );
        let sol = ExactSolver::new().solve_wdp(&wdp).unwrap();
        assert_eq!(sol.cost(), 7.0);
        assert!(fl_auction::verify::wdp_violations(&wdp, &sol).is_empty());
    }

    #[test]
    fn beats_greedy_where_greedy_is_suboptimal() {
        // Greedy (static ratio) pays 11 here; OPT pays 8 (see the greedy
        // baseline's test with the same instance).
        let wdp = Wdp::new(
            2,
            1,
            vec![
                qb(0, 0, 3.0, 1, 1, 1),
                qb(1, 0, 8.0, 1, 2, 2),
                qb(2, 0, 5.0, 2, 2, 1),
            ],
        );
        let sol = ExactSolver::new().solve_wdp(&wdp).unwrap();
        assert_eq!(sol.cost(), 8.0);
    }

    #[test]
    fn infeasible_instance_reported() {
        let wdp = Wdp::new(3, 2, vec![qb(0, 0, 1.0, 1, 3, 3)]);
        assert_eq!(
            ExactSolver::new().solve_wdp(&wdp).unwrap_err(),
            WdpError::Infeasible
        );
    }

    #[test]
    fn node_budget_is_honoured() {
        // An instance whose root bound (7) undercuts the greedy incumbent
        // (11) forces at least one branching step, tripping a 1-node budget.
        let wdp = Wdp::new(
            2,
            1,
            vec![
                qb(0, 0, 3.0, 1, 1, 1),
                qb(1, 0, 8.0, 1, 2, 2),
                qb(2, 0, 5.0, 2, 2, 1),
            ],
        );
        let err = ExactSolver::new()
            .with_node_budget(1)
            .solve_wdp(&wdp)
            .unwrap_err();
        assert!(matches!(err, WdpError::ResourceLimit(_)));
    }

    #[test]
    fn respects_one_bid_per_client() {
        // Client 0 has two dirt-cheap bids covering both rounds; K = 2
        // forces picking someone else for the second slot per round.
        let wdp = Wdp::new(
            1,
            2,
            vec![
                qb(0, 0, 0.1, 1, 1, 1),
                qb(0, 1, 0.1, 1, 1, 1),
                qb(1, 0, 5.0, 1, 1, 1),
            ],
        );
        let sol = ExactSolver::new().solve_wdp(&wdp).unwrap();
        assert!((sol.cost() - 5.1).abs() < 1e-9);
        assert!(fl_auction::verify::wdp_violations(&wdp, &sol).is_empty());
    }

    #[test]
    fn never_worse_than_greedy_on_random_instances() {
        // Deterministic pseudo-random sweep (no rand dependency needed).
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..30 {
            let horizon = 3 + (next() % 4) as u32; // 3..=6
            let k = 1 + (next() % 2) as u32;
            let n = 8 + (next() % 6) as usize;
            let mut bids = Vec::new();
            for i in 0..n {
                let a = 1 + (next() % u64::from(horizon)) as u32;
                let d = a + (next() % u64::from(horizon - a + 1)) as u32;
                let span = d - a + 1;
                let c = 1 + (next() % u64::from(span)) as u32;
                let price = 1.0 + (next() % 50) as f64;
                bids.push(qb(i as u32, 0, price, a, d, c));
            }
            let wdp = Wdp::new(horizon, k, bids);
            let greedy = AWinner::new().without_certificate().solve_wdp(&wdp);
            let opt = ExactSolver::new().solve_wdp(&wdp);
            match (greedy, opt) {
                (Ok(g), Ok(o)) => {
                    assert!(
                        o.cost() <= g.cost() + 1e-9,
                        "trial {trial}: OPT {} beats greedy {}",
                        o.cost(),
                        g.cost()
                    );
                    assert!(fl_auction::verify::wdp_violations(&wdp, &o).is_empty());
                }
                (Err(_), Ok(o)) => {
                    // Greedy can stall where OPT schedules around it.
                    assert!(fl_auction::verify::wdp_violations(&wdp, &o).is_empty());
                }
                (Ok(g), Err(e)) => {
                    panic!(
                        "trial {trial}: greedy found {} but exact failed: {e}",
                        g.cost()
                    )
                }
                (Err(_), Err(_)) => {}
            }
        }
    }
}

//! Unified interface over the exact winner-determination solvers.
//!
//! The plain [`WdpSolver`] contract has no way to say *how much* a result
//! can be trusted: a branch-and-bound run that exhausts its node budget
//! still holds a perfectly feasible incumbent — it just cannot prove the
//! incumbent optimal. Before this module existed, [`ExactSolver`](crate::ExactSolver) turned
//! budget exhaustion into a hard [`WdpError::ResourceLimit`] and threw the
//! incumbent away, which forced downstream consumers (differential
//! certifiers, VCG payments, figures normalising by "OPT") either to treat
//! the horizon as unsolved or, worse, to silently accept an unproven
//! incumbent as the optimum.
//!
//! [`ProvingWdpSolver`] makes the distinction explicit: `solve_proved`
//! returns the best solution found *plus* an [`Optimality`] tag saying
//! whether the search completed. [`ExactSolver`](crate::ExactSolver) and [`BruteForceSolver`](crate::BruteForceSolver)
//! both implement it, so they are interchangeable wherever a proof-aware
//! exact solver is needed (the `fl-certify` differential fuzzer picks
//! whichever fits the instance size and cross-checks them against each
//! other).

use fl_auction::{Wdp, WdpError, WdpSolution, WdpSolver};

/// How trustworthy an exact solver's result is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Optimality {
    /// The search ran to completion: the solution is a proven optimum.
    Proven,
    /// An internal resource budget ran out before the search completed.
    /// The accompanying solution is the best incumbent found — an **upper
    /// bound** on the optimum, not a proven optimum.
    Bounded {
        /// Human-readable description of the exhausted budget.
        reason: String,
    },
}

impl Optimality {
    /// Whether the result is a proven optimum.
    pub fn is_proven(&self) -> bool {
        matches!(self, Optimality::Proven)
    }
}

/// The result of a proof-aware exact solve: the best solution found and
/// whether it was proven optimal.
#[derive(Debug, Clone, PartialEq)]
pub struct ExactOutcome {
    /// The best (feasible) solution the search found.
    pub solution: WdpSolution,
    /// Whether `solution` is a proven optimum or just an incumbent bound.
    pub optimality: Optimality,
}

/// A [`WdpSolver`] that can report whether its answer is a proven optimum.
///
/// The contract sharpens [`WdpSolver::solve_wdp`]:
///
/// * `Ok(outcome)` with [`Optimality::Proven`] — `outcome.solution` is the
///   exact optimum.
/// * `Ok(outcome)` with [`Optimality::Bounded`] — a feasible incumbent
///   exists but the search stopped early; the true optimum may be cheaper.
///   Consumers that must not produce false positives (e.g. a certifier
///   flagging "greedy beat the optimum") must skip such horizons.
/// * `Err(WdpError::Infeasible)` — proven infeasible.
/// * `Err(WdpError::ResourceLimit)` — the budget ran out **before any
///   feasible incumbent was found**: nothing at all can be reported.
pub trait ProvingWdpSolver: WdpSolver {
    /// Solves one WDP, reporting the optimality status alongside the
    /// solution.
    ///
    /// # Errors
    ///
    /// See the trait-level contract.
    fn solve_proved(&self, wdp: &Wdp) -> Result<ExactOutcome, WdpError>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BruteForceSolver, ExactSolver};
    use fl_auction::{BidRef, ClientId, QualifiedBid, Round, Window};

    fn qb(client: u32, price: f64, a: u32, d: u32, c: u32) -> QualifiedBid {
        QualifiedBid {
            bid_ref: BidRef::new(ClientId(client), 0),
            price,
            accuracy: 0.5,
            window: Window::new(Round(a), Round(d)),
            rounds: c,
            round_time: 1.0,
        }
    }

    /// `A_winner` picks the $1 round-1 bid first (average cost 1 ties the
    /// $2 full-window bid, smaller price wins) and then must buy the $2
    /// full-window bid anyway: greedy pays 3, OPT is the $2 bid alone.
    /// Forces real branching, so a 1-node budget exhausts mid-search with
    /// the suboptimal greedy incumbent still in hand.
    fn branching_wdp() -> Wdp {
        Wdp::new(
            2,
            1,
            vec![
                qb(0, 1.0, 1, 1, 1),
                qb(1, 2.0, 1, 2, 2),
                qb(2, 10.0, 2, 2, 1),
            ],
        )
    }

    #[test]
    fn both_exact_solvers_prove_the_same_optimum() {
        let wdp = branching_wdp();
        let bnb = ExactSolver::new().solve_proved(&wdp).unwrap();
        let brute = BruteForceSolver::new().solve_proved(&wdp).unwrap();
        assert!(bnb.optimality.is_proven());
        assert!(brute.optimality.is_proven());
        assert_eq!(bnb.solution.cost(), 2.0);
        assert_eq!(brute.solution.cost(), 2.0);
    }

    #[test]
    fn budget_exhaustion_reports_bounded_incumbent_not_error() {
        let wdp = branching_wdp();
        let out = ExactSolver::new()
            .with_node_budget(1)
            .solve_proved(&wdp)
            .unwrap();
        match &out.optimality {
            Optimality::Bounded { reason } => {
                assert!(reason.contains("node budget"), "{reason}");
            }
            other => panic!("expected Bounded, got {other:?}"),
        }
        // The incumbent is the greedy seed — feasible, just not proven.
        assert_eq!(out.solution.cost(), 3.0);
        assert!(fl_auction::verify::wdp_violations(&wdp, &out.solution).is_empty());
    }

    #[test]
    fn solvers_are_object_safe_and_interchangeable() {
        let wdp = branching_wdp();
        let solvers: Vec<Box<dyn ProvingWdpSolver>> = vec![
            Box::new(ExactSolver::new()),
            Box::new(BruteForceSolver::new()),
        ];
        for s in &solvers {
            let out = s.solve_proved(&wdp).unwrap();
            assert!(out.optimality.is_proven());
            assert_eq!(out.solution.cost(), 2.0);
        }
    }
}

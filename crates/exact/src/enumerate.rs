//! Brute-force winner determination by subset enumeration.
//!
//! Exponential and only usable on toy instances (≤ 22 bids), but its
//! correctness is self-evident, which makes it the ground truth the
//! branch-and-bound solver is tested against.

use fl_auction::{QualifiedBid, Wdp, WdpError, WdpSolution, WdpSolver, WinnerEntry};

use crate::sched;
use crate::solver::{ExactOutcome, Optimality, ProvingWdpSolver};

/// Hard cap on the number of bids the enumerator accepts.
pub const MAX_BIDS: usize = 22;

/// Exhaustive WDP solver (testing yardstick).
#[derive(Debug, Clone, Copy, Default)]
pub struct BruteForceSolver;

impl BruteForceSolver {
    /// Creates the solver.
    pub fn new() -> Self {
        BruteForceSolver
    }
}

impl WdpSolver for BruteForceSolver {
    fn name(&self) -> &str {
        "BruteForce"
    }

    fn solve_wdp(&self, wdp: &Wdp) -> Result<WdpSolution, WdpError> {
        let bids = wdp.bids();
        let n = bids.len();
        if n > MAX_BIDS {
            return Err(WdpError::ResourceLimit(format!(
                "brute force enumerates at most {MAX_BIDS} bids, got {n}"
            )));
        }
        let horizon = wdp.horizon();
        let k = wdp.demand_per_round();
        let mut best: Option<(f64, u32)> = None;
        'subsets: for mask in 0u32..(1u32 << n) {
            // One bid per client.
            let mut clients = std::collections::HashSet::new();
            let mut cost = 0.0;
            for (i, b) in bids.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    if !clients.insert(b.bid_ref.client.0) {
                        continue 'subsets;
                    }
                    cost += b.price;
                }
            }
            if best.as_ref().is_some_and(|(bc, _)| cost >= *bc - 1e-12) {
                continue;
            }
            let chosen: Vec<&QualifiedBid> = bids
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, b)| b)
                .collect();
            if sched::is_feasible(&chosen, horizon, k) {
                best = Some((cost, mask));
            }
        }
        let Some((_, mask)) = best else {
            return Err(WdpError::Infeasible);
        };
        let chosen: Vec<&QualifiedBid> = bids
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, b)| b)
            .collect();
        let schedules = sched::build_schedules(&chosen, horizon, k)
            .expect("winning mask was feasibility-checked");
        let mut cost = 0.0;
        let winners: Vec<WinnerEntry> = chosen
            .iter()
            .zip(schedules)
            .map(|(b, schedule)| {
                cost += b.price;
                WinnerEntry {
                    bid_ref: b.bid_ref,
                    price: b.price,
                    payment: b.price,
                    schedule,
                }
            })
            .collect();
        Ok(WdpSolution::new(horizon, winners, cost, None))
    }
}

impl ProvingWdpSolver for BruteForceSolver {
    /// Enumeration either visits every subset (a proof) or refuses the
    /// instance outright, so a returned solution is always
    /// [`Optimality::Proven`].
    fn solve_proved(&self, wdp: &Wdp) -> Result<ExactOutcome, WdpError> {
        self.solve_wdp(wdp).map(|solution| ExactOutcome {
            solution,
            optimality: Optimality::Proven,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExactSolver;
    use fl_auction::{BidRef, ClientId, Round, Window};

    fn qb(client: u32, bid: u32, price: f64, a: u32, d: u32, c: u32) -> QualifiedBid {
        QualifiedBid {
            bid_ref: BidRef::new(ClientId(client), bid),
            price,
            accuracy: 0.5,
            window: Window::new(Round(a), Round(d)),
            rounds: c,
            round_time: 1.0,
        }
    }

    #[test]
    fn matches_known_optimum() {
        let wdp = Wdp::new(
            3,
            1,
            vec![
                qb(1, 0, 2.0, 1, 2, 1),
                qb(2, 0, 6.0, 2, 3, 2),
                qb(3, 0, 5.0, 1, 3, 2),
            ],
        );
        let sol = BruteForceSolver::new().solve_wdp(&wdp).unwrap();
        assert_eq!(sol.cost(), 7.0);
    }

    #[test]
    fn rejects_oversized_instances() {
        let bids: Vec<QualifiedBid> = (0..23).map(|i| qb(i, 0, 1.0, 1, 2, 1)).collect();
        let wdp = Wdp::new(2, 1, bids);
        assert!(matches!(
            BruteForceSolver::new().solve_wdp(&wdp),
            Err(WdpError::ResourceLimit(_))
        ));
    }

    #[test]
    fn dominated_bid_pruning_preserves_the_optimum() {
        use fl_auction::preprocess::remove_dominated;
        let mut state = 0x7e57ab1eu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut pruned_any = false;
        for trial in 0..30 {
            let h = 2 + (next() % 3) as u32;
            let n = 6 + (next() % 6) as usize;
            let bids: Vec<QualifiedBid> = (0..n)
                .map(|i| {
                    let a = 1 + (next() % u64::from(h)) as u32;
                    let d = a + (next() % u64::from(h - a + 1)) as u32;
                    let c = 1 + (next() % u64::from(d - a + 1)) as u32;
                    // Few price levels + few clients → dominations occur.
                    qb(
                        (i / 3) as u32,
                        (i % 3) as u32,
                        1.0 + (next() % 4) as f64,
                        a,
                        d,
                        c,
                    )
                })
                .collect();
            let wdp = Wdp::new(h, 1, bids);
            let (pruned, removed) = remove_dominated(&wdp);
            pruned_any |= removed > 0;
            let before = BruteForceSolver::new().solve_wdp(&wdp);
            let after = BruteForceSolver::new().solve_wdp(&pruned);
            match (before, after) {
                (Ok(b), Ok(a)) => assert!(
                    (a.cost() - b.cost()).abs() < 1e-9,
                    "trial {trial}: OPT changed {} -> {} after pruning {removed} bids",
                    b.cost(),
                    a.cost()
                ),
                (Err(WdpError::Infeasible), Err(WdpError::Infeasible)) => {}
                (x, y) => panic!("trial {trial}: {x:?} vs {y:?}"),
            }
        }
        assert!(pruned_any, "the corpus never exercised a domination");
    }

    #[test]
    fn agrees_with_branch_and_bound_on_random_instances() {
        let mut state = 0x243f6a8885a308d3u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..40 {
            let horizon = 2 + (next() % 4) as u32;
            let k = 1 + (next() % 2) as u32;
            let n = 5 + (next() % 8) as usize; // ≤ 12 bids
            let mut bids = Vec::new();
            for i in 0..n {
                let a = 1 + (next() % u64::from(horizon)) as u32;
                let d = a + (next() % u64::from(horizon - a + 1)) as u32;
                let c = 1 + (next() % u64::from(d - a + 1)) as u32;
                let price = 1.0 + (next() % 40) as f64;
                // Every other trial gives clients two bids.
                let client = if trial % 2 == 0 {
                    i as u32
                } else {
                    (i / 2) as u32
                };
                let bid_idx = if trial % 2 == 0 { 0 } else { (i % 2) as u32 };
                bids.push(qb(client, bid_idx, price, a, d, c));
            }
            let wdp = Wdp::new(horizon, k, bids);
            let brute = BruteForceSolver::new().solve_wdp(&wdp);
            let bnb = ExactSolver::new().solve_wdp(&wdp);
            match (brute, bnb) {
                (Ok(a), Ok(b)) => assert!(
                    (a.cost() - b.cost()).abs() < 1e-9,
                    "trial {trial}: brute {} vs bnb {}",
                    a.cost(),
                    b.cost()
                ),
                (Err(WdpError::Infeasible), Err(WdpError::Infeasible)) => {}
                (a, b) => panic!("trial {trial}: disagreement {a:?} vs {b:?}"),
            }
        }
    }
}

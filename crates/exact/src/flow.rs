//! Dinic's maximum-flow algorithm on integer capacities.
//!
//! Used by the exact solver to answer two questions: *can a fixed set of
//! bids staff every round?* and *what is the largest coverage a set of bids
//! can provide?* Both are bipartite transportation problems
//! (`bid → round`), for which Dinic runs in `O(E·√V)`.

/// A directed edge with residual bookkeeping.
#[derive(Debug, Clone)]
struct FlowEdge {
    to: usize,
    cap: i64,
    /// Index of the reverse edge in `graph[to]`.
    rev: usize,
}

/// A max-flow network with dense node ids `0..n`.
#[derive(Debug, Clone)]
pub struct FlowNetwork {
    graph: Vec<Vec<FlowEdge>>,
}

/// Handle to an edge, for querying its flow after a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeHandle {
    from: usize,
    idx: usize,
}

impl FlowNetwork {
    /// Creates a network with `nodes` vertices and no edges.
    pub fn new(nodes: usize) -> Self {
        FlowNetwork {
            graph: vec![Vec::new(); nodes],
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.graph.len()
    }

    /// Whether the network has no vertices.
    pub fn is_empty(&self) -> bool {
        self.graph.is_empty()
    }

    /// Adds a directed edge `from → to` with the given capacity and returns
    /// a handle for flow queries.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range or the capacity is
    /// negative.
    pub fn add_edge(&mut self, from: usize, to: usize, cap: i64) -> EdgeHandle {
        assert!(
            from < self.graph.len() && to < self.graph.len(),
            "endpoint out of range"
        );
        assert!(cap >= 0, "capacity must be non-negative");
        let rev_from = self.graph[to].len() + usize::from(from == to);
        let idx = self.graph[from].len();
        self.graph[from].push(FlowEdge {
            to,
            cap,
            rev: rev_from,
        });
        let rev_to = idx;
        self.graph[to].push(FlowEdge {
            to: from,
            cap: 0,
            rev: rev_to,
        });
        EdgeHandle { from, idx }
    }

    /// Flow currently on `edge` (only meaningful after [`FlowNetwork::max_flow`]).
    ///
    /// The flow equals the residual capacity of the reverse edge.
    pub fn flow(&self, edge: EdgeHandle) -> i64 {
        let e = &self.graph[edge.from][edge.idx];
        self.graph[e.to][e.rev].cap
    }

    /// Computes the maximum `source → sink` flow with Dinic's algorithm,
    /// mutating residual capacities in place.
    ///
    /// # Panics
    ///
    /// Panics if `source == sink` or either is out of range.
    pub fn max_flow(&mut self, source: usize, sink: usize) -> i64 {
        assert!(source < self.graph.len() && sink < self.graph.len());
        assert_ne!(source, sink, "source and sink must differ");
        let n = self.graph.len();
        let mut total = 0i64;
        loop {
            // BFS level graph.
            let mut level = vec![usize::MAX; n];
            level[source] = 0;
            let mut queue = std::collections::VecDeque::from([source]);
            while let Some(u) = queue.pop_front() {
                for e in &self.graph[u] {
                    if e.cap > 0 && level[e.to] == usize::MAX {
                        level[e.to] = level[u] + 1;
                        queue.push_back(e.to);
                    }
                }
            }
            if level[sink] == usize::MAX {
                return total;
            }
            // DFS blocking flow with iteration pointers.
            let mut it = vec![0usize; n];
            loop {
                let pushed = self.dfs(source, sink, i64::MAX, &level, &mut it);
                if pushed == 0 {
                    break;
                }
                total += pushed;
            }
        }
    }

    fn dfs(&mut self, u: usize, sink: usize, limit: i64, level: &[usize], it: &mut [usize]) -> i64 {
        if u == sink {
            return limit;
        }
        while it[u] < self.graph[u].len() {
            let (to, cap, rev) = {
                let e = &self.graph[u][it[u]];
                (e.to, e.cap, e.rev)
            };
            if cap > 0 && level[to] == level[u] + 1 {
                let pushed = self.dfs(to, sink, limit.min(cap), level, it);
                if pushed > 0 {
                    self.graph[u][it[u]].cap -= pushed;
                    self.graph[to][rev].cap += pushed;
                    return pushed;
                }
            }
            it[u] += 1;
        }
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge() {
        let mut g = FlowNetwork::new(2);
        let e = g.add_edge(0, 1, 5);
        assert_eq!(g.max_flow(0, 1), 5);
        assert_eq!(g.flow(e), 5);
    }

    #[test]
    fn classic_diamond() {
        // 0→1 (3), 0→2 (2), 1→3 (2), 2→3 (3), 1→2 (5): max flow 5.
        let mut g = FlowNetwork::new(4);
        g.add_edge(0, 1, 3);
        g.add_edge(0, 2, 2);
        g.add_edge(1, 3, 2);
        g.add_edge(2, 3, 3);
        g.add_edge(1, 2, 5);
        assert_eq!(g.max_flow(0, 3), 5);
    }

    #[test]
    fn disconnected_sink_has_zero_flow() {
        let mut g = FlowNetwork::new(3);
        g.add_edge(0, 1, 10);
        assert_eq!(g.max_flow(0, 2), 0);
    }

    #[test]
    fn bipartite_matching_via_flow() {
        // 3 bids × 3 rounds, each bid serves 1 round; bids 0,1 reach rounds
        // {0,1}, bid 2 reaches {2}. Perfect matching of size 3.
        let s = 0;
        let bids = [1, 2, 3];
        let rounds = [4, 5, 6];
        let t = 7;
        let mut g = FlowNetwork::new(8);
        for &b in &bids {
            g.add_edge(s, b, 1);
        }
        g.add_edge(bids[0], rounds[0], 1);
        g.add_edge(bids[0], rounds[1], 1);
        g.add_edge(bids[1], rounds[0], 1);
        g.add_edge(bids[1], rounds[1], 1);
        g.add_edge(bids[2], rounds[2], 1);
        for &r in &rounds {
            g.add_edge(r, t, 1);
        }
        assert_eq!(g.max_flow(s, t), 3);
    }

    #[test]
    fn flow_conservation_on_queried_edges() {
        let mut g = FlowNetwork::new(4);
        let a = g.add_edge(0, 1, 4);
        let b = g.add_edge(0, 2, 4);
        let c = g.add_edge(1, 3, 3);
        let d = g.add_edge(2, 3, 2);
        let total = g.max_flow(0, 3);
        assert_eq!(total, 5);
        assert_eq!(g.flow(a) + g.flow(b), 5);
        assert_eq!(g.flow(c) + g.flow(d), 5);
        assert!(g.flow(c) <= 3 && g.flow(d) <= 2);
    }

    #[test]
    fn self_loop_is_harmless() {
        let mut g = FlowNetwork::new(3);
        g.add_edge(1, 1, 7);
        g.add_edge(0, 1, 2);
        g.add_edge(1, 2, 2);
        assert_eq!(g.max_flow(0, 2), 2);
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn same_source_sink_panics() {
        let mut g = FlowNetwork::new(1);
        let _ = g.max_flow(0, 0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_capacity_panics() {
        let mut g = FlowNetwork::new(2);
        let _ = g.add_edge(0, 1, -1);
    }
}

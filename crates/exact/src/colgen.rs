//! Column generation for the compact-exponential LP — the *exact* linear
//! relaxation of the paper's ILP (7).
//!
//! ILP (7) has one variable `z_il` per feasible **schedule** — up to
//! `C(d−a, c)` per bid — which is why the paper only ever works with its
//! dual. Its LP relaxation can nevertheless be solved exactly: keep a
//! *restricted master problem* (RMP) over a small set of generated
//! schedules, and price new ones with the dual variables. The pricing
//! problem — find the schedule of bid `(i,j)` minimising
//! `ρ_ij − Σ_{t∈l} g(t)` — is solved in polynomial time by picking the
//! `c_ij` rounds with the **largest** `g(t)` inside the window (a uniform
//! matroid maximisation). When no schedule prices negatively, the RMP
//! optimum is optimal for the full exponential LP.
//!
//! The result equals [`relax::schedule_lp_bound`](crate::relax) (the
//! compact `x/y` formulation): fractional `y` with `Σ_t y = c·x`,
//! `0 ≤ y ≤ x` decomposes into schedules by the integrality of the
//! uniform-matroid polytope — a fact the tests exercise.

use fl_auction::{QualifiedBid, Round, Wdp};
use fl_lp::{LinearProgram, LpError, Objective, Relation};

/// Result of the column-generation solve.
#[derive(Debug, Clone)]
pub struct ColGenResult {
    /// Optimal value of the exponential LP relaxation of ILP (7).
    pub objective: f64,
    /// Total schedules (columns) generated across all bids.
    pub columns: usize,
    /// Master LP re-solves performed.
    pub iterations: usize,
}

/// Hard cap on master re-solves; hitting it means numerical trouble, not
/// a modelling problem (each iteration adds ≥ 1 improving column and the
/// column space is finite).
const MAX_ITERATIONS: usize = 500;

/// Solves the LP relaxation of the compact-exponential ILP (7) by column
/// generation.
///
/// # Errors
///
/// * [`LpError::Infeasible`] when even fractional schedules cannot staff
///   every round.
/// * [`LpError::IterationLimit`] if the master loop fails to converge
///   within the safety cap.
pub fn solve_lp7(wdp: &Wdp) -> Result<ColGenResult, LpError> {
    let bids = wdp.bids();
    let horizon = wdp.horizon();
    let k = f64::from(wdp.demand_per_round());

    // Column pool: (bid index, schedule). Seed with one column per bid —
    // the earliest schedule — so the master has something to chew on.
    let mut pool: Vec<(usize, Vec<Round>)> = bids
        .iter()
        .enumerate()
        .map(|(b, qb)| (b, earliest_schedule(qb)))
        .collect();

    let mut iterations = 0usize;
    loop {
        iterations += 1;
        if iterations > MAX_ITERATIONS {
            return Err(LpError::IterationLimit { pivots: iterations });
        }
        // -- Restricted master: min Σ ρ z  s.t. coverage ≥ K, Σ_l z_il ≤ 1.
        let mut lp = LinearProgram::new(Objective::Minimize);
        let zs: Vec<_> = pool
            .iter()
            .map(|(b, _)| lp.add_var(bids[*b].price, 1.0))
            .collect();
        let mut cover_rows = Vec::with_capacity(horizon as usize);
        for t in (1..=horizon).map(Round) {
            let terms: Vec<_> = pool
                .iter()
                .zip(&zs)
                .filter(|((_, sched), _)| sched.contains(&t))
                .map(|(_, &z)| (z, 1.0))
                .collect();
            cover_rows.push(lp.add_constraint(&terms, Relation::Ge, k));
        }
        let mut client_rows = Vec::new();
        {
            use std::collections::BTreeMap;
            let mut per_client: BTreeMap<u32, Vec<fl_lp::VarId>> = BTreeMap::new();
            for ((b, _), &z) in pool.iter().zip(&zs) {
                per_client
                    .entry(bids[*b].bid_ref.client.0)
                    .or_default()
                    .push(z);
            }
            for (client, vars) in per_client {
                let terms: Vec<_> = vars.iter().map(|&z| (z, 1.0)).collect();
                client_rows.push((client, lp.add_constraint(&terms, Relation::Le, 1.0)));
            }
        }
        let sol = match lp.solve() {
            Ok(s) => s,
            Err(LpError::Infeasible) => {
                // The restricted pool may be too poor even when the full LP
                // is feasible; enrich it with every bid's least-covered
                // rounds and retry, unless nothing new can be added.
                if enrich_for_feasibility(&mut pool, bids, horizon) {
                    continue;
                }
                return Err(LpError::Infeasible);
            }
            Err(e) => return Err(e),
        };

        // -- Pricing: for each bid, the best schedule under duals g(t), q_i.
        let g: Vec<f64> = cover_rows.iter().map(|&r| sol.dual(r)).collect();
        let q_of = |client: u32| -> f64 {
            client_rows
                .iter()
                .find(|(c, _)| *c == client)
                .map(|(_, r)| sol.dual(*r))
                .unwrap_or(0.0)
        };
        let mut added = false;
        for (b, qb) in bids.iter().enumerate() {
            let best = best_schedule_under_duals(qb, &g);
            let g_sum: f64 = best.iter().map(|t| g[t.index()]).sum();
            // Reduced cost of column (b, best): ρ − Σ g(t) − q_i (q ≤ 0 for
            // the ≤ rows of a minimisation under our sign convention).
            let reduced = qb.price - g_sum - q_of(qb.bid_ref.client.0);
            if reduced < -1e-7 && !pool.iter().any(|(pb, s)| *pb == b && *s == best) {
                pool.push((b, best));
                added = true;
            }
        }
        if !added {
            return Ok(ColGenResult {
                objective: sol.objective(),
                columns: pool.len(),
                iterations,
            });
        }
    }
}

/// The `c` earliest rounds of the bid's window.
fn earliest_schedule(qb: &QualifiedBid) -> Vec<Round> {
    qb.window.rounds().take(qb.rounds as usize).collect()
}

/// Pricing oracle: the schedule maximising `Σ_{t∈l} g(t)` — the `c`
/// rounds with the largest duals, ties to earlier rounds.
fn best_schedule_under_duals(qb: &QualifiedBid, g: &[f64]) -> Vec<Round> {
    let mut rounds: Vec<Round> = qb.window.rounds().collect();
    rounds.sort_by(|a, b| g[b.index()].total_cmp(&g[a.index()]).then(a.0.cmp(&b.0)));
    rounds.truncate(qb.rounds as usize);
    rounds.sort_by_key(|t| t.0);
    rounds
}

/// Adds, for every bid, a schedule over its window's first/last rounds to
/// give the master a chance at feasibility. Returns whether anything new
/// entered the pool.
fn enrich_for_feasibility(
    pool: &mut Vec<(usize, Vec<Round>)>,
    bids: &[QualifiedBid],
    _horizon: u32,
) -> bool {
    let mut added = false;
    for (b, qb) in bids.iter().enumerate() {
        let mut late: Vec<Round> = qb.window.rounds().collect();
        let c = qb.rounds as usize;
        let start = late.len().saturating_sub(c);
        let late = late.split_off(start);
        if !pool.iter().any(|(pb, s)| *pb == b && *s == late) {
            pool.push((b, late));
            added = true;
        }
    }
    added
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relax;
    use fl_auction::{BidRef, ClientId, Window};

    fn qb(client: u32, bid: u32, price: f64, a: u32, d: u32, c: u32) -> QualifiedBid {
        QualifiedBid {
            bid_ref: BidRef::new(ClientId(client), bid),
            price,
            accuracy: 0.5,
            window: Window::new(Round(a), Round(d)),
            rounds: c,
            round_time: 1.0,
        }
    }

    fn paper_example() -> Wdp {
        Wdp::new(
            3,
            1,
            vec![
                qb(1, 0, 2.0, 1, 2, 1),
                qb(2, 0, 6.0, 2, 3, 2),
                qb(3, 0, 5.0, 1, 3, 2),
            ],
        )
    }

    #[test]
    fn matches_the_compact_relaxation_on_the_paper_example() {
        let wdp = paper_example();
        let cg = solve_lp7(&wdp).unwrap();
        let compact = relax::schedule_lp_bound(&wdp).unwrap();
        assert!(
            (cg.objective - compact).abs() < 1e-6,
            "column generation {} vs compact y-LP {}",
            cg.objective,
            compact
        );
        assert!(
            cg.objective <= 7.0 + 1e-7,
            "relaxation below the ILP optimum"
        );
    }

    #[test]
    fn matches_compact_relaxation_on_random_wdps() {
        let mut state = 0xc01d_c0feu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut compared = 0;
        for trial in 0..25 {
            let h = 3 + (next() % 4) as u32;
            let k = 1 + (next() % 2) as u32;
            let n = 5 + (next() % 7) as usize;
            let bids: Vec<QualifiedBid> = (0..n)
                .map(|i| {
                    let a = 1 + (next() % u64::from(h)) as u32;
                    let d = a + (next() % u64::from(h - a + 1)) as u32;
                    let c = 1 + (next() % u64::from(d - a + 1)) as u32;
                    // Half the clients carry two bids.
                    qb(
                        (i / 2) as u32,
                        (i % 2) as u32,
                        1.0 + (next() % 30) as f64,
                        a,
                        d,
                        c,
                    )
                })
                .collect();
            let wdp = Wdp::new(h, k, bids);
            let cg = solve_lp7(&wdp);
            let compact = relax::schedule_lp_bound(&wdp);
            match (cg, compact) {
                (Ok(a), Ok(b)) => {
                    assert!(
                        (a.objective - b).abs() < 1e-5 * (1.0 + b.abs()),
                        "trial {trial}: colgen {} vs compact {b}",
                        a.objective
                    );
                    compared += 1;
                }
                (Err(LpError::Infeasible), Err(LpError::Infeasible)) => {}
                (a, b) => panic!("trial {trial}: disagreement {a:?} vs {b:?}"),
            }
        }
        assert!(compared >= 10, "only {compared} feasible trials");
    }

    #[test]
    fn lower_bounds_the_integral_optimum() {
        use crate::ExactSolver;
        use fl_auction::WdpSolver;
        let wdp = Wdp::new(
            4,
            2,
            vec![
                qb(0, 0, 3.0, 1, 4, 3),
                qb(1, 0, 4.0, 1, 4, 3),
                qb(2, 0, 5.0, 2, 4, 2),
                qb(3, 0, 2.0, 1, 2, 2),
                qb(4, 0, 6.0, 1, 4, 4),
                qb(5, 0, 3.5, 1, 3, 2),
            ],
        );
        let lp = solve_lp7(&wdp).unwrap();
        let opt = ExactSolver::new().solve_wdp(&wdp).unwrap();
        assert!(lp.objective <= opt.cost() + 1e-7);
        assert!(lp.objective > 0.0);
    }

    #[test]
    fn infeasible_wdp_detected() {
        // Round 3 uncovered by any window.
        let wdp = Wdp::new(3, 1, vec![qb(0, 0, 1.0, 1, 2, 1), qb(1, 0, 1.0, 1, 2, 2)]);
        assert_eq!(solve_lp7(&wdp).unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn generates_few_columns() {
        // Column generation should need far fewer columns than the full
        // C(d−a, c) enumeration.
        let wdp = Wdp::new(
            8,
            2,
            (0..10)
                .map(|i| qb(i, 0, 5.0 + f64::from(i), 1, 8, 4))
                .collect(),
        );
        let cg = solve_lp7(&wdp).unwrap();
        // Full enumeration would be 10·C(7,4) = 350 columns.
        assert!(cg.columns < 120, "generated {} columns", cg.columns);
        assert!(cg.iterations < 60);
    }
}

//! Local-search refinement: drop-and-repair on top of any WDP solution.
//!
//! Sits between the greedy (`A_winner`) and the exact branch-and-bound:
//! start from a feasible solution, repeatedly *drop* one winner and
//! *repair* the coverage hole with the cheapest available completion, and
//! keep the move whenever the total cost falls. Converges to a
//! 1-exchange-optimal solution in a handful of passes; never worse than
//! its starting point and often closes most of the greedy-to-OPT gap at a
//! tiny fraction of branch-and-bound's cost.

use fl_auction::{
    representative_schedule, AWinner, Coverage, QualifiedBid, Round, Wdp, WdpError, WdpSolution,
    WdpSolver, WinnerEntry,
};

/// Drop-and-repair local search around an initial solution.
#[derive(Debug, Clone, Copy)]
pub struct RefineSolver {
    /// Maximum full improvement passes (each pass tries dropping every
    /// winner once).
    pub max_passes: usize,
}

impl Default for RefineSolver {
    fn default() -> Self {
        RefineSolver { max_passes: 8 }
    }
}

impl RefineSolver {
    /// Creates the solver with the default pass budget.
    pub fn new() -> Self {
        RefineSolver::default()
    }

    /// Refines `start` on `wdp` until 1-exchange optimal or the pass
    /// budget runs out. The result never costs more than `start`.
    pub fn refine(&self, wdp: &Wdp, start: &WdpSolution) -> WdpSolution {
        let mut current: Vec<usize> = start
            .winners()
            .iter()
            .map(|w| {
                wdp.bids()
                    .iter()
                    .position(|b| b.bid_ref == w.bid_ref)
                    .expect("winner must be a qualified bid")
            })
            .collect();
        let mut current_cost: f64 = current.iter().map(|&i| wdp.bids()[i].price).sum();
        for _ in 0..self.max_passes {
            let mut improved = false;
            let mut victim = 0usize;
            while victim < current.len() {
                let mut reduced: Vec<usize> = current
                    .iter()
                    .copied()
                    .filter(|&i| i != current[victim])
                    .collect();
                if let Some((repaired, cost)) = greedy_complete(wdp, &mut reduced) {
                    if cost < current_cost - 1e-9 {
                        current = repaired;
                        current_cost = cost;
                        improved = true;
                        victim = 0;
                        continue;
                    }
                }
                victim += 1;
            }
            if !improved {
                break;
            }
        }
        build_solution(wdp, &current)
    }
}

impl WdpSolver for RefineSolver {
    fn name(&self) -> &str {
        "A_winner+refine"
    }

    fn solve_wdp(&self, wdp: &Wdp) -> Result<WdpSolution, WdpError> {
        let start = AWinner::new().without_certificate().solve_wdp(wdp)?;
        Ok(self.refine(wdp, &start))
    }
}

/// Completes `chosen` (bid indices) to full coverage with the cheapest
/// average-cost greedy; returns the completed set and its cost, or `None`
/// when completion is impossible.
fn greedy_complete(wdp: &Wdp, chosen: &mut Vec<usize>) -> Option<(Vec<usize>, f64)> {
    let bids = wdp.bids();
    let mut cov = Coverage::new(wdp.horizon(), wdp.demand_per_round());
    let mut clients: std::collections::HashSet<u32> = std::collections::HashSet::new();
    for &i in chosen.iter() {
        let schedule = representative_schedule(&cov, bids[i].window, bids[i].rounds);
        cov.add(&schedule);
        clients.insert(bids[i].bid_ref.client.0);
    }
    while !cov.is_complete() {
        let mut best: Option<(usize, f64)> = None;
        for (i, qb) in bids.iter().enumerate() {
            if chosen.contains(&i) || clients.contains(&qb.bid_ref.client.0) {
                continue;
            }
            let schedule = representative_schedule(&cov, qb.window, qb.rounds);
            let gain = cov.gain(&schedule);
            if gain == 0 {
                continue;
            }
            let avg = qb.price / f64::from(gain);
            if best.is_none_or(|(_, b)| avg < b) {
                best = Some((i, avg));
            }
        }
        let (i, _) = best?;
        let schedule = representative_schedule(&cov, bids[i].window, bids[i].rounds);
        cov.add(&schedule);
        clients.insert(bids[i].bid_ref.client.0);
        chosen.push(i);
    }
    let cost = chosen.iter().map(|&i| bids[i].price).sum();
    Some((chosen.clone(), cost))
}

/// Materialises a bid-index set into a [`WdpSolution`] with concrete
/// schedules (least-loaded placement, pay-as-bid).
fn build_solution(wdp: &Wdp, chosen: &[usize]) -> WdpSolution {
    let bids = wdp.bids();
    let mut cov = Coverage::new(wdp.horizon(), wdp.demand_per_round());
    let mut cost = 0.0;
    let winners: Vec<WinnerEntry> = chosen
        .iter()
        .map(|&i| {
            let qb: &QualifiedBid = &bids[i];
            let schedule: Vec<Round> = representative_schedule(&cov, qb.window, qb.rounds);
            cov.add(&schedule);
            cost += qb.price;
            WinnerEntry {
                bid_ref: qb.bid_ref,
                price: qb.price,
                payment: qb.price,
                schedule,
            }
        })
        .collect();
    debug_assert!(cov.is_complete(), "refined sets must stay feasible");
    WdpSolution::new(wdp.horizon(), winners, cost, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BruteForceSolver, ExactSolver};
    use fl_auction::{BidRef, ClientId, Window};

    fn qb(client: u32, bid: u32, price: f64, a: u32, d: u32, c: u32) -> QualifiedBid {
        QualifiedBid {
            bid_ref: BidRef::new(ClientId(client), bid),
            price,
            accuracy: 0.5,
            window: Window::new(Round(a), Round(d)),
            rounds: c,
            round_time: 1.0,
        }
    }

    #[test]
    fn repairs_the_classic_greedy_trap() {
        // Greedy pays 11 (see the greedy baseline's test); OPT is 8.
        // One drop-and-repair move finds it.
        let wdp = Wdp::new(
            2,
            1,
            vec![
                qb(0, 0, 3.0, 1, 1, 1),
                qb(1, 0, 8.0, 1, 2, 2),
                qb(2, 0, 5.0, 2, 2, 1),
            ],
        );
        let refined = RefineSolver::new().solve_wdp(&wdp).unwrap();
        assert_eq!(refined.cost(), 8.0);
        assert!(fl_auction::verify::wdp_violations(&wdp, &refined).is_empty());
    }

    #[test]
    fn never_worse_than_greedy_and_never_better_than_opt() {
        let mut state = 0xdeadbeef17u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut improved = 0usize;
        for trial in 0..40 {
            let h = 3 + (next() % 4) as u32;
            let k = 1 + (next() % 2) as u32;
            let n = 7 + (next() % 7) as usize;
            let bids: Vec<QualifiedBid> = (0..n)
                .map(|i| {
                    let a = 1 + (next() % u64::from(h)) as u32;
                    let d = a + (next() % u64::from(h - a + 1)) as u32;
                    let c = 1 + (next() % u64::from(d - a + 1)) as u32;
                    qb(i as u32, 0, 1.0 + (next() % 25) as f64, a, d, c)
                })
                .collect();
            let wdp = Wdp::new(h, k, bids);
            let greedy = AWinner::new().without_certificate().solve_wdp(&wdp);
            let refined = RefineSolver::new().solve_wdp(&wdp);
            let opt = ExactSolver::new().solve_wdp(&wdp);
            match (greedy, refined, opt) {
                (Ok(g), Ok(r), Ok(o)) => {
                    assert!(
                        r.cost() <= g.cost() + 1e-9,
                        "trial {trial}: refine worsened"
                    );
                    assert!(
                        r.cost() >= o.cost() - 1e-9,
                        "trial {trial}: refine beat OPT?!"
                    );
                    assert!(
                        fl_auction::verify::wdp_violations(&wdp, &r).is_empty(),
                        "trial {trial}"
                    );
                    if r.cost() < g.cost() - 1e-9 {
                        improved += 1;
                    }
                }
                (Err(_), Err(_), _) => {}
                other => {
                    // Refine starts from greedy; if greedy fails so does it.
                    let (g, r, _) = other;
                    assert_eq!(g.is_err(), r.is_err(), "trial {trial}");
                }
            }
        }
        assert!(
            improved >= 2,
            "refinement never improved anything ({improved})"
        );
    }

    #[test]
    fn one_exchange_optimal_against_brute_force_sample() {
        let wdp = Wdp::new(
            3,
            1,
            vec![
                qb(1, 0, 2.0, 1, 2, 1),
                qb(2, 0, 6.0, 2, 3, 2),
                qb(3, 0, 5.0, 1, 3, 2),
            ],
        );
        let refined = RefineSolver::new().solve_wdp(&wdp).unwrap();
        let opt = BruteForceSolver::new().solve_wdp(&wdp).unwrap();
        assert_eq!(refined.cost(), opt.cost());
    }

    #[test]
    fn name_reflects_the_pipeline() {
        assert_eq!(RefineSolver::new().name(), "A_winner+refine");
    }
}

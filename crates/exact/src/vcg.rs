//! VCG (Clarke pivot) payments on top of exact winner determination.
//!
//! With an *exact* WDP solver available, the classic
//! Vickrey–Clarke–Groves mechanism becomes implementable: select the
//! cost-minimising winner set, and pay each winner its externality
//!
//! ```text
//! p_i = OPT(without client i) − (OPT − b_i)
//! ```
//!
//! i.e. the harm its absence would do to everyone else. VCG is
//! dominant-strategy truthful and individually rational *by construction*
//! (no per-iteration caveats like the greedy's critical value — see the
//! `ablation_payment` findings), at the price of `1 + #winners` exact
//! solves. This is an extension beyond the paper, feasible at
//! analysis scale, that serves as the gold-standard comparison point for
//! the paper's payment rule.

use fl_auction::{ClientId, Wdp, WdpError, WdpSolution, WdpSolver, WinnerEntry};

use crate::bnb::ExactSolver;

/// Outcome of the VCG mechanism on one WDP.
#[derive(Debug, Clone, PartialEq)]
pub struct VcgOutcome {
    /// The cost-minimising solution with VCG payments filled in.
    pub solution: WdpSolution,
    /// Optimal social cost with all clients present.
    pub opt_cost: f64,
}

/// Runs VCG: exact allocation plus Clarke-pivot payments.
///
/// # Errors
///
/// * [`WdpError::Infeasible`] if the WDP has no solution at all.
/// * [`WdpError::ResourceLimit`] if branch-and-bound exceeds its budget.
///
/// A winner whose removal makes the WDP *infeasible* is a monopolist; its
/// externality is unbounded and this function prices it at
/// `opt_cost_without_its_price + cap` where `cap` is the supplied reserve
/// premium (the deterministic analogue of `fl_auction::truthful`'s cap).
pub fn vcg(wdp: &Wdp, solver: &ExactSolver, monopoly_cap: f64) -> Result<VcgOutcome, WdpError> {
    let opt = solver.solve_wdp(wdp)?;
    let opt_cost = opt.cost();
    let mut winners = Vec::with_capacity(opt.winners().len());
    for w in opt.winners() {
        let others_cost = opt_cost - w.price;
        let without = remove_client(wdp, w.bid_ref.client);
        let payment = match solver.solve_wdp(&without) {
            Ok(sol) => sol.cost() - others_cost,
            Err(WdpError::Infeasible) => others_cost.max(0.0) + monopoly_cap,
            Err(e) => return Err(e),
        };
        winners.push(WinnerEntry {
            payment,
            ..w.clone()
        });
    }
    let solution = WdpSolution::new(wdp.horizon(), winners, opt_cost, None);
    Ok(VcgOutcome { solution, opt_cost })
}

/// The WDP with every bid of `client` removed.
fn remove_client(wdp: &Wdp, client: ClientId) -> Wdp {
    let bids = wdp
        .bids()
        .iter()
        .filter(|b| b.bid_ref.client != client)
        .cloned()
        .collect();
    Wdp::new(wdp.horizon(), wdp.demand_per_round(), bids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fl_auction::{BidRef, QualifiedBid, Round, Window};

    fn qb(client: u32, price: f64, a: u32, d: u32, c: u32) -> QualifiedBid {
        QualifiedBid {
            bid_ref: BidRef::new(ClientId(client), 0),
            price,
            accuracy: 0.5,
            window: Window::new(Round(a), Round(d)),
            rounds: c,
            round_time: 1.0,
        }
    }

    fn paper_example() -> Wdp {
        Wdp::new(
            3,
            1,
            vec![
                qb(1, 2.0, 1, 2, 1),
                qb(2, 6.0, 2, 3, 2),
                qb(3, 5.0, 1, 3, 2),
            ],
        )
    }

    #[test]
    fn vcg_payments_on_the_paper_example() {
        // OPT = {B1, B3} at cost 7.
        // Without client 1: OPT = {B2 covering 2-3... round 1 uncovered by
        // B2; B3 covers 1-3 with c=2: {B3 on rounds 1+x, B2 on the rest}:
        // B3 [1,2] + B2 [2,3] = 11; so p_1 = 11 − 5 = 6.
        // Without client 3: B1 [1] + B2 [2,3] = 8; p_3 = 8 − 2 = 6.
        let out = vcg(&paper_example(), &ExactSolver::new(), 100.0).unwrap();
        assert_eq!(out.opt_cost, 7.0);
        let pay = |c: u32| {
            out.solution
                .winners()
                .iter()
                .find(|w| w.bid_ref.client == ClientId(c))
                .unwrap()
                .payment
        };
        assert!((pay(1) - 6.0).abs() < 1e-9, "p_1 = {}", pay(1));
        assert!((pay(3) - 6.0).abs() < 1e-9, "p_3 = {}", pay(3));
    }

    #[test]
    fn vcg_is_individually_rational() {
        let out = vcg(&paper_example(), &ExactSolver::new(), 100.0).unwrap();
        assert!(fl_auction::verify::ir_violations(&out.solution).is_empty());
    }

    #[test]
    fn monopolist_gets_capped_externality() {
        // Client 0 is the only one able to cover round 2.
        let wdp = Wdp::new(2, 1, vec![qb(0, 3.0, 1, 2, 2), qb(1, 1.0, 1, 1, 1)]);
        let out = vcg(&wdp, &ExactSolver::new(), 50.0).unwrap();
        let w0 = out
            .solution
            .winners()
            .iter()
            .find(|w| w.bid_ref.client == ClientId(0))
            .unwrap();
        assert!(
            w0.payment >= 50.0,
            "monopoly cap applies, got {}",
            w0.payment
        );
    }

    #[test]
    fn vcg_truthfulness_spot_check() {
        // Misreporting any single price never increases a client's VCG
        // utility (allocation is exactly optimal, payments are
        // claim-independent while winning).
        let wdp = paper_example();
        let solver = ExactSolver::new();
        let honest = vcg(&wdp, &solver, 100.0).unwrap();
        let utility = |out: &VcgOutcome, client: u32, true_cost: f64| -> f64 {
            out.solution
                .winners()
                .iter()
                .find(|w| w.bid_ref.client == ClientId(client))
                .map_or(0.0, |w| w.payment - true_cost)
        };
        for (ci, truth) in [(1u32, 2.0), (2, 6.0), (3, 5.0)] {
            let honest_u = utility(&honest, ci, truth);
            for factor in [0.5, 0.8, 1.3, 2.0] {
                let bids: Vec<QualifiedBid> = wdp
                    .bids()
                    .iter()
                    .map(|b| {
                        let mut b = *b;
                        if b.bid_ref.client == ClientId(ci) {
                            b.price = truth * factor;
                        }
                        b
                    })
                    .collect();
                let lied_wdp = Wdp::new(3, 1, bids);
                let lied = vcg(&lied_wdp, &solver, 100.0).unwrap();
                let lied_u = utility(&lied, ci, truth);
                assert!(
                    lied_u <= honest_u + 1e-9,
                    "client {ci} gains {lied_u} > {honest_u} at factor {factor}"
                );
            }
        }
    }

    #[test]
    fn infeasible_wdp_propagates() {
        let wdp = Wdp::new(3, 2, vec![qb(0, 1.0, 1, 3, 3)]);
        assert_eq!(
            vcg(&wdp, &ExactSolver::new(), 10.0).unwrap_err(),
            WdpError::Infeasible
        );
    }
}

//! Exact optimum for the winner-determination problem.
//!
//! The paper reports *performance ratios* — algorithm cost over the cost of
//! "an optimal algorithm" (Figs. 3–4). This crate supplies that optimal
//! algorithm, built from first principles:
//!
//! * [`flow`] — Dinic max-flow, the transportation substrate;
//! * [`sched`] — scheduling feasibility and construction for a fixed bid
//!   set (`bid → round` flow with `c_b / 1 / K` capacities);
//! * [`relax`] — LP relaxations (via the `fl-lp` simplex) used as bounds
//!   and in tests;
//! * [`ExactSolver`] — branch-and-bound over bids with knapsack and
//!   round-potential pruning, seeded by `A_winner`'s greedy incumbent;
//! * [`BruteForceSolver`] — exhaustive enumeration, the testing yardstick.
//!
//! Both solvers implement [`fl_auction::WdpSolver`] and plug into the
//! `A_FL` outer loop unchanged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bnb;
pub mod colgen;
mod enumerate;
pub mod flow;
pub mod refine;
pub mod relax;
pub mod sched;
mod solver;
pub mod vcg;

pub use bnb::ExactSolver;
pub use colgen::{solve_lp7, ColGenResult};
pub use enumerate::{BruteForceSolver, MAX_BIDS};
pub use refine::RefineSolver;
pub use solver::{ExactOutcome, Optimality, ProvingWdpSolver};
pub use vcg::{vcg, VcgOutcome};

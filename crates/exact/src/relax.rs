//! LP relaxations of the winner-determination problem.
//!
//! Two relaxations with different strength/cost trade-offs:
//!
//! * [`schedule_lp_bound`] — the *exact* LP relaxation of the scheduling
//!   ILP (variables `x_b` and `y_{b,t}`), the tightest polynomial bound we
//!   compute. Used to report root optimality gaps and in tests.
//! * [`window_capacity_bound`] — a lighter relaxation with only `x_b`
//!   variables: a bid optimistically covers *every* round of its window,
//!   plus one aggregate capacity row. Weaker but much faster.
//!
//! Both are valid lower bounds on the ILP optimum because they only ever
//! *enlarge* the feasible region of ILP (7).

use fl_auction::{Round, Wdp};
use fl_lp::{LinearProgram, LpError, Objective, Relation};

/// The optimal value of the exact LP relaxation (with per-round scheduling
/// variables `y_{b,t}`).
///
/// # Errors
///
/// Propagates [`LpError::Infeasible`] when even the relaxation cannot staff
/// the rounds (the ILP is then certainly infeasible).
pub fn schedule_lp_bound(wdp: &Wdp) -> Result<f64, LpError> {
    let mut lp = LinearProgram::new(Objective::Minimize);
    let bids = wdp.bids();
    // x_b ∈ [0, 1] with cost p_b.
    let xs: Vec<_> = bids.iter().map(|b| lp.add_var(b.price, 1.0)).collect();
    // y_{b,t} ∈ [0, 1], zero cost, only for t ∈ window_b.
    let mut ys = Vec::with_capacity(bids.len());
    for b in bids {
        let row: Vec<_> = b
            .window
            .rounds()
            .map(|t| (t, lp.add_var(0.0, 1.0)))
            .collect();
        ys.push(row);
    }
    // Σ_t y_{b,t} = c_b·x_b  and  y_{b,t} ≤ x_b.
    for (b, (x, yrow)) in bids.iter().zip(xs.iter().zip(&ys)) {
        let mut terms: Vec<_> = yrow.iter().map(|&(_, y)| (y, 1.0)).collect();
        terms.push((*x, -f64::from(b.rounds)));
        lp.add_constraint(&terms, Relation::Eq, 0.0);
        for &(_, y) in yrow {
            lp.add_constraint(&[(y, 1.0), (*x, -1.0)], Relation::Le, 0.0);
        }
    }
    // Coverage: Σ_b y_{b,t} ≥ K.
    for t in (1..=wdp.horizon()).map(Round) {
        let terms: Vec<_> = ys
            .iter()
            .flat_map(|row| {
                row.iter()
                    .filter(|(rt, _)| *rt == t)
                    .map(|&(_, y)| (y, 1.0))
            })
            .collect();
        lp.add_constraint(&terms, Relation::Ge, f64::from(wdp.demand_per_round()));
    }
    // One bid per client: Σ_{j} x_{ij} ≤ 1.
    add_client_rows(&mut lp, wdp, &xs);
    Ok(lp.solve()?.objective())
}

/// The window+capacity LP bound: bids cover whole windows, plus
/// `Σ c_b x_b ≥ K·T̂_g`.
///
/// # Errors
///
/// Propagates [`LpError::Infeasible`] when the relaxation is infeasible.
pub fn window_capacity_bound(wdp: &Wdp) -> Result<f64, LpError> {
    let mut lp = LinearProgram::new(Objective::Minimize);
    let bids = wdp.bids();
    let xs: Vec<_> = bids.iter().map(|b| lp.add_var(b.price, 1.0)).collect();
    for t in (1..=wdp.horizon()).map(Round) {
        let terms: Vec<_> = bids
            .iter()
            .zip(&xs)
            .filter(|(b, _)| b.window.contains(t))
            .map(|(_, &x)| (x, 1.0))
            .collect();
        lp.add_constraint(&terms, Relation::Ge, f64::from(wdp.demand_per_round()));
    }
    let cap_terms: Vec<_> = bids
        .iter()
        .zip(&xs)
        .map(|(b, &x)| (x, f64::from(b.rounds)))
        .collect();
    lp.add_constraint(
        &cap_terms,
        Relation::Ge,
        f64::from(wdp.demand_per_round()) * f64::from(wdp.horizon()),
    );
    add_client_rows(&mut lp, wdp, &xs);
    Ok(lp.solve()?.objective())
}

fn add_client_rows(lp: &mut LinearProgram, wdp: &Wdp, xs: &[fl_lp::VarId]) {
    use std::collections::BTreeMap;
    let mut per_client: BTreeMap<u32, Vec<fl_lp::VarId>> = BTreeMap::new();
    for (b, &x) in wdp.bids().iter().zip(xs) {
        per_client.entry(b.bid_ref.client.0).or_default().push(x);
    }
    for vars in per_client.values().filter(|v| v.len() > 1) {
        let terms: Vec<_> = vars.iter().map(|&x| (x, 1.0)).collect();
        lp.add_constraint(&terms, Relation::Le, 1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fl_auction::{BidRef, ClientId, QualifiedBid, Window};

    fn qb(client: u32, bid: u32, price: f64, a: u32, d: u32, c: u32) -> QualifiedBid {
        QualifiedBid {
            bid_ref: BidRef::new(ClientId(client), bid),
            price,
            accuracy: 0.5,
            window: Window::new(Round(a), Round(d)),
            rounds: c,
            round_time: 1.0,
        }
    }

    fn paper_example() -> Wdp {
        Wdp::new(
            3,
            1,
            vec![
                qb(1, 0, 2.0, 1, 2, 1),
                qb(2, 0, 6.0, 2, 3, 2),
                qb(3, 0, 5.0, 1, 3, 2),
            ],
        )
    }

    #[test]
    fn bounds_never_exceed_integral_optimum() {
        // Optimum of the paper example is 7 (B1 + B3).
        let wdp = paper_example();
        let strong = schedule_lp_bound(&wdp).unwrap();
        let weak = window_capacity_bound(&wdp).unwrap();
        assert!(strong <= 7.0 + 1e-7, "strong bound {strong}");
        assert!(weak <= 7.0 + 1e-7, "weak bound {weak}");
        assert!(
            weak <= strong + 1e-7,
            "weak must not beat the exact relaxation"
        );
        assert!(strong > 0.0 && weak > 0.0);
    }

    #[test]
    fn tight_on_integral_instances() {
        // Single client able to do everything: LP = ILP = its price.
        let wdp = Wdp::new(2, 1, vec![qb(0, 0, 4.0, 1, 2, 2)]);
        assert!((schedule_lp_bound(&wdp).unwrap() - 4.0).abs() < 1e-7);
        assert!((window_capacity_bound(&wdp).unwrap() - 4.0).abs() < 1e-7);
    }

    #[test]
    fn infeasible_relaxation_propagates() {
        // Nobody covers round 2.
        let wdp = Wdp::new(2, 1, vec![qb(0, 0, 4.0, 1, 1, 1)]);
        assert_eq!(schedule_lp_bound(&wdp).unwrap_err(), LpError::Infeasible);
        assert_eq!(
            window_capacity_bound(&wdp).unwrap_err(),
            LpError::Infeasible
        );
    }

    #[test]
    fn one_bid_per_client_constrains_the_relaxation() {
        // Client 0 owns both cheap bids; K = 2 forces taking the expensive
        // competitor despite fractional freedom.
        let wdp = Wdp::new(
            1,
            2,
            vec![
                qb(0, 0, 1.0, 1, 1, 1),
                qb(0, 1, 1.0, 1, 1, 1),
                qb(1, 0, 10.0, 1, 1, 1),
            ],
        );
        let v = schedule_lp_bound(&wdp).unwrap();
        assert!(v >= 11.0 - 1e-7, "client row must bind, got {v}");
    }

    #[test]
    fn capacity_row_strengthens_window_bound() {
        // Two rounds K = 1; one client per round with c = 1 at price 1, and
        // one "wide" client with window [1,2] but c = 1 at price 0.1.
        // Window-only relaxation would let the wide bid cover both rounds
        // for 0.1; the capacity row forces a second unit of coverage.
        let wdp = Wdp::new(
            2,
            1,
            vec![
                qb(0, 0, 0.1, 1, 2, 1),
                qb(1, 0, 1.0, 1, 1, 1),
                qb(2, 0, 1.0, 2, 2, 1),
            ],
        );
        let v = window_capacity_bound(&wdp).unwrap();
        assert!(v >= 1.1 - 1e-7, "capacity row must bind, got {v}");
    }
}

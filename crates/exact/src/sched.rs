//! Scheduling feasibility and construction for a fixed bid set.
//!
//! Once the exact solver has decided *which* bids win, assigning their
//! participation rounds is a transportation problem: bid `b` must serve
//! exactly `c_b` distinct rounds inside its window, and every round needs
//! at least `K` servers. Whether the demand side can be met is a max-flow
//! question (`source → bid → round → sink` with capacities
//! `c_b / 1 / K`); the flow decomposition yields the schedules, padded with
//! arbitrary unused window rounds so each bid serves exactly `c_b`
//! (constraint (6c) — over-coverage beyond `K` is allowed and wasted).

use fl_auction::{QualifiedBid, Round};

use crate::flow::{EdgeHandle, FlowNetwork};

/// Maximum total useful coverage `Σ_t min(assigned_t, K)` achievable by the
/// given bids; equals `K·horizon` iff the bid set can staff every round.
pub fn max_coverage(bids: &[&QualifiedBid], horizon: u32, k: u32) -> u64 {
    build_and_run(bids, horizon, k).0
}

/// Whether `bids` (all assumed selected) can staff every round of the
/// horizon with `K` clients.
pub fn is_feasible(bids: &[&QualifiedBid], horizon: u32, k: u32) -> bool {
    max_coverage(bids, horizon, k) == u64::from(k) * u64::from(horizon)
}

/// Constructs one concrete schedule per bid (exactly `c_b` rounds each,
/// inside the bid's window, strictly increasing) such that every round has
/// at least `K` servers. Returns `None` when the bid set is infeasible.
pub fn build_schedules(bids: &[&QualifiedBid], horizon: u32, k: u32) -> Option<Vec<Vec<Round>>> {
    let (value, per_bid_edges, net) = build_and_run(bids, horizon, k);
    if value < u64::from(k) * u64::from(horizon) {
        return None;
    }
    let mut schedules = Vec::with_capacity(bids.len());
    for (bid, edges) in bids.iter().zip(&per_bid_edges) {
        let mut rounds: Vec<Round> = edges
            .iter()
            .filter(|(_, h)| net.flow(*h) > 0)
            .map(|(t, _)| *t)
            .collect();
        // Pad with unused window rounds until the bid serves exactly c_b.
        if (rounds.len() as u32) < bid.rounds {
            for t in bid.window.rounds() {
                if !rounds.contains(&t) {
                    rounds.push(t);
                    if rounds.len() as u32 == bid.rounds {
                        break;
                    }
                }
            }
        }
        debug_assert_eq!(
            rounds.len() as u32,
            bid.rounds,
            "window ≥ c_b by qualification"
        );
        rounds.sort_by_key(|t| t.0);
        schedules.push(rounds);
    }
    Some(schedules)
}

type BidRoundEdges = Vec<Vec<(Round, EdgeHandle)>>;

/// Builds the transportation network, runs Dinic, and returns
/// `(flow value, bid→round edge handles, the residual network)`.
fn build_and_run(
    bids: &[&QualifiedBid],
    horizon: u32,
    k: u32,
) -> (u64, BidRoundEdges, FlowNetwork) {
    let n_bids = bids.len();
    let n_rounds = horizon as usize;
    // Node ids: 0 = source, 1..=n_bids = bids, then rounds, then sink.
    let source = 0usize;
    let bid_node = |i: usize| 1 + i;
    let round_node = |t: Round| 1 + n_bids + t.index();
    let sink = 1 + n_bids + n_rounds;
    let mut net = FlowNetwork::new(sink + 1);
    let mut per_bid_edges: BidRoundEdges = Vec::with_capacity(n_bids);
    for (i, bid) in bids.iter().enumerate() {
        net.add_edge(source, bid_node(i), i64::from(bid.rounds));
        let mut edges = Vec::with_capacity(bid.window.len() as usize);
        for t in bid.window.rounds() {
            let h = net.add_edge(bid_node(i), round_node(t), 1);
            edges.push((t, h));
        }
        per_bid_edges.push(edges);
    }
    for t in (1..=horizon).map(Round) {
        net.add_edge(round_node(t), sink, i64::from(k));
    }
    let value = net.max_flow(source, sink) as u64;
    (value, per_bid_edges, net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fl_auction::{BidRef, ClientId, Window};

    fn qb(client: u32, a: u32, d: u32, c: u32) -> QualifiedBid {
        QualifiedBid {
            bid_ref: BidRef::new(ClientId(client), 0),
            price: 1.0,
            accuracy: 0.5,
            window: Window::new(Round(a), Round(d)),
            rounds: c,
            round_time: 1.0,
        }
    }

    #[test]
    fn full_window_bids_are_feasible() {
        let b0 = qb(0, 1, 3, 3);
        let b1 = qb(1, 1, 3, 3);
        assert!(is_feasible(&[&b0, &b1], 3, 2));
        assert!(!is_feasible(&[&b0], 3, 2), "one bid cannot staff K = 2");
    }

    #[test]
    fn tight_interval_packing() {
        // K = 1, horizon 3. Bids: [1,2]×1, [2,3]×1, [1,3]×1 — feasible only
        // because the flow can route them to distinct rounds.
        let b0 = qb(0, 1, 2, 1);
        let b1 = qb(1, 2, 3, 1);
        let b2 = qb(2, 1, 3, 1);
        assert!(is_feasible(&[&b0, &b1, &b2], 3, 1));
        // Remove the flexible bid: round 1 or 3 must starve? b0 can take 1,
        // b1 can take 3 — round 2 starves.
        assert!(!is_feasible(&[&b0, &b1], 3, 1));
    }

    #[test]
    fn hall_violation_detected() {
        // Three bids crammed into rounds [1,2] with c = 1 each, K = 1,
        // horizon 2: feasible (coverage just needs 1 per round). But with
        // K = 2 the two-round demand of 4 exceeds the three bids' supply.
        let b: Vec<QualifiedBid> = (0..3).map(|i| qb(i, 1, 2, 1)).collect();
        let refs: Vec<&QualifiedBid> = b.iter().collect();
        assert!(is_feasible(&refs, 2, 1));
        assert!(!is_feasible(&refs, 2, 2));
        assert_eq!(max_coverage(&refs, 2, 2), 3);
    }

    #[test]
    fn schedules_respect_windows_and_counts() {
        let b0 = qb(0, 1, 2, 2);
        let b1 = qb(1, 2, 3, 2);
        let b2 = qb(2, 1, 3, 2);
        let bids = [&b0, &b1, &b2];
        let schedules = build_schedules(&bids, 3, 2).expect("feasible");
        for (bid, sched) in bids.iter().zip(&schedules) {
            assert_eq!(sched.len() as u32, bid.rounds);
            assert!(sched.windows(2).all(|p| p[0] < p[1]));
            assert!(sched.iter().all(|&t| bid.window.contains(t)));
        }
        // Coverage: every round ≥ K = 2.
        let mut load = [0u32; 3];
        for sched in &schedules {
            for t in sched {
                load[t.index()] += 1;
            }
        }
        assert!(load.iter().all(|&l| l >= 2), "{load:?}");
    }

    #[test]
    fn padding_fills_to_exact_round_count() {
        // K = 1, horizon 2; two bids with c = 2 over [1,2]: total useful
        // coverage is 2, the second bid's rounds are padding but it must
        // still serve exactly 2.
        let b0 = qb(0, 1, 2, 2);
        let b1 = qb(1, 1, 2, 2);
        let schedules = build_schedules(&[&b0, &b1], 2, 1).expect("feasible");
        assert_eq!(schedules[0].len(), 2);
        assert_eq!(schedules[1].len(), 2);
    }

    #[test]
    fn infeasible_returns_none() {
        let b0 = qb(0, 1, 2, 1);
        assert!(build_schedules(&[&b0], 3, 1).is_none());
    }

    #[test]
    fn empty_bid_set_only_feasible_for_zero_demand() {
        assert!(!is_feasible(&[], 2, 1));
        assert_eq!(max_coverage(&[], 2, 1), 0);
    }
}

//! The workspace's standard generator: xoshiro256++ seeded via SplitMix64.

use crate::{Rng, SeedableRng};

/// Deterministic xoshiro256++ generator.
///
/// Statistically strong for simulation purposes and fully reproducible from
/// a `u64` seed. Not cryptographically secure (neither is the simulation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

/// SplitMix64 step — the recommended seeding routine for xoshiro.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_not_a_degenerate_stream() {
        let mut rng = StdRng::seed_from_u64(0);
        let draws: Vec<u64> = (0..16).map(|_| rng.next_u64()).collect();
        assert!(draws.iter().any(|&x| x != 0));
        let mut sorted = draws.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), draws.len(), "no immediate repeats");
    }
}

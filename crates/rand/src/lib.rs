//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no network access and no
//! vendored registry, so the real `rand` cannot be fetched. This crate
//! implements the *subset* of the `rand 0.10` API the workspace actually
//! uses — [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! [`RngExt::random_range`] over integer and float ranges — on top of a
//! deterministic xoshiro256++ generator.
//!
//! Guarantees this workspace relies on:
//!
//! * **Determinism** — the same seed always yields the same stream, across
//!   runs, platforms and rebuilds (no ambient entropy anywhere).
//! * **Uniformity good enough for statistics** — empirical-rate tests with
//!   tolerances down to ±2% over 20k draws pass comfortably.
//!
//! It makes no attempt to match the real crate's output streams; seeds in
//! this repository are workspace-local.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Random number generators.
pub mod rngs {
    pub use crate::std_rng::StdRng;
}

mod std_rng;

/// A source of random 64-bit values. The base trait every generator
/// implements; the range/convenience methods live on [`RngExt`].
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits — the full mantissa width of an f64.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// A uniform value from `range` (`a..b` or `a..=b` over integers or
    /// floats).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        self.next_f64() < p
    }
}

impl<R: Rng> RngExt for R {}

/// A range that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws a uniform integer in `[0, span)` by widening multiplication —
/// unbiased enough for every statistical tolerance in this workspace.
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(
            self.start < self.end,
            "empty range [{}, {})",
            self.start,
            self.end
        );
        let x = self.start + rng.next_f64() * (self.end - self.start);
        // next_f64 < 1 keeps x < end mathematically; clamp guards rounding.
        x.min(self.end - f64::EPSILON * self.end.abs().max(1.0))
            .max(self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range [{lo}, {hi}]");
        (lo + rng.next_f64() * (hi - lo)).clamp(lo, hi)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range");
        (self.start as f64 + rng.next_f64() * (self.end - self.start) as f64) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn integer_ranges_stay_in_bounds_and_hit_everything() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            let x = rng.random_range(2u32..8);
            assert!((2..8).contains(&x));
            seen[(x - 2) as usize] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all values of a small range appear"
        );
        for _ in 0..1000 {
            let y = rng.random_range(5u32..=5);
            assert_eq!(y, 5, "degenerate inclusive range");
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let x = rng.random_range(0.0..1.0);
            assert!((0.0..1.0).contains(&x));
            let y = rng.random_range(-2.0..=3.0);
            assert!((-2.0..=3.0).contains(&y));
        }
    }

    #[test]
    fn empirical_mean_is_near_the_midpoint() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.random_range(0.0..1.0)).sum();
        assert!((sum / f64::from(n) - 0.5).abs() < 0.01);
        let isum: u64 = (0..n).map(|_| u64::from(rng.random_range(0u32..=9))).sum();
        assert!((isum as f64 / f64::from(n) - 4.5).abs() < 0.05);
    }

    #[test]
    fn random_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(6);
        let hits = (0..20_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((hits as f64 / 20_000.0 - 0.3).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.random_range(5u32..5);
    }
}

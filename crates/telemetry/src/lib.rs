//! `fl-telemetry` — structured tracing, metrics and per-phase profiling for
//! the `A_FL` auction → simulator → bench pipeline.
//!
//! Like `rand`/`proptest`/`criterion` in this workspace, the crate is a
//! vendored zero-dependency stand-in (the build has no registry access) for
//! the instrumentation stack a production deployment would use. It provides
//! three primitives and three sinks:
//!
//! * **Spans** — hierarchical wall-clock-timed regions. [`span!`] returns a
//!   RAII guard; guards nest through a thread-local stack, so
//!   `span!("afl_run")` > `span!("tg_candidate", tg = h)` >
//!   `span!("wdp_greedy")` reconstructs the per-phase profile of Alg. 1.
//! * **Metrics** — monotone [`counter!`]s, last-write [`gauge!`]s, and
//!   [`sample!`]d histograms whose snapshots carry p50/p90/p99 quantiles.
//! * **Messages** — levelled log events ([`error!`] … [`trace!`]) so
//!   library crates never write to stdio directly.
//!
//! # Sinks
//!
//! Instrumentation is inert until a [`Sink`] is installed; with none
//! installed every entry point is a branch on one relaxed atomic plus one
//! thread-local cell (measured < 5% on the `winner` micro-benchmark).
//!
//! * [`EnvLogger`] — human-readable stderr logging filtered by the
//!   `FL_LOG` environment variable (`off|error|warn|info|debug|trace`).
//! * [`Recorder`] — deterministic in-memory aggregation for tests and perf
//!   snapshots: counters, histogram quantiles, and the closed-span tree.
//! * [`JsonlSink`] — a JSON-lines exporter the bench binaries mirror into
//!   `results/telemetry/<run>.jsonl`.
//!
//! Sinks are either **global** ([`install_global`], seen by every thread —
//! what bench binaries use) or **local** ([`install_local`], seen only by
//! the installing thread — what parallel tests use to avoid
//! cross-contamination). Both return guards that uninstall on drop.
//!
//! For fan-out/fan-in parallelism there is a third mode: [`capture()`]
//! diverts a worker thread's events into an owned buffer and [`replay`]
//! re-emits them on the coordinating thread in a deterministic order, with
//! remapped span ids and re-parenting under the coordinator's open span —
//! this is how the parallel `A_FL` horizon sweep keeps its trace identical
//! to the sequential one.
//!
//! # Live observability
//!
//! The sinks above are deterministic and after-the-fact; long-lived
//! services need concurrent, always-on introspection instead. Two
//! standalone primitives (not sinks — they never touch the dispatch path
//! or a recorder's determinism) cover that:
//!
//! * [`LiveMetrics`] — per-thread shards of counters/gauges/windowed
//!   histograms, contention-free recording, on-demand [`merge`]d
//!   snapshots with the same nearest-rank quantiles.
//! * [`FlightRecorder`] — fixed-capacity per-thread rings of recent
//!   events, drained into one causally-ordered, wall-clock-stamped dump.
//!
//! [`merge`]: LiveMetrics::merge
//!
//! # Example
//!
//! ```
//! use fl_telemetry::{counter, install_local, sample, span, Recorder};
//! use std::sync::Arc;
//!
//! let recorder = Arc::new(Recorder::default());
//! let guard = install_local(recorder.clone());
//! {
//!     let _outer = span!("afl_run", clients = 3u32);
//!     let _inner = span!("qualify");
//!     counter!("qualify.accepted", 2);
//!     sample!("pool_depth", 4.0);
//! }
//! drop(guard);
//! let snap = recorder.snapshot();
//! assert_eq!(snap.counters["qualify.accepted"], 2);
//! assert_eq!(snap.roots[0].name, "afl_run");
//! assert_eq!(snap.roots[0].children[0].name, "qualify");
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::print_stdout)]

mod capture;
mod dispatch;
mod event;
pub mod flight;
pub mod frame;
pub mod json;
mod jsonl;
mod live;
mod logger;
mod quantile;
mod recorder;

pub use capture::{capture, replay, CapturedEvent};
pub use dispatch::{
    counter, enabled, gauge, install_global, install_local, message, sample, span, span_with,
    GlobalSinkGuard, LocalSinkGuard, SpanGuard,
};
pub use event::{Event, Field, Level, Sink, Value};
pub use flight::{FlightEvent, FlightRecorder};
pub use jsonl::JsonlSink;
pub use live::{LiveHist, LiveMetrics, LiveSnapshot};
pub use logger::EnvLogger;
pub use quantile::HistSummary;
pub use recorder::{PhaseStat, Recorder, Snapshot, SpanNode};

/// Opens a timed span: `span!("name")` or `span!("name", key = value, …)`.
///
/// Returns a [`SpanGuard`]; the span closes (and its elapsed time is
/// reported to sinks) when the guard drops. Field values may be any type
/// with a [`Value`] conversion. When no sink is installed the guard is
/// inert and no field is even constructed.
#[macro_export]
macro_rules! span {
    ($name:expr $(,)?) => {
        $crate::span($name)
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        if $crate::enabled() {
            $crate::span_with(
                $name,
                vec![$($crate::Field::new(stringify!($key), $value)),+],
            )
        } else {
            $crate::SpanGuard::disabled()
        }
    };
}

/// Increments a monotone counter: `counter!("name")` adds 1,
/// `counter!("name", delta)` adds `delta` (any unsigned integer).
#[macro_export]
macro_rules! counter {
    ($name:expr $(,)?) => {
        $crate::counter($name, 1)
    };
    ($name:expr, $delta:expr $(,)?) => {
        $crate::counter($name, $delta as u64)
    };
}

/// Sets a gauge to its latest value: `gauge!("name", 0.98)`.
#[macro_export]
macro_rules! gauge {
    ($name:expr, $value:expr $(,)?) => {
        $crate::gauge($name, $value as f64)
    };
}

/// Records one histogram observation: `sample!("name", 12.5)`.
#[macro_export]
macro_rules! sample {
    ($name:expr, $value:expr $(,)?) => {
        $crate::sample($name, $value as f64)
    };
}

/// Emits a levelled message with `format!` syntax:
/// `event!(Level::Warn, "round {t} under floor")`. The format arguments are
/// only evaluated when a sink is installed.
#[macro_export]
macro_rules! event {
    ($level:expr, $($arg:tt)*) => {
        if $crate::enabled() {
            $crate::message($level, &format!($($arg)*));
        }
    };
}

/// [`event!`] at [`Level::Error`].
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => { $crate::event!($crate::Level::Error, $($arg)*) };
}

/// [`event!`] at [`Level::Warn`].
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => { $crate::event!($crate::Level::Warn, $($arg)*) };
}

/// [`event!`] at [`Level::Info`].
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => { $crate::event!($crate::Level::Info, $($arg)*) };
}

/// [`event!`] at [`Level::Debug`].
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => { $crate::event!($crate::Level::Debug, $($arg)*) };
}

/// [`event!`] at [`Level::Trace`].
#[macro_export]
macro_rules! trace {
    ($($arg:tt)*) => { $crate::event!($crate::Level::Trace, $($arg)*) };
}

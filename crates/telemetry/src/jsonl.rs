//! JSON-lines export: one event per line, machine-readable.

use std::fs;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::event::{Event, Field, Sink};
use crate::json;

/// A [`Sink`] serialising every event as one JSON object per line.
///
/// Bench binaries mirror their instrumentation into
/// `results/telemetry/<run>.jsonl` through this sink. Each line carries a
/// `type` tag (`span_start`, `span_end`, `counter`, `gauge`, `sample`,
/// `message`), the event payload, and `ts_us` — microseconds since the
/// sink was created. Output is buffered; it flushes on [`JsonlSink::flush`]
/// and on drop.
pub struct JsonlSink {
    out: Mutex<BufWriter<Box<dyn Write + Send>>>,
    start: Instant,
    /// Lines lost to write errors (ENOSPC, closed pipe, …). Telemetry
    /// must never panic the instrumented program, so failures degrade to
    /// dropped lines — but they are *counted* and the last cause is kept,
    /// so hosts can surface the loss instead of silently shipping a
    /// truncated trace.
    dropped: AtomicU64,
    last_error: Mutex<Option<io::Error>>,
}

impl JsonlSink {
    /// Creates (truncating) the file at `path`, creating parent
    /// directories as needed.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn create(path: impl AsRef<Path>) -> io::Result<JsonlSink> {
        let path = path.as_ref();
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)?;
        }
        Ok(JsonlSink::to_writer(fs::File::create(path)?))
    }

    /// Wraps an arbitrary writer (tests use a shared `Vec<u8>`).
    pub fn to_writer(w: impl Write + Send + 'static) -> JsonlSink {
        JsonlSink {
            out: Mutex::new(BufWriter::new(Box::new(w))),
            start: Instant::now(),
            dropped: AtomicU64::new(0),
            last_error: Mutex::new(None),
        }
    }

    /// How many event lines were lost to write errors so far.
    pub fn dropped_lines(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Takes (and clears) the most recent write error, if any — the error
    /// surface for hosts that want to report partial traces. Pair with
    /// [`JsonlSink::dropped_lines`] for the loss count.
    pub fn take_last_error(&self) -> Option<io::Error> {
        self.last_error
            .lock()
            .expect("jsonl error slot poisoned")
            .take()
    }

    fn note_error(&self, e: io::Error) {
        self.dropped.fetch_add(1, Ordering::Relaxed);
        *self.last_error.lock().expect("jsonl error slot poisoned") = Some(e);
    }

    /// Flushes buffered lines to the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn flush(&self) -> io::Result<()> {
        let result = self.out.lock().expect("jsonl writer poisoned").flush();
        if let Err(e) = &result {
            self.note_error(io::Error::new(e.kind(), e.to_string()));
        }
        result
    }

    fn write_line(&self, members: Vec<(String, String)>) {
        let ts = self.start.elapsed().as_micros() as u64;
        let mut all = vec![("ts_us".to_string(), ts.to_string())];
        all.extend(members);
        let line = json::object(&all);
        let mut out = self.out.lock().expect("jsonl writer poisoned");
        // Telemetry must never panic the instrumented program; a full disk
        // (ENOSPC) or closed pipe degrades to dropped lines. `write_all`
        // already retries short writes, so a partial write only survives
        // as a hard error here — which we count and keep (see
        // `dropped_lines` / `take_last_error`) instead of losing silently.
        let result = out
            .write_all(line.as_bytes())
            .and_then(|()| out.write_all(b"\n"));
        drop(out);
        if let Err(e) = result {
            self.note_error(e);
        }
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        if let Ok(mut out) = self.out.lock() {
            let _ = out.flush();
        }
    }
}

fn fields_json(fields: &[Field]) -> String {
    json::object(
        &fields
            .iter()
            .map(|f| (f.name.to_string(), json::value(&f.value)))
            .collect::<Vec<_>>(),
    )
}

impl Sink for JsonlSink {
    fn on_event(&self, event: &Event<'_>) {
        match event {
            Event::SpanStart {
                id,
                parent,
                name,
                fields,
            } => self.write_line(vec![
                ("type".into(), json::string("span_start")),
                ("name".into(), json::string(name)),
                ("id".into(), id.to_string()),
                (
                    "parent".into(),
                    parent.map_or("null".into(), |p| p.to_string()),
                ),
                ("fields".into(), fields_json(fields)),
            ]),
            Event::SpanEnd {
                id,
                parent,
                name,
                fields,
                elapsed,
            } => self.write_line(vec![
                ("type".into(), json::string("span_end")),
                ("name".into(), json::string(name)),
                ("id".into(), id.to_string()),
                (
                    "parent".into(),
                    parent.map_or("null".into(), |p| p.to_string()),
                ),
                ("elapsed_us".into(), elapsed.as_micros().to_string()),
                ("fields".into(), fields_json(fields)),
            ]),
            Event::Counter { name, delta } => self.write_line(vec![
                ("type".into(), json::string("counter")),
                ("name".into(), json::string(name)),
                ("delta".into(), delta.to_string()),
            ]),
            Event::Gauge { name, value } => self.write_line(vec![
                ("type".into(), json::string("gauge")),
                ("name".into(), json::string(name)),
                ("value".into(), json::number(*value)),
            ]),
            Event::Sample { name, value } => self.write_line(vec![
                ("type".into(), json::string("sample")),
                ("name".into(), json::string(name)),
                ("value".into(), json::number(*value)),
            ]),
            Event::Message { level, text } => self.write_line(vec![
                ("type".into(), json::string("message")),
                ("level".into(), json::string(level.name())),
                ("text".into(), json::string(text)),
            ]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::install_local;
    use crate::{counter, sample, span, Level};
    use std::sync::Arc;

    /// A `Write` handle into shared memory so the test can read back what
    /// the sink wrote.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn every_line_is_valid_json_with_a_type_tag() {
        let buf = SharedBuf::default();
        let sink = Arc::new(JsonlSink::to_writer(buf.clone()));
        let guard = install_local(sink.clone());
        {
            let _s = span!("run", case = "jsonl", n = 2u32);
            counter!("hits", 3);
            sample!("depth", 1.5);
            crate::message(Level::Warn, "look \"out\"\n");
        }
        drop(guard);
        sink.flush().unwrap();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5, "start, counter, sample, message, end");
        for line in &lines {
            json::validate(line).unwrap_or_else(|e| panic!("{e}: {line}"));
            assert!(line.contains("\"type\":"));
            assert!(line.contains("\"ts_us\":"));
        }
        assert!(lines[0].contains("\"span_start\""));
        assert!(lines[0].contains("\"case\":\"jsonl\""));
        assert!(lines[0].contains("\"n\":2"));
        assert!(lines[3].contains("look \\\"out\\\"\\n"));
        assert!(lines[4].contains("\"elapsed_us\":"));
    }

    #[test]
    fn create_writes_through_to_disk() {
        let dir = std::env::temp_dir().join("fl-telemetry-jsonl-test");
        let path = dir.join("run.jsonl");
        let sink = Arc::new(JsonlSink::create(&path).unwrap());
        let guard = install_local(sink.clone());
        counter!("disk", 1);
        drop(guard);
        sink.flush().unwrap();
        let text = fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"counter\""));
        fs::remove_dir_all(&dir).ok();
    }
}

//! Histogram summarisation: nearest-rank quantiles over recorded samples.
//!
//! The recorder keeps raw samples (runs in this workspace are bounded, so
//! memory is not a concern) and summarises on snapshot; nearest-rank keeps
//! quantiles exact and deterministic, which the perf-snapshot tests rely
//! on.

/// Count/min/max/mean plus p50/p90/p99 of one histogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistSummary {
    /// Number of observations.
    pub n: usize,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sum of all observations.
    pub sum: f64,
    /// Median (nearest rank).
    pub p50: f64,
    /// 90th percentile (nearest rank).
    pub p90: f64,
    /// 99th percentile (nearest rank).
    pub p99: f64,
}

impl HistSummary {
    /// Summarises a sample set. Returns `None` for an empty or NaN-bearing
    /// sample (telemetry must never panic inside instrumented code).
    pub fn of(samples: &[f64]) -> Option<HistSummary> {
        if samples.is_empty() || samples.iter().any(|x| x.is_nan()) {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let sum: f64 = sorted.iter().sum();
        Some(HistSummary {
            n: sorted.len(),
            min: sorted[0],
            max: *sorted.last().expect("non-empty"),
            mean: sum / sorted.len() as f64,
            sum,
            p50: nearest_rank(&sorted, 0.50),
            p90: nearest_rank(&sorted, 0.90),
            p99: nearest_rank(&sorted, 0.99),
        })
    }
}

/// The nearest-rank quantile of an ascending-sorted non-empty sample:
/// element `⌈q·n⌉` (1-based), clamped to the sample.
fn nearest_rank(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    let rank = (q * n as f64).ceil() as usize;
    sorted[rank.clamp(1, n) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_of_1_to_100_are_exact() {
        let samples: Vec<f64> = (1..=100).map(f64::from).collect();
        let s = HistSummary::of(&samples).unwrap();
        assert_eq!(s.n, 100);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.p50, 50.0);
        assert_eq!(s.p90, 90.0);
        assert_eq!(s.p99, 99.0);
        assert!((s.mean - 50.5).abs() < 1e-12);
        assert!((s.sum - 5050.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles_are_order_invariant() {
        let a = HistSummary::of(&[3.0, 1.0, 2.0]).unwrap();
        let b = HistSummary::of(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.p50, 2.0);
        assert_eq!(a.p90, 3.0);
    }

    #[test]
    fn singleton_collapses_every_statistic() {
        let s = HistSummary::of(&[7.5]).unwrap();
        assert_eq!(s.min, 7.5);
        assert_eq!(s.max, 7.5);
        assert_eq!(s.p50, 7.5);
        assert_eq!(s.p99, 7.5);
    }

    #[test]
    fn skewed_distribution_separates_p50_from_p99() {
        // 99 fast observations and one slow outlier.
        let mut samples = vec![1.0; 99];
        samples.push(1000.0);
        let s = HistSummary::of(&samples).unwrap();
        assert_eq!(s.p50, 1.0);
        assert_eq!(s.p90, 1.0);
        assert_eq!(s.p99, 1.0);
        assert_eq!(s.max, 1000.0);
        // p100 does not exist; the outlier shows up in max and mean.
        assert!(s.mean > 10.0);
    }

    #[test]
    fn empty_and_nan_samples_are_rejected() {
        assert!(HistSummary::of(&[]).is_none());
        assert!(HistSummary::of(&[1.0, f64::NAN]).is_none());
        assert!(HistSummary::of(&[f64::NAN]).is_none());
    }

    #[test]
    fn two_samples_split_median_from_tail() {
        // Nearest rank with n = 2: p50 → ⌈0.5·2⌉ = rank 1 (the smaller),
        // p90/p99 → rank 2 (the larger).
        let s = HistSummary::of(&[4.0, 1.0]).unwrap();
        assert_eq!(s.n, 2);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.p50, 1.0);
        assert_eq!(s.p90, 4.0);
        assert_eq!(s.p99, 4.0);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.sum - 5.0).abs() < 1e-12);
    }

    #[test]
    fn all_equal_samples_collapse_every_quantile() {
        for n in [1usize, 2, 3, 17] {
            let s = HistSummary::of(&vec![2.25; n]).unwrap();
            assert_eq!(s.n, n);
            assert_eq!((s.min, s.max), (2.25, 2.25));
            assert_eq!((s.p50, s.p90, s.p99), (2.25, 2.25, 2.25));
            assert!((s.mean - 2.25).abs() < 1e-12, "n={n}");
        }
    }

    #[test]
    fn extreme_quantile_arguments_clamp_to_the_sample() {
        let sorted = [1.0, 2.0, 3.0];
        assert_eq!(nearest_rank(&sorted, 0.0), 1.0);
        assert_eq!(nearest_rank(&sorted, 1.0), 3.0);
    }
}

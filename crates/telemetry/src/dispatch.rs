//! Sink registry, the thread-local span stack, and every emission entry
//! point. The design constraint is the disabled fast path: with no sink
//! installed, each entry point costs one relaxed atomic load plus one
//! thread-local cell read and returns immediately.

use std::cell::{Cell, RefCell};
use std::marker::PhantomData;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

use crate::event::{Event, Field, Level, Sink};

/// Registered global sinks, keyed by installation id for removal.
type SinkSlot = (u64, Arc<dyn Sink>);

static GLOBAL_SINKS: OnceLock<RwLock<Vec<SinkSlot>>> = OnceLock::new();
/// Mirror of `GLOBAL_SINKS.len()` readable without taking the lock.
static GLOBAL_COUNT: AtomicUsize = AtomicUsize::new(0);
/// Source of installation and span ids (never reused within a process).
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static LOCAL_SINKS: RefCell<Vec<SinkSlot>> = const { RefCell::new(Vec::new()) };
    static LOCAL_COUNT: Cell<usize> = const { Cell::new(0) };
    /// Ids of the currently open spans on this thread, innermost last.
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

fn global_sinks() -> &'static RwLock<Vec<SinkSlot>> {
    GLOBAL_SINKS.get_or_init(|| RwLock::new(Vec::new()))
}

/// Whether at least one sink (global or thread-local) is installed, or a
/// [`capture`](crate::capture()) is active on this thread. The macros use
/// this to skip field construction and message formatting.
#[inline]
pub fn enabled() -> bool {
    GLOBAL_COUNT.load(Ordering::Relaxed) != 0
        || LOCAL_COUNT.with(Cell::get) != 0
        || crate::capture::active()
}

/// Allocates a fresh process-unique id (used by replayed spans).
pub(crate) fn fresh_id() -> u64 {
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

/// The innermost span currently open on this thread, if any.
pub(crate) fn current_parent() -> Option<u64> {
    SPAN_STACK.with(|stack| stack.borrow().last().copied())
}

/// Crate-internal alias for [`dispatch`], used by replay.
pub(crate) fn emit(event: &Event<'_>) {
    dispatch(event);
}

/// Uninstalls a global sink when dropped.
#[must_use = "dropping the guard immediately uninstalls the sink"]
pub struct GlobalSinkGuard {
    id: u64,
}

impl Drop for GlobalSinkGuard {
    fn drop(&mut self) {
        let mut sinks = global_sinks().write().expect("sink registry poisoned");
        sinks.retain(|(id, _)| *id != self.id);
        GLOBAL_COUNT.store(sinks.len(), Ordering::Relaxed);
    }
}

/// Installs a sink that observes events from **every** thread. Returns a
/// guard that uninstalls it on drop.
pub fn install_global(sink: Arc<dyn Sink>) -> GlobalSinkGuard {
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let mut sinks = global_sinks().write().expect("sink registry poisoned");
    sinks.push((id, sink));
    GLOBAL_COUNT.store(sinks.len(), Ordering::Relaxed);
    GlobalSinkGuard { id }
}

/// Uninstalls a thread-local sink when dropped. `!Send` on purpose: the
/// guard must drop on the installing thread.
#[must_use = "dropping the guard immediately uninstalls the sink"]
pub struct LocalSinkGuard {
    id: u64,
    _not_send: PhantomData<Rc<()>>,
}

impl Drop for LocalSinkGuard {
    fn drop(&mut self) {
        LOCAL_SINKS.with(|sinks| {
            let mut sinks = sinks.borrow_mut();
            sinks.retain(|(id, _)| *id != self.id);
            LOCAL_COUNT.with(|c| c.set(sinks.len()));
        });
    }
}

/// Installs a sink that observes events from the **current thread only** —
/// the parallel-test-safe alternative to [`install_global`]. Returns a
/// guard that uninstalls it on drop.
pub fn install_local(sink: Arc<dyn Sink>) -> LocalSinkGuard {
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    LOCAL_SINKS.with(|sinks| {
        let mut sinks = sinks.borrow_mut();
        sinks.push((id, sink));
        LOCAL_COUNT.with(|c| c.set(sinks.len()));
    });
    LocalSinkGuard {
        id,
        _not_send: PhantomData,
    }
}

/// Fans one event out to every local, then every global sink — unless a
/// [`capture`](crate::capture()) is active on this thread, which diverts the
/// event into its buffer instead (exclusively; no sink sees it).
fn dispatch(event: &Event<'_>) {
    if crate::capture::try_capture(event) {
        return;
    }
    if LOCAL_COUNT.with(Cell::get) != 0 {
        LOCAL_SINKS.with(|sinks| {
            for (_, sink) in sinks.borrow().iter() {
                sink.on_event(event);
            }
        });
    }
    if GLOBAL_COUNT.load(Ordering::Relaxed) != 0 {
        let sinks = global_sinks().read().expect("sink registry poisoned");
        for (_, sink) in sinks.iter() {
            sink.on_event(event);
        }
    }
}

/// RAII handle for an open span; closing (dropping) it reports the span's
/// wall-clock duration to every sink. Obtained from [`span!`](crate::span!),
/// [`span`] or [`span_with`].
#[must_use = "dropping the guard immediately closes the span"]
pub struct SpanGuard {
    /// `None` when telemetry was disabled at open time.
    live: Option<LiveSpan>,
    _not_send: PhantomData<Rc<()>>,
}

struct LiveSpan {
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    fields: Vec<Field>,
    start: Instant,
}

impl SpanGuard {
    /// An inert guard: nothing is emitted on open or close. Used by the
    /// [`span!`](crate::span!) macro when no sink is installed.
    pub fn disabled() -> SpanGuard {
        SpanGuard {
            live: None,
            _not_send: PhantomData,
        }
    }

    /// The span's process-unique id, or `None` for an inert guard.
    pub fn id(&self) -> Option<u64> {
        self.live.as_ref().map(|l| l.id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else {
            return;
        };
        let elapsed = live.start.elapsed();
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Guards normally drop innermost-first; search from the end so
            // an out-of-order drop cannot corrupt unrelated entries.
            if let Some(pos) = stack.iter().rposition(|&id| id == live.id) {
                stack.remove(pos);
            }
        });
        dispatch(&Event::SpanEnd {
            id: live.id,
            parent: live.parent,
            name: live.name,
            fields: &live.fields,
            elapsed,
        });
    }
}

/// Opens a timed span with no fields. Prefer the [`span!`](crate::span!)
/// macro, which also skips field construction when disabled.
pub fn span(name: &'static str) -> SpanGuard {
    span_with(name, Vec::new())
}

/// Opens a timed span carrying context fields.
pub fn span_with(name: &'static str, fields: Vec<Field>) -> SpanGuard {
    if !enabled() {
        return SpanGuard::disabled();
    }
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let parent = SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let parent = stack.last().copied();
        stack.push(id);
        parent
    });
    dispatch(&Event::SpanStart {
        id,
        parent,
        name,
        fields: &fields,
    });
    SpanGuard {
        live: Some(LiveSpan {
            id,
            parent,
            name,
            fields,
            start: Instant::now(),
        }),
        _not_send: PhantomData,
    }
}

/// Adds `delta` to the named monotone counter.
#[inline]
pub fn counter(name: &'static str, delta: u64) {
    if enabled() {
        dispatch(&Event::Counter { name, delta });
    }
}

/// Sets the named gauge to `value` (last write wins).
#[inline]
pub fn gauge(name: &'static str, value: f64) {
    if enabled() {
        dispatch(&Event::Gauge { name, value });
    }
}

/// Records one observation of the named histogram.
#[inline]
pub fn sample(name: &'static str, value: f64) {
    if enabled() {
        dispatch(&Event::Sample { name, value });
    }
}

/// Emits a levelled message. Prefer the [`event!`](crate::event!) family of
/// macros, which skip formatting when disabled.
pub fn message(level: Level, text: &str) {
    if enabled() {
        dispatch(&Event::Message { level, text });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Collects raw events for dispatch-level assertions.
    #[derive(Default)]
    struct Probe {
        log: Mutex<Vec<String>>,
    }

    impl Probe {
        fn lines(&self) -> Vec<String> {
            self.log.lock().unwrap().clone()
        }
    }

    impl Sink for Probe {
        fn on_event(&self, event: &Event<'_>) {
            let line = match event {
                Event::SpanStart { name, parent, .. } => {
                    format!("start {name} parent={}", parent.is_some())
                }
                Event::SpanEnd { name, .. } => format!("end {name}"),
                Event::Counter { name, delta } => format!("counter {name} +{delta}"),
                Event::Gauge { name, value } => format!("gauge {name} {value}"),
                Event::Sample { name, value } => format!("sample {name} {value}"),
                Event::Message { level, text } => format!("{level} {text}"),
            };
            self.log.lock().unwrap().push(line);
        }
    }

    #[test]
    fn disabled_span_guard_is_inert() {
        // No sink on this thread (globals may exist in other tests, so use
        // an explicitly disabled guard).
        let g = SpanGuard::disabled();
        assert_eq!(g.id(), None);
        drop(g);
    }

    #[test]
    fn local_sink_sees_nesting_and_metrics() {
        let probe = Arc::new(Probe::default());
        let guard = install_local(probe.clone());
        {
            let outer = span("outer");
            let inner = span("inner");
            assert!(outer.id().unwrap() < inner.id().unwrap());
            counter("hits", 2);
            gauge("ratio", 0.5);
            sample("depth", 3.0);
            message(Level::Info, "hello");
        }
        drop(guard);
        let lines = probe.lines();
        assert_eq!(
            lines,
            vec![
                "start outer parent=false",
                "start inner parent=true",
                "counter hits +2",
                "gauge ratio 0.5",
                "sample depth 3",
                "info hello",
                "end inner",
                "end outer",
            ]
        );
    }

    #[test]
    fn uninstall_stops_delivery() {
        let probe = Arc::new(Probe::default());
        let guard = install_local(probe.clone());
        counter("a", 1);
        drop(guard);
        counter("a", 1);
        assert_eq!(probe.lines().len(), 1);
    }

    #[test]
    fn out_of_order_guard_drop_keeps_the_stack_sane() {
        let probe = Arc::new(Probe::default());
        let guard = install_local(probe.clone());
        let outer = span("outer");
        let inner = span("inner");
        drop(outer); // wrong order on purpose
        let sibling = span("sibling"); // parent should be `inner`
        drop(sibling);
        drop(inner);
        drop(guard);
        let lines = probe.lines();
        assert!(lines.contains(&"start sibling parent=true".to_string()));
    }

    #[test]
    fn local_sinks_do_not_leak_across_threads() {
        let probe = Arc::new(Probe::default());
        let guard = install_local(probe.clone());
        let p2 = probe.clone();
        std::thread::spawn(move || {
            // This thread has no local sink; only globals would see this.
            counter("other-thread", 1);
            drop(p2);
        })
        .join()
        .unwrap();
        counter("this-thread", 1);
        drop(guard);
        let lines = probe.lines();
        assert_eq!(lines, vec!["counter this-thread +1"]);
    }
}

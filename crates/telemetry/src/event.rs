//! The event vocabulary shared by instrumentation points and sinks.

use std::fmt;
use std::time::Duration;

/// A typed field value attached to spans and messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A boolean flag.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer (round counts, client counts, …).
    UInt(u64),
    /// A float (costs, ratios, durations).
    Float(f64),
    /// A string.
    Str(String),
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::UInt(u) => write!(f, "{u}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

macro_rules! value_from {
    ($variant:ident: $($ty:ty),+) => {
        $(impl From<$ty> for Value {
            fn from(v: $ty) -> Value {
                Value::$variant(v.into())
            }
        })+
    };
}
value_from!(Bool: bool);
value_from!(Int: i8, i16, i32, i64);
value_from!(UInt: u8, u16, u32, u64);
value_from!(Float: f32, f64);
value_from!(Str: &str, String);

impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::UInt(v as u64)
    }
}

/// A named [`Value`], the unit of span/message context.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    /// Field name (static so instrumentation never allocates for names).
    pub name: &'static str,
    /// Field value.
    pub value: Value,
}

impl Field {
    /// Builds a field from anything convertible to a [`Value`].
    pub fn new(name: &'static str, value: impl Into<Value>) -> Field {
        Field {
            name,
            value: value.into(),
        }
    }
}

/// Message severity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The pipeline produced a wrong or unusable result.
    Error,
    /// Something unexpected that the pipeline worked around.
    Warn,
    /// High-level progress (one line per run/phase).
    Info,
    /// Per-decision detail (one line per horizon/round).
    Debug,
    /// Everything, including metric updates.
    Trace,
}

impl Level {
    /// Parses `FL_LOG`-style level names. `None` for `off`/`none`/unknown.
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }

    /// Reads the level from the `FL_LOG` environment variable.
    pub fn from_env() -> Option<Level> {
        std::env::var("FL_LOG").ok().and_then(|v| Level::parse(&v))
    }

    /// Lower-case display name.
    pub fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One telemetry event, borrowed from the emitting call site.
#[derive(Debug, Clone, PartialEq)]
pub enum Event<'a> {
    /// A span was opened.
    SpanStart {
        /// Process-unique span id (creation-ordered).
        id: u64,
        /// Enclosing span on the same thread, if any.
        parent: Option<u64>,
        /// Span name.
        name: &'static str,
        /// Span context fields.
        fields: &'a [Field],
    },
    /// A span closed; `elapsed` is its wall-clock duration.
    SpanEnd {
        /// Process-unique span id (matches the start event).
        id: u64,
        /// Enclosing span on the same thread, if any.
        parent: Option<u64>,
        /// Span name.
        name: &'static str,
        /// Span context fields.
        fields: &'a [Field],
        /// Wall-clock time between open and close.
        elapsed: Duration,
    },
    /// A counter increment.
    Counter {
        /// Counter name.
        name: &'static str,
        /// Amount added.
        delta: u64,
    },
    /// A gauge update (last write wins).
    Gauge {
        /// Gauge name.
        name: &'static str,
        /// New value.
        value: f64,
    },
    /// One histogram observation.
    Sample {
        /// Histogram name.
        name: &'static str,
        /// Observed value.
        value: f64,
    },
    /// A levelled log message.
    Message {
        /// Severity.
        level: Level,
        /// Rendered message text.
        text: &'a str,
    },
}

/// A telemetry consumer. Implementations must be cheap and non-blocking
/// relative to the instrumented code, and must tolerate concurrent calls
/// (global sinks receive events from every thread).
pub trait Sink: Send + Sync {
    /// Handles one event.
    fn on_event(&self, event: &Event<'_>);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_conversions_cover_common_types() {
        assert_eq!(Value::from(3u32), Value::UInt(3));
        assert_eq!(Value::from(7usize), Value::UInt(7));
        assert_eq!(Value::from(-2i32), Value::Int(-2));
        assert_eq!(Value::from(1.5f64), Value::Float(1.5));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("x"), Value::Str("x".into()));
    }

    #[test]
    fn level_parse_and_ordering() {
        assert_eq!(Level::parse("DEBUG"), Some(Level::Debug));
        assert_eq!(Level::parse(" warn "), Some(Level::Warn));
        assert_eq!(Level::parse("off"), None);
        assert_eq!(Level::parse(""), None);
        assert!(Level::Error < Level::Trace);
        assert!(Level::Info <= Level::Debug);
    }

    #[test]
    fn display_is_lowercase() {
        assert_eq!(Level::Warn.to_string(), "warn");
        assert_eq!(Value::from(4u64).to_string(), "4");
    }
}

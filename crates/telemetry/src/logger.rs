//! Human-readable, env-filtered stderr logging.

use std::collections::HashMap;
use std::io::Write as _;
use std::sync::Mutex;
use std::thread::ThreadId;
use std::time::Instant;

use crate::event::{Event, Level, Sink};

/// A [`Sink`] that renders events as indented, levelled lines on stderr.
///
/// The verbosity threshold usually comes from the `FL_LOG` environment
/// variable ([`EnvLogger::from_env`]); bench binaries additionally honour
/// `--quiet` by simply not installing the logger. Event levels:
///
/// * messages log at their own level;
/// * span open/close log at `debug`;
/// * counter/gauge/histogram updates log at `trace`.
///
/// Lines are indented by the emitting thread's open-span depth, so nested
/// phases read as a tree.
pub struct EnvLogger {
    max_level: Level,
    start: Instant,
    depth: Mutex<HashMap<ThreadId, usize>>,
}

impl EnvLogger {
    /// A logger showing everything up to (and including) `max_level`.
    pub fn new(max_level: Level) -> EnvLogger {
        EnvLogger {
            max_level,
            start: Instant::now(),
            depth: Mutex::new(HashMap::new()),
        }
    }

    /// Builds a logger from `FL_LOG`; `None` when the variable is unset,
    /// `off`, or unparseable (telemetry stays silent by default).
    pub fn from_env() -> Option<EnvLogger> {
        Level::from_env().map(EnvLogger::new)
    }

    fn emit(&self, level: Level, indent: usize, text: &str) {
        if level > self.max_level {
            return;
        }
        let t = self.start.elapsed().as_secs_f64();
        let pad = "  ".repeat(indent);
        // A single write_all keeps concurrent lines from interleaving.
        let line = format!("[fl {t:9.4}s {lvl:>5}] {pad}{text}\n", lvl = level.name());
        let mut err = std::io::stderr().lock();
        let _ = err.write_all(line.as_bytes());
    }

    fn depth_of(&self, delta: isize) -> usize {
        let id = std::thread::current().id();
        let mut depths = self.depth.lock().expect("logger depth map poisoned");
        let entry = depths.entry(id).or_insert(0);
        if delta >= 0 {
            let current = *entry;
            *entry += delta as usize;
            current
        } else {
            *entry = entry.saturating_sub((-delta) as usize);
            *entry
        }
    }
}

impl Sink for EnvLogger {
    fn on_event(&self, event: &Event<'_>) {
        match event {
            Event::SpanStart { name, fields, .. } => {
                let indent = self.depth_of(1);
                let ctx: Vec<String> = fields
                    .iter()
                    .map(|f| format!("{}={}", f.name, f.value))
                    .collect();
                let suffix = if ctx.is_empty() {
                    String::new()
                } else {
                    format!(" [{}]", ctx.join(" "))
                };
                self.emit(Level::Debug, indent, &format!("▶ {name}{suffix}"));
            }
            Event::SpanEnd { name, elapsed, .. } => {
                let indent = self.depth_of(-1);
                self.emit(
                    Level::Debug,
                    indent,
                    &format!("◀ {name} ({:.3} ms)", elapsed.as_secs_f64() * 1e3),
                );
            }
            Event::Counter { name, delta } => {
                let indent = self.depth_of(0);
                self.emit(Level::Trace, indent, &format!("{name} += {delta}"));
            }
            Event::Gauge { name, value } => {
                let indent = self.depth_of(0);
                self.emit(Level::Trace, indent, &format!("{name} = {value}"));
            }
            Event::Sample { name, value } => {
                let indent = self.depth_of(0);
                self.emit(Level::Trace, indent, &format!("{name} ~ {value}"));
            }
            Event::Message { level, text } => {
                let indent = self.depth_of(0);
                self.emit(*level, indent, text);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_env_requires_a_parseable_level() {
        // The test process may or may not carry FL_LOG; exercise the parse
        // path directly instead of mutating the environment (other tests
        // run in parallel in this process).
        assert!(Level::parse("debug").is_some());
        assert!(Level::parse("off").is_none());
        let logger = EnvLogger::new(Level::Error);
        // A below-threshold event writes nothing and must not panic.
        logger.on_event(&Event::Counter {
            name: "quiet",
            delta: 1,
        });
    }

    #[test]
    fn depth_tracks_span_nesting_per_thread() {
        let logger = EnvLogger::new(Level::Error); // silent: nothing emitted
        assert_eq!(logger.depth_of(1), 0);
        assert_eq!(logger.depth_of(1), 1);
        assert_eq!(logger.depth_of(0), 2);
        assert_eq!(logger.depth_of(-1), 1);
        assert_eq!(logger.depth_of(-1), 0);
        // Underflow clamps instead of wrapping.
        assert_eq!(logger.depth_of(-1), 0);
    }
}

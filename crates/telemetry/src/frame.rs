//! Length-prefixed text framing for untrusted byte streams.
//!
//! The service layer (`fl-flpd`) speaks JSON over TCP and journals JSON
//! to disk; both need to turn a byte stream back into *whole* documents
//! while surviving truncation, oversized payloads, and garbage. A frame
//! is one line:
//!
//! ```text
//! <decimal byte length> <payload>\n
//! ```
//!
//! The explicit length makes torn writes detectable: a frame whose tail
//! was cut off (a crash mid-append, a dropped connection mid-response)
//! fails the length check instead of parsing as a shorter-but-valid
//! document. The reader enforces a caller-chosen size cap *before*
//! allocating, so an adversarial `999999999 …` header cannot balloon
//! memory.
//!
//! Framing is payload-agnostic (any `str` without embedded `\n` in the
//! header position works), but every workspace user frames one-line JSON
//! from [`crate::json`].

use std::io::{self, BufRead, Write};

/// Why a frame could not be read.
#[derive(Debug)]
#[non_exhaustive]
pub enum FrameError {
    /// The underlying reader failed.
    Io(io::Error),
    /// The length header is missing, non-numeric, or not followed by a
    /// space.
    BadHeader(String),
    /// The declared length exceeds the caller's cap.
    TooLarge {
        /// Length the header declared.
        declared: usize,
        /// The cap the reader enforces.
        cap: usize,
    },
    /// The stream ended (or the line ended) before `declared` payload
    /// bytes arrived — a torn frame.
    Truncated {
        /// Length the header declared.
        declared: usize,
        /// Payload bytes actually present.
        got: usize,
    },
    /// The payload is not valid UTF-8.
    NotUtf8,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "i/o error reading frame: {e}"),
            FrameError::BadHeader(why) => write!(f, "bad frame header: {why}"),
            FrameError::TooLarge { declared, cap } => {
                write!(f, "frame of {declared} bytes exceeds cap {cap}")
            }
            FrameError::Truncated { declared, got } => {
                write!(f, "torn frame: declared {declared} bytes, got {got}")
            }
            FrameError::NotUtf8 => write!(f, "frame payload is not valid UTF-8"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl FrameError {
    /// Whether the error leaves the stream position unusable (anything
    /// but a clean I/O timeout): torn and malformed frames desynchronise
    /// the stream, so the connection (or journal scan) must stop.
    pub fn poisons_stream(&self) -> bool {
        !matches!(self, FrameError::Io(e) if e.kind() == io::ErrorKind::WouldBlock
            || e.kind() == io::ErrorKind::TimedOut)
    }
}

/// Writes one frame. The length header delimits the payload, so embedded
/// newlines are preserved; the trailing `\n` merely keeps journal files
/// greppable.
///
/// # Errors
///
/// Propagates writer errors.
pub fn write_frame(w: &mut impl Write, payload: &str) -> io::Result<()> {
    // One buffered write: header, payload, terminator. Callers that need
    // durability flush/fsync at their own commit points.
    let mut line = Vec::with_capacity(payload.len() + 16);
    line.extend_from_slice(payload.len().to_string().as_bytes());
    line.push(b' ');
    line.extend_from_slice(payload.as_bytes());
    line.push(b'\n');
    w.write_all(&line)
}

/// Reads one frame, returning `Ok(None)` at clean end-of-stream (EOF
/// exactly at a frame boundary).
///
/// # Errors
///
/// [`FrameError::TooLarge`] when the header declares more than `cap`
/// bytes, [`FrameError::Truncated`] when the stream ends mid-payload,
/// [`FrameError::BadHeader`] on garbage, [`FrameError::Io`] on reader
/// failure.
pub fn read_frame(r: &mut impl BufRead, cap: usize) -> Result<Option<String>, FrameError> {
    // Header: decimal digits then one space. Read byte-wise so we never
    // over-consume past this frame.
    let mut declared: usize = 0;
    let mut digits = 0usize;
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte) {
            Ok(0) => {
                if digits == 0 {
                    return Ok(None); // clean EOF between frames
                }
                return Err(FrameError::Truncated { declared, got: 0 });
            }
            Ok(_) => {}
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
        match byte[0] {
            b'0'..=b'9' => {
                digits += 1;
                if digits > 12 {
                    return Err(FrameError::BadHeader("length header too long".into()));
                }
                declared = declared
                    .checked_mul(10)
                    .and_then(|d| d.checked_add((byte[0] - b'0') as usize))
                    .ok_or_else(|| FrameError::BadHeader("length overflows".into()))?;
            }
            b' ' if digits > 0 => break,
            other => {
                return Err(FrameError::BadHeader(format!(
                    "unexpected byte {other:#04x} in length header"
                )))
            }
        }
    }
    if declared > cap {
        return Err(FrameError::TooLarge { declared, cap });
    }
    // Payload + mandatory trailing newline.
    let mut payload = vec![0u8; declared];
    let mut got = 0usize;
    while got < declared {
        match r.read(&mut payload[got..]) {
            Ok(0) => return Err(FrameError::Truncated { declared, got }),
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let mut nl = [0u8; 1];
    loop {
        match r.read(&mut nl) {
            Ok(0) => return Err(FrameError::Truncated { declared, got }),
            Ok(_) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    if nl[0] != b'\n' {
        return Err(FrameError::BadHeader(
            "frame not terminated by newline".into(),
        ));
    }
    String::from_utf8(payload)
        .map(Some)
        .map_err(|_| FrameError::NotUtf8)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(payloads: &[&str]) -> Vec<String> {
        let mut buf = Vec::new();
        for p in payloads {
            write_frame(&mut buf, p).unwrap();
        }
        let mut r = buf.as_slice();
        let mut out = Vec::new();
        while let Some(p) = read_frame(&mut r, 1 << 20).unwrap() {
            out.push(p);
        }
        out
    }

    #[test]
    fn frames_round_trip_in_order() {
        let payloads = ["{}", r#"{"op":"ping"}"#, "", "é and \\n escapes"];
        assert_eq!(round_trip(&payloads), payloads);
    }

    #[test]
    fn embedded_newlines_survive() {
        assert_eq!(round_trip(&["a\nb"]), vec!["a\nb"]);
    }

    #[test]
    fn torn_tail_is_truncated_not_parsed() {
        let mut buf = Vec::new();
        write_frame(&mut buf, r#"{"op":"bid","price":125}"#).unwrap();
        // Simulate a crash mid-append: cut the second frame short.
        let mut torn = buf.clone();
        write_frame(&mut torn, r#"{"op":"bid","price":999}"#).unwrap();
        torn.truncate(buf.len() + 10);
        let mut r = torn.as_slice();
        assert!(read_frame(&mut r, 1 << 20).unwrap().is_some());
        match read_frame(&mut r, 1 << 20) {
            Err(FrameError::Truncated { declared: 24, .. }) => {}
            other => panic!("expected truncation, got {other:?}"),
        }
    }

    #[test]
    fn oversized_declaration_is_rejected_before_allocation() {
        let mut r = "999999999999 x\n".as_bytes();
        match read_frame(&mut r, 1024) {
            Err(FrameError::TooLarge {
                declared: 999_999_999_999,
                cap: 1024,
            }) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn garbage_headers_are_rejected() {
        for bad in ["x 1\n", "12x oops\n", " 3 abc\n", "1234567890123 x\n"] {
            let mut r = bad.as_bytes();
            assert!(
                matches!(read_frame(&mut r, 1024), Err(FrameError::BadHeader(_))),
                "{bad:?}"
            );
        }
    }

    #[test]
    fn missing_terminator_is_flagged() {
        let mut r = "2 ab!".as_bytes();
        assert!(matches!(
            read_frame(&mut r, 1024),
            Err(FrameError::BadHeader(_))
        ));
    }

    #[test]
    fn invalid_utf8_payload_is_flagged() {
        let mut buf = b"2 ".to_vec();
        buf.extend_from_slice(&[0xff, 0xfe]);
        buf.push(b'\n');
        let mut r = buf.as_slice();
        assert!(matches!(read_frame(&mut r, 1024), Err(FrameError::NotUtf8)));
    }

    #[test]
    fn empty_stream_is_clean_eof() {
        let mut r: &[u8] = &[];
        assert!(read_frame(&mut r, 1024).unwrap().is_none());
    }

    #[test]
    fn poisoning_classification() {
        assert!(FrameError::BadHeader("x".into()).poisons_stream());
        assert!(FrameError::Truncated {
            declared: 5,
            got: 1
        }
        .poisons_stream());
        let timeout = FrameError::Io(io::Error::new(io::ErrorKind::WouldBlock, "t"));
        assert!(!timeout.poisons_stream());
    }
}

//! Capture-and-replay: deterministic telemetry for parallel orchestration.
//!
//! Sinks are either global (every thread) or thread-local, so a worker
//! thread that executes one slice of a parallel computation would normally
//! interleave its events with every other worker's — destroying the
//! deterministic traces the [`Recorder`](crate::Recorder) and
//! [`JsonlSink`](crate::JsonlSink) promise. [`capture`] solves this by
//! diverting **all** of the current thread's events into an owned buffer
//! (nothing reaches any sink, global or local), and [`replay`] re-emits a
//! buffer on the coordinating thread:
//!
//! * in buffer order, so interleaving is whatever the coordinator chooses
//!   (typically ascending task order → run-to-run deterministic);
//! * with fresh span ids, so replayed spans never collide with live ones;
//! * re-parented: a span that was a root inside the capture becomes a child
//!   of the span currently open on the replaying thread.
//!
//! Span `elapsed` durations are preserved from the worker's wall clock, so
//! per-phase profiles stay honest; only the *ordering* is normalised.
//!
//! ```
//! use fl_telemetry::{capture, install_local, replay, span, Recorder};
//! use std::sync::Arc;
//!
//! let recorder = Arc::new(Recorder::default());
//! let guard = install_local(recorder.clone());
//! let _outer = span!("outer");
//! // Typically `f` runs on a worker thread; same-thread works too.
//! let (value, events) = capture(|| {
//!     let _s = span!("task", index = 3u32);
//!     21 * 2
//! });
//! assert_eq!(value, 42);
//! replay(&events);
//! drop(_outer);
//! drop(guard);
//! let snap = recorder.snapshot();
//! assert_eq!(snap.roots[0].name, "outer");
//! assert_eq!(snap.roots[0].children[0].name, "task");
//! ```

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::time::Duration;

use crate::dispatch;
use crate::event::{Event, Field, Level};

thread_local! {
    /// Buffer receiving this thread's events while a capture is active.
    static BUFFER: RefCell<Option<Vec<CapturedEvent>>> = const { RefCell::new(None) };
    /// Fast mirror of `BUFFER.is_some()` for the `enabled()` hot path.
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
}

/// One telemetry event captured into an owned buffer by [`capture`].
///
/// The owned mirror of [`Event`]: span ids/parents are the capturing
/// thread's and are remapped by [`replay`].
#[derive(Debug, Clone, PartialEq)]
pub enum CapturedEvent {
    /// A span was opened inside the capture.
    SpanStart {
        /// Span id as allocated on the capturing thread.
        id: u64,
        /// Parent span id within the capture, `None` for capture roots.
        parent: Option<u64>,
        /// Span name.
        name: &'static str,
        /// Span context fields.
        fields: Vec<Field>,
    },
    /// A span closed inside the capture.
    SpanEnd {
        /// Span id as allocated on the capturing thread.
        id: u64,
        /// Parent span id within the capture, `None` for capture roots.
        parent: Option<u64>,
        /// Span name.
        name: &'static str,
        /// Span context fields.
        fields: Vec<Field>,
        /// Wall-clock duration measured on the capturing thread.
        elapsed: Duration,
    },
    /// A counter increment.
    Counter {
        /// Counter name.
        name: &'static str,
        /// Amount added.
        delta: u64,
    },
    /// A gauge update.
    Gauge {
        /// Gauge name.
        name: &'static str,
        /// New value.
        value: f64,
    },
    /// One histogram observation.
    Sample {
        /// Histogram name.
        name: &'static str,
        /// Observed value.
        value: f64,
    },
    /// A levelled log message.
    Message {
        /// Severity.
        level: Level,
        /// Rendered message text.
        text: String,
    },
}

impl CapturedEvent {
    fn from_event(event: &Event<'_>) -> CapturedEvent {
        match *event {
            Event::SpanStart {
                id,
                parent,
                name,
                fields,
            } => CapturedEvent::SpanStart {
                id,
                parent,
                name,
                fields: fields.to_vec(),
            },
            Event::SpanEnd {
                id,
                parent,
                name,
                fields,
                elapsed,
            } => CapturedEvent::SpanEnd {
                id,
                parent,
                name,
                fields: fields.to_vec(),
                elapsed,
            },
            Event::Counter { name, delta } => CapturedEvent::Counter { name, delta },
            Event::Gauge { name, value } => CapturedEvent::Gauge { name, value },
            Event::Sample { name, value } => CapturedEvent::Sample { name, value },
            Event::Message { level, text } => CapturedEvent::Message {
                level,
                text: text.to_string(),
            },
        }
    }
}

/// Whether a capture is active on this thread ([`crate::enabled`] gates on
/// this so instrumentation fires even when no sink is installed anywhere).
pub(crate) fn active() -> bool {
    ACTIVE.with(Cell::get)
}

/// Diverts `event` into the active capture buffer. Returns `false` when no
/// capture is active (the caller should dispatch to sinks as usual).
pub(crate) fn try_capture(event: &Event<'_>) -> bool {
    if !active() {
        return false;
    }
    BUFFER.with(|b| {
        if let Some(buf) = b.borrow_mut().as_mut() {
            buf.push(CapturedEvent::from_event(event));
        }
    });
    true
}

/// Restores the previous capture state on drop, so a panic inside the
/// captured closure cannot leave the thread diverting events forever.
struct CaptureScope {
    prev_buffer: Option<Vec<CapturedEvent>>,
    prev_active: bool,
}

impl Drop for CaptureScope {
    fn drop(&mut self) {
        let prev = self.prev_buffer.take();
        ACTIVE.with(|a| a.set(self.prev_active));
        BUFFER.with(|b| *b.borrow_mut() = prev);
    }
}

/// Runs `f` with every telemetry event this thread emits diverted into an
/// owned buffer, and returns `f`'s result together with the buffer.
///
/// During the capture **no** sink — global or thread-local — observes the
/// thread's events, and instrumentation behaves as enabled even when no
/// sink is installed anywhere. Captures nest: an inner [`capture`] shadows
/// the outer one, and a [`replay`] performed while a capture is active is
/// captured rather than dispatched.
///
/// Designed for fan-out/fan-in parallelism: workers wrap each task in
/// `capture`, the coordinator [`replay`]s the buffers in task order, and
/// the resulting trace is identical to a sequential run's.
pub fn capture<R>(f: impl FnOnce() -> R) -> (R, Vec<CapturedEvent>) {
    let scope = CaptureScope {
        prev_buffer: BUFFER.with(|b| b.borrow_mut().replace(Vec::new())),
        prev_active: ACTIVE.with(|a| a.replace(true)),
    };
    let result = f();
    let events = BUFFER.with(|b| b.borrow_mut().take()).unwrap_or_default();
    drop(scope);
    (result, events)
}

/// Re-emits a captured buffer on the current thread, as if the events had
/// happened here, in order, just now.
///
/// Every captured span receives a fresh process-unique id; parent links
/// within the buffer are remapped accordingly, and spans that were roots
/// inside the capture are attached to the span currently open on this
/// thread (if any). Counters, gauges, samples and messages pass through
/// unchanged. No-op when no sink is installed and no capture is active.
pub fn replay(events: &[CapturedEvent]) {
    if events.is_empty() || !dispatch::enabled() {
        return;
    }
    let base = dispatch::current_parent();
    let mut ids: HashMap<u64, u64> = HashMap::new();
    for event in events {
        match event {
            CapturedEvent::SpanStart {
                id,
                parent,
                name,
                fields,
            } => {
                let new_id = dispatch::fresh_id();
                ids.insert(*id, new_id);
                let parent = parent.and_then(|p| ids.get(&p).copied()).or(base);
                dispatch::emit(&Event::SpanStart {
                    id: new_id,
                    parent,
                    name,
                    fields,
                });
            }
            CapturedEvent::SpanEnd {
                id,
                parent,
                name,
                fields,
                elapsed,
            } => {
                let new_id = ids.get(id).copied().unwrap_or_else(dispatch::fresh_id);
                let parent = parent.and_then(|p| ids.get(&p).copied()).or(base);
                dispatch::emit(&Event::SpanEnd {
                    id: new_id,
                    parent,
                    name,
                    fields,
                    elapsed: *elapsed,
                });
            }
            CapturedEvent::Counter { name, delta } => dispatch::emit(&Event::Counter {
                name,
                delta: *delta,
            }),
            CapturedEvent::Gauge { name, value } => dispatch::emit(&Event::Gauge {
                name,
                value: *value,
            }),
            CapturedEvent::Sample { name, value } => dispatch::emit(&Event::Sample {
                name,
                value: *value,
            }),
            CapturedEvent::Message { level, text } => dispatch::emit(&Event::Message {
                level: *level,
                text,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::{counter, install_local, message, span, span_with};
    use crate::recorder::Recorder;
    use std::sync::Arc;

    #[test]
    fn capture_diverts_events_away_from_local_sinks() {
        let recorder = Arc::new(Recorder::default());
        let guard = install_local(recorder.clone());
        let ((), events) = capture(|| {
            let _s = span("hidden");
            counter("hidden.count", 3);
        });
        counter("visible.count", 1);
        drop(guard);
        let snap = recorder.snapshot();
        assert!(snap.roots.is_empty(), "captured span must not reach sinks");
        assert!(!snap.counters.contains_key("hidden.count"));
        assert_eq!(snap.counters["visible.count"], 1);
        assert_eq!(events.len(), 3, "span start+end and the counter");
    }

    #[test]
    fn capture_enables_instrumentation_without_sinks() {
        // This thread has no local sink; rely on the capture alone. (Other
        // tests may have global sinks installed, so only check the buffer.)
        let ((), events) = capture(|| {
            counter("orphan", 2);
        });
        assert!(events.contains(&CapturedEvent::Counter {
            name: "orphan",
            delta: 2
        }));
    }

    #[test]
    fn replay_reparents_and_remaps_ids() {
        let recorder = Arc::new(Recorder::default());
        let guard = install_local(recorder.clone());
        let outer = span("outer");
        let ((), events) = capture(|| {
            let _root = span_with("task", vec![Field::new("i", 7u32)]);
            let _child = span("step");
        });
        replay(&events);
        drop(outer);
        drop(guard);
        let snap = recorder.snapshot();
        assert_eq!(snap.roots.len(), 1);
        let outer_node = &snap.roots[0];
        assert_eq!(outer_node.name, "outer");
        let task = &outer_node.children[0];
        assert_eq!(task.name, "task");
        assert_eq!(task.fields, vec![("i".into(), "7".into())]);
        assert_eq!(task.children[0].name, "step");
    }

    #[test]
    fn replay_issues_fresh_span_ids() {
        let ((), events) = capture(|| {
            let _s = span("task");
        });
        // Replaying inside a capture is itself captured, exposing the ids.
        let ((), replayed) = capture(|| replay(&events));
        let id_of = |buf: &[CapturedEvent]| match buf[0] {
            CapturedEvent::SpanStart { id, .. } => id,
            ref other => panic!("expected SpanStart, got {other:?}"),
        };
        assert_ne!(id_of(&events), id_of(&replayed));
    }

    #[test]
    fn replay_from_worker_thread_matches_sequential_trace() {
        let run = |parallel: bool| {
            let recorder = Arc::new(Recorder::default());
            let guard = install_local(recorder.clone());
            let _root = span("sweep");
            if parallel {
                let buffers: Vec<Vec<CapturedEvent>> = std::thread::scope(|s| {
                    let handles: Vec<_> = (0..3u32)
                        .map(|i| {
                            s.spawn(move || {
                                capture(|| {
                                    let _t = span_with("item", vec![Field::new("i", i)]);
                                    counter("work", 1);
                                    message(Level::Debug, &format!("item {i}"));
                                })
                                .1
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().unwrap()).collect()
                });
                for buffer in &buffers {
                    replay(buffer);
                }
            } else {
                for i in 0..3u32 {
                    let _t = span_with("item", vec![Field::new("i", i)]);
                    counter("work", 1);
                    message(Level::Debug, &format!("item {i}"));
                }
            }
            drop(_root);
            drop(guard);
            recorder.snapshot()
        };
        let sequential = run(false);
        let parallel = run(true);
        assert_eq!(sequential.tree_string(), parallel.tree_string());
        assert_eq!(sequential.counters, parallel.counters);
        assert_eq!(sequential.messages, parallel.messages);
    }

    #[test]
    fn nested_capture_shadows_and_restores_the_outer_one() {
        let ((), outer_events) = capture(|| {
            counter("outer.before", 1);
            let ((), inner_events) = capture(|| counter("inner", 1));
            assert_eq!(inner_events.len(), 1);
            // Replaying while the outer capture is active is captured too.
            replay(&inner_events);
            counter("outer.after", 1);
        });
        let names: Vec<&str> = outer_events
            .iter()
            .map(|e| match e {
                CapturedEvent::Counter { name, .. } => *name,
                other => panic!("unexpected event {other:?}"),
            })
            .collect();
        assert_eq!(names, vec!["outer.before", "inner", "outer.after"]);
        assert!(!active(), "capture state must be fully restored");
    }
}

//! Flight recorder: fixed-capacity ring buffers of recent service events.
//!
//! When a daemon sheds load or crashes, the interesting evidence is the
//! last few seconds of activity — exactly what a bounded, always-on,
//! overwrite-oldest recorder preserves. The design mirrors
//! [`LiveMetrics`](crate::LiveMetrics):
//!
//! * Each recording thread owns a **ring** of [`FlightEvent`]s; recording
//!   locks only that ring, so the hot path never contends and never
//!   allocates beyond the event strings themselves.
//! * Every event takes a **process-global sequence number** at record
//!   time, so draining all rings and sorting by `seq` yields one causally
//!   ordered dump: if event A happened-before event B on any thread (or
//!   via a message between threads recorded after receipt), A's `seq` is
//!   smaller. Per-trace order is a projection of that total order.
//! * Rings **overwrite their oldest entry** once full — recording can
//!   never fail, block on capacity, or panic, no matter how long the
//!   service runs or where a wrap lands relative to an open span.
//!
//! Events are wall-clock stamped: `at_ms` is milliseconds since the
//! recorder's construction, and the dump header carries the construction
//! time as Unix milliseconds, so offline readers can reconstruct absolute
//! times without every event paying for a `SystemTime` call.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use crate::json::{self, Json};

/// Default per-thread ring capacity (events retained per thread).
pub const DEFAULT_RING_CAP: usize = 1024;

/// Source of recorder ids for thread-local registration (never reused).
static NEXT_FLIGHT_ID: AtomicU64 = AtomicU64::new(1);

/// Process-global event sequence: the causal total order of the dump.
static NEXT_SEQ: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// This thread's ring handle per flight-recorder id.
    static MY_RINGS: RefCell<Vec<(u64, Weak<Ring>)>> = const { RefCell::new(Vec::new()) };
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightEvent {
    /// Process-global sequence number (total causal order).
    pub seq: u64,
    /// Milliseconds since the recorder was constructed.
    pub at_ms: f64,
    /// The trace id of the request this event belongs to (empty for
    /// events outside any request, e.g. recovery).
    pub trace: String,
    /// Short machine-readable kind, e.g. `req`, `resp`, `err`, `shed`.
    pub kind: String,
    /// Free-form detail.
    pub detail: String,
}

struct RingData {
    buf: Vec<FlightEvent>,
    /// Overwrite cursor once `buf` reaches capacity.
    next: usize,
}

struct Ring {
    cap: usize,
    data: Mutex<RingData>,
}

impl Ring {
    fn record(&self, event: FlightEvent) {
        let mut data = self.data.lock().unwrap_or_else(|e| e.into_inner());
        if data.buf.len() < self.cap {
            data.buf.push(event);
        } else {
            let next = data.next;
            data.buf[next] = event;
            data.next = (next + 1) % self.cap;
        }
    }
}

/// A bounded, always-on recorder of recent events (see the
/// [module docs](self)). Cheaply shareable via `Arc`; all methods take
/// `&self`.
pub struct FlightRecorder {
    id: u64,
    cap: usize,
    rings: Mutex<Vec<Arc<Ring>>>,
    epoch: Instant,
    base_unix_ms: u64,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::with_capacity(DEFAULT_RING_CAP)
    }
}

impl FlightRecorder {
    /// Creates a recorder with the [`DEFAULT_RING_CAP`] per-thread ring.
    pub fn new() -> FlightRecorder {
        FlightRecorder::default()
    }

    /// Creates a recorder retaining up to `cap` events per thread
    /// (`cap` is clamped to at least 1).
    pub fn with_capacity(cap: usize) -> FlightRecorder {
        FlightRecorder {
            id: NEXT_FLIGHT_ID.fetch_add(1, Ordering::Relaxed),
            cap: cap.max(1),
            rings: Mutex::new(Vec::new()),
            epoch: Instant::now(),
            base_unix_ms: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_millis() as u64)
                .unwrap_or(0),
        }
    }

    /// Records one event on the calling thread's ring (registering the
    /// ring on first use). Never blocks on other recording threads, never
    /// fails: a full ring overwrites its oldest entry.
    pub fn record(&self, trace: &str, kind: &str, detail: &str) {
        let event = FlightEvent {
            seq: NEXT_SEQ.fetch_add(1, Ordering::Relaxed),
            at_ms: self.epoch.elapsed().as_secs_f64() * 1e3,
            trace: trace.to_string(),
            kind: kind.to_string(),
            detail: detail.to_string(),
        };
        MY_RINGS.with(|cell| {
            let mut mine = cell.borrow_mut();
            if let Some((_, weak)) = mine.iter().find(|(id, _)| *id == self.id) {
                if let Some(ring) = weak.upgrade() {
                    ring.record(event);
                    return;
                }
            }
            mine.retain(|(_, weak)| weak.strong_count() != 0);
            let ring = Arc::new(Ring {
                cap: self.cap,
                data: Mutex::new(RingData {
                    buf: Vec::new(),
                    next: 0,
                }),
            });
            self.rings
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(ring.clone());
            mine.push((self.id, Arc::downgrade(&ring)));
            ring.record(event);
        });
    }

    /// Drains a copy of every ring into one dump sorted by sequence
    /// number — the global causal order (and therefore causally ordered
    /// within each trace id). Rings keep their contents; a dump is a
    /// read-only snapshot.
    pub fn dump(&self) -> Vec<FlightEvent> {
        let rings: Vec<Arc<Ring>> = self.rings.lock().unwrap_or_else(|e| e.into_inner()).clone();
        let mut events: Vec<FlightEvent> = Vec::new();
        for ring in rings {
            let data = ring.data.lock().unwrap_or_else(|e| e.into_inner());
            events.extend(data.buf.iter().cloned());
        }
        events.sort_by_key(|e| e.seq);
        events
    }

    /// Encodes [`dump`](Self::dump) as one JSON document:
    /// `{"base_unix_ms":…,"events":[{seq,at_ms,trace,kind,detail},…]}`.
    pub fn dump_json(&self) -> String {
        let events: Vec<String> = self
            .dump()
            .iter()
            .map(|e| {
                json::object(&[
                    ("seq".into(), e.seq.to_string()),
                    ("at_ms".into(), json::number(e.at_ms)),
                    ("trace".into(), json::string(&e.trace)),
                    ("kind".into(), json::string(&e.kind)),
                    ("detail".into(), json::string(&e.detail)),
                ])
            })
            .collect();
        json::object(&[
            ("base_unix_ms".into(), self.base_unix_ms.to_string()),
            ("events".into(), json::array(&events)),
        ])
    }
}

/// Parses a [`FlightRecorder::dump_json`] document (or the `flight` wire
/// response embedding one) back into events. The inverse used by tests,
/// `flpd-top`, and the chaos driver's dump validation.
///
/// # Errors
///
/// Returns a description of the first malformed byte or missing member.
pub fn events_from_json(doc: &Json) -> Result<Vec<FlightEvent>, String> {
    let events = doc
        .get("events")
        .and_then(Json::as_array)
        .ok_or("missing events array")?;
    events
        .iter()
        .enumerate()
        .map(|(i, e)| {
            let field = |k: &str| e.get(k).ok_or(format!("event {i}: missing {k}"));
            Ok(FlightEvent {
                seq: field("seq")?
                    .as_u64()
                    .ok_or(format!("event {i}: bad seq"))?,
                at_ms: field("at_ms")?
                    .as_f64()
                    .ok_or(format!("event {i}: bad at_ms"))?,
                trace: field("trace")?
                    .as_str()
                    .ok_or(format!("event {i}: bad trace"))?
                    .to_string(),
                kind: field("kind")?
                    .as_str()
                    .ok_or(format!("event {i}: bad kind"))?
                    .to_string(),
                detail: field("detail")?
                    .as_str()
                    .ok_or(format!("event {i}: bad detail"))?
                    .to_string(),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn dump_is_causally_ordered_across_threads() {
        let rec = Arc::new(FlightRecorder::new());
        rec.record("t1", "req", "open");
        let r2 = rec.clone();
        thread::spawn(move || r2.record("t1", "resp", "ok"))
            .join()
            .unwrap();
        rec.record("t2", "req", "close");
        let dump = rec.dump();
        let kinds: Vec<&str> = dump.iter().map(|e| e.kind.as_str()).collect();
        assert_eq!(kinds, vec!["req", "resp", "req"]);
        assert!(dump.windows(2).all(|w| w[0].seq < w[1].seq));
        // Per-trace projection preserves order.
        let t1: Vec<&str> = dump
            .iter()
            .filter(|e| e.trace == "t1")
            .map(|e| e.kind.as_str())
            .collect();
        assert_eq!(t1, vec!["req", "resp"]);
    }

    #[test]
    fn ring_wraps_by_overwriting_oldest() {
        let rec = FlightRecorder::with_capacity(4);
        for i in 0..10 {
            rec.record("t", "tick", &i.to_string());
        }
        let dump = rec.dump();
        assert_eq!(dump.len(), 4);
        let details: Vec<&str> = dump.iter().map(|e| e.detail.as_str()).collect();
        assert_eq!(details, vec!["6", "7", "8", "9"]);
    }

    #[test]
    fn wrap_mid_burst_keeps_dump_sorted() {
        let rec = Arc::new(FlightRecorder::with_capacity(8));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let rec = rec.clone();
                thread::spawn(move || {
                    for i in 0..50 {
                        rec.record(&format!("t{t}"), "spin", &i.to_string());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let dump = rec.dump();
        assert_eq!(dump.len(), 32); // 4 rings × capacity 8
        assert!(dump.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn dead_thread_rings_survive() {
        let rec = Arc::new(FlightRecorder::new());
        let r2 = rec.clone();
        thread::spawn(move || r2.record("t", "req", "from the beyond"))
            .join()
            .unwrap();
        assert_eq!(rec.dump().len(), 1);
    }

    #[test]
    fn json_round_trips() {
        let rec = FlightRecorder::new();
        rec.record("trace-1", "req", "open k=5");
        rec.record("", "recover", "replayed 3 \"records\"\n");
        let text = rec.dump_json();
        json::validate(&text).unwrap();
        let doc = json::parse(&text).unwrap();
        assert!(doc.get("base_unix_ms").unwrap().as_u64().is_some());
        let events = events_from_json(&doc).unwrap();
        assert_eq!(events, rec.dump());
    }

    #[test]
    fn malformed_dumps_are_rejected() {
        for bad in [
            r#"{"base_unix_ms":1}"#,
            r#"{"events":[{"seq":1}]}"#,
            r#"{"events":[{"seq":"x","at_ms":0,"trace":"","kind":"","detail":""}]}"#,
        ] {
            let doc = json::parse(bad).unwrap();
            assert!(events_from_json(&doc).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn two_recorders_on_one_thread_do_not_cross_talk() {
        let a = FlightRecorder::new();
        let b = FlightRecorder::new();
        a.record("t", "a", "");
        b.record("t", "b", "");
        assert_eq!(a.dump().len(), 1);
        assert_eq!(a.dump()[0].kind, "a");
        assert_eq!(b.dump()[0].kind, "b");
    }
}

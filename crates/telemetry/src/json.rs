//! Minimal JSON encoding (and a validating parser for tests/CI checks).
//!
//! The workspace has no registry access, so instead of `serde_json` the
//! exporters build JSON through these helpers. The encoder is
//! intentionally small: strings, finite numbers (non-finite floats encode
//! as `null`), booleans, and the object/array glue the sinks need. The
//! [`parse`] function is the matching reader: it produces a [`Json`] value
//! tree (object member order preserved) so the bench suite can load
//! records from `BENCH_history.jsonl` back without a JSON library.

use std::fmt::Write as _;

/// Maximum container nesting depth accepted by [`parse`] and [`validate`].
///
/// The readers are recursive, so without a cap an adversarial document of
/// a few hundred kilobytes of `[` would overflow the stack — an abort, not
/// a catchable panic. 96 levels is far beyond anything the workspace
/// emits (bench records nest 3 deep) while keeping worst-case stack use
/// trivially small.
pub const MAX_DEPTH: usize = 96;

/// Encodes a string as a JSON string literal (quoted, escaped).
pub fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Encodes a float: finite values in shortest round-trip form, non-finite
/// as `null` (JSON has no Inf/NaN).
pub fn number(x: f64) -> String {
    if x.is_finite() {
        let mut s = format!("{x}");
        // `{}` on an integral f64 prints no decimal point; keep it — JSON
        // numbers do not distinguish. But `1e300` style stays as-is.
        if s == "-0" {
            s = "0".into();
        }
        s
    } else {
        "null".into()
    }
}

/// Encodes a [`crate::Value`] as a JSON value.
pub fn value(v: &crate::Value) -> String {
    match v {
        crate::Value::Bool(b) => b.to_string(),
        crate::Value::Int(i) => i.to_string(),
        crate::Value::UInt(u) => u.to_string(),
        crate::Value::Float(x) => number(*x),
        crate::Value::Str(s) => string(s),
    }
}

/// Joins pre-encoded `"key": value` members into an object literal.
pub fn object(members: &[(String, String)]) -> String {
    let body: Vec<String> = members
        .iter()
        .map(|(k, v)| format!("{}:{v}", string(k)))
        .collect();
    format!("{{{}}}", body.join(","))
}

/// Joins pre-encoded values into an array literal.
pub fn array(values: &[String]) -> String {
    format!("[{}]", values.join(","))
}

/// Validates that `text` is one well-formed JSON value (with optional
/// surrounding whitespace). Used by tests and the CI smoke check to assert
/// exporter output parses without shipping a JSON library.
pub fn validate(text: &str) -> Result<(), String> {
    let bytes = text.as_bytes();
    let mut pos = skip_ws(bytes, 0);
    pos = parse_value(bytes, pos, MAX_DEPTH)?;
    pos = skip_ws(bytes, pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

/// A parsed JSON value.
///
/// Object members keep their source order (our exporters emit sorted keys,
/// so re-encoding a parsed document reproduces the original bytes — the
/// property the bench suite's schema round-trip test pins).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also what non-finite numbers encode to).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`; integers up to 2^53 are exact).
    Num(f64),
    /// A string with escapes decoded.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, member order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up an object member by key (`None` for non-objects/missing).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, with `null` read as NaN (the encoder maps
    /// non-finite floats to `null`, so this inverts [`number`]).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            Json::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// The value as an unsigned integer, when it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 2f64.powi(53) => Some(*x as u64),
            _ => None,
        }
    }

    /// The string payload of a `Str` value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload of a `Bool` value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements of an `Arr` value.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The members of an `Obj` value, in source order.
    pub fn members(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// Parses one JSON document into a [`Json`] value.
///
/// # Errors
///
/// Returns a human-readable description of the first syntax error.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let pos = skip_ws(bytes, 0);
    let (value, pos) = read_value(bytes, pos, MAX_DEPTH)?;
    let pos = skip_ws(bytes, pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn read_value(b: &[u8], pos: usize, depth: usize) -> Result<(Json, usize), String> {
    match b.get(pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{' | b'[') if depth == 0 => {
            Err(format!("nesting deeper than {MAX_DEPTH} at byte {pos}"))
        }
        Some(b'{') => read_object(b, pos + 1, depth - 1),
        Some(b'[') => read_array(b, pos + 1, depth - 1),
        Some(b'"') => {
            let (s, p) = read_string(b, pos + 1)?;
            Ok((Json::Str(s), p))
        }
        Some(b't') => Ok((Json::Bool(true), parse_literal(b, pos, "true")?)),
        Some(b'f') => Ok((Json::Bool(false), parse_literal(b, pos, "false")?)),
        Some(b'n') => Ok((Json::Null, parse_literal(b, pos, "null")?)),
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let end = parse_number(b, pos)?;
            let text = std::str::from_utf8(&b[pos..end]).map_err(|_| "non-utf8 number")?;
            let x: f64 = text
                .parse()
                .map_err(|e| format!("unparseable number {text:?}: {e}"))?;
            Ok((Json::Num(x), end))
        }
        Some(c) => Err(format!("unexpected byte {c:#x} at {pos}")),
    }
}

fn read_string(b: &[u8], mut pos: usize) -> Result<(String, usize), String> {
    let mut out = String::new();
    while let Some(&c) = b.get(pos) {
        match c {
            b'"' => return Ok((out, pos + 1)),
            b'\\' => {
                match b.get(pos + 1) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b.get(pos + 2..pos + 6).ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "non-utf8 \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape digits")?;
                        // Surrogates are not emitted by our encoder; map
                        // them to U+FFFD rather than erroring.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        pos += 6;
                        continue;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                pos += 2;
            }
            0x00..=0x1f => return Err(format!("raw control byte {c:#x} in string at {pos}")),
            _ => {
                // Consume one UTF-8 scalar (input is a &str, so slicing on
                // char boundaries is safe via the char iterator).
                let rest = std::str::from_utf8(&b[pos..]).map_err(|_| "non-utf8 string")?;
                let ch = rest.chars().next().ok_or("unterminated string")?;
                out.push(ch);
                pos += ch.len_utf8();
            }
        }
    }
    Err("unterminated string".into())
}

fn read_object(b: &[u8], mut pos: usize, depth: usize) -> Result<(Json, usize), String> {
    let mut members = Vec::new();
    pos = skip_ws(b, pos);
    if b.get(pos) == Some(&b'}') {
        return Ok((Json::Obj(members), pos + 1));
    }
    loop {
        pos = skip_ws(b, pos);
        if b.get(pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}"));
        }
        let (key, p) = read_string(b, pos + 1)?;
        pos = skip_ws(b, p);
        if b.get(pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        pos = skip_ws(b, pos + 1);
        let (value, p) = read_value(b, pos, depth)?;
        members.push((key, value));
        pos = skip_ws(b, p);
        match b.get(pos) {
            Some(b',') => pos += 1,
            Some(b'}') => return Ok((Json::Obj(members), pos + 1)),
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn read_array(b: &[u8], mut pos: usize, depth: usize) -> Result<(Json, usize), String> {
    let mut items = Vec::new();
    pos = skip_ws(b, pos);
    if b.get(pos) == Some(&b']') {
        return Ok((Json::Arr(items), pos + 1));
    }
    loop {
        pos = skip_ws(b, pos);
        let (value, p) = read_value(b, pos, depth)?;
        items.push(value);
        pos = skip_ws(b, p);
        match b.get(pos) {
            Some(b',') => pos += 1,
            Some(b']') => return Ok((Json::Arr(items), pos + 1)),
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn skip_ws(b: &[u8], mut pos: usize) -> usize {
    while pos < b.len() && matches!(b[pos], b' ' | b'\t' | b'\n' | b'\r') {
        pos += 1;
    }
    pos
}

fn parse_value(b: &[u8], pos: usize, depth: usize) -> Result<usize, String> {
    match b.get(pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{' | b'[') if depth == 0 => {
            Err(format!("nesting deeper than {MAX_DEPTH} at byte {pos}"))
        }
        Some(b'{') => parse_object(b, pos + 1, depth - 1),
        Some(b'[') => parse_array(b, pos + 1, depth - 1),
        Some(b'"') => parse_string(b, pos + 1),
        Some(b't') => parse_literal(b, pos, "true"),
        Some(b'f') => parse_literal(b, pos, "false"),
        Some(b'n') => parse_literal(b, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte {c:#x} at {pos}")),
    }
}

fn parse_literal(b: &[u8], pos: usize, lit: &str) -> Result<usize, String> {
    if b[pos..].starts_with(lit.as_bytes()) {
        Ok(pos + lit.len())
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_string(b: &[u8], mut pos: usize) -> Result<usize, String> {
    while let Some(&c) = b.get(pos) {
        match c {
            b'"' => return Ok(pos + 1),
            b'\\' => {
                match b.get(pos + 1) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => pos += 2,
                    Some(b'u') => {
                        let hex = b.get(pos + 2..pos + 6).ok_or("truncated \\u escape")?;
                        if !hex.iter().all(u8::is_ascii_hexdigit) {
                            return Err(format!("bad \\u escape at byte {pos}"));
                        }
                        pos += 6;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                };
            }
            0x00..=0x1f => return Err(format!("raw control byte {c:#x} in string at {pos}")),
            _ => pos += 1,
        }
    }
    Err("unterminated string".into())
}

fn parse_number(b: &[u8], mut pos: usize) -> Result<usize, String> {
    let start = pos;
    if b.get(pos) == Some(&b'-') {
        pos += 1;
    }
    let digits = |b: &[u8], mut p: usize| -> usize {
        while p < b.len() && b[p].is_ascii_digit() {
            p += 1;
        }
        p
    };
    let after_int = digits(b, pos);
    if after_int == pos {
        return Err(format!("number without digits at byte {start}"));
    }
    pos = after_int;
    if b.get(pos) == Some(&b'.') {
        let after_frac = digits(b, pos + 1);
        if after_frac == pos + 1 {
            return Err(format!("decimal point without digits at byte {pos}"));
        }
        pos = after_frac;
    }
    if matches!(b.get(pos), Some(b'e' | b'E')) {
        let mut p = pos + 1;
        if matches!(b.get(p), Some(b'+' | b'-')) {
            p += 1;
        }
        let after_exp = digits(b, p);
        if after_exp == p {
            return Err(format!("exponent without digits at byte {pos}"));
        }
        pos = after_exp;
    }
    Ok(pos)
}

fn parse_object(b: &[u8], mut pos: usize, depth: usize) -> Result<usize, String> {
    pos = skip_ws(b, pos);
    if b.get(pos) == Some(&b'}') {
        return Ok(pos + 1);
    }
    loop {
        pos = skip_ws(b, pos);
        if b.get(pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}"));
        }
        pos = parse_string(b, pos + 1)?;
        pos = skip_ws(b, pos);
        if b.get(pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        pos = skip_ws(b, pos + 1);
        pos = parse_value(b, pos, depth)?;
        pos = skip_ws(b, pos);
        match b.get(pos) {
            Some(b',') => pos += 1,
            Some(b'}') => return Ok(pos + 1),
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn parse_array(b: &[u8], mut pos: usize, depth: usize) -> Result<usize, String> {
    pos = skip_ws(b, pos);
    if b.get(pos) == Some(&b']') {
        return Ok(pos + 1);
    }
    loop {
        pos = skip_ws(b, pos);
        pos = parse_value(b, pos, depth)?;
        pos = skip_ws(b, pos);
        match b.get(pos) {
            Some(b',') => pos += 1,
            Some(b']') => return Ok(pos + 1),
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_escape_specials() {
        assert_eq!(string("a\"b"), r#""a\"b""#);
        assert_eq!(string("line\nbreak"), r#""line\nbreak""#);
        assert_eq!(string("back\\slash"), r#""back\\slash""#);
        assert_eq!(string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn numbers_handle_non_finite() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(-0.0), "0");
        assert_eq!(number(f64::INFINITY), "null");
        assert_eq!(number(f64::NAN), "null");
    }

    #[test]
    fn object_and_array_compose() {
        let obj = object(&[
            ("a".into(), "1".into()),
            ("b".into(), array(&["true".into(), string("x")])),
        ]);
        assert_eq!(obj, r#"{"a":1,"b":[true,"x"]}"#);
        validate(&obj).unwrap();
    }

    #[test]
    fn validator_accepts_well_formed_documents() {
        for ok in [
            "{}",
            "[]",
            "null",
            "-1.5e-3",
            r#"{"k":[1,2,{"n":null}],"s":"é\n"}"#,
            "  [1, 2]  ",
        ] {
            validate(ok).unwrap_or_else(|e| panic!("{ok}: {e}"));
        }
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "01a",
            "\"unterminated",
            "{} trailing",
            "1.",
            "1e",
            "nul",
        ] {
            assert!(validate(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn parse_reads_back_what_the_encoder_writes() {
        let doc = object(&[
            ("name".into(), string("sweep")),
            ("count".into(), "3".into()),
            ("ratio".into(), number(1.25)),
            ("nan".into(), number(f64::NAN)),
            ("ok".into(), "true".into()),
            ("xs".into(), array(&["1".into(), "2.5".into()])),
        ]);
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("sweep"));
        assert_eq!(v.get("count").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("ratio").unwrap().as_f64(), Some(1.25));
        assert!(v.get("nan").unwrap().as_f64().unwrap().is_nan());
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        let xs = v.get("xs").unwrap().as_array().unwrap();
        assert_eq!(xs.len(), 2);
        assert_eq!(xs[1].as_f64(), Some(2.5));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn parse_preserves_member_order() {
        let v = parse(r#"{"z":1,"a":2,"m":3}"#).unwrap();
        let keys: Vec<&str> = v
            .members()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, vec!["z", "a", "m"]);
    }

    #[test]
    fn parse_decodes_escapes_and_unicode() {
        let v = parse(r#""a\n\t\"\\ Aé""#).unwrap();
        assert_eq!(v.as_str(), Some("a\n\t\"\\ Aé"));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "1e", "{} x", "\"oops"] {
            assert!(parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn parse_as_u64_rejects_fractions_and_negatives() {
        assert_eq!(parse("3.5").unwrap().as_u64(), None);
        assert_eq!(parse("-2").unwrap().as_u64(), None);
        assert_eq!(parse("0").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn value_encoding_matches_variant() {
        assert_eq!(value(&crate::Value::Bool(true)), "true");
        assert_eq!(value(&crate::Value::Int(-3)), "-3");
        assert_eq!(value(&crate::Value::UInt(9)), "9");
        assert_eq!(value(&crate::Value::Float(0.25)), "0.25");
        assert_eq!(value(&crate::Value::Str("s".into())), "\"s\"");
    }
}

//! Sharded live metrics: contention-free recording for long-lived services.
//!
//! The [`Recorder`](crate::Recorder) sink is built for deterministic
//! after-the-fact profiling — every event funnels through one thread's
//! dispatch path, which is exactly wrong for a daemon where dozens of
//! connection threads record concurrently for hours. [`LiveMetrics`] is the
//! service-side counterpart:
//!
//! * Every recording thread lazily registers **its own shard** (a
//!   `Mutex<ShardData>` nothing else locks on the hot path), so recording
//!   is contention-free by construction — the only cross-thread locking is
//!   a one-time registry push per `(thread, aggregator)` pair and the
//!   on-demand [`merge`](LiveMetrics::merge).
//! * Counters are monotone sums, gauges are last-write-wins (ordered by a
//!   process-global stamp so "last" is well defined across shards), and
//!   histograms keep a **bounded window** of recent samples (plus a
//!   lifetime count) so a daemon's memory never grows with uptime.
//! * [`merge`](LiveMetrics::merge) concatenates the shard windows and
//!   summarises with the same nearest-rank quantile machinery
//!   ([`HistSummary::of`]) the deterministic recorder uses, so p50/p90/p99
//!   mean the same thing in `stats` output as in bench records.
//!
//! Shards are owned by the aggregator (the thread-local handle is a
//! [`Weak`]), so metrics recorded by a thread that has since exited are
//! still visible in every later merge.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};

use crate::json;
use crate::HistSummary;

/// Samples retained per histogram *per shard*. Old samples are overwritten
/// ring-style; quantiles in a merged snapshot therefore describe the most
/// recent ≈`WINDOW_CAP × shards` observations, while `n` keeps the exact
/// lifetime count.
pub const WINDOW_CAP: usize = 4096;

/// Source of aggregator ids (thread-local registration keys) — never
/// reused within a process, so a dropped aggregator's stale thread-local
/// entries can never alias a new one.
static NEXT_LIVE_ID: AtomicU64 = AtomicU64::new(1);

/// Process-global gauge write stamp: the merge picks the shard value with
/// the highest stamp, making "last write wins" coherent across threads.
static GAUGE_STAMP: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// This thread's shard handle per live aggregator id.
    static MY_SHARDS: RefCell<Vec<(u64, Weak<Shard>)>> = const { RefCell::new(Vec::new()) };
}

/// One histogram inside a shard: a bounded ring of recent samples plus the
/// exact lifetime observation count.
#[derive(Default)]
struct HistWindow {
    total: u64,
    window: Vec<f64>,
    /// Overwrite cursor once `window` reaches [`WINDOW_CAP`].
    next: usize,
}

impl HistWindow {
    fn push(&mut self, value: f64) {
        self.total += 1;
        if self.window.len() < WINDOW_CAP {
            self.window.push(value);
        } else {
            self.window[self.next] = value;
            self.next = (self.next + 1) % WINDOW_CAP;
        }
    }
}

/// The per-thread slice of the aggregate. Only its owning thread records
/// into it; merges briefly lock it to copy the data out.
#[derive(Default)]
struct ShardData {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, (u64, f64)>,
    hists: BTreeMap<String, HistWindow>,
}

#[derive(Default)]
struct Shard {
    data: Mutex<ShardData>,
}

impl Shard {
    /// Locks the shard, riding through poisoning: metrics must keep
    /// working even if some recording thread panicked mid-update.
    fn lock(&self) -> std::sync::MutexGuard<'_, ShardData> {
        self.data.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A sharded counters/gauges/histograms aggregator for concurrent
/// recording (see the module docs above).
///
/// Cheaply shareable via `Arc`; all recording methods take `&self`.
pub struct LiveMetrics {
    id: u64,
    shards: Mutex<Vec<Arc<Shard>>>,
}

impl Default for LiveMetrics {
    fn default() -> Self {
        LiveMetrics {
            id: NEXT_LIVE_ID.fetch_add(1, Ordering::Relaxed),
            shards: Mutex::new(Vec::new()),
        }
    }
}

impl LiveMetrics {
    /// Creates an empty aggregator.
    pub fn new() -> LiveMetrics {
        LiveMetrics::default()
    }

    /// Runs `f` on the calling thread's shard, registering one on first
    /// use. The fast path is a thread-local scan (a handful of entries)
    /// plus one uncontended mutex lock.
    fn with_shard<R>(&self, f: impl FnOnce(&mut ShardData) -> R) -> R {
        MY_SHARDS.with(|cell| {
            let mut mine = cell.borrow_mut();
            if let Some((_, weak)) = mine.iter().find(|(id, _)| *id == self.id) {
                if let Some(shard) = weak.upgrade() {
                    return f(&mut shard.lock());
                }
            }
            // First record from this thread (or the aggregator the stale
            // entry pointed at is gone): register a fresh shard.
            mine.retain(|(_, weak)| weak.strong_count() != 0);
            let shard = Arc::new(Shard::default());
            self.shards
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(shard.clone());
            mine.push((self.id, Arc::downgrade(&shard)));
            let out = f(&mut shard.lock());
            out
        })
    }

    /// Adds `delta` to the named monotone counter.
    pub fn counter(&self, name: &str, delta: u64) {
        self.with_shard(|d| {
            *d.counters.entry(name.to_string()).or_insert(0) += delta;
        });
    }

    /// Sets the named gauge; the most recent write across all threads wins
    /// in the merged view.
    pub fn gauge(&self, name: &str, value: f64) {
        let stamp = GAUGE_STAMP.fetch_add(1, Ordering::Relaxed);
        self.with_shard(|d| {
            d.gauges.insert(name.to_string(), (stamp, value));
        });
    }

    /// Records one observation of the named histogram. NaN observations
    /// are dropped (they would poison every quantile downstream).
    pub fn sample(&self, name: &str, value: f64) {
        if value.is_nan() {
            return;
        }
        self.with_shard(|d| {
            d.hists.entry(name.to_string()).or_default().push(value);
        });
    }

    /// Merges every shard into one consistent snapshot: counters summed,
    /// gauges resolved by write stamp, histogram windows concatenated and
    /// summarised with nearest-rank quantiles.
    pub fn merge(&self) -> LiveSnapshot {
        let shards: Vec<Arc<Shard>> = self
            .shards
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        let mut counters: BTreeMap<String, u64> = BTreeMap::new();
        let mut gauges: BTreeMap<String, (u64, f64)> = BTreeMap::new();
        let mut pools: BTreeMap<String, (u64, Vec<f64>)> = BTreeMap::new();
        for shard in shards {
            let data = shard.lock();
            for (name, v) in &data.counters {
                *counters.entry(name.clone()).or_insert(0) += v;
            }
            for (name, &(stamp, value)) in &data.gauges {
                let slot = gauges.entry(name.clone()).or_insert((stamp, value));
                if stamp >= slot.0 {
                    *slot = (stamp, value);
                }
            }
            for (name, hist) in &data.hists {
                let pool = pools.entry(name.clone()).or_insert((0, Vec::new()));
                pool.0 += hist.total;
                pool.1.extend_from_slice(&hist.window);
            }
        }
        let hists = pools
            .into_iter()
            .filter_map(|(name, (total, samples))| {
                HistSummary::of(&samples).map(|summary| (name, LiveHist { total, summary }))
            })
            .collect();
        LiveSnapshot {
            counters,
            gauges: gauges.into_iter().map(|(k, (_, v))| (k, v)).collect(),
            hists,
        }
    }
}

/// One merged histogram: lifetime count plus a summary of the retained
/// sample window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LiveHist {
    /// Exact lifetime observation count (may exceed `summary.n` once the
    /// per-shard windows wrap).
    pub total: u64,
    /// Nearest-rank summary over the retained window.
    pub summary: HistSummary,
}

/// A point-in-time merge of a [`LiveMetrics`] aggregator.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LiveSnapshot {
    /// Summed monotone counters, sorted by name.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins gauges, sorted by name.
    pub gauges: BTreeMap<String, f64>,
    /// Merged histograms, sorted by name.
    pub hists: BTreeMap<String, LiveHist>,
}

impl LiveSnapshot {
    /// Encodes the snapshot as canonical JSON: sorted keys, fixed member
    /// order, no whitespace — `encode → parse → encode` is byte-stable.
    pub fn to_json(&self) -> String {
        let counters: Vec<(String, String)> = self
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), v.to_string()))
            .collect();
        let gauges: Vec<(String, String)> = self
            .gauges
            .iter()
            .map(|(k, v)| (k.clone(), json::number(*v)))
            .collect();
        let hists: Vec<(String, String)> = self
            .hists
            .iter()
            .map(|(k, h)| {
                let s = &h.summary;
                (
                    k.clone(),
                    json::object(&[
                        ("n".into(), h.total.to_string()),
                        ("window".into(), s.n.to_string()),
                        ("min".into(), json::number(s.min)),
                        ("max".into(), json::number(s.max)),
                        ("mean".into(), json::number(s.mean)),
                        ("p50".into(), json::number(s.p50)),
                        ("p90".into(), json::number(s.p90)),
                        ("p99".into(), json::number(s.p99)),
                    ]),
                )
            })
            .collect();
        json::object(&[
            ("counters".into(), json::object(&counters)),
            ("gauges".into(), json::object(&gauges)),
            ("hists".into(), json::object(&hists)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Barrier;
    use std::thread;

    #[test]
    fn counters_sum_across_threads() {
        let live = Arc::new(LiveMetrics::new());
        let barrier = Arc::new(Barrier::new(4));
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let live = live.clone();
                let barrier = barrier.clone();
                thread::spawn(move || {
                    barrier.wait();
                    for _ in 0..100 {
                        live.counter("hits", 1);
                    }
                    live.counter("per_thread", i + 1);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = live.merge();
        assert_eq!(snap.counters["hits"], 400);
        assert_eq!(snap.counters["per_thread"], 1 + 2 + 3 + 4);
    }

    #[test]
    fn dead_thread_metrics_survive_in_the_merge() {
        let live = Arc::new(LiveMetrics::new());
        let l2 = live.clone();
        thread::spawn(move || l2.counter("ephemeral", 7))
            .join()
            .unwrap();
        assert_eq!(live.merge().counters["ephemeral"], 7);
    }

    #[test]
    fn gauges_are_last_write_wins_across_shards() {
        let live = Arc::new(LiveMetrics::new());
        live.gauge("depth", 1.0);
        let l2 = live.clone();
        thread::spawn(move || l2.gauge("depth", 2.0))
            .join()
            .unwrap();
        assert_eq!(live.merge().gauges["depth"], 2.0);
        live.gauge("depth", 3.0);
        assert_eq!(live.merge().gauges["depth"], 3.0);
    }

    /// Satellite: merging k shards then summarising equals the quantiles
    /// of the concatenated samples — pinned over randomised shard splits.
    #[test]
    fn shard_merge_matches_concatenated_quantiles() {
        // Deterministic split-mix style generator (no rand dep here).
        let mut state: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for case in 0..50u32 {
            let k = 1 + (next() % 6) as usize; // 1..=6 shards
            let mut per_shard: Vec<Vec<f64>> = vec![Vec::new(); k];
            let total = (next() % 200) as usize;
            let mut all = Vec::new();
            for _ in 0..total {
                let v = (next() % 1000) as f64 / 7.0;
                per_shard[(next() as usize) % k].push(v);
                all.push(v);
            }
            let live = Arc::new(LiveMetrics::new());
            let handles: Vec<_> = per_shard
                .into_iter()
                .map(|samples| {
                    let live = live.clone();
                    thread::spawn(move || {
                        // A shard that records only a counter stays empty
                        // for the histogram — the "empty shard" edge case.
                        live.counter("touched", 1);
                        for v in samples {
                            live.sample("lat", v);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            let merged = live.merge();
            match HistSummary::of(&all) {
                None => assert!(merged.hists.is_empty(), "case {case}: expected no hist"),
                Some(expect) => {
                    let got = merged.hists["lat"];
                    assert_eq!(got.total, all.len() as u64, "case {case}");
                    assert_eq!(got.summary.n, all.len(), "case {case}");
                    assert_eq!(got.summary.p50, expect.p50, "case {case}");
                    assert_eq!(got.summary.p90, expect.p90, "case {case}");
                    assert_eq!(got.summary.p99, expect.p99, "case {case}");
                    assert_eq!(got.summary.min, expect.min, "case {case}");
                    assert_eq!(got.summary.max, expect.max, "case {case}");
                    assert!((got.summary.mean - expect.mean).abs() < 1e-9, "case {case}");
                }
            }
        }
    }

    #[test]
    fn single_sample_and_all_equal_shards_merge_exactly() {
        // k single-sample shards.
        let live = Arc::new(LiveMetrics::new());
        for v in [3.0, 1.0, 2.0] {
            let live = live.clone();
            thread::spawn(move || live.sample("lat", v)).join().unwrap();
        }
        let got = live.merge().hists["lat"];
        assert_eq!(got.summary.p50, 2.0);
        assert_eq!(got.summary.p90, 3.0);
        assert_eq!((got.summary.min, got.summary.max), (1.0, 3.0));

        // All-equal values collapse every quantile.
        let live = Arc::new(LiveMetrics::new());
        for _ in 0..3 {
            let live = live.clone();
            thread::spawn(move || {
                for _ in 0..5 {
                    live.sample("flat", 2.25);
                }
            })
            .join()
            .unwrap();
        }
        let got = live.merge().hists["flat"];
        assert_eq!(got.total, 15);
        assert_eq!(
            (got.summary.p50, got.summary.p90, got.summary.p99),
            (2.25, 2.25, 2.25)
        );
    }

    #[test]
    fn histogram_window_is_bounded_but_count_is_exact() {
        let live = LiveMetrics::new();
        let n = WINDOW_CAP + 100;
        for i in 0..n {
            live.sample("lat", i as f64);
        }
        let got = live.merge().hists["lat"];
        assert_eq!(got.total, n as u64);
        assert_eq!(got.summary.n, WINDOW_CAP);
        // The window holds the most recent WINDOW_CAP samples.
        assert_eq!(got.summary.min, 100.0);
        assert_eq!(got.summary.max, (n - 1) as f64);
    }

    #[test]
    fn nan_samples_are_dropped_not_poisoning() {
        let live = LiveMetrics::new();
        live.sample("lat", f64::NAN);
        live.sample("lat", 1.0);
        let got = live.merge().hists["lat"];
        assert_eq!(got.total, 1);
        assert_eq!(got.summary.p50, 1.0);
    }

    #[test]
    fn snapshot_json_is_byte_stable_and_parses() {
        let live = LiveMetrics::new();
        live.counter("b.count", 2);
        live.counter("a.count", 1);
        live.gauge("ratio", 0.5);
        for v in [1.0, 2.0, 3.0] {
            live.sample("lat_ms", v);
        }
        let text = live.merge().to_json();
        let doc = json::parse(&text).unwrap();
        assert_eq!(
            doc.get("counters")
                .unwrap()
                .get("a.count")
                .unwrap()
                .as_u64(),
            Some(1)
        );
        assert_eq!(
            doc.get("hists")
                .unwrap()
                .get("lat_ms")
                .unwrap()
                .get("p50")
                .unwrap()
                .as_f64(),
            Some(2.0)
        );
        // Sorted keys + fixed member order ⇒ re-encoding a parse is the
        // original byte string.
        fn reencode(v: &json::Json) -> String {
            match v {
                json::Json::Null => "null".into(),
                json::Json::Bool(b) => b.to_string(),
                json::Json::Num(x) => json::number(*x),
                json::Json::Str(s) => json::string(s),
                json::Json::Arr(items) => {
                    json::array(&items.iter().map(reencode).collect::<Vec<_>>())
                }
                json::Json::Obj(members) => json::object(
                    &members
                        .iter()
                        .map(|(k, v)| (k.clone(), reencode(v)))
                        .collect::<Vec<_>>(),
                ),
            }
        }
        assert_eq!(reencode(&doc), text);
    }

    #[test]
    fn two_aggregators_on_one_thread_do_not_cross_talk() {
        let a = LiveMetrics::new();
        let b = LiveMetrics::new();
        a.counter("x", 1);
        b.counter("x", 10);
        assert_eq!(a.merge().counters["x"], 1);
        assert_eq!(b.merge().counters["x"], 10);
    }
}

//! Deterministic in-memory aggregation: the sink behind tests and the
//! `bench_suite` perf records.

use std::collections::{BTreeMap, HashMap};
use std::sync::Mutex;
use std::time::Duration;

use crate::event::{Event, Field, Level, Sink};
use crate::quantile::HistSummary;

/// A closed span as the recorder stores it.
#[derive(Debug, Clone)]
struct ClosedSpan {
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    fields: Vec<Field>,
    elapsed: Duration,
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    samples: BTreeMap<&'static str, Vec<f64>>,
    spans: Vec<ClosedSpan>,
    messages: Vec<(Level, String)>,
}

/// An in-memory [`Sink`] aggregating counters, gauges, histogram samples,
/// messages, and the closed-span tree.
///
/// Everything except wall-clock timings is **deterministic**: the same
/// instrumented computation produces the same counters, the same histogram
/// contents, and the same span tree ([`Snapshot::tree_string`] excludes
/// timings precisely so tests can compare runs).
#[derive(Debug, Default)]
pub struct Recorder {
    inner: Mutex<Inner>,
}

impl Recorder {
    /// Aggregates everything recorded so far into an immutable snapshot.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock().expect("recorder poisoned");
        let counters: BTreeMap<String, u64> = inner
            .counters
            .iter()
            .map(|(k, v)| (k.to_string(), *v))
            .collect();
        let gauges: BTreeMap<String, f64> = inner
            .gauges
            .iter()
            .map(|(k, v)| (k.to_string(), *v))
            .collect();
        let histograms: BTreeMap<String, HistSummary> = inner
            .samples
            .iter()
            .filter_map(|(k, v)| HistSummary::of(v).map(|s| (k.to_string(), s)))
            .collect();

        // Per-phase (span-name) timing aggregates.
        let mut by_name: BTreeMap<String, Vec<f64>> = BTreeMap::new();
        for s in &inner.spans {
            by_name
                .entry(s.name.to_string())
                .or_default()
                .push(s.elapsed.as_secs_f64() * 1e3);
        }
        let phases: BTreeMap<String, PhaseStat> = by_name
            .into_iter()
            .filter_map(|(name, ms)| {
                HistSummary::of(&ms).map(|timing_ms| (name, PhaseStat { timing_ms }))
            })
            .collect();

        // Reassemble the tree. Children attach in close order; sorting by
        // id restores creation order, which is what a reader expects.
        let mut nodes: HashMap<u64, SpanNode> = HashMap::new();
        let mut order: Vec<u64> = Vec::new();
        for s in &inner.spans {
            nodes.insert(
                s.id,
                SpanNode {
                    name: s.name.to_string(),
                    fields: s
                        .fields
                        .iter()
                        .map(|f| (f.name.to_string(), f.value.to_string()))
                        .collect(),
                    elapsed: s.elapsed,
                    children: Vec::new(),
                },
            );
            order.push(s.id);
        }
        // Spans close leaf-first, so a span's parent always closes later:
        // walking close order and re-parenting is safe.
        let parent_of: HashMap<u64, Option<u64>> =
            inner.spans.iter().map(|s| (s.id, s.parent)).collect();
        let mut roots: Vec<(u64, SpanNode)> = Vec::new();
        for id in order {
            let node = nodes.remove(&id).expect("node inserted above");
            match parent_of[&id].and_then(|p| nodes.get_mut(&p)) {
                Some(p) => p.children.push(node),
                None => roots.push((id, node)),
            }
        }
        roots.sort_by_key(|(id, _)| *id);
        let roots: Vec<SpanNode> = roots.into_iter().map(|(_, n)| n).collect();

        Snapshot {
            counters,
            gauges,
            histograms,
            phases,
            roots,
            messages: inner.messages.clone(),
        }
    }

    /// Discards everything recorded so far (for reuse between runs).
    pub fn clear(&self) {
        *self.inner.lock().expect("recorder poisoned") = Inner::default();
    }
}

impl Sink for Recorder {
    fn on_event(&self, event: &Event<'_>) {
        let mut inner = self.inner.lock().expect("recorder poisoned");
        match event {
            Event::SpanStart { .. } => {} // closed spans carry everything
            Event::SpanEnd {
                id,
                parent,
                name,
                fields,
                elapsed,
            } => inner.spans.push(ClosedSpan {
                id: *id,
                parent: *parent,
                name,
                fields: fields.to_vec(),
                elapsed: *elapsed,
            }),
            Event::Counter { name, delta } => {
                *inner.counters.entry(name).or_insert(0) += delta;
            }
            Event::Gauge { name, value } => {
                inner.gauges.insert(name, *value);
            }
            Event::Sample { name, value } => {
                inner.samples.entry(name).or_default().push(*value);
            }
            Event::Message { level, text } => {
                inner.messages.push((*level, text.to_string()));
            }
        }
    }
}

/// One node of the reconstructed span tree.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    /// Span name.
    pub name: String,
    /// Context fields, rendered to strings.
    pub fields: Vec<(String, String)>,
    /// Wall-clock duration.
    pub elapsed: Duration,
    /// Child spans, in creation order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    fn tree_into(&self, depth: usize, out: &mut String) {
        out.push_str(&"  ".repeat(depth));
        out.push_str(&self.name);
        for (k, v) in &self.fields {
            out.push_str(&format!(" {k}={v}"));
        }
        out.push('\n');
        for c in &self.children {
            c.tree_into(depth + 1, out);
        }
    }

    /// Depth-first search for the first descendant (or self) named `name`.
    pub fn find(&self, name: &str) -> Option<&SpanNode> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }
}

/// Aggregate timing of one span name (one auction/simulator phase).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseStat {
    /// Duration distribution in milliseconds (count, total, quantiles).
    pub timing_ms: HistSummary,
}

/// An immutable aggregation of everything a [`Recorder`] observed.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Final counter totals, by name.
    pub counters: BTreeMap<String, u64>,
    /// Final gauge values, by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries, by name.
    pub histograms: BTreeMap<String, HistSummary>,
    /// Wall-clock aggregates per span name.
    pub phases: BTreeMap<String, PhaseStat>,
    /// Root spans (spans whose parent was not recorded), creation-ordered.
    pub roots: Vec<SpanNode>,
    /// Recorded messages with their levels, in order.
    pub messages: Vec<(Level, String)>,
}

impl Snapshot {
    /// The span tree as an indented string of `name key=value…` lines —
    /// timing-free, so identical computations compare equal.
    pub fn tree_string(&self) -> String {
        let mut out = String::new();
        for r in &self.roots {
            r.tree_into(0, &mut out);
        }
        out
    }

    /// Depth-first search across all roots for a span named `name`.
    pub fn find(&self, name: &str) -> Option<&SpanNode> {
        self.roots.iter().find_map(|r| r.find(name))
    }

    /// How many spans named `name` closed (0 when the phase never ran).
    pub fn span_count(&self, name: &str) -> usize {
        self.phases.get(name).map_or(0, |p| p.timing_ms.n)
    }

    /// Renders the snapshot as a JSON document:
    ///
    /// ```json
    /// {
    ///   "phases": {"qualify": {"calls": 5, "total_ms": …, "p50_ms": …, …}},
    ///   "counters": {…}, "gauges": {…},
    ///   "histograms": {"sim.round_wall_clock": {"n": …, "p50": …, …}}
    /// }
    /// ```
    ///
    /// Counters and histograms are reproducible for a fixed seed; the
    /// `*_ms` timing fields are wall-clock and vary run to run.
    pub fn to_json(&self) -> String {
        use crate::json;
        let hist_json = |h: &HistSummary| -> String {
            json::object(&[
                ("n".into(), h.n.to_string()),
                ("min".into(), json::number(h.min)),
                ("max".into(), json::number(h.max)),
                ("mean".into(), json::number(h.mean)),
                ("sum".into(), json::number(h.sum)),
                ("p50".into(), json::number(h.p50)),
                ("p90".into(), json::number(h.p90)),
                ("p99".into(), json::number(h.p99)),
            ])
        };
        let phases = json::object(
            &self
                .phases
                .iter()
                .map(|(name, p)| {
                    let t = &p.timing_ms;
                    (
                        name.clone(),
                        json::object(&[
                            ("calls".into(), t.n.to_string()),
                            ("total_ms".into(), json::number(t.sum)),
                            ("mean_ms".into(), json::number(t.mean)),
                            ("p50_ms".into(), json::number(t.p50)),
                            ("p90_ms".into(), json::number(t.p90)),
                            ("p99_ms".into(), json::number(t.p99)),
                            ("max_ms".into(), json::number(t.max)),
                        ]),
                    )
                })
                .collect::<Vec<_>>(),
        );
        let counters = json::object(
            &self
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.to_string()))
                .collect::<Vec<_>>(),
        );
        let gauges = json::object(
            &self
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), json::number(*v)))
                .collect::<Vec<_>>(),
        );
        let histograms = json::object(
            &self
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), hist_json(h)))
                .collect::<Vec<_>>(),
        );
        json::object(&[
            ("phases".into(), phases),
            ("counters".into(), counters),
            ("gauges".into(), gauges),
            ("histograms".into(), histograms),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::{install_local, span, span_with};
    use crate::{counter, gauge, sample, Field};
    use std::sync::Arc;

    fn workload() {
        let _run = span_with("run", vec![Field::new("case", "unit")]);
        for i in 0..3u64 {
            let _phase = span("phase");
            counter!("iterations");
            sample!("load", i as f64);
        }
        gauge!("final", 0.75);
    }

    #[test]
    fn aggregates_counters_and_histograms() {
        let rec = Arc::new(Recorder::default());
        let g = install_local(rec.clone());
        workload();
        drop(g);
        let snap = rec.snapshot();
        assert_eq!(snap.counters["iterations"], 3);
        assert_eq!(snap.gauges["final"], 0.75);
        let h = &snap.histograms["load"];
        assert_eq!(h.n, 3);
        assert_eq!(h.p50, 1.0);
        assert_eq!(snap.span_count("phase"), 3);
        assert_eq!(snap.span_count("run"), 1);
        assert_eq!(snap.span_count("absent"), 0);
    }

    #[test]
    fn tree_matches_nesting_and_is_deterministic() {
        let run = || {
            let rec = Arc::new(Recorder::default());
            let g = install_local(rec.clone());
            workload();
            drop(g);
            rec.snapshot()
        };
        let a = run();
        let b = run();
        assert_eq!(
            a.tree_string(),
            "run case=unit\n  phase\n  phase\n  phase\n"
        );
        assert_eq!(a.tree_string(), b.tree_string());
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.histograms, b.histograms);
    }

    #[test]
    fn parent_elapsed_bounds_child_elapsed() {
        let rec = Arc::new(Recorder::default());
        let g = install_local(rec.clone());
        {
            let _outer = span("outer");
            let _inner = span("inner");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        drop(g);
        let snap = rec.snapshot();
        let outer = snap.find("outer").unwrap();
        let inner = outer.find("inner").unwrap();
        assert!(inner.elapsed >= std::time::Duration::from_millis(2));
        assert!(
            outer.elapsed >= inner.elapsed,
            "outer {:?} must cover inner {:?}",
            outer.elapsed,
            inner.elapsed
        );
    }

    #[test]
    fn find_walks_the_whole_tree() {
        let rec = Arc::new(Recorder::default());
        let g = install_local(rec.clone());
        {
            let _a = span("a");
            {
                let _b = span("b");
                let _c = span("c");
            }
            let _d = span("d");
        }
        drop(g);
        let snap = rec.snapshot();
        assert!(snap.find("c").is_some());
        assert!(snap.find("missing").is_none());
        let a = snap.find("a").unwrap();
        assert_eq!(a.children.len(), 2);
        assert_eq!(a.children[0].name, "b");
        assert_eq!(a.children[1].name, "d");
    }

    #[test]
    fn clear_resets_everything() {
        let rec = Arc::new(Recorder::default());
        let g = install_local(rec.clone());
        workload();
        rec.clear();
        counter!("after", 5);
        drop(g);
        let snap = rec.snapshot();
        assert_eq!(snap.counters.len(), 1);
        assert_eq!(snap.counters["after"], 5);
        assert!(snap.roots.is_empty());
    }

    #[test]
    fn snapshot_json_is_well_formed() {
        let rec = Arc::new(Recorder::default());
        let g = install_local(rec.clone());
        workload();
        drop(g);
        let json = rec.snapshot().to_json();
        crate::json::validate(&json).unwrap_or_else(|e| panic!("{e}\n{json}"));
        assert!(json.contains("\"iterations\":3"));
        assert!(json.contains("\"phases\""));
    }

    /// Two identical instrumented computations must serialize to
    /// byte-identical JSON once the wall-clock fields are projected away —
    /// the stability `bench_suite compare` and the history diffs rely on.
    /// Keys are BTreeMap-sorted, so insertion order cannot leak through.
    #[test]
    fn same_seed_snapshots_serialize_byte_identically_modulo_timing() {
        let timing_free = |snap: &Snapshot| -> String {
            let strip = |json: &str| -> String {
                // Drop every `*_ms` member; they are the only wall-clock
                // dependent fields in the export.
                let mut out = String::new();
                for part in json.split(',') {
                    if !part.contains("_ms\":") {
                        out.push_str(part);
                        out.push(',');
                    }
                }
                out
            };
            format!("{}\n{}", snap.tree_string(), strip(&snap.to_json()))
        };
        let run = |order_hint: bool| {
            let rec = Arc::new(Recorder::default());
            let g = install_local(rec.clone());
            // Same aggregate content, touched in a different order on the
            // second run: the export must not depend on insertion order.
            if order_hint {
                gauge!("z_last", 1.0);
                counter!("b", 2);
                counter!("a", 1);
            } else {
                counter!("a", 1);
                counter!("b", 2);
                gauge!("z_last", 1.0);
            }
            workload();
            drop(g);
            rec.snapshot()
        };
        let a = run(false);
        let b = run(true);
        assert_eq!(timing_free(&a), timing_free(&b));
    }
}

//! Fuzz-style hardening suite for the hand-rolled JSON layer.
//!
//! The `fl-flpd` daemon feeds *untrusted network bytes* into
//! `fl_telemetry::json::parse` (via the frame layer), so the parser's
//! contract is strict: on any input it must return `Ok` or `Err` — never
//! panic, never overflow the stack, never allocate proportionally to a
//! declared-but-absent size. These tests throw truncations, deep nesting,
//! huge numbers, malformed escapes, and seeded random mutations at it.

use fl_telemetry::json::{self, Json};

/// SplitMix64 — deterministic mutation source (no dependency on the rand
/// shim so the byte streams are pinned forever).
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// A representative well-formed document (nested objects, arrays, floats,
/// escapes) used as the mutation base.
fn base_doc() -> String {
    json::object(&[
        ("op".into(), json::string("bid")),
        ("price".into(), json::number(12.625)),
        ("theta".into(), json::number(0.55)),
        ("window".into(), json::array(&["1".into(), "9".into()])),
        (
            "note".into(),
            json::string("quote \" backslash \\ newline \n unicode é"),
        ),
        (
            "nested".into(),
            json::object(&[(
                "deep".into(),
                json::array(&[json::object(&[("x".into(), "null".into())])]),
            )]),
        ),
    ])
}

#[test]
fn every_truncation_of_a_valid_document_errs_or_parses() {
    let doc = base_doc();
    for cut in 0..doc.len() {
        // Cut on a char boundary only (parse takes &str).
        if !doc.is_char_boundary(cut) {
            continue;
        }
        let prefix = &doc[..cut];
        // Must not panic; a proper prefix of this doc is never valid JSON
        // except the empty-adjacent cases the parser rejects anyway.
        let _ = json::parse(prefix);
        let _ = json::validate(prefix);
    }
}

#[test]
fn deep_nesting_is_rejected_not_a_stack_overflow() {
    // 64 kB of '[' — without the depth cap this would recurse 65536
    // frames deep and abort the process.
    let deep_arrays = "[".repeat(65_536);
    assert!(json::parse(&deep_arrays).is_err());
    assert!(json::validate(&deep_arrays).is_err());

    let deep_objects = "{\"k\":".repeat(65_536);
    assert!(json::parse(&deep_objects).is_err());
    assert!(json::validate(&deep_objects).is_err());

    // Mixed nesting just below the cap still parses.
    let mut ok = String::new();
    let levels = json::MAX_DEPTH;
    for _ in 0..levels {
        ok.push('[');
    }
    ok.push('1');
    for _ in 0..levels {
        ok.push(']');
    }
    json::parse(&ok).unwrap_or_else(|e| panic!("depth {levels} should parse: {e}"));

    // One past the cap fails with the depth message.
    let too_deep = format!("[{ok}]");
    let err = json::parse(&too_deep).unwrap_err();
    assert!(err.contains("nesting deeper"), "{err}");
}

#[test]
fn huge_and_degenerate_numbers_never_panic() {
    for text in [
        "1e999",
        "-1e999",
        "1e-999",
        "123456789012345678901234567890123456789012345678901234567890",
        "-0.000000000000000000000000000000000000000000000000000000001",
        "9007199254740993",
        "2.2250738585072011e-308", // the classic strtod hang input
        "1e308",
        "-1e-308",
    ] {
        match json::parse(text) {
            Ok(Json::Num(_)) | Err(_) => {}
            other => panic!("{text}: unexpected {other:?}"),
        }
        let _ = json::validate(text);
    }
    // Overflow to infinity is representable input; re-encoding maps it to
    // null (JSON has no Inf) rather than emitting an invalid token.
    if let Ok(Json::Num(x)) = json::parse("1e999") {
        assert!(x.is_infinite());
        assert_eq!(json::number(x), "null");
    }
}

#[test]
fn malformed_escapes_and_strings_err_cleanly() {
    for bad in [
        r#""\q""#,         // unknown escape
        r#""\u""#,         // truncated \u
        r#""\u12""#,       // short hex
        r#""\u12g4""#,     // non-hex digit
        r#""\"#,           // escape at end of input
        "\"unterminated",  // no closing quote
        "\"raw\u{1}ctl\"", // raw control byte in string
        r#"{"k""v"}"#,     // missing colon
        r#"{"k":1,,}"#,    // double comma
        "[1,2",            // unterminated array
        "{\"a\":1",        // unterminated object
        "tru",             // cut literal
        "nullx",           // trailing garbage on literal
    ] {
        assert!(json::parse(bad).is_err(), "{bad:?} should fail");
        assert!(json::validate(bad).is_err(), "{bad:?} should fail");
    }
}

#[test]
fn lone_surrogate_escapes_decode_to_replacement_not_panic() {
    // \ud800 is an unpaired surrogate — not a valid scalar value. The
    // parser maps it to U+FFFD (it can't come from our encoder anyway).
    let v = json::parse(r#""\ud800 tail""#).unwrap();
    assert_eq!(v.as_str(), Some("\u{fffd} tail"));
}

#[test]
fn seeded_random_mutations_never_panic() {
    let doc = base_doc().into_bytes();
    let mut rng = Mix(0xf1_d0);
    for _ in 0..20_000 {
        let mut bytes = doc.clone();
        // 1–4 random byte edits: overwrite, delete, or duplicate.
        for _ in 0..1 + rng.below(4) {
            if bytes.is_empty() {
                break;
            }
            let at = rng.below(bytes.len());
            match rng.below(3) {
                0 => bytes[at] = (rng.next() & 0xff) as u8,
                1 => {
                    bytes.remove(at);
                }
                _ => {
                    let b = bytes[at];
                    bytes.insert(at, b);
                }
            }
        }
        // Untrusted wire bytes are UTF-8-checked before parsing (the
        // frame layer rejects non-UTF-8); mirror that here.
        if let Ok(text) = std::str::from_utf8(&bytes) {
            let _ = json::parse(text);
            let _ = json::validate(text);
        }
    }
}

#[test]
fn seeded_random_garbage_never_panics() {
    let mut rng = Mix(0xbeef);
    for len in [0usize, 1, 2, 3, 7, 32, 512] {
        for _ in 0..2_000 {
            let bytes: Vec<u8> = (0..len).map(|_| (rng.next() & 0x7f) as u8).collect();
            if let Ok(text) = std::str::from_utf8(&bytes) {
                let _ = json::parse(text);
                let _ = json::validate(text);
            }
        }
    }
}

#[test]
fn whitespace_padding_extremes_parse() {
    let padded = format!("{}{}{}", " \t\n\r".repeat(10_000), "42", " ".repeat(10_000));
    assert_eq!(json::parse(&padded).unwrap().as_f64(), Some(42.0));
}

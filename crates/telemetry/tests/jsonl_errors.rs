//! The JsonlSink write path under failing filesystems: errors must be
//! counted and surfaced, never panic the instrumented program, and never
//! be lost silently.

use std::io::{self, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use fl_telemetry::{counter, install_local, JsonlSink};

/// A writer that fails every write after the first `ok_bytes` bytes, the
/// way a filling disk does (short write, then ENOSPC-style hard errors).
struct FillingDisk {
    ok_bytes: usize,
    written: Arc<AtomicU64>,
}

impl Write for FillingDisk {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let so_far = self.written.load(Ordering::Relaxed) as usize;
        if so_far >= self.ok_bytes {
            return Err(io::Error::new(io::ErrorKind::StorageFull, "disk full"));
        }
        // Accept at most the remaining budget — a *partial* write.
        let take = buf.len().min(self.ok_bytes - so_far).max(1).min(buf.len());
        self.written.fetch_add(take as u64, Ordering::Relaxed);
        Ok(take)
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.written.load(Ordering::Relaxed) as usize >= self.ok_bytes {
            return Err(io::Error::new(io::ErrorKind::StorageFull, "disk full"));
        }
        Ok(())
    }
}

#[test]
fn enospc_is_counted_and_surfaced_not_silent() {
    let written = Arc::new(AtomicU64::new(0));
    // Budget far smaller than one line: the first flush-through fails.
    let sink = Arc::new(JsonlSink::to_writer(FillingDisk {
        ok_bytes: 8,
        written: written.clone(),
    }));
    assert_eq!(sink.dropped_lines(), 0);
    assert!(sink.take_last_error().is_none());

    {
        let _guard = install_local(sink.clone());
        for _ in 0..64 {
            counter!("stress", 1);
        }
    }
    // Events are buffered (BufWriter), so force them to the writer. The
    // flush must report the failure to the caller…
    let flush_err = sink.flush();
    assert!(flush_err.is_err(), "flush over a full disk must fail");

    // …and the sink's own error surface must have recorded the loss.
    assert!(
        sink.dropped_lines() >= 1,
        "losses must be counted, got {}",
        sink.dropped_lines()
    );
    let last = sink.take_last_error().expect("last error kept");
    assert_eq!(last.kind(), io::ErrorKind::StorageFull);
    // take semantics: the slot clears after reading.
    assert!(sink.take_last_error().is_none());
}

#[test]
fn partial_writes_are_retried_to_completion() {
    // A writer that only takes a few bytes per call but never errors:
    // write_all in the sink must loop until every byte lands, so no line
    // is torn and nothing is dropped.
    struct Dribble {
        out: Arc<std::sync::Mutex<Vec<u8>>>,
    }
    impl Write for Dribble {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            let take = buf.len().min(3);
            self.out.lock().unwrap().extend_from_slice(&buf[..take]);
            Ok(take)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    let out = Arc::new(std::sync::Mutex::new(Vec::new()));
    let sink = Arc::new(JsonlSink::to_writer(Dribble { out: out.clone() }));
    {
        let _guard = install_local(sink.clone());
        for _ in 0..10 {
            counter!("dribble", 1);
        }
    }
    sink.flush().unwrap();
    assert_eq!(sink.dropped_lines(), 0);
    let text = String::from_utf8(out.lock().unwrap().clone()).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 10);
    for line in lines {
        fl_telemetry::json::validate(line).unwrap_or_else(|e| panic!("torn line {line:?}: {e}"));
    }
}
